//! Property-style tests over the learning pipeline and the workload
//! generator — the invariants the paper's correctness argument rests on.
//!
//! Formerly `proptest` suites; now deterministic seeded loops over
//! `DetRng`-generated inputs so the workspace builds with an empty registry.

use sprite::core::{algorithm1, naive_select, q_score};
use sprite::ir::{DocId, Document, Query, TermId};
use sprite::util::{derive_rng, DetRng};

fn rng(label: &str) -> DetRng {
    derive_rng(0x5EED, label)
}

/// A document over a small term universe (3..30 distinct terms from 0..50).
fn gen_doc(rng: &mut DetRng) -> Document {
    let n = rng.gen_range(3..30);
    let mut m = std::collections::BTreeMap::new();
    while m.len() < n {
        m.insert(rng.gen_range(0..50) as u32, rng.gen_range(1..20) as u32);
    }
    Document::new(
        DocId(0),
        m.into_iter().map(|(t, c)| (TermId(t), c)).collect(),
    )
}

/// A query over the same universe (plus misses from 50..80).
fn gen_query(rng: &mut DetRng) -> Query {
    let len = rng.gen_range(1..6);
    Query::new(
        (0..len)
            .map(|_| TermId(rng.gen_range(0..80) as u32))
            .collect(),
    )
}

/// A query history of 0..40 queries.
fn gen_history(rng: &mut DetRng) -> Vec<Query> {
    let n = rng.gen_range(0..40);
    (0..n).map(|_| gen_query(rng)).collect()
}

/// The paper's equivalence claim for Algorithm 1: incremental
/// processing over arbitrary batch boundaries equals the naive
/// recompute over the full history (max is associative, QF is a sum).
#[test]
fn algorithm1_incremental_equals_naive() {
    let mut r = rng("alg1-incremental");
    for _ in 0..200 {
        let doc = gen_doc(&mut r);
        let history = gen_history(&mut r);
        let c1 = r.gen_range(0..40).min(history.len());
        let c2 = r.gen_range(0..40).min(history.len()).max(c1);
        let budget = r.gen_range(1..12);
        let whole = naive_select(&doc, &history, budget);
        let mut stats = std::collections::HashMap::new();
        let _ = algorithm1(&doc, &mut stats, &history[..c1], budget);
        let _ = algorithm1(&doc, &mut stats, &history[c1..c2], budget);
        let inc = algorithm1(&doc, &mut stats, &history[c2..], budget);
        assert_eq!(whole, inc);
    }
}

/// Selected terms always belong to the document or its frequency
/// fallback, never exceed the budget, and contain no duplicates.
#[test]
fn selection_wellformed() {
    let mut r = rng("selection");
    for _ in 0..200 {
        let doc = gen_doc(&mut r);
        let history = gen_history(&mut r);
        let budget = r.gen_range(0..15);
        let mut stats = std::collections::HashMap::new();
        let chosen = algorithm1(&doc, &mut stats, &history, budget);
        assert!(chosen.len() <= budget);
        let set: std::collections::HashSet<_> = chosen.iter().collect();
        assert_eq!(set.len(), chosen.len(), "duplicates in selection");
        for t in &chosen {
            assert!(doc.contains(*t), "selected term not in document");
        }
    }
}

/// qScore is a fraction in [0, 1], 1 iff the document covers the whole
/// query.
#[test]
fn q_score_bounds() {
    let mut r = rng("qscore");
    for _ in 0..500 {
        let doc = gen_doc(&mut r);
        let query = gen_query(&mut r);
        let s = q_score(&query, &doc);
        assert!((0.0..=1.0).contains(&s));
        let all_in = query.term_counts().iter().all(|(t, _)| doc.contains(*t));
        assert_eq!(s == 1.0, all_in);
    }
}

/// Adding more queries never decreases any term's QF statistic, and
/// never decreases its best qScore.
#[test]
fn stats_are_monotone() {
    let mut r = rng("stats-monotone");
    for _ in 0..200 {
        let doc = gen_doc(&mut r);
        let history = gen_history(&mut r);
        let extra = gen_history(&mut r);
        let mut stats = std::collections::HashMap::new();
        let _ = algorithm1(&doc, &mut stats, &history, 10);
        let before = stats.clone();
        let _ = algorithm1(&doc, &mut stats, &extra, 10);
        for (t, s) in &before {
            let after = stats[t];
            assert!(after.qf >= s.qf);
            assert!(after.qs >= s.qs);
        }
    }
}

mod workload {
    use super::rng;
    use sprite::corpus::{
        generate_workload, issue_order, split_train_test, CorpusConfig, GenConfig, Schedule,
        SyntheticCorpus,
    };
    use sprite::ir::CentralizedEngine;

    /// The generated workload always has (k+1) queries per seed, every
    /// derived query keeps ≥ ⌈O·|Q|⌉ − |Q| of the seed's terms, and no
    /// derived query is empty.
    #[test]
    fn workload_invariants() {
        let mut r = rng("workload");
        for _ in 0..8 {
            let seed = r.gen_range(0..500) as u64;
            let k = r.gen_range(1..6);
            let overlap = 0.3 + r.gen_f64() * 0.7;
            let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(seed));
            let engine = CentralizedEngine::build(sc.corpus());
            let seeds = sc.seed_queries();
            let cfg = GenConfig {
                k_per_seed: k,
                overlap,
                top_e: 60,
                seed,
                ..GenConfig::default()
            };
            let w = generate_workload(sc.corpus(), &engine, &seeds[..3], &cfg);
            assert_eq!(w.len(), 3 * (k + 1));
            for gq in &w {
                assert!(!gq.query.is_empty());
                if !gq.is_original {
                    let orig = &seeds[gq.seed_idx].query;
                    let keep = (overlap * orig.distinct_len() as f64).round() as usize;
                    let shared = gq
                        .query
                        .term_counts()
                        .iter()
                        .filter(|(t, _)| orig.contains(*t))
                        .count();
                    assert!(
                        shared >= keep.min(orig.distinct_len()),
                        "derived query shares {shared} terms, expected >= {keep}"
                    );
                }
            }
        }
    }

    /// Train/test splits partition the workload for any size.
    #[test]
    fn split_partitions() {
        let mut r = rng("split");
        for _ in 0..50 {
            let n = r.gen_range(0..500);
            let seed = r.gen_u64();
            let (train, test) = split_train_test(n, seed);
            assert_eq!(train.len() + test.len(), n);
            let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), n);
        }
    }

    /// Issue orders only reference valid queries; w/o-r is a permutation.
    #[test]
    fn schedules_valid() {
        let mut r = rng("schedules");
        for _ in 0..50 {
            let n = r.gen_range(1..100);
            let seed = r.gen_u64();
            let total = r.gen_range(1..300);
            let wor = issue_order(n, Schedule::WithoutRepeats, seed);
            let mut sorted = wor.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>());
            let z = issue_order(n, Schedule::Zipf { slope: 0.5, total }, seed);
            assert_eq!(z.len(), total);
            assert!(z.iter().all(|&i| i < n));
        }
    }
}
