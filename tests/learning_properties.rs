//! Property-based tests over the learning pipeline and the workload
//! generator — the invariants the paper's correctness argument rests on.

use proptest::prelude::*;
use sprite::core::{algorithm1, naive_select, q_score};
use sprite::ir::{Document, DocId, Query, TermId};

/// Strategy: a document over a small term universe.
fn arb_doc() -> impl Strategy<Value = Document> {
    proptest::collection::btree_map(0u32..50, 1u32..20, 3..30)
        .prop_map(|m| Document::new(DocId(0), m.into_iter().map(|(t, c)| (TermId(t), c)).collect()))
}

/// Strategy: a query history over the same universe (plus misses).
fn arb_history() -> impl Strategy<Value = Vec<Query>> {
    proptest::collection::vec(
        proptest::collection::vec(0u32..80, 1..6)
            .prop_map(|ts| Query::new(ts.into_iter().map(TermId).collect())),
        0..40,
    )
}

proptest! {
    /// The paper's equivalence claim for Algorithm 1: incremental
    /// processing over arbitrary batch boundaries equals the naive
    /// recompute over the full history (max is associative, QF is a sum).
    #[test]
    fn algorithm1_incremental_equals_naive(
        doc in arb_doc(),
        history in arb_history(),
        cut1 in 0usize..40,
        cut2 in 0usize..40,
        budget in 1usize..12,
    ) {
        let c1 = cut1.min(history.len());
        let c2 = cut2.min(history.len()).max(c1);
        let whole = naive_select(&doc, &history, budget);
        let mut stats = std::collections::HashMap::new();
        let _ = algorithm1(&doc, &mut stats, &history[..c1], budget);
        let _ = algorithm1(&doc, &mut stats, &history[c1..c2], budget);
        let inc = algorithm1(&doc, &mut stats, &history[c2..], budget);
        prop_assert_eq!(whole, inc);
    }

    /// Selected terms always belong to the document or its frequency
    /// fallback, never exceed the budget, and contain no duplicates.
    #[test]
    fn selection_wellformed(
        doc in arb_doc(),
        history in arb_history(),
        budget in 0usize..15,
    ) {
        let mut stats = std::collections::HashMap::new();
        let chosen = algorithm1(&doc, &mut stats, &history, budget);
        prop_assert!(chosen.len() <= budget);
        let set: std::collections::HashSet<_> = chosen.iter().collect();
        prop_assert_eq!(set.len(), chosen.len(), "duplicates in selection");
        for t in &chosen {
            prop_assert!(doc.contains(*t), "selected term not in document");
        }
    }

    /// qScore is a fraction in [0, 1], 1 iff the document covers the whole
    /// query, and monotone under adding matching terms to the document.
    #[test]
    fn q_score_bounds(doc in arb_doc(), q in proptest::collection::vec(0u32..80, 1..6)) {
        let query = Query::new(q.into_iter().map(TermId).collect());
        let s = q_score(&query, &doc);
        prop_assert!((0.0..=1.0).contains(&s));
        let all_in = query.term_counts().iter().all(|(t, _)| doc.contains(*t));
        prop_assert_eq!(s == 1.0, all_in);
    }

    /// Adding more queries never decreases any term's QF statistic, and
    /// never decreases its best qScore.
    #[test]
    fn stats_are_monotone(
        doc in arb_doc(),
        history in arb_history(),
        extra in arb_history(),
    ) {
        let mut stats = std::collections::HashMap::new();
        let _ = algorithm1(&doc, &mut stats, &history, 10);
        let before = stats.clone();
        let _ = algorithm1(&doc, &mut stats, &extra, 10);
        for (t, s) in &before {
            let after = stats[t];
            prop_assert!(after.qf >= s.qf);
            prop_assert!(after.qs >= s.qs);
        }
    }
}

mod workload {
    use super::*;
    use sprite::corpus::{
        generate_workload, issue_order, split_train_test, CorpusConfig, GenConfig, Schedule,
        SyntheticCorpus,
    };
    use sprite::ir::CentralizedEngine;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The generated workload always has (k+1) queries per seed, every
        /// derived query keeps ≥ ⌈O·|Q|⌉ − |Q| of the seed's terms, and no
        /// derived query is empty.
        #[test]
        fn workload_invariants(seed in 0u64..500, k in 1usize..6, overlap in 0.3f64..1.0) {
            let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(seed));
            let engine = CentralizedEngine::build(sc.corpus());
            let seeds = sc.seed_queries();
            let cfg = GenConfig { k_per_seed: k, overlap, top_e: 60, seed, ..GenConfig::default() };
            let w = generate_workload(sc.corpus(), &engine, &seeds[..3], &cfg);
            prop_assert_eq!(w.len(), 3 * (k + 1));
            for gq in &w {
                prop_assert!(!gq.query.is_empty());
                if !gq.is_original {
                    let orig = &seeds[gq.seed_idx].query;
                    let keep = (overlap * orig.distinct_len() as f64).round() as usize;
                    let shared = gq
                        .query
                        .term_counts()
                        .iter()
                        .filter(|(t, _)| orig.contains(*t))
                        .count();
                    prop_assert!(shared >= keep.min(orig.distinct_len()),
                        "derived query shares {shared} terms, expected >= {keep}");
                }
            }
        }

        /// Train/test splits partition the workload for any size.
        #[test]
        fn split_partitions(n in 0usize..500, seed in any::<u64>()) {
            let (train, test) = split_train_test(n, seed);
            prop_assert_eq!(train.len() + test.len(), n);
            let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
            all.sort_unstable();
            all.dedup();
            prop_assert_eq!(all.len(), n);
        }

        /// Issue orders only reference valid queries; w/o-r is a permutation.
        #[test]
        fn schedules_valid(n in 1usize..100, seed in any::<u64>(), total in 1usize..300) {
            let wor = issue_order(n, Schedule::WithoutRepeats, seed);
            let mut sorted = wor.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
            let z = issue_order(n, Schedule::Zipf { slope: 0.5, total }, seed);
            prop_assert_eq!(z.len(), total);
            prop_assert!(z.iter().all(|&i| i < n));
        }
    }
}
