//! Cross-crate integration tests: the whole stack, from corpus generation
//! through the Chord ring to ranked answers and the paper's evaluation
//! pipeline.

use sprite::core::{fig4a, fig4c, SpriteConfig, SpriteSystem, World, WorldConfig};
use sprite::corpus::{CorpusConfig, Schedule, SyntheticCorpus};
use sprite::ir::{evaluate_hits_at_k, DocId, Query};

fn tiny_world() -> World {
    World::build(WorldConfig::tiny(77))
}

#[test]
fn full_pipeline_produces_relevant_answers() {
    let world = tiny_world();
    let mut sys = world.standard_system(SpriteConfig::default(), Schedule::WithoutRepeats);
    // Every test query must be answerable; most should return relevant docs.
    let mut answered = 0;
    let mut relevant_found = 0;
    for &qi in &world.test {
        let gq = &world.workload[qi];
        let hits = sys.issue_query(&gq.query, 20);
        if !hits.is_empty() {
            answered += 1;
        }
        let e = evaluate_hits_at_k(&hits, &gq.relevant, 20);
        if e.hits > 0 {
            relevant_found += 1;
        }
    }
    assert!(answered as f64 >= world.test.len() as f64 * 0.9);
    assert!(
        relevant_found as f64 >= world.test.len() as f64 * 0.5,
        "only {relevant_found}/{} queries found any relevant doc",
        world.test.len()
    );
}

#[test]
fn sprite_tracks_centralized_within_band() {
    let world = tiny_world();
    let mut sys = world.standard_system(SpriteConfig::default(), Schedule::WithoutRepeats);
    let r = world.evaluate(&mut sys, &world.test, 20);
    // The paper reports ~0.87-0.89 of centralized; at tiny scale we only
    // require a sane band.
    assert!(
        r.precision_ratio > 0.5 && r.precision_ratio <= 1.2,
        "precision ratio {} out of band",
        r.precision_ratio
    );
    assert!(r.recall_ratio > 0.5 && r.recall_ratio <= 1.2);
}

#[test]
fn learning_beats_static_on_equal_budget() {
    // The headline claim, end to end through the facade.
    let world = World::build(WorldConfig::small(5));
    let mut sprite = world.standard_system(SpriteConfig::default(), Schedule::WithoutRepeats);
    let mut esearch = world.standard_system(SpriteConfig::esearch(20), Schedule::WithoutRepeats);
    let rs = world.evaluate(&mut sprite, &world.test, 20);
    let re = world.evaluate(&mut esearch, &world.test, 20);
    assert!(
        rs.precision_ratio > re.precision_ratio,
        "SPRITE {} vs eSearch {}",
        rs.precision_ratio,
        re.precision_ratio
    );
}

#[test]
fn no_learning_at_minimum_budget_matches_esearch() {
    // Figure 4(b)'s anchor point: with only the initial 5 terms, SPRITE and
    // eSearch publish identical indexes, so every answer matches.
    let world = tiny_world();
    let cfg5 = SpriteConfig {
        max_terms: 5,
        ..SpriteConfig::default()
    };
    let mut a = world.standard_system(cfg5, Schedule::WithoutRepeats);
    let mut b = world.standard_system(SpriteConfig::esearch(5), Schedule::WithoutRepeats);
    for &qi in world.test.iter().take(20) {
        let q = &world.workload[qi].query;
        let ha: Vec<DocId> = a.issue_query(q, 10).iter().map(|h| h.doc).collect();
        let hb: Vec<DocId> = b.issue_query(q, 10).iter().map(|h| h.doc).collect();
        assert_eq!(ha, hb, "identical indexes must answer identically");
    }
}

#[test]
fn fig_drivers_are_deterministic() {
    let w1 = tiny_world();
    let w2 = tiny_world();
    let a1 = fig4a(&w1, &[10, 20]);
    let a2 = fig4a(&w2, &[10, 20]);
    for (p1, p2) in a1.sprite.iter().zip(&a2.sprite) {
        assert_eq!(p1.precision, p2.precision);
        assert_eq!(p1.recall, p2.recall);
    }
    let c1 = fig4c(&w1, 4, 10);
    let c2 = fig4c(&w2, 4, 10);
    for (p1, p2) in c1.sprite.iter().zip(&c2.sprite) {
        assert_eq!(p1.precision, p2.precision);
    }
}

#[test]
fn querying_through_churn_and_replication() {
    let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(31));
    let cfg = SpriteConfig {
        replication: 3,
        ..SpriteConfig::default()
    };
    let mut sys = SpriteSystem::build(sc.corpus().clone(), 32, cfg, 31);
    sys.publish_all();
    sys.replicate_indexes();
    let probe = Query::new(sc.topic_core(0)[..3].to_vec());
    let before = sys.issue_query(&probe, 30).len();
    sys.fail_random_peers(6, 2);
    let after = sys.issue_query(&probe, 30).len();
    assert!(before > 0);
    assert!(
        after * 10 >= before * 8,
        "replication should preserve most answers: {after} vs {before}"
    );
}

#[test]
fn message_accounting_covers_all_activity() {
    let world = tiny_world();
    let mut sys = world.new_system(SpriteConfig::default());
    assert_eq!(sys.net().stats().total_messages(), 0);
    world.issue(
        &mut sys,
        &world.train[..10.min(world.train.len())],
        Schedule::WithoutRepeats,
    );
    let after_queries = sys.net().stats().total_messages();
    assert!(after_queries > 0, "query traffic must be charged");
    sys.publish_all();
    let after_publish = sys.net().stats().total_messages();
    assert!(
        after_publish > after_queries,
        "publish traffic must be charged"
    );
    sys.learning_iteration();
    assert!(
        sys.net().stats().total_messages() > after_publish,
        "learning traffic must be charged"
    );
}

#[test]
fn owner_term_budgets_always_respected() {
    let world = tiny_world();
    for max_terms in [5usize, 10, 20] {
        let cfg = SpriteConfig {
            max_terms,
            ..SpriteConfig::default()
        };
        let sys = world.standard_system(cfg, Schedule::WithoutRepeats);
        for i in 0..sys.corpus().len() {
            let n = sys.published_terms(DocId(i as u32)).len();
            assert!(n <= max_terms, "doc {i} published {n} > {max_terms}");
        }
    }
}

#[test]
fn index_remove_retires_a_document_end_to_end() {
    // Publish → remove → query, through the public API: retiring a
    // document must bill IndexRemove traffic (visible to both the stats
    // ledger and the trace recorder), strip the document's entries from
    // every replica, and make it unreachable by the queries that found it.
    use sprite::chord::MsgKind;
    let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(47));
    let cfg = SpriteConfig {
        replication: 2,
        ..SpriteConfig::default()
    };
    let mut sys = SpriteSystem::build(sc.corpus().clone(), 32, cfg, 47);
    sys.publish_all();
    sys.replicate_indexes();

    // Find a document that a query over its own published terms actually
    // returns, so "unreachable afterwards" is a meaningful assertion.
    let (doc, probe) = (0..sys.corpus().len())
        .map(|i| DocId(i as u32))
        .find_map(|d| {
            let terms = sys.published_terms(d).to_vec();
            if terms.is_empty() {
                return None;
            }
            let q = Query::new(terms);
            sys.issue_query(&q, 30)
                .iter()
                .any(|h| h.doc == d)
                .then_some((d, q))
        })
        .expect("some published document answers its own terms");

    let removes_before = sys.net().stats().count(MsgKind::IndexRemove);
    sys.enable_tracing();
    let retracted = sys.unpublish_document(doc);
    let rec = sys.take_tracer().expect("tracing was enabled");
    assert!(retracted > 0, "the document had published terms to retract");
    assert!(
        rec.kind_count(MsgKind::IndexRemove) > 0,
        "the recorder must see IndexRemove events on the removal path"
    );
    assert!(
        rec.kind_bytes(MsgKind::IndexRemove) > 0,
        "removal records carry wire bytes"
    );
    assert!(
        sys.net().stats().count(MsgKind::IndexRemove) > removes_before,
        "the stats ledger must bill the removal traffic"
    );
    assert!(sys.published_terms(doc).is_empty());

    // Replicas included: no indexing peer may still hold an entry for the
    // retired document.
    for peer in sys.indexing_peers() {
        let st = sys.indexing_state(peer).expect("listed peer is alive");
        for (t, list) in st.terms() {
            assert!(
                list.iter().all(|e| e.doc != doc),
                "peer {peer:?} still lists the retired doc under term {t:?}"
            );
        }
    }
    assert!(
        !sys.issue_query(&probe, 30).iter().any(|h| h.doc == doc),
        "a retired document must be unreachable"
    );
}

#[test]
fn text_pipeline_integrates_with_ir() {
    // Real text through the analyzer into the centralized engine.
    let analyzer = sprite::text::Analyzer::standard();
    let corpus = sprite::ir::Corpus::from_texts(
        &analyzer,
        [
            "Peer-to-peer networks distribute documents across many nodes.",
            "Text retrieval systems rank documents by term similarity.",
            "Chord is a distributed hash table with logarithmic lookups.",
        ],
    );
    let engine = sprite::ir::CentralizedEngine::build(&corpus);
    let q = Query::new(
        ["retrieval", "documents"]
            .iter()
            .filter_map(|w| corpus.vocab().get(&sprite::text::stem(w)))
            .collect(),
    );
    let hits = engine.search(&q, 3);
    assert!(!hits.is_empty());
    assert_eq!(hits[0].doc, DocId(1), "the retrieval doc should rank first");
}
