//! Cross-crate lifecycle tests: live corpus dynamics through the facade —
//! publish → update → query, publish → delete → churn → maintenance — with
//! the lifecycle invariants checked end to end: an updated document is
//! reachable by its new terms and not by its removed ones, and a deleted
//! document never resurrects, not even through replica repair.

use sprite::core::{SpriteConfig, SpriteSystem};
use sprite::corpus::{CorpusConfig, DocChurnConfig, DocChurnEngine, SyntheticCorpus};
use sprite::ir::{DocId, Query, TermId};

fn replicated_system(seed: u64, replication: usize) -> (SyntheticCorpus, SpriteSystem) {
    let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(seed));
    let cfg = SpriteConfig {
        replication,
        ..SpriteConfig::default()
    };
    let mut sys = SpriteSystem::build(sc.corpus().clone(), 32, cfg, seed);
    sys.publish_all();
    if replication > 1 {
        sys.replicate_indexes();
    }
    (sc, sys)
}

/// A document whose published terms, queried back, actually return it —
/// so reachability assertions after a mutation are meaningful.
fn self_answering_doc(sys: &mut SpriteSystem, k: usize) -> (DocId, Query) {
    (0..sys.corpus().len())
        .map(|i| DocId(i as u32))
        .find_map(|d| {
            let terms = sys.published_terms(d).to_vec();
            if terms.is_empty() {
                return None;
            }
            let q = Query::new(terms);
            sys.issue_query(&q, k)
                .iter()
                .any(|h| h.doc == d)
                .then_some((d, q))
        })
        .expect("some published document answers its own terms")
}

#[test]
fn updated_document_is_reachable_by_new_terms_and_not_by_removed_ones() {
    let (sc, mut sys) = replicated_system(61, 2);
    let (doc, _) = self_answering_doc(&mut sys, 50);
    let old_published = sys.published_terms(doc).to_vec();

    // Rewrite the document around a different topic's core vocabulary,
    // keeping none of its currently published terms: every index term
    // must flip.
    let fresh: Vec<(TermId, u32)> = (0..sc.config().n_topics)
        .flat_map(|t| sc.topic_core(t).to_vec())
        .filter(|t| !old_published.contains(t))
        .take(12)
        .enumerate()
        .map(|(i, t)| (t, 12 - i as u32))
        .collect();
    assert!(
        fresh.len() >= 8,
        "enough foreign vocabulary to rewrite with"
    );
    let report = sys.update_document(doc, fresh.clone());
    assert!(report.terms_added > 0, "the rewrite must publish new terms");
    assert!(
        report.terms_removed > 0,
        "the rewrite must retract old terms"
    );

    // Reachable by what it now publishes…
    let new_published = sys.published_terms(doc).to_vec();
    assert!(!new_published.is_empty());
    let hits = sys.issue_query(&Query::new(new_published.clone()), 50);
    assert!(
        hits.iter().any(|h| h.doc == doc),
        "the updated document must answer its new index terms"
    );

    // …and unreachable by what it no longer publishes.
    let removed: Vec<TermId> = old_published
        .iter()
        .copied()
        .filter(|t| !new_published.contains(t))
        .collect();
    assert!(!removed.is_empty(), "some old terms were retracted");
    for &t in &removed {
        assert!(
            !sys.issue_query(&Query::new(vec![t]), 50)
                .iter()
                .any(|h| h.doc == doc),
            "a retracted term still reaches the updated document"
        );
    }
}

#[test]
fn deleted_document_never_resurrects_through_replica_repair() {
    let (_, mut sys) = replicated_system(63, 3);
    let (doc, probe) = self_answering_doc(&mut sys, 30);

    let retracted = sys.delete_document(doc);
    assert!(retracted > 0, "the document had published terms to retract");
    assert!(
        sys.pending_tombstones() > 0,
        "lazy deletion leaves tombstones for maintenance to reclaim"
    );
    // Invisible immediately, tombstones still pending.
    assert!(
        !sys.issue_query(&probe, 30).iter().any(|h| h.doc == doc),
        "a deleted document surfaced before reclamation"
    );

    // Churn the ring, then let maintenance repair orphans and refresh
    // replicas: the deletion must survive both.
    sys.fail_random_peers(4, 64);
    let mut reclaimed = 0;
    for _ in 0..2 {
        reclaimed += sys.maintenance_round().tombstones_reclaimed;
    }
    assert!(reclaimed > 0, "maintenance must reclaim the tombstone debt");
    assert_eq!(
        sys.pending_tombstones(),
        0,
        "no tombstone survives two maintenance rounds at live peers"
    );
    assert!(
        !sys.issue_query(&probe, 30).iter().any(|h| h.doc == doc),
        "replica repair resurrected a deleted document"
    );

    // Not even a full republish or a learning pass may bring it back.
    sys.publish_all();
    sys.learning_iteration();
    sys.maintenance_round();
    assert!(sys.published_terms(doc).is_empty());
    assert!(
        !sys.issue_query(&probe, 30).iter().any(|h| h.doc == doc),
        "a later publish/learn pass resurrected a deleted document"
    );
}

#[test]
fn mixed_churn_stream_upholds_the_lifecycle_invariants() {
    let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(65));
    let cfg = SpriteConfig {
        replication: 2,
        ..SpriteConfig::default()
    };
    let mut sys = SpriteSystem::build(sc.corpus().clone(), 32, cfg, 65);
    sys.publish_all();
    sys.replicate_indexes();
    let mut engine = DocChurnEngine::new(
        DocChurnConfig {
            insert_rate: 2.0,
            update_rate: 3.0,
            delete_rate: 2.0,
            min_docs: 8,
        },
        66,
        &sc,
    );
    let queries: Vec<Query> = sc
        .seed_queries()
        .iter()
        .take(10)
        .map(|s| s.query.clone())
        .collect();
    let mut deleted_total = 0;
    for tick in 0..6 {
        let live = sys.live_docs();
        let events = engine.plan(&live, sys.corpus().len());
        let report = sys.apply_doc_events(&events);
        deleted_total += report.deleted;
        if tick % 2 == 1 {
            sys.maintenance_round();
        }
        // Mid-stream, tombstones pending or not: no query surfaces a
        // deleted document.
        for q in &queries {
            for hit in sys.issue_query(q, 20) {
                assert!(
                    !sys.is_deleted(hit.doc),
                    "tick {tick}: a live query returned deleted {:?}",
                    hit.doc
                );
            }
        }
    }
    assert!(deleted_total > 0, "the stream must exercise deletion");
    sys.maintenance_round();
    assert_eq!(sys.pending_tombstones(), 0);

    // Freshly inserted documents are first-class citizens: reachable by
    // their own published terms like any build-time document.
    let inserted: Vec<DocId> = sys
        .live_docs()
        .into_iter()
        .filter(|d| d.index() >= sc.corpus().len())
        .collect();
    assert!(!inserted.is_empty(), "the stream must insert documents");
    let reachable = inserted
        .iter()
        .filter(|&&d| {
            let terms = sys.published_terms(d).to_vec();
            !terms.is_empty()
                && sys
                    .issue_query(&Query::new(terms), 50)
                    .iter()
                    .any(|h| h.doc == d)
        })
        .count();
    assert!(
        reachable * 2 > inserted.len(),
        "most inserted documents must answer their own terms: {reachable}/{}",
        inserted.len()
    );
}
