//! A P2P file-sharing scenario — the workload that motivates the paper's
//! introduction: thousands of peers share text documents; indexing *every*
//! term is unaffordable, so SPRITE publishes a handful of learned terms.
//!
//! This example compares the index-construction bill of three policies on
//! the same corpus and then shows that SPRITE still answers interest-driven
//! queries well.
//!
//! Run: `cargo run --example file_sharing --release`

use sprite::chord::MsgKind;
use sprite::core::{SpriteConfig, SpriteSystem};
use sprite::corpus::{CorpusConfig, SyntheticCorpus};
use sprite::ir::Query;

fn publish_bill(system: &mut SpriteSystem) -> (u64, usize) {
    system.net_mut().reset_stats();
    system.publish_all();
    let s = system.net().stats();
    (
        s.count(MsgKind::IndexPublish) + s.count(MsgKind::LookupHop),
        system.total_index_entries(),
    )
}

fn main() {
    let world = SyntheticCorpus::generate(&CorpusConfig::small(3));
    let corpus = world.corpus().clone();
    let n_docs = corpus.len() as f64;
    println!("sharing {} documents across 64 peers\n", corpus.len());

    // Policy 1: index every term of every document (the strawman of §1).
    let mut full = SpriteSystem::build(corpus.clone(), 64, SpriteConfig::esearch(usize::MAX), 3);
    let (full_msgs, full_entries) = publish_bill(&mut full);

    // Policy 2: eSearch — a static top-20 index.
    let mut esearch = SpriteSystem::build(corpus.clone(), 64, SpriteConfig::esearch(20), 3);
    let (es_msgs, es_entries) = publish_bill(&mut esearch);

    // Policy 3: SPRITE — 5 initial terms, refined by learning.
    let mut sprite = SpriteSystem::build(corpus, 64, SpriteConfig::default(), 3);
    let (sp_msgs, sp_entries) = publish_bill(&mut sprite);

    println!("index construction bill (messages incl. routing, entries):");
    for (name, msgs, entries) in [
        ("full-term", full_msgs, full_entries),
        ("eSearch(20)", es_msgs, es_entries),
        ("SPRITE(5 initial)", sp_msgs, sp_entries),
    ] {
        println!(
            "  {name:<18} {msgs:>8} msgs ({:>6.1}/doc)  {entries:>8} entries",
            msgs as f64 / n_docs
        );
    }

    // Users with shared interests query; SPRITE learns and grows to 20
    // terms where it matters.
    let seeds = world.seed_queries();
    for round in 0..3 {
        for seed in &seeds {
            sprite.issue_query(&seed.query, 20);
        }
        let report = sprite.learning_iteration();
        println!(
            "\nlearning round {}: +{} terms, -{} terms, {} queries consumed",
            round + 1,
            report.terms_added,
            report.terms_removed,
            report.queries_returned
        );
    }

    // Compare answer quality on a held-out interest (same topics).
    let probe = Query::new(world.topic_core(1)[..3].to_vec());
    let sp_hits = sprite.issue_query(&probe, 10);
    let es_hits = esearch.issue_query(&probe, 10);
    println!(
        "\nprobe query: SPRITE found {} docs, eSearch found {} docs (top-10)",
        sp_hits.len(),
        es_hits.len()
    );
    println!(
        "SPRITE index is now {} entries — {:.1}% of the full-term index",
        sprite.total_index_entries(),
        100.0 * sprite.total_index_entries() as f64 / full_entries as f64
    );
}
