//! Interest drift — the Figure 4(c) scenario as a story.
//!
//! A community first queries topic A; SPRITE tunes document indexes toward
//! A's vocabulary. Then everyone moves on to topic B: the index briefly
//! underperforms, learns the new vocabulary within an iteration or two, and
//! replaces obsolete terms (the cap forces real replacement, not growth).
//!
//! Run: `cargo run --example adaptive_interests --release`

use sprite::core::{SpriteConfig, SpriteSystem};
use sprite::corpus::{CorpusConfig, SyntheticCorpus};
use sprite::ir::{DocId, Query};
use std::collections::HashSet;

fn precision_for_topic(
    sys: &mut SpriteSystem,
    world: &SyntheticCorpus,
    topic: usize,
    k: usize,
) -> f64 {
    let relevant: HashSet<DocId> = world.topic_docs(topic);
    let query = Query::new(world.topic_core(topic)[..3].to_vec());
    let hits = sys.issue_query(&query, k);
    hits.iter().filter(|h| relevant.contains(&h.doc)).count() as f64 / k as f64
}

fn main() {
    let world = SyntheticCorpus::generate(&CorpusConfig::tiny(9));
    let cfg = SpriteConfig {
        max_terms: 12, // a tight cap so drift forces term replacement
        ..SpriteConfig::default()
    };
    let mut sys = SpriteSystem::build(world.corpus().clone(), 24, cfg, 9);
    sys.publish_all();

    let (topic_a, topic_b) = (0usize, 1usize);
    println!("iter | active | P@10 active topic | terms added/removed");
    for it in 1..=8 {
        let active = if it <= 4 { topic_a } else { topic_b };
        // This iteration's query traffic: the active topic's vocabulary.
        let q = Query::new(world.topic_core(active)[..3].to_vec());
        for _ in 0..5 {
            sys.issue_query(&q, 10);
        }
        let report = sys.learning_iteration();
        let p = precision_for_topic(&mut sys, &world, active, 10);
        println!(
            "{it:>4} | {}      | {p:>17.2} | +{} / -{}{}",
            if active == topic_a { "A" } else { "B" },
            report.terms_added,
            report.terms_removed,
            if it == 5 { "   <- interest shift" } else { "" }
        );
    }
    println!(
        "\nafter the shift, obsolete topic-A terms are replaced by topic-B \
         terms under the same 12-term budget"
    );
}
