//! §7 query expansion by local context analysis.
//!
//! A one-term query is usually too sparse for a partial index. The
//! expansion pass downloads the top-ranked documents from their owner
//! peers, finds terms co-occurring across them, enriches the query, and
//! re-issues it — no global statistics required.
//!
//! Run: `cargo run --example query_expansion --release`

use sprite::core::{ExpansionConfig, SpriteConfig, SpriteSystem};
use sprite::corpus::{CorpusConfig, SyntheticCorpus};
use sprite::ir::Query;
use std::collections::HashSet;

fn main() {
    let world = SyntheticCorpus::generate(&CorpusConfig::tiny(21));
    let mut sys = SpriteSystem::build(world.corpus().clone(), 24, SpriteConfig::default(), 21);
    sys.publish_all();

    // A single characteristic term of topic 0 that is actually indexed.
    let topic = 0usize;
    let term = world
        .topic_core(topic)
        .iter()
        .copied()
        .find(|&t| sys.indexed_df(t) > 0)
        .expect("an indexed core term");
    let query = Query::new(vec![term]);
    let relevant = world.topic_docs(topic);

    let topical = |hits: &[sprite::ir::Hit], relevant: &HashSet<sprite::ir::DocId>| {
        hits.iter().filter(|h| relevant.contains(&h.doc)).count()
    };

    let k = 25;
    let plain = sys.issue_query(&query, k);
    println!(
        "plain one-term query:   {} hits, {} from the right topic",
        plain.len(),
        topical(&plain, &relevant)
    );

    let cfg = ExpansionConfig {
        candidate_docs: 8,
        expand_terms: 4,
        ..ExpansionConfig::default()
    };
    let expanded = sys.issue_query_expanded(&query, k, &cfg);
    println!(
        "with local expansion:   {} hits, {} from the right topic",
        expanded.len(),
        topical(&expanded, &relevant)
    );
    println!(
        "\nexpansion analyzed {} documents and appended up to {} co-occurring terms",
        cfg.candidate_docs, cfg.expand_terms
    );
}
