//! Auditing a live deployment: run the invariant checkers on a healthy
//! system, plant a corruption and watch it get caught, then replay an
//! experiment twice to prove determinism.
//!
//! ```sh
//! cargo run --example audit
//! ```

use sprite::audit::{audit_determinism, check_system};
use sprite::core::{SpriteConfig, SpriteSystem};
use sprite::corpus::{CorpusConfig, SyntheticCorpus};
use sprite::ir::{DocId, TermId};

fn main() {
    // A tiny world: 200 documents on 16 peers, fully published.
    let world = SyntheticCorpus::generate(&CorpusConfig::tiny(7));
    let mut sys = SpriteSystem::build(world.corpus().clone(), 16, SpriteConfig::default(), 7);
    sys.publish_all();
    sys.learning_iteration();

    let violations = check_system(&sys);
    println!("healthy deployment: {} violation(s)", violations.len());
    assert!(violations.is_empty());

    // Corrupt it: publish 40 terms behind the owner's back (cap is 20).
    let doc = DocId(0);
    sys.inject_published(doc, (0..40).map(TermId).collect());
    let violations = check_system(&sys);
    println!(
        "after corruption:   {} violation(s), e.g.:",
        violations.len()
    );
    for v in violations.iter().take(3) {
        println!("  - {v}");
    }
    assert!(!violations.is_empty());

    // Determinism: the same seed replays the same experiment, stage by stage.
    let report = audit_determinism(42);
    println!(
        "determinism audit:  {} stages, passed = {}",
        report.stages, report.passed
    );
    assert!(report.passed, "diverged at {:?}", report.first_divergence);
}
