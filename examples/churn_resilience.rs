//! Peer churn and the §7 replication extension.
//!
//! Kills a growing fraction of indexing peers and measures how many of a
//! reference query's answers survive, with and without successor
//! replication of the index.
//!
//! Run: `cargo run --example churn_resilience --release`

use sprite::core::{SpriteConfig, SpriteSystem};
use sprite::corpus::{CorpusConfig, SyntheticCorpus};
use sprite::ir::Query;

fn build(replication: usize, world: &SyntheticCorpus) -> SpriteSystem {
    let cfg = SpriteConfig {
        replication,
        ..SpriteConfig::default()
    };
    let mut sys = SpriteSystem::build(world.corpus().clone(), 48, cfg, 5);
    sys.publish_all();
    if replication > 1 {
        // The periodic replication pass of §7.
        sys.replicate_indexes();
    }
    sys
}

fn main() {
    let world = SyntheticCorpus::generate(&CorpusConfig::tiny(5));
    let probe = Query::new(world.topic_core(0)[..3].to_vec());

    println!("failures | hits r=1 | hits r=3   (top-30 answers, 48 peers)");
    for kill in [0usize, 4, 8, 16] {
        let mut plain = build(1, &world);
        let mut replicated = build(3, &world);
        plain.fail_random_peers(kill, 1000 + kill as u64);
        replicated.fail_random_peers(kill, 1000 + kill as u64);
        let hp = plain.issue_query(&probe, 30).len();
        let hr = replicated.issue_query(&probe, 30).len();
        println!("{kill:>8} | {hp:>8} | {hr:>8}");
    }

    println!(
        "\nwith replication the ring re-routes each term to a successor \
         holding a replica, so answers survive; without it, entries on \
         failed peers are simply gone until owners republish"
    );
}
