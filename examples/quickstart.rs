//! Quickstart: build a small SPRITE deployment, share documents, search,
//! learn from the queries, and watch retrieval improve.
//!
//! Run: `cargo run --example quickstart --release`

use sprite::core::{SpriteConfig, SpriteSystem};
use sprite::corpus::{CorpusConfig, SyntheticCorpus};
use sprite::ir::Query;

fn main() {
    // 1. A corpus of 200 synthetic documents over 8 latent topics.
    let world = SyntheticCorpus::generate(&CorpusConfig::tiny(7));
    println!(
        "corpus: {} documents, {} distinct terms",
        world.corpus().len(),
        world.corpus().vocab().len()
    );

    // 2. A SPRITE deployment: 32 peers in a Chord ring; each document
    //    initially publishes its 5 most frequent terms.
    let mut system = SpriteSystem::build(world.corpus().clone(), 32, SpriteConfig::default(), 7);
    system.publish_all();
    println!(
        "published {} index entries over {} peers ({} messages so far)",
        system.total_index_entries(),
        system.peers().len(),
        system.net().stats().total_messages()
    );

    // 3. Users search. Take a topic's characteristic terms as the query —
    //    some of them are *not* among any document's most frequent terms,
    //    so the initial frequency-based index misses documents.
    let topic_terms = world.topic_core(0);
    let query = Query::new(topic_terms[..4].to_vec());
    let before = system.issue_query(&query, 20);
    println!("\ntop-20 before learning: {} hits", before.len());

    // 4. The same interests keep arriving (query locality); each issue is
    //    cached at the responsible indexing peers.
    for _ in 0..10 {
        system.issue_query(&query, 20);
    }

    // 5. Owners run the periodic learning pass (Algorithm 1): terms that
    //    users actually query replace merely-frequent ones.
    let report = system.learning_iteration();
    println!(
        "learning: {} documents updated, {} terms added, {} queries returned",
        report.docs_changed, report.terms_added, report.queries_returned
    );

    let after = system.issue_query(&query, 20);
    let before_score: f64 = before.iter().map(|h| h.score).sum();
    let after_score: f64 = after.iter().map(|h| h.score).sum();
    println!(
        "top-20 after learning: {} hits (aggregate score {:.2} -> {:.2})",
        after.len(),
        before_score,
        after_score
    );

    // 6. Every inter-peer message was accounted.
    let stats = system.net().stats();
    println!(
        "\nnetwork totals: {} messages, {} lookups, {:.1} mean hops",
        stats.total_messages(),
        stats.lookups(),
        stats.mean_hops()
    );
}
