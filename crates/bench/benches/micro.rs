//! Harness-free microbenchmarks for the hot paths of every subsystem.
//!
//! This used to be a Criterion suite; the workspace now builds with an
//! empty registry, so timing is done directly with `std::time::Instant`
//! (acceptable here — benches measure wall time by definition and are not
//! part of the deterministic simulation). Run with `cargo bench`.

use std::hint::black_box;
use std::time::Instant;

use sprite_chord::{ChordConfig, ChordNet};
use sprite_core::{algorithm1, naive_select, SpriteConfig, SpriteSystem};
use sprite_corpus::{CorpusConfig, SyntheticCorpus};
use sprite_ir::{CentralizedEngine, Query, TermId};
use sprite_util::{md5, RingId};

/// Time `f` over enough iterations to fill ~200ms, reporting ns/iter.
fn bench<F: FnMut()>(name: &str, mut f: F) {
    // Warm-up and calibration: find an iteration count that takes ≥50ms.
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = t.elapsed();
        if elapsed.as_millis() >= 50 || iters >= 1 << 24 {
            break;
        }
        iters = (iters * 4).min(1 << 24);
    }
    // Measured pass.
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = t.elapsed();
    let per_iter = elapsed.as_nanos() as f64 / iters as f64;
    println!("{name:<40} {per_iter:>12.1} ns/iter   ({iters} iters)");
}

fn bench_md5() {
    for size in [64usize, 1024, 65536] {
        let data = vec![0xabu8; size];
        bench(&format!("md5/digest/{size}B"), || {
            black_box(md5(black_box(&data)));
        });
    }
}

fn bench_porter() {
    let words = [
        "relational",
        "conditional",
        "hopefulness",
        "generalizations",
        "oscillators",
        "troubled",
        "happiness",
        "retrieval",
        "indexing",
        "queries",
        "distributed",
        "networks",
        "replacement",
        "effectiveness",
        "characterization",
    ];
    bench("porter/15-words", || {
        for w in words {
            black_box(sprite_text::stem(black_box(w)));
        }
    });
}

fn bench_chord_lookup() {
    for n in [64usize, 1024] {
        let mut net = ChordNet::with_random_nodes(ChordConfig::default(), n, 5);
        let ids = net.node_ids();
        let keys: Vec<RingId> = (0..256)
            .map(|i| RingId::hash_bytes(format!("bench-key-{i}").as_bytes()))
            .collect();
        let mut i = 0usize;
        bench(&format!("chord/lookup/{n}-peers"), || {
            let from = ids[i % ids.len()];
            let key = keys[i % keys.len()];
            i += 1;
            black_box(net.lookup(from, key).expect("converged"));
        });
    }
}

fn bench_centralized_search() {
    let sc = SyntheticCorpus::generate(&CorpusConfig::small(5));
    let engine = CentralizedEngine::build(sc.corpus());
    let seeds = sc.seed_queries();
    let mut i = 0usize;
    bench("centralized/search-top20", || {
        let q = &seeds[i % seeds.len()].query;
        i += 1;
        black_box(engine.search(black_box(q), 20));
    });
}

fn bench_sprite_query() {
    let sc = SyntheticCorpus::generate(&CorpusConfig::small(5));
    let mut sys = SpriteSystem::build(sc.corpus().clone(), 64, SpriteConfig::default(), 5);
    sys.publish_all();
    let seeds = sc.seed_queries();
    let mut i = 0usize;
    bench("sprite/distributed-query-top20", || {
        let q = &seeds[i % seeds.len()].query;
        i += 1;
        black_box(sys.issue_query(black_box(q), 20));
    });
}

fn bench_learning() {
    // A 60-term document and a 500-query history split into 10 batches:
    // Algorithm 1 (incremental) vs the naive full-history recompute.
    let doc = sprite_ir::Document::new(
        sprite_ir::DocId(0),
        (0u32..60).map(|t| (TermId(t), 60 - t)).collect(),
    );
    let history: Vec<Query> = (0..500)
        .map(|i| {
            Query::new(vec![
                TermId(i % 60),
                TermId((i * 7 + 3) % 60),
                TermId((i * 13 + 1) % 120), // half the terms miss the doc
            ])
        })
        .collect();

    // Steady state: stats warm, one incremental batch arrives.
    let mut stats = std::collections::HashMap::new();
    let _ = algorithm1(&doc, &mut stats, &history[..450], 20);
    bench("learning/algorithm1/one-batch-of-50", || {
        let mut s = stats.clone();
        black_box(algorithm1(&doc, &mut s, black_box(&history[450..]), 20));
    });
    bench("learning/naive/full-500-history", || {
        black_box(naive_select(&doc, black_box(&history), 20));
    });
}

fn main() {
    bench_md5();
    bench_porter();
    bench_chord_lookup();
    bench_centralized_search();
    bench_sprite_query();
    bench_learning();
}
