//! Criterion microbenchmarks for the hot paths of every subsystem.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use sprite_chord::{ChordConfig, ChordNet};
use sprite_core::{algorithm1, naive_select, SpriteConfig, SpriteSystem};
use sprite_corpus::{CorpusConfig, SyntheticCorpus};
use sprite_ir::{CentralizedEngine, Query, TermId};
use sprite_util::{md5, RingId};

fn bench_md5(c: &mut Criterion) {
    let mut g = c.benchmark_group("md5");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("digest/{size}B"), |b| {
            b.iter(|| md5(black_box(&data)));
        });
    }
    g.finish();
}

fn bench_porter(c: &mut Criterion) {
    let words = [
        "relational", "conditional", "hopefulness", "generalizations", "oscillators",
        "troubled", "happiness", "retrieval", "indexing", "queries", "distributed",
        "networks", "replacement", "effectiveness", "characterization",
    ];
    c.bench_function("porter/15-words", |b| {
        b.iter(|| {
            for w in words {
                black_box(sprite_text::stem(black_box(w)));
            }
        });
    });
}

fn bench_chord_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("chord");
    for n in [64usize, 1024] {
        let mut net = ChordNet::with_random_nodes(ChordConfig::default(), n, 5);
        let ids = net.node_ids();
        let keys: Vec<RingId> = (0..256)
            .map(|i| RingId::hash_bytes(format!("bench-key-{i}").as_bytes()))
            .collect();
        let mut i = 0usize;
        g.bench_function(format!("lookup/{n}-peers"), |b| {
            b.iter(|| {
                let from = ids[i % ids.len()];
                let key = keys[i % keys.len()];
                i += 1;
                black_box(net.lookup(from, key).expect("converged"));
            });
        });
    }
    g.finish();
}

fn bench_centralized_search(c: &mut Criterion) {
    let sc = SyntheticCorpus::generate(&CorpusConfig::small(5));
    let engine = CentralizedEngine::build(sc.corpus());
    let seeds = sc.seed_queries();
    let mut i = 0usize;
    c.bench_function("centralized/search-top20", |b| {
        b.iter(|| {
            let q = &seeds[i % seeds.len()].query;
            i += 1;
            black_box(engine.search(black_box(q), 20));
        });
    });
}

fn bench_sprite_query(c: &mut Criterion) {
    let sc = SyntheticCorpus::generate(&CorpusConfig::small(5));
    let mut sys = SpriteSystem::build(sc.corpus().clone(), 64, SpriteConfig::default(), 5);
    sys.publish_all();
    let seeds = sc.seed_queries();
    let mut i = 0usize;
    c.bench_function("sprite/distributed-query-top20", |b| {
        b.iter(|| {
            let q = &seeds[i % seeds.len()].query;
            i += 1;
            black_box(sys.issue_query(black_box(q), 20));
        });
    });
}

fn bench_learning(c: &mut Criterion) {
    // A 60-term document and a 500-query history split into 10 batches:
    // Algorithm 1 (incremental) vs the naive full-history recompute.
    let doc = sprite_ir::Document::new(
        sprite_ir::DocId(0),
        (0u32..60).map(|t| (TermId(t), 60 - t)).collect(),
    );
    let history: Vec<Query> = (0..500)
        .map(|i| {
            Query::new(vec![
                TermId(i % 60),
                TermId((i * 7 + 3) % 60),
                TermId((i * 13 + 1) % 120), // half the terms miss the doc
            ])
        })
        .collect();

    let mut g = c.benchmark_group("learning");
    g.bench_function("algorithm1/one-batch-of-50", |b| {
        // Steady state: stats warm, one incremental batch arrives.
        let mut stats = std::collections::HashMap::new();
        let _ = algorithm1(&doc, &mut stats, &history[..450], 20);
        b.iter(|| {
            let mut s = stats.clone();
            black_box(algorithm1(&doc, &mut s, black_box(&history[450..]), 20));
        });
    });
    g.bench_function("naive/full-500-history", |b| {
        b.iter(|| black_box(naive_select(&doc, black_box(&history), 20)));
    });
    g.finish();
}

/// Short measurement windows: these paths are microsecond-scale and the
/// suite is run in CI alongside the (much longer) experiment binaries.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_md5,
        bench_porter,
        bench_chord_lookup,
        bench_centralized_search,
        bench_sprite_query,
        bench_learning
}
criterion_main!(benches);
