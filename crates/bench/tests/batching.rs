//! End-to-end batching equivalence at the CI scale.
//!
//! The batching contract, checked on the full §6.2 pipeline (train →
//! publish → learn → evaluate) at `SPRITE_SCALE=small`: coalescing
//! publication transfers per destination peer must be invisible to
//! everything except the message count — bit-identical precision/recall,
//! bit-identical index contents, equal payload bytes for every message
//! kind, and strictly fewer publish-phase messages.

use sprite_bench::world_config_from_env;
use sprite_chord::MsgKind;
use sprite_core::{IndexEntry, SpriteConfig, SpriteSystem, World};
use sprite_corpus::Schedule;
use sprite_ir::TermId;

/// Every inverted list in the deployment, in `(peer, term)` order.
fn index_snapshot(sys: &SpriteSystem) -> Vec<(u128, u32, Vec<IndexEntry>)> {
    let mut out = Vec::new();
    for peer in sys.indexing_peers() {
        let Some(st) = sys.indexing_state(peer) else {
            continue;
        };
        let mut terms: Vec<TermId> = st.terms().map(|(t, _)| t).collect();
        terms.sort_unstable();
        for t in terms {
            out.push((peer.0, t.0, st.entries(t)));
        }
    }
    out
}

#[test]
fn batched_publication_is_end_to_end_equivalent_at_small_scale() {
    std::env::set_var("SPRITE_SCALE", "small");
    let world = World::build(world_config_from_env(42));
    let run = |batched: bool| {
        let cfg = SpriteConfig {
            batched_publish: batched,
            ..SpriteConfig::default()
        };
        let mut sys = world.standard_system(cfg, Schedule::WithoutRepeats);
        // Snapshot the build-phase bill before evaluation adds query traffic.
        let publish_msgs = sys.net().stats().count(MsgKind::IndexPublish);
        let kind_bytes: Vec<u64> = MsgKind::all()
            .iter()
            .map(|&k| sys.net().stats().bytes(k))
            .collect();
        let fetch_before = sys.net().stats().bytes(MsgKind::QueryFetch);
        let ratios = world.evaluate(&mut sys, &world.test, 20);
        let fetch_bytes = sys.net().stats().bytes(MsgKind::QueryFetch) - fetch_before;
        // Bandwidth summary for EXPERIMENTS.md (run with --nocapture).
        let publish_slot = MsgKind::all()
            .iter()
            .position(|&k| k == MsgKind::IndexPublish)
            .expect("kind listed");
        eprintln!(
            "# batched={batched}: publish msgs {publish_msgs}, publish bytes {}, \
             query-fetch bytes {fetch_bytes} over {} queries ({} docs)",
            kind_bytes[publish_slot],
            world.test.len(),
            world.config.corpus.n_docs,
        );
        (index_snapshot(&sys), publish_msgs, kind_bytes, ratios)
    };
    let (index_on, msgs_on, bytes_on, ratios_on) = run(true);
    let (index_off, msgs_off, bytes_off, ratios_off) = run(false);

    assert_eq!(
        ratios_on.precision_ratio.to_bits(),
        ratios_off.precision_ratio.to_bits(),
        "batching changed precision"
    );
    assert_eq!(
        ratios_on.recall_ratio.to_bits(),
        ratios_off.recall_ratio.to_bits(),
        "batching changed recall"
    );
    assert_eq!(index_on, index_off, "batching changed index contents");
    assert_eq!(
        bytes_on, bytes_off,
        "batching changed per-kind payload bytes"
    );
    assert!(
        msgs_on < msgs_off,
        "batching must strictly reduce publish messages, got {msgs_on} vs {msgs_off}"
    );
}
