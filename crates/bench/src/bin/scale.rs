//! `scale` — the huge-tier smoke runner.
//!
//! Builds the `SPRITE_SCALE=huge` world (100,000 peers; the scale
//! defaults to `huge` when the variable is unset), trains the standard
//! deployment on it, accounts the memory footprint — logical bytes per
//! peer over the arena node store and the delta-gap-compressed postings
//! — and answers a reduced smoke query set, reporting queries/sec. The
//! process exits nonzero when the smoke queries go unanswered, so the
//! nightly CI job fails loudly instead of shipping a scale tier that
//! cannot serve.
//!
//! Run: `cargo run -p sprite-bench --bin scale --release [n_queries]`
//!
//! The query count is reduced (default 50) because the point is
//! fit-and-serve at population scale within a CI wall-clock budget, not
//! a statistically tight ratio measurement — the committed `metrics`
//! object already gates the ratios exactly at small scale.

use std::time::Instant;

use sprite_bench::metrics::{memory_of, METRICS_K};
use sprite_core::SpriteConfig;
use sprite_corpus::Schedule;

fn main() {
    // This runner *is* the population-scale smoke test; default the
    // scale rather than inheriting `full`.
    if std::env::var("SPRITE_SCALE").is_err() {
        std::env::set_var("SPRITE_SCALE", "huge");
    }
    let scale = std::env::var("SPRITE_SCALE").unwrap_or_default();
    let n_queries: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);

    let total = Instant::now();
    let t0 = Instant::now();
    let world = sprite_bench::build_world(42);
    let world_build_ms = (t0.elapsed().as_secs_f64() * 10_000.0).round() / 10.0;

    let t0 = Instant::now();
    let mut sys = world.standard_system(SpriteConfig::default(), Schedule::WithoutRepeats);
    let system_build_ms = (t0.elapsed().as_secs_f64() * 10_000.0).round() / 10.0;
    eprintln!("# scale: standard system built in {system_build_ms} ms");

    let memory = memory_of(&sys, system_build_ms);
    eprintln!(
        "# scale: {} peers ({} backend, packed: {}), {} B/peer — ring {} B, \
         index {} B (plain {} B, {:.2}x)",
        memory.peers,
        memory.backend,
        memory.packed_postings,
        memory.bytes_per_peer,
        memory.ring_bytes,
        memory.index_bytes,
        memory.plain_index_bytes,
        memory.index_compression_ratio
    );

    // The smoke set: the head of the held-out test split, same indices at
    // every run, so the ratios below are seeded and reproducible.
    let smoke: Vec<usize> = world.test.iter().copied().take(n_queries).collect();
    let t0 = Instant::now();
    let ratios = world.evaluate(&mut sys, &smoke, METRICS_K);
    let eval_ms = (t0.elapsed().as_secs_f64() * 10_000.0).round() / 10.0;
    let qps = (smoke.len() as f64 * 1000.0 / eval_ms.max(1e-6) * 10.0).round() / 10.0;
    eprintln!(
        "# scale: {} smoke queries in {eval_ms} ms ({qps} q/s) — precision ratio {:.3}, \
         recall ratio {:.3}",
        smoke.len(),
        ratios.precision_ratio,
        ratios.recall_ratio
    );
    let total_ms = (total.elapsed().as_secs_f64() * 10_000.0).round() / 10.0;

    println!("{{");
    println!("  \"schema\": \"sprite-scale/v1\",");
    println!("  \"scale\": \"{scale}\",");
    println!("  \"world_build_ms\": {world_build_ms},");
    println!("  \"system_build_ms\": {system_build_ms},");
    println!(
        "  \"memory\": {},",
        sprite_bench::metrics::memory_json(&memory, 1)
    );
    println!("  \"smoke\": {{");
    println!("    \"queries\": {},", smoke.len());
    println!("    \"k\": {METRICS_K},");
    println!("    \"precision_ratio\": {:.12},", ratios.precision_ratio);
    println!("    \"recall_ratio\": {:.12},", ratios.recall_ratio);
    println!("    \"eval_ms\": {eval_ms},");
    println!("    \"queries_per_sec\": {qps}");
    println!("  }},");
    println!("  \"total_ms\": {total_ms}");
    println!("}}");

    assert_eq!(
        ratios.queries,
        smoke.len(),
        "every smoke query must be answered"
    );
    assert!(
        ratios.precision_ratio > 0.0 && ratios.recall_ratio > 0.0,
        "the huge tier answered smoke queries with empty result lists"
    );
}
