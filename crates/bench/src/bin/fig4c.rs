//! Figure 4(c): adaptation to a query-pattern change. Ten learning
//! iterations; the query population switches to a disjoint interest group
//! after iteration 5. Term cap 30 (replacement-only once reached).
//!
//! Run: `cargo run -p sprite-bench --bin fig4c --release`

use sprite_bench::{build_world, print_table, r3};
use sprite_core::fig4c;

fn main() {
    let world = build_world(42);
    let t0 = std::time::Instant::now();
    let fig = fig4c(&world, 10, 20);
    eprintln!("# fig4c computed in {:.1?}", t0.elapsed());

    let rows: Vec<Vec<String>> = fig
        .sprite
        .iter()
        .zip(&fig.esearch)
        .map(|(s, e)| {
            let it = s.x as usize;
            vec![
                format!("{it}{}", if it == fig.switch_at { " *" } else { "" }),
                r3(s.precision),
                r3(e.precision),
                r3(s.recall),
                r3(e.recall),
            ]
        })
        .collect();
    print_table(
        "Figure 4(c) — effectiveness ratio per learning iteration (30-term cap, pattern change at *)",
        &["iter", "SPRITE P", "eSearch P", "SPRITE R", "eSearch R"],
        &rows,
    );
    println!(
        "\npaper shape: SPRITE above eSearch throughout; dip right after the \
         switch (iteration {}), recovering within ~1 iteration",
        fig.switch_at
    );
}
