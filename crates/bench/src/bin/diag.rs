//! Diagnostic (not a paper figure): how well does each system's published
//! term set cover the *query terms* of the test workload, per relevant
//! document? This is the mechanism behind every Figure-4 gap — plus a
//! [`sprite_core::QueryTrace`] walkthrough of the first few test queries
//! (per-keyword routes, owner hits, failover paths, message bills).

use sprite_bench::{build_world, print_table, r3};
use sprite_chord::NetStats;
use sprite_core::{RankScratch, SpriteConfig, SpriteSystem};
use sprite_corpus::Schedule;

fn main() {
    let world = build_world(42);
    // Trace the learning pipeline.
    {
        let mut sys = world.new_system(SpriteConfig::default());
        world.issue(&mut sys, &world.train, Schedule::WithoutRepeats);
        sys.publish_all();
        for it in 1..=3 {
            let r = sys.learning_iteration();
            eprintln!("iter {it}: {r:?}");
        }
    }
    let mut sprite = world.standard_system(SpriteConfig::default(), Schedule::WithoutRepeats);
    let esearch = world.standard_system(SpriteConfig::esearch(20), Schedule::WithoutRepeats);

    let coverage = |sys: &SpriteSystem| -> (f64, f64) {
        // Over all test queries and their relevant docs: fraction of
        // (query term ∈ doc) pairs that the system has published.
        let mut have = 0usize;
        let mut total = 0usize;
        let mut docs_any = 0usize;
        let mut docs_total = 0usize;
        for &qi in &world.test {
            let gq = &world.workload[qi];
            for &d in &gq.relevant {
                let doc = sys.corpus().doc(d);
                let published = sys.published_terms(d);
                let mut any = false;
                for (t, _) in gq.query.term_counts() {
                    if doc.contains(t) {
                        total += 1;
                        if published.contains(&t) {
                            have += 1;
                            any = true;
                        }
                    }
                }
                docs_total += 1;
                if any {
                    docs_any += 1;
                }
            }
        }
        (
            have as f64 / total.max(1) as f64,
            docs_any as f64 / docs_total.max(1) as f64,
        )
    };

    let (sp_terms, sp_docs) = coverage(&sprite);
    let (es_terms, es_docs) = coverage(&esearch);
    print_table(
        "Query-term index coverage over relevant documents (test set)",
        &["system", "term coverage", "docs reachable"],
        &[
            vec!["SPRITE(20)".into(), r3(sp_terms), r3(sp_docs)],
            vec!["eSearch(20)".into(), r3(es_terms), r3(es_docs)],
        ],
    );

    // Where do SPRITE's published terms come from?
    let mut learned = 0usize;
    let mut frequent = 0usize;
    for (i, d) in sprite.corpus().docs().iter().enumerate() {
        let top = d.top_frequent_terms(20);
        for t in sprite.published_terms(sprite_ir::DocId(i as u32)) {
            if top.contains(t) {
                frequent += 1;
            } else {
                learned += 1;
            }
        }
    }
    println!(
        "\nSPRITE published terms: {frequent} overlap eSearch's top-20, {learned} learned beyond it"
    );

    // Per-query walkthroughs: how the first few test queries actually
    // resolved, keyword by keyword. Charges go into a throwaway delta so
    // the diagnostic leaves the deployment's bill untouched.
    println!("\n## Query traces (first 3 test queries, SPRITE deployment)\n");
    let traces: Vec<sprite_core::QueryTrace> = {
        let view = sprite.query_view();
        let peers = view.peers();
        let mut scratch = RankScratch::new();
        world
            .test
            .iter()
            .take(3)
            .enumerate()
            .map(|(i, &qi)| {
                let gq = &world.workload[qi];
                let mut delta = NetStats::new();
                let (_, qt) = view.query_trace(
                    peers[i % peers.len()],
                    &gq.query,
                    20,
                    &mut delta,
                    &mut scratch,
                );
                qt
            })
            .collect()
    };
    for qt in &traces {
        print!("{}", qt.render(sprite.corpus()));
    }
}
