//! Ablations of SPRITE's design choices (DESIGN.md §3):
//!
//! 1. the combined `Score = qScore · log QF` vs either factor alone (§5.3);
//! 2. indexed document frequency vs the true-df oracle (§3/§4);
//! 3. Lee "second method" similarity vs retrieved-terms cosine (§4).
//!
//! Run: `cargo run -p sprite-bench --bin ablation --release`

use sprite_bench::{build_world, print_table, r3};
use sprite_core::{IdfMode, ScoreMode, SpriteConfig};
use sprite_corpus::Schedule;
use sprite_ir::Similarity;
use sprite_util::par_map;

/// The four ablation tables, in print order.
const TABLES: [(&str, &[&str; 3]); 4] = [
    (
        "Ablation 1 — term-score composition (§5.3)",
        &["score", "precision", "recall"],
    ),
    (
        "Ablation 1b — term-score composition under a tight 8-term budget",
        &["score", "precision", "recall"],
    ),
    (
        "Ablation 2 — IDF source (§3: indexed df 'serves the same purpose')",
        &["idf", "precision", "recall"],
    ),
    (
        "Ablation 3 — distributed similarity (§4)",
        &["similarity", "precision", "recall"],
    ),
];

fn main() {
    let world = build_world(42);
    let k = 20;

    // Every (config, schedule) cell is an independent deployment, so the
    // whole sweep fans out over the sprite-util pool at once; results come
    // back in input order, so tables print deterministically.
    let zipf = Schedule::Zipf {
        slope: 0.5,
        total: world.train.len() * 3,
    };
    let score_cfg = |mode: ScoreMode| SpriteConfig {
        score_mode: mode,
        ..SpriteConfig::default()
    };
    let tight_cfg = |mode: ScoreMode| SpriteConfig {
        score_mode: mode,
        max_terms: 8,
        terms_per_iteration: 1,
        ..SpriteConfig::default()
    };
    // (table index, row label, config, schedule).
    let jobs: Vec<(usize, &str, SpriteConfig, Schedule)> = vec![
        // 1. Term-score composition. Run under a repeating (Zipf) schedule
        // so QF carries signal — with single-shot queries every QF is 1 and
        // the combination degenerates by construction.
        (0, "qScore*logQF (paper)", score_cfg(ScoreMode::Full), zipf),
        (0, "qScore only", score_cfg(ScoreMode::QScoreOnly), zipf),
        (0, "logQF only", score_cfg(ScoreMode::QfOnly), zipf),
        // 1b. Same, under a tight 8-term budget: selection pressure forces
        // the ranking to actually choose among queried terms.
        (1, "qScore*logQF (paper)", tight_cfg(ScoreMode::Full), zipf),
        (1, "qScore only", tight_cfg(ScoreMode::QScoreOnly), zipf),
        (1, "logQF only", tight_cfg(ScoreMode::QfOnly), zipf),
        // 2. IDF source.
        (
            2,
            "indexed df (paper)",
            SpriteConfig {
                idf_mode: IdfMode::Indexed,
                ..SpriteConfig::default()
            },
            Schedule::WithoutRepeats,
        ),
        (
            2,
            "true df (oracle)",
            SpriteConfig {
                idf_mode: IdfMode::TrueDf,
                ..SpriteConfig::default()
            },
            Schedule::WithoutRepeats,
        ),
        // 3. Similarity formula.
        (
            3,
            "Lee second method (paper)",
            SpriteConfig {
                similarity: Similarity::LeeSecond,
                ..SpriteConfig::default()
            },
            Schedule::WithoutRepeats,
        ),
        (
            3,
            "retrieved-terms cosine",
            SpriteConfig {
                similarity: Similarity::CosineTfIdf,
                ..SpriteConfig::default()
            },
            Schedule::WithoutRepeats,
        ),
    ];

    let results: Vec<(usize, Vec<String>)> = par_map(&jobs, |_, (table, label, cfg, schedule)| {
        let mut sys = world.standard_system(cfg.clone(), *schedule);
        let r = world.evaluate(&mut sys, &world.test, k);
        (
            *table,
            vec![
                (*label).to_string(),
                r3(r.precision_ratio),
                r3(r.recall_ratio),
            ],
        )
    });

    for (t, (title, headers)) in TABLES.iter().enumerate() {
        let rows: Vec<Vec<String>> = results
            .iter()
            .filter(|(table, _)| *table == t)
            .map(|(_, row)| row.clone())
            .collect();
        print_table(title, *headers, &rows);
    }
}
