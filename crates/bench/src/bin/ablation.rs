//! Ablations of SPRITE's design choices (DESIGN.md §3):
//!
//! 1. the combined `Score = qScore · log QF` vs either factor alone (§5.3);
//! 2. indexed document frequency vs the true-df oracle (§3/§4);
//! 3. Lee "second method" similarity vs retrieved-terms cosine (§4).
//!
//! Run: `cargo run -p sprite-bench --bin ablation --release`

use sprite_bench::{build_world, print_table, r3};
use sprite_core::{IdfMode, ScoreMode, SpriteConfig};
use sprite_corpus::Schedule;
use sprite_ir::Similarity;

fn main() {
    let world = build_world(42);
    let k = 20;

    let run_sched =
        |label: &str, cfg: SpriteConfig, schedule: Schedule, rows: &mut Vec<Vec<String>>| {
            let mut sys = world.standard_system(cfg, schedule);
            let r = world.evaluate(&mut sys, &world.test, k);
            rows.push(vec![
                label.to_string(),
                r3(r.precision_ratio),
                r3(r.recall_ratio),
            ]);
        };
    let run = |label: &str, cfg: SpriteConfig, rows: &mut Vec<Vec<String>>| {
        run_sched(label, cfg, Schedule::WithoutRepeats, rows);
    };

    // 1. Term-score composition. Run under a repeating (Zipf) schedule so
    // QF carries signal — with single-shot queries every QF is 1 and the
    // combination degenerates by construction.
    let zipf = Schedule::Zipf {
        slope: 0.5,
        total: world.train.len() * 3,
    };
    let mut rows = Vec::new();
    for (label, mode) in [
        ("qScore*logQF (paper)", ScoreMode::Full),
        ("qScore only", ScoreMode::QScoreOnly),
        ("logQF only", ScoreMode::QfOnly),
    ] {
        run_sched(
            label,
            SpriteConfig {
                score_mode: mode,
                ..SpriteConfig::default()
            },
            zipf,
            &mut rows,
        );
    }
    print_table(
        "Ablation 1 — term-score composition (§5.3)",
        &["score", "precision", "recall"],
        &rows,
    );

    // 1b. Same, under a tight 8-term budget: selection pressure forces the
    // ranking to actually choose among queried terms.
    let mut rows = Vec::new();
    for (label, mode) in [
        ("qScore*logQF (paper)", ScoreMode::Full),
        ("qScore only", ScoreMode::QScoreOnly),
        ("logQF only", ScoreMode::QfOnly),
    ] {
        run_sched(
            label,
            SpriteConfig {
                score_mode: mode,
                max_terms: 8,
                terms_per_iteration: 1,
                ..SpriteConfig::default()
            },
            zipf,
            &mut rows,
        );
    }
    print_table(
        "Ablation 1b — term-score composition under a tight 8-term budget",
        &["score", "precision", "recall"],
        &rows,
    );

    // 2. IDF source.
    let mut rows = Vec::new();
    for (label, mode) in [
        ("indexed df (paper)", IdfMode::Indexed),
        ("true df (oracle)", IdfMode::TrueDf),
    ] {
        run(
            label,
            SpriteConfig {
                idf_mode: mode,
                ..SpriteConfig::default()
            },
            &mut rows,
        );
    }
    print_table(
        "Ablation 2 — IDF source (§3: indexed df 'serves the same purpose')",
        &["idf", "precision", "recall"],
        &rows,
    );

    // 3. Similarity formula.
    let mut rows = Vec::new();
    for (label, sim) in [
        ("Lee second method (paper)", Similarity::LeeSecond),
        ("retrieved-terms cosine", Similarity::CosineTfIdf),
    ] {
        run(
            label,
            SpriteConfig {
                similarity: sim,
                ..SpriteConfig::default()
            },
            &mut rows,
        );
    }
    print_table(
        "Ablation 3 — distributed similarity (§4)",
        &["similarity", "precision", "recall"],
        &rows,
    );
}
