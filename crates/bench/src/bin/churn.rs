//! §7 churn study: retrieval quality after abrupt indexing-peer failures,
//! with and without successor replication of the index.
//!
//! Run: `cargo run -p sprite-bench --bin churn --release`

use sprite_bench::{build_world, print_table, r3};
use sprite_core::SpriteConfig;
use sprite_corpus::Schedule;

fn main() {
    let world = build_world(42);
    let fracs = [0.0f64, 0.05, 0.10, 0.20, 0.30];
    let n_peers = world.config.n_peers;

    let mut rows = Vec::new();
    for &frac in &fracs {
        let kill = ((n_peers as f64) * frac).round() as usize;

        // No replication.
        let mut plain = world.standard_system(SpriteConfig::default(), Schedule::WithoutRepeats);
        plain.fail_random_peers(kill, 99);
        let r_plain = world.evaluate(&mut plain, &world.test, 20);

        // Replication degree 3 + one §7 periodic replication pass.
        let mut replicated = world.standard_system(
            SpriteConfig {
                replication: 3,
                ..SpriteConfig::default()
            },
            Schedule::WithoutRepeats,
        );
        replicated.replicate_indexes();
        replicated.fail_random_peers(kill, 99);
        let r_rep = world.evaluate(&mut replicated, &world.test, 20);

        rows.push(vec![
            format!("{:.0}%", frac * 100.0),
            kill.to_string(),
            r3(r_plain.precision_ratio),
            r3(r_plain.recall_ratio),
            r3(r_rep.precision_ratio),
            r3(r_rep.recall_ratio),
        ]);
    }
    print_table(
        "Churn: effectiveness ratio after abrupt peer failures (top-20 answers)",
        &[
            "failed", "peers", "P (r=1)", "R (r=1)", "P (r=3)", "R (r=3)",
        ],
        &rows,
    );
    println!(
        "\npaper claim (§7): with successor replication, peer failure has \
         little impact; without it quality degrades with the failure rate"
    );
}
