//! §7 churn study: retrieval quality under *continuous* membership churn,
//! driven by the seeded bounded-stabilization engine rather than a single
//! abrupt kill.
//!
//! For every (replication, per-tick churn rate) pair the sweep trains a
//! fresh deployment, runs a fixed number of churn ticks (joins, graceful
//! leaves with index handover, abrupt failures) interleaved with the
//! periodic maintenance pass, then evaluates the full test set against the
//! centralized reference. `retention` is the precision ratio relative to
//! the same-replication zero-churn baseline — the paper's "little impact"
//! claim is `retention ≈ 1` at replication 3.
//!
//! Run: `cargo run -p sprite-bench --bin churn --release`

use sprite_bench::{build_world, print_table, r3};
use sprite_core::churn_figure;

fn main() {
    let world = build_world(42);
    let rates = [0.0f64, 0.02, 0.05, 0.10];
    let replications = [1usize, 3];
    let ticks = 6;

    let fig = churn_figure(&world, &rates, &replications, ticks);

    let rows: Vec<Vec<String>> = fig
        .points
        .iter()
        .map(|p| {
            vec![
                p.replication.to_string(),
                format!("{:.0}%", p.churn_rate * 100.0),
                p.peers_after.to_string(),
                r3(p.precision),
                r3(p.recall),
                r3(p.retention),
                format!("{:.1}", p.messages_per_query),
            ]
        })
        .collect();
    print_table(
        &format!("Churn: effectiveness under {ticks} ticks of continuous churn (top-20 answers)"),
        &[
            "repl",
            "rate",
            "peers",
            "P-ratio",
            "R-ratio",
            "retention",
            "msg/query",
        ],
        &rows,
    );
    println!(
        "\npaper claim (§7): with successor replication, peer failure has \
         little impact; without it quality degrades with the churn rate"
    );
}
