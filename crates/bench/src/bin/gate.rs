//! `gate` — the CI regression gate over `BENCH_experiments.json`.
//!
//! First runs the workspace source lint in-process (`sprite_audit::analyze`
//! — same engine as `sprite-lint`), then recomputes the deterministic
//! `metrics` object from a fresh `SPRITE_SCALE=small` run (the committed
//! baseline's scale; override with the usual variable) and diffs it
//! against the committed baseline: precision/recall ratios within
//! `RATIO_TOLERANCE`, every message count and histogram bucket within
//! `COUNT_TOLERANCE`. It then remeasures the headline `throughput` object
//! and band-compares it: structure and the `bit_identical` flag exactly,
//! queries/sec and the speedup within the one-sided
//! `THROUGHPUT_TOLERANCE` regression band (improvements always pass).
//! Finally it replays the `loss` sweep and diffs it point for point —
//! ratios within `RATIO_TOLERANCE`, timeout counts exact — also checking
//! that every lossy point billed a nonzero timeout count, replays the
//! `freshness` document-churn study (event and entry counts exact, the
//! lifecycle invariants and the incremental-update savings floor enforced
//! within the run), and re-accounts the `memory` object (logical bytes
//! per peer exact to the byte; the build time advisory).
//! Exits 0 when clean, 1 with one readable line per lint violation or
//! divergence when not, 2 when the baseline is missing, unparseable, or
//! was generated at a different scale.
//!
//! Run: `cargo run -p sprite-bench --bin gate --release [baseline.json]`
//!
//! Timing sections of the baseline (`figures_ms`, `micro_ns`, raw
//! millisecond fields of `evaluate`/`throughput`) are machine-dependent
//! and deliberately not gated.

use std::process::ExitCode;

use sprite_bench::json::{self, JsonValue};
use sprite_bench::metrics::{
    collect_freshness, collect_loss, collect_memory, collect_metrics, compare_against_baseline,
    compare_freshness, compare_loss, compare_memory, compare_throughput, measure_throughput,
};

fn main() -> ExitCode {
    // The committed baseline is generated at small scale; match it unless
    // the caller explicitly overrides.
    if std::env::var("SPRITE_SCALE").is_err() {
        std::env::set_var("SPRITE_SCALE", "small");
    }
    let scale = std::env::var("SPRITE_SCALE").unwrap_or_default();
    let baseline_path = std::env::args().nth(1).unwrap_or_else(|| {
        // crates/bench → workspace root, two levels up.
        format!(
            "{}/../../BENCH_experiments.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });

    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("gate: cannot read baseline {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("gate: baseline {baseline_path} is not valid JSON: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(baseline_scale) = baseline.get("scale").and_then(JsonValue::as_str) {
        if baseline_scale != scale {
            eprintln!(
                "gate: baseline was generated at SPRITE_SCALE={baseline_scale} but this run \
                 is at SPRITE_SCALE={scale}; rerun with a matching scale"
            );
            return ExitCode::from(2);
        }
    }

    // Source lint first: a determinism violation in the source makes the
    // metric diff below meaningless.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    match sprite_audit::analyze(&root) {
        Ok(diags) if diags.is_empty() => {}
        Ok(diags) => {
            for d in &diags {
                println!("gate: lint: {d}");
            }
            println!(
                "gate: {} lint violation(s); fix before gating metrics",
                diags.len()
            );
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("gate: cannot lint workspace sources: {e}");
            return ExitCode::from(2);
        }
    }

    eprintln!("# gate: scale={scale}, baseline {baseline_path}");
    let world = sprite_bench::build_world(42);
    let current = collect_metrics(&world);
    let mut diffs = compare_against_baseline(&current, &baseline);
    // Remeasure the headline throughput at the baseline's worker count so
    // the band comparison is like for like.
    let headline_workers = baseline
        .path(&["throughput", "batched_workers"])
        .and_then(JsonValue::as_u64)
        .map_or(4, |w| w.max(2) as usize);
    let throughput = measure_throughput(&world, headline_workers);
    eprintln!(
        "# gate: throughput batched@{} {:.2}x vs reference, {} q/s, bit-identical: {}",
        throughput.batched_workers,
        throughput.speedup_vs_reference,
        throughput.batched_qps,
        throughput.bit_identical
    );
    diffs.extend(compare_throughput(&throughput, &baseline));
    // Replay the loss study: point-for-point exact (ratios within the
    // JSON round-trip tolerance, timeout counts to the message), plus the
    // within-run check that lossy points bill real timeouts.
    let loss = collect_loss(&world);
    let lossy_timeouts: u64 = loss
        .points
        .iter()
        .filter(|p| p.loss > 0.0)
        .map(|p| p.timeouts)
        .sum();
    eprintln!(
        "# gate: loss sweep {} points, {lossy_timeouts} timeouts across the lossy points",
        loss.points.len()
    );
    diffs.extend(compare_loss(&loss, &baseline));
    // Replay the freshness study: the seeded document-churn lifecycle is
    // exactly reproducible, so every event and entry count is diffed to
    // the document, ratios within tolerance. The comparison also enforces
    // the lifecycle invariants (no deleted-document hit, no surviving
    // tombstone, the incremental-update savings floor) within this run.
    let freshness = collect_freshness(&world);
    eprintln!(
        "# gate: freshness {} points, {:.1}% incremental-update savings over {} edits",
        freshness.points.len(),
        freshness.cost.savings_ratio * 100.0,
        freshness.cost.updates
    );
    diffs.extend(compare_freshness(&freshness, &baseline));
    // Re-account the memory footprint: logical byte counts are exact
    // (bytes-per-peer to the byte); the build time is advisory.
    let memory = collect_memory(&world);
    eprintln!(
        "# gate: memory {} B/peer over {} peers ({} backend, packed: {})",
        memory.bytes_per_peer, memory.peers, memory.backend, memory.packed_postings
    );
    diffs.extend(compare_memory(&memory, &baseline));
    if diffs.is_empty() {
        println!(
            "gate: metrics and throughput match the committed baseline ({} queries, {} traced \
             events, {:.2}x batched speedup)",
            current.queries, current.events, throughput.speedup_vs_reference
        );
        ExitCode::SUCCESS
    } else {
        for d in &diffs {
            println!("gate: {d}");
        }
        println!(
            "gate: {} divergence(s) against {baseline_path} — either fix the regression or \
             regenerate the baseline with `cargo run -p sprite-bench --bin bench --release`",
            diffs.len()
        );
        ExitCode::FAILURE
    }
}
