//! Cost study backing the paper's motivating claims (§1, §6):
//!
//! 1. Chord lookups cost O(log N) hops — the substrate claim;
//! 2. full-term indexing is prohibitively expensive per document insertion,
//!    while SPRITE/eSearch publish a constant handful of terms;
//! 3. SPRITE's learning traffic (polls + returned queries) is modest.
//!
//! Run: `cargo run -p sprite-bench --bin cost --release`

use sprite_bench::{build_world, print_table};
use sprite_chord::{ChordConfig, ChordNet, MsgKind};
use sprite_core::SpriteConfig;
use sprite_corpus::Schedule;
use sprite_util::RingId;

fn main() {
    lookup_scaling();
    indexing_cost();
}

/// Mean lookup hops vs network size (expect ≈ ½·log₂N).
fn lookup_scaling() {
    let sizes = [64usize, 128, 256, 512, 1024, 2048];
    let mut rows = Vec::new();
    for &n in &sizes {
        let mut net = ChordNet::with_random_nodes(ChordConfig::default(), n, 7);
        let ids = net.node_ids();
        net.reset_stats();
        for i in 0..2000 {
            let from = ids[i % ids.len()];
            let key = RingId::hash_bytes(format!("probe-{i}").as_bytes());
            net.lookup(from, key).expect("converged ring");
        }
        rows.push(vec![
            n.to_string(),
            format!("{:.2}", net.stats().mean_hops()),
            format!("{:.2}", 0.5 * (n as f64).log2()),
            net.stats().max_hops().to_string(),
        ]);
    }
    print_table(
        "Chord lookup cost vs network size (2000 lookups each)",
        &["peers", "mean hops", "0.5*log2(N)", "max hops"],
        &rows,
    );
}

/// Per-document indexing and maintenance message costs for full-term
/// indexing, eSearch, and SPRITE.
fn indexing_cost() {
    let world = build_world(42);
    let n_docs = world.synthetic.corpus().len() as f64;
    let mut rows = Vec::new();

    let publish_cost = |sys: &sprite_core::SpriteSystem| -> u64 {
        let s = sys.net().stats();
        s.count(MsgKind::IndexPublish) + s.count(MsgKind::LookupHop) + s.count(MsgKind::Replication)
    };

    // Full-term indexing: every distinct term of every document.
    {
        let mut sys = world.new_system(SpriteConfig::esearch(usize::MAX));
        sys.net_mut().reset_stats();
        sys.publish_all();
        rows.push(vec![
            "full-term".into(),
            format!("{:.1}", publish_cost(&sys) as f64 / n_docs),
            "0.0".into(),
            sys.total_index_entries().to_string(),
            format!("{:.1}", sys.total_index_entries() as f64 / n_docs),
        ]);
    }

    // eSearch: static top-20.
    {
        let mut sys = world.new_system(SpriteConfig::esearch(20));
        sys.net_mut().reset_stats();
        sys.publish_all();
        rows.push(vec![
            "eSearch(20)".into(),
            format!("{:.1}", publish_cost(&sys) as f64 / n_docs),
            "0.0".into(),
            sys.total_index_entries().to_string(),
            format!("{:.1}", sys.total_index_entries() as f64 / n_docs),
        ]);
    }

    // SPRITE: 5 initial + 3 learning iterations to 20 terms.
    {
        let mut sys = world.new_system(SpriteConfig::default());
        world.issue(&mut sys, &world.train, Schedule::WithoutRepeats);
        sys.net_mut().reset_stats();
        sys.publish_all();
        let publish = publish_cost(&sys);
        sys.net_mut().reset_stats();
        sys.learn(3);
        let s = sys.net().stats();
        let learn_msgs = s.count(MsgKind::LearnPoll)
            + s.count(MsgKind::LearnReturn)
            + s.count(MsgKind::IndexPublish)
            + s.count(MsgKind::IndexRemove)
            + s.count(MsgKind::LookupHop);
        rows.push(vec![
            "SPRITE(20)".into(),
            format!("{:.1}", publish as f64 / n_docs),
            format!("{:.1}", learn_msgs as f64 / n_docs),
            sys.total_index_entries().to_string(),
            format!("{:.1}", sys.total_index_entries() as f64 / n_docs),
        ]);
    }

    print_table(
        "Index construction & maintenance cost per document",
        &[
            "system",
            "publish msgs/doc",
            "learn msgs/doc",
            "index entries",
            "entries/doc",
        ],
        &rows,
    );
    println!(
        "\npaper claim: full-term insertion touches a large fraction of the \
         network per document; SPRITE/eSearch cost a constant ~20 publishes"
    );
}
