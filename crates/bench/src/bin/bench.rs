//! The benchmark baseline runner.
//!
//! Times every figure of the paper at `SPRITE_SCALE=small` (the CI scale;
//! override with the usual `SPRITE_SCALE` variable), a handful of
//! microbenchmarks (MD5, one Chord lookup, one distributed query, one
//! centralized search), and the headline throughput comparison — the
//! batched `World::evaluate` pipeline against the sequential unbatched
//! `World::evaluate_reference`, with a 1/2/N-worker queries/sec sweep —
//! then writes the whole report as `BENCH_experiments.json` at the
//! repository root so later PRs can be measured against this baseline.
//!
//! Run: `cargo run -p sprite-bench --bin bench --release [output.json]`
//!
//! The throughput comparison also *verifies* the engine's contract: the
//! report records whether the batched and reference evaluations produced
//! bit-identical ratios and merged stats (`"bit_identical": true`), and
//! the process exits nonzero if they did not.

use std::fmt::Write as _;
use std::time::Instant;

use sprite_chord::{ChordConfig, ChordNet};
use sprite_core::{churn_figure, fig4a, fig4b, fig4c, SpriteConfig, SpriteSystem};
use sprite_corpus::{CorpusConfig, Schedule, SyntheticCorpus};
use sprite_ir::CentralizedEngine;
use sprite_util::{configured_threads, md5, RingId};

/// Milliseconds, one decimal.
fn ms(from: Instant) -> f64 {
    (from.elapsed().as_secs_f64() * 10_000.0).round() / 10.0
}

/// Time one closure invocation in milliseconds.
fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, ms(t0))
}

/// Nanoseconds per iteration over a self-calibrating ~100ms loop.
fn time_ns(mut f: impl FnMut()) -> f64 {
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t.elapsed().as_millis() >= 40 || iters >= 1 << 22 {
            break;
        }
        iters = (iters * 4).min(1 << 22);
    }
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    (t.elapsed().as_nanos() as f64 / iters as f64 * 10.0).round() / 10.0
}

struct Json(String);

impl Json {
    fn new() -> Self {
        Json(String::from("{\n"))
    }
    fn field(&mut self, indent: usize, key: &str, value: &str, last: bool) {
        let pad = "  ".repeat(indent);
        let comma = if last { "" } else { "," };
        let _ = writeln!(self.0, "{pad}\"{key}\": {value}{comma}");
    }
    fn open(&mut self, indent: usize, key: &str) {
        let pad = "  ".repeat(indent);
        let _ = writeln!(self.0, "{pad}\"{key}\": {{");
    }
    fn close(&mut self, indent: usize, last: bool) {
        let pad = "  ".repeat(indent);
        let comma = if last { "" } else { "," };
        let _ = writeln!(self.0, "{pad}}}{comma}");
    }
    fn finish(mut self) -> String {
        self.0.push_str("}\n");
        self.0
    }
}

fn main() {
    // This runner *is* the small-scale baseline; default the scale rather
    // than inheriting `full` and taking minutes on CI.
    if std::env::var("SPRITE_SCALE").is_err() {
        std::env::set_var("SPRITE_SCALE", "small");
    }
    let scale = std::env::var("SPRITE_SCALE").unwrap_or_default();
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        // crates/bench → workspace root, two levels up.
        format!(
            "{}/../../BENCH_experiments.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });

    eprintln!("# bench: scale={scale}, {} threads", configured_threads());
    let (world, world_ms) = time_ms(|| sprite_bench::build_world(42));

    // ------------------------------------------------------------------
    // Figures (each internally parallel via the sprite-util pool).
    // ------------------------------------------------------------------
    let answers = [5usize, 10, 15, 20, 25, 30];
    let budgets = [5usize, 10, 15, 20, 25, 30];
    let (_, fig4a_ms) = time_ms(|| fig4a(&world, &answers));
    eprintln!("# fig4a: {fig4a_ms} ms");
    let (_, fig4b_ms) = time_ms(|| fig4b(&world, &budgets, 20));
    eprintln!("# fig4b: {fig4b_ms} ms");
    let (_, fig4c_ms) = time_ms(|| fig4c(&world, 10, 20));
    eprintln!("# fig4c: {fig4c_ms} ms");

    // The §7 churn sweep: continuous engine-driven churn at two
    // replication degrees, reported as ratio-to-ideal plus retention
    // against the same-replication zero-churn baseline.
    let churn_rates = [0.0f64, 0.02, 0.05];
    let churn_repls = [1usize, 3];
    let churn_ticks = 6usize;
    let (churn, churn_ms) =
        time_ms(|| churn_figure(&world, &churn_rates, &churn_repls, churn_ticks));
    eprintln!("# churn figure: {churn_ms} ms");

    // ------------------------------------------------------------------
    // The headline comparison: the batched query pipeline against the
    // sequential unbatched reference on one trained deployment, with the
    // bit-identity check the determinism auditor enforces and a
    // 1/2/N-worker sweep. Timed over the full generated workload.
    // ------------------------------------------------------------------
    let (_, train_ms) =
        time_ms(|| world.standard_system(SpriteConfig::default(), Schedule::WithoutRepeats));
    eprintln!("# standard system (train+learn): {train_ms} ms");

    // Headline width 4 per the engine's contract; an explicit
    // SPRITE_THREADS still wins so the sweep can be re-run at other widths.
    let threads = std::env::var("SPRITE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(4);
    let (throughput, throughput_ms) =
        time_ms(|| sprite_bench::metrics::measure_throughput(&world, threads));
    let cores = throughput.cores;
    eprintln!(
        "# throughput ({} reps, measured in {throughput_ms} ms): reference {} ms, \
         batched@{} {} ms — {:.2}x, {} q/s, bit-identical: {}",
        throughput.repetitions,
        throughput.reference_ms,
        throughput.batched_workers,
        throughput.batched_ms,
        throughput.speedup_vs_reference,
        throughput.batched_qps,
        throughput.bit_identical
    );
    for p in &throughput.sweep {
        eprintln!(
            "#   sweep @{} workers: {} ms/eval, {} q/s, efficiency {:.3}",
            p.workers, p.ms_per_eval, p.queries_per_sec, p.efficiency
        );
    }

    // ------------------------------------------------------------------
    // The deterministic `metrics` object the regression gate replays: a
    // traced evaluation of the standard deployment (same code path as
    // `--bin gate`), packaging ratios, the per-kind message bill, and the
    // cost histograms. Everything in it is exact at equal seed and scale.
    // ------------------------------------------------------------------
    let (metrics, metrics_ms) = time_ms(|| sprite_bench::metrics::collect_metrics(&world));
    eprintln!(
        "# metrics: {} queries, {} traced events, {} ms",
        metrics.queries, metrics.events, metrics_ms
    );

    // ------------------------------------------------------------------
    // The loss study: deployments built and queried over lossy network
    // models, showing in-flight drops billed as real timeouts and
    // replication absorbing the damage. Gated exactly by `--bin gate`.
    // ------------------------------------------------------------------
    let (loss, loss_ms) = time_ms(|| sprite_bench::metrics::collect_loss(&world));
    for p in &loss.points {
        eprintln!(
            "# loss r{} @ {:.0}%: precision {:.3}, recall {:.3}, {:.1} msg/q, {} timeouts",
            p.replication,
            p.loss * 100.0,
            p.precision,
            p.recall,
            p.messages_per_query,
            p.timeouts
        );
    }
    eprintln!("# loss figure: {loss_ms} ms");

    // ------------------------------------------------------------------
    // The freshness study: seeded document churn (inserts, incremental
    // updates, lazy deletions) against a centralized reference rebuilt
    // over the mutated corpus, plus the incremental-vs-full update cost
    // comparison. Gated exactly by `--bin gate`, which also enforces the
    // lifecycle invariants within the run.
    // ------------------------------------------------------------------
    let (freshness, freshness_ms) = time_ms(|| sprite_bench::metrics::collect_freshness(&world));
    for p in &freshness.points {
        eprintln!(
            "# freshness r{} @ rate {:.2}: precision {:.3}, recall {:.3}, +{} ~{} -{} docs, \
             {} reclaimed, {} stale of {} live entries",
            p.replication,
            p.doc_churn,
            p.precision,
            p.recall,
            p.inserted,
            p.updated,
            p.deleted,
            p.tombstones_reclaimed,
            p.stale_entries,
            p.live_entries
        );
    }
    eprintln!(
        "# freshness cost: {} updates, incremental {} B vs republish {} B — {:.1}% saved \
         ({freshness_ms} ms)",
        freshness.cost.updates,
        freshness.cost.incremental_bytes,
        freshness.cost.republish_bytes,
        freshness.cost.savings_ratio * 100.0
    );

    // ------------------------------------------------------------------
    // The memory footprint the scale tier optimizes: logical bytes of
    // routing state and compressed postings, per peer. Byte counts are
    // deterministic and gated exactly by `--bin gate`; the build time is
    // advisory.
    // ------------------------------------------------------------------
    let memory = sprite_bench::metrics::collect_memory(&world);
    eprintln!(
        "# memory: {} peers ({} backend), {} B/peer — ring {} B, index {} B \
         (plain {} B, {:.2}x), built in {} ms",
        memory.peers,
        memory.backend,
        memory.bytes_per_peer,
        memory.ring_bytes,
        memory.index_bytes,
        memory.plain_index_bytes,
        memory.index_compression_ratio,
        memory.build_ms
    );

    // ------------------------------------------------------------------
    // Micro timings.
    // ------------------------------------------------------------------
    let payload = vec![0xabu8; 65536];
    let md5_ns = time_ns(|| {
        std::hint::black_box(md5(std::hint::black_box(&payload)));
    });
    let mut net = ChordNet::with_random_nodes(ChordConfig::default(), 1024, 5);
    let ids = net.node_ids();
    let keys: Vec<RingId> = (0..256)
        .map(|i| RingId::hash_bytes(format!("bench-key-{i}").as_bytes()))
        .collect();
    let mut i = 0usize;
    let lookup_ns = time_ns(|| {
        let from = ids[i % ids.len()];
        let key = keys[i % keys.len()];
        i += 1;
        std::hint::black_box(net.lookup_fast(from, key).expect("converged ring"));
    });
    let sc = SyntheticCorpus::generate(&CorpusConfig::small(5));
    let mut qsys = SpriteSystem::build(sc.corpus().clone(), 64, SpriteConfig::default(), 5);
    qsys.publish_all();
    let seeds = sc.seed_queries();
    let mut i = 0usize;
    let query_ns = time_ns(|| {
        let q = &seeds[i % seeds.len()].query;
        i += 1;
        std::hint::black_box(qsys.issue_query(std::hint::black_box(q), 20));
    });
    let engine = CentralizedEngine::build(sc.corpus());
    let mut i = 0usize;
    let central_ns = time_ns(|| {
        let q = &seeds[i % seeds.len()].query;
        i += 1;
        std::hint::black_box(engine.search(std::hint::black_box(q), 20));
    });
    eprintln!(
        "# micro: md5/64KiB {md5_ns} ns, lookup/1024p {lookup_ns} ns, \
         query {query_ns} ns, centralized {central_ns} ns"
    );

    // ------------------------------------------------------------------
    // Report.
    // ------------------------------------------------------------------
    let mut j = Json::new();
    j.field(1, "schema", "\"sprite-bench/v1\"", false);
    j.field(1, "scale", &format!("\"{scale}\""), false);
    j.field(1, "cores", &cores.to_string(), false);
    j.open(1, "figures_ms");
    j.field(2, "world_build", &world_ms.to_string(), false);
    j.field(2, "fig4a", &fig4a_ms.to_string(), false);
    j.field(2, "fig4b", &fig4b_ms.to_string(), false);
    j.field(2, "fig4c", &fig4c_ms.to_string(), false);
    j.field(2, "churn", &churn_ms.to_string(), false);
    j.field(2, "standard_system", &train_ms.to_string(), true);
    j.close(1, false);
    j.open(1, "churn");
    j.field(2, "ticks", &churn_ticks.to_string(), false);
    let n_points = churn.points.len();
    for (i, p) in churn.points.iter().enumerate() {
        let key = format!(
            "r{}_rate{}",
            p.replication,
            (p.churn_rate * 100.0).round() as i64
        );
        j.open(2, &key);
        j.field(3, "precision", &format!("{:.4}", p.precision), false);
        j.field(3, "recall", &format!("{:.4}", p.recall), false);
        j.field(3, "retention", &format!("{:.4}", p.retention), false);
        j.field(
            3,
            "messages_per_query",
            &format!("{:.1}", p.messages_per_query),
            false,
        );
        j.field(3, "peers_after", &p.peers_after.to_string(), true);
        j.close(2, i + 1 == n_points);
    }
    j.close(1, false);
    // `evaluate` mirrors the headline throughput numbers in the shape the
    // old sequential-vs-parallel object used, with the workers actually
    // used by each measurement spelled out per side.
    j.open(1, "evaluate");
    j.field(2, "queries", &throughput.queries.to_string(), false);
    j.field(2, "k", &throughput.k.to_string(), false);
    j.field(2, "repetitions", &throughput.repetitions.to_string(), false);
    j.field(
        2,
        "sequential_ms",
        &throughput.reference_ms.to_string(),
        false,
    );
    j.field(
        2,
        "sequential_workers",
        &throughput.reference_workers.to_string(),
        false,
    );
    j.field(2, "parallel_ms", &throughput.batched_ms.to_string(), false);
    j.field(
        2,
        "parallel_workers",
        &throughput.batched_workers.to_string(),
        false,
    );
    j.field(
        2,
        "speedup",
        &format!("{:.2}", throughput.speedup_vs_reference),
        false,
    );
    j.field(
        2,
        "bit_identical",
        &throughput.bit_identical.to_string(),
        true,
    );
    j.close(1, false);
    j.field(
        1,
        "throughput",
        &sprite_bench::metrics::throughput_json(&throughput, 1),
        false,
    );
    j.field(
        1,
        "metrics",
        &sprite_bench::metrics::metrics_json(&metrics, 1),
        false,
    );
    j.field(
        1,
        "loss",
        &sprite_bench::metrics::loss_json(&loss, 1),
        false,
    );
    j.field(
        1,
        "freshness",
        &sprite_bench::metrics::freshness_json(&freshness, 1),
        false,
    );
    j.field(
        1,
        "memory",
        &sprite_bench::metrics::memory_json(&memory, 1),
        false,
    );
    j.open(1, "micro_ns");
    j.field(2, "md5_64kib", &md5_ns.to_string(), false);
    j.field(2, "chord_lookup_1024_peers", &lookup_ns.to_string(), false);
    j.field(2, "distributed_query_top20", &query_ns.to_string(), false);
    j.field(2, "centralized_search_top20", &central_ns.to_string(), true);
    j.close(1, true);
    let body = j.finish();

    match std::fs::write(&out_path, &body) {
        Ok(()) => eprintln!("# wrote {out_path}"),
        Err(e) => {
            eprintln!("# FAILED writing {out_path}: {e}");
            std::process::exit(2);
        }
    }
    print!("{body}");
    assert!(
        throughput.bit_identical,
        "the batched pipeline diverged from the sequential reference"
    );
    assert!(
        loss.points.iter().any(|p| p.loss > 0.0 && p.timeouts > 0),
        "the lossy sweep points billed no timeouts — drops are not surfacing"
    );
    assert!(
        freshness
            .points
            .iter()
            .all(|p| p.deleted_doc_hits == 0 && p.pending_tombstones == 0),
        "the freshness sweep violated a lifecycle invariant"
    );
    assert!(
        freshness.cost.savings_ratio >= sprite_bench::metrics::UPDATE_SAVINGS_FLOOR,
        "incremental updates did not beat delete+republish: {:.3}",
        freshness.cost.savings_ratio
    );
}
