//! Figure 4(a): precision & recall ratio (over centralized) vs number of
//! answers K, SPRITE (20 learned terms) vs basic eSearch (20 static terms).
//!
//! Run: `cargo run -p sprite-bench --bin fig4a --release`
//! (set `SPRITE_SCALE=small` for a quick pass).

use sprite_bench::{build_world, print_table, r3};
use sprite_core::fig4a;

fn main() {
    let world = build_world(42);
    let answers = [5usize, 10, 15, 20, 25, 30];
    let t0 = std::time::Instant::now();
    let fig = fig4a(&world, &answers);
    eprintln!("# fig4a computed in {:.1?}", t0.elapsed());

    let rows: Vec<Vec<String>> = answers
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            vec![
                k.to_string(),
                r3(fig.sprite[i].precision),
                r3(fig.esearch[i].precision),
                r3(fig.sprite[i].recall),
                r3(fig.esearch[i].recall),
            ]
        })
        .collect();
    print_table(
        "Figure 4(a) — effectiveness ratio vs number of answers (20 indexed terms)",
        &["answers", "SPRITE P", "eSearch P", "SPRITE R", "eSearch R"],
        &rows,
    );
    println!(
        "\npaper shape: eSearch ahead at K<=10, SPRITE ahead at K>=15; \
         SPRITE roughly flat (~0.85-0.9), eSearch degrading with K"
    );
}
