//! Figure 4(b): precision ratio vs number of indexed terms, under the
//! `w/o-r` (no repeats) and `w-zipf` (Zipf 0.5) query schedules.
//!
//! Run: `cargo run -p sprite-bench --bin fig4b --release`

use sprite_bench::{build_world, print_table, r3};
use sprite_core::fig4b;

fn main() {
    let world = build_world(42);
    let budgets = [5usize, 10, 15, 20, 25, 30];
    let t0 = std::time::Instant::now();
    let fig = fig4b(&world, &budgets, 20);
    eprintln!("# fig4b computed in {:.1?}", t0.elapsed());

    let rows: Vec<Vec<String>> = budgets
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            vec![
                b.to_string(),
                r3(fig.sprite_wor[i].precision),
                r3(fig.sprite_zipf[i].precision),
                r3(fig.esearch[i].precision),
            ]
        })
        .collect();
    print_table(
        "Figure 4(b) — precision ratio vs number of indexed terms (top-20 answers)",
        &["terms", "SPRITE w/o-r", "SPRITE w-zipf", "eSearch"],
        &rows,
    );
    println!(
        "\npaper shape: equal at 5 terms (no learning yet); SPRITE >= eSearch \
         everywhere after; SPRITE@20 ~ eSearch@30"
    );
}
