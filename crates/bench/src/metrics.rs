//! The machine-readable `metrics` object and the regression-gate
//! comparison.
//!
//! [`collect_metrics`] runs the §6.2 standard deployment through a traced
//! evaluation of the full test split and packages everything deterministic
//! about it: the precision/recall ratios (exact to the bit at equal seeds),
//! the per-[`MsgKind`] message bill *and* payload-byte bill, per-phase
//! event counts, and the three cost histograms (hops per lookup, messages
//! per query, replicas probed).
//! `--bin bench` embeds the object in `BENCH_experiments.json`; `--bin
//! gate` recomputes it from a fresh run and diffs it against the committed
//! baseline with [`compare_against_baseline`], failing CI on any drift.
//!
//! Tolerances are declared here, next to the comparison that uses them:
//! ratios must agree within [`RATIO_TOLERANCE`] (they are deterministic;
//! the slack only absorbs the 12-digit decimal round-trip through JSON),
//! and every integer — counts, histogram buckets, sums — must agree within
//! [`COUNT_TOLERANCE`], which is zero: the simulation has no legitimate
//! source of count jitter.

use std::fmt::Write as _;

use sprite_chord::{MsgKind, Phase, TraceRecorder};
use sprite_core::{SpriteConfig, World};
use sprite_corpus::Schedule;
use sprite_util::Histogram;

use crate::json::JsonValue;

/// Absolute tolerance for precision/recall ratios: deterministic values
/// that only round-trip through a 12-decimal JSON rendering.
pub const RATIO_TOLERANCE: f64 = 1e-9;

/// Absolute tolerance for every integer metric. Zero by design: message
/// counts and histogram buckets are exactly reproducible at equal seeds.
pub const COUNT_TOLERANCE: u64 = 0;

/// The answer-list size the metrics evaluation uses (the paper's K = 20).
pub const METRICS_K: usize = 20;

/// A histogram flattened for serialization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSummary {
    /// Every bucket, last one the overflow bucket.
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistSummary {
    fn of(h: &Histogram) -> Self {
        HistSummary {
            buckets: h.buckets().to_vec(),
            count: h.count(),
            sum: h.sum(),
            max: h.max(),
        }
    }
}

/// Everything deterministic about a traced standard-system evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct Metrics {
    /// Test queries evaluated.
    pub queries: u64,
    /// Answer-list size.
    pub k: usize,
    /// Precision ratio over the centralized reference.
    pub precision_ratio: f64,
    /// Recall ratio over the centralized reference.
    pub recall_ratio: f64,
    /// Total traced events.
    pub events: u64,
    /// Per-kind message counts, in [`MsgKind::all`] order.
    pub kind_counts: Vec<(&'static str, u64)>,
    /// Per-kind payload bytes, in [`MsgKind::all`] order. Control kinds
    /// (hops, failures, maintenance probes) are 0 by the wire model.
    pub kind_bytes: Vec<(&'static str, u64)>,
    /// Total payload bytes across all kinds.
    pub total_bytes: u64,
    /// Per-phase event counts, in [`Phase::all`] order.
    pub phase_events: Vec<(&'static str, u64)>,
    /// Hops per completed lookup.
    pub hops_per_lookup: HistSummary,
    /// Messages billed per query.
    pub messages_per_query: HistSummary,
    /// Failover replicas probed per query.
    pub replicas_probed: HistSummary,
}

/// Build the §6.2 standard deployment (SPRITE defaults, `w/o-r` schedule),
/// reset its message bill, and run a traced evaluation of the full test
/// split at K = [`METRICS_K`]. Both `--bin bench` and `--bin gate` call
/// this, so the committed object and the gate's fresh run are computed by
/// the same code path.
#[must_use]
pub fn collect_metrics(world: &World) -> Metrics {
    let mut sys = world.standard_system(SpriteConfig::default(), Schedule::WithoutRepeats);
    sys.net_mut().reset_stats();
    let (ratios, rec) = world.evaluate_traced(&mut sys, &world.test, METRICS_K);
    metrics_from(world.test.len() as u64, &ratios_pair(&ratios), &rec)
}

fn ratios_pair(r: &sprite_ir::RatioEval) -> (f64, f64) {
    (r.precision_ratio, r.recall_ratio)
}

fn metrics_from(queries: u64, &(precision, recall): &(f64, f64), rec: &TraceRecorder) -> Metrics {
    Metrics {
        queries,
        k: METRICS_K,
        precision_ratio: precision,
        recall_ratio: recall,
        events: rec.events(),
        kind_counts: MsgKind::all()
            .iter()
            .map(|&k| (k.name(), rec.kind_count(k)))
            .collect(),
        kind_bytes: MsgKind::all()
            .iter()
            .map(|&k| (k.name(), rec.kind_bytes(k)))
            .collect(),
        total_bytes: rec.total_bytes(),
        phase_events: Phase::all()
            .iter()
            .map(|&p| (p.name(), rec.phase_count(p)))
            .collect(),
        hops_per_lookup: HistSummary::of(rec.hops_per_lookup()),
        messages_per_query: HistSummary::of(rec.messages_per_query()),
        replicas_probed: HistSummary::of(rec.replicas_probed()),
    }
}

fn write_hist(out: &mut String, pad: &str, key: &str, h: &HistSummary, last: bool) {
    let comma = if last { "" } else { "," };
    let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
    let _ = writeln!(out, "{pad}\"{key}\": {{");
    let _ = writeln!(out, "{pad}  \"buckets\": [{}],", buckets.join(", "));
    let _ = writeln!(out, "{pad}  \"count\": {},", h.count);
    let _ = writeln!(out, "{pad}  \"sum\": {},", h.sum);
    let _ = writeln!(out, "{pad}  \"max\": {}", h.max);
    let _ = writeln!(out, "{pad}}}{comma}");
}

/// Serialize a [`Metrics`] as a JSON object value, indented so it nests at
/// `indent` levels (the opening brace is unindented: it follows the key on
/// the same line). The trailing brace carries no newline or comma — the
/// caller's serializer adds those.
#[must_use]
pub fn metrics_json(m: &Metrics, indent: usize) -> String {
    let pad = "  ".repeat(indent + 1);
    let mut out = String::from("{\n");
    let _ = writeln!(out, "{pad}\"queries\": {},", m.queries);
    let _ = writeln!(out, "{pad}\"k\": {},", m.k);
    let _ = writeln!(out, "{pad}\"precision_ratio\": {:.12},", m.precision_ratio);
    let _ = writeln!(out, "{pad}\"recall_ratio\": {:.12},", m.recall_ratio);
    let _ = writeln!(out, "{pad}\"events\": {},", m.events);
    let _ = writeln!(out, "{pad}\"kind_counts\": {{");
    for (i, (name, count)) in m.kind_counts.iter().enumerate() {
        let comma = if i + 1 == m.kind_counts.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(out, "{pad}  \"{name}\": {count}{comma}");
    }
    let _ = writeln!(out, "{pad}}},");
    let _ = writeln!(out, "{pad}\"kind_bytes\": {{");
    for (i, (name, bytes)) in m.kind_bytes.iter().enumerate() {
        let comma = if i + 1 == m.kind_bytes.len() { "" } else { "," };
        let _ = writeln!(out, "{pad}  \"{name}\": {bytes}{comma}");
    }
    let _ = writeln!(out, "{pad}}},");
    let _ = writeln!(out, "{pad}\"total_bytes\": {},", m.total_bytes);
    let _ = writeln!(out, "{pad}\"phase_events\": {{");
    for (i, (name, count)) in m.phase_events.iter().enumerate() {
        let comma = if i + 1 == m.phase_events.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(out, "{pad}  \"{name}\": {count}{comma}");
    }
    let _ = writeln!(out, "{pad}}},");
    write_hist(&mut out, &pad, "hops_per_lookup", &m.hops_per_lookup, false);
    write_hist(
        &mut out,
        &pad,
        "messages_per_query",
        &m.messages_per_query,
        false,
    );
    write_hist(&mut out, &pad, "replicas_probed", &m.replicas_probed, true);
    let _ = write!(out, "{}}}", "  ".repeat(indent));
    out
}

fn diff_f64(diffs: &mut Vec<String>, path: &str, baseline: Option<f64>, current: f64) {
    match baseline {
        None => diffs.push(format!("{path}: missing from baseline")),
        Some(b) if (b - current).abs() > RATIO_TOLERANCE => diffs.push(format!(
            "{path}: baseline {b:.12}, current {current:.12} (|delta| {:.3e} > {RATIO_TOLERANCE:.0e})",
            (b - current).abs()
        )),
        Some(_) => {}
    }
}

fn diff_u64(diffs: &mut Vec<String>, path: &str, baseline: Option<u64>, current: u64) {
    match baseline {
        None => diffs.push(format!("{path}: missing from baseline")),
        Some(b) if b.abs_diff(current) > COUNT_TOLERANCE => diffs.push(format!(
            "{path}: baseline {b}, current {current} (delta {})",
            current as i128 - b as i128
        )),
        Some(_) => {}
    }
}

fn diff_hist(
    diffs: &mut Vec<String>,
    path: &str,
    baseline: Option<&JsonValue>,
    current: &HistSummary,
) {
    let Some(b) = baseline else {
        diffs.push(format!("{path}: missing from baseline"));
        return;
    };
    match b.get("buckets").and_then(JsonValue::as_arr) {
        None => diffs.push(format!("{path}.buckets: missing from baseline")),
        Some(arr) => {
            if arr.len() != current.buckets.len() {
                diffs.push(format!(
                    "{path}.buckets: baseline has {} buckets, current {}",
                    arr.len(),
                    current.buckets.len()
                ));
            } else {
                for (i, (bv, &cv)) in arr.iter().zip(&current.buckets).enumerate() {
                    diff_u64(diffs, &format!("{path}.buckets[{i}]"), bv.as_u64(), cv);
                }
            }
        }
    }
    diff_u64(
        diffs,
        &format!("{path}.count"),
        b.get("count").and_then(JsonValue::as_u64),
        current.count,
    );
    diff_u64(
        diffs,
        &format!("{path}.sum"),
        b.get("sum").and_then(JsonValue::as_u64),
        current.sum,
    );
    diff_u64(
        diffs,
        &format!("{path}.max"),
        b.get("max").and_then(JsonValue::as_u64),
        current.max,
    );
}

/// Diff freshly computed [`Metrics`] against a parsed
/// `BENCH_experiments.json` document. Returns one human-readable line per
/// divergence (empty means the gate passes): ratios within
/// [`RATIO_TOLERANCE`], every count and histogram bucket within
/// [`COUNT_TOLERANCE`].
#[must_use]
pub fn compare_against_baseline(current: &Metrics, baseline: &JsonValue) -> Vec<String> {
    let mut diffs = Vec::new();
    let Some(m) = baseline.get("metrics") else {
        diffs.push(
            "metrics: object missing from baseline (regenerate BENCH_experiments.json with \
             --bin bench)"
                .to_string(),
        );
        return diffs;
    };
    let f = |key: &str| m.get(key).and_then(JsonValue::as_f64);
    let u = |key: &str| m.get(key).and_then(JsonValue::as_u64);
    diff_u64(&mut diffs, "metrics.queries", u("queries"), current.queries);
    diff_u64(&mut diffs, "metrics.k", u("k"), current.k as u64);
    diff_f64(
        &mut diffs,
        "metrics.precision_ratio",
        f("precision_ratio"),
        current.precision_ratio,
    );
    diff_f64(
        &mut diffs,
        "metrics.recall_ratio",
        f("recall_ratio"),
        current.recall_ratio,
    );
    diff_u64(&mut diffs, "metrics.events", u("events"), current.events);
    for (name, count) in &current.kind_counts {
        diff_u64(
            &mut diffs,
            &format!("metrics.kind_counts.{name}"),
            m.path(&["kind_counts", name]).and_then(JsonValue::as_u64),
            *count,
        );
    }
    for (name, bytes) in &current.kind_bytes {
        diff_u64(
            &mut diffs,
            &format!("metrics.kind_bytes.{name}"),
            m.path(&["kind_bytes", name]).and_then(JsonValue::as_u64),
            *bytes,
        );
    }
    diff_u64(
        &mut diffs,
        "metrics.total_bytes",
        u("total_bytes"),
        current.total_bytes,
    );
    for (name, count) in &current.phase_events {
        diff_u64(
            &mut diffs,
            &format!("metrics.phase_events.{name}"),
            m.path(&["phase_events", name]).and_then(JsonValue::as_u64),
            *count,
        );
    }
    diff_hist(
        &mut diffs,
        "metrics.hops_per_lookup",
        m.get("hops_per_lookup"),
        &current.hops_per_lookup,
    );
    diff_hist(
        &mut diffs,
        "metrics.messages_per_query",
        m.get("messages_per_query"),
        &current.messages_per_query,
    );
    diff_hist(
        &mut diffs,
        "metrics.replicas_probed",
        m.get("replicas_probed"),
        &current.replicas_probed,
    );
    diffs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use sprite_core::WorldConfig;

    fn doc_for(m: &Metrics) -> String {
        format!(
            "{{\n  \"schema\": \"sprite-bench/v1\",\n  \"metrics\": {}\n}}\n",
            metrics_json(m, 1)
        )
    }

    #[test]
    fn metrics_round_trip_matches_itself() {
        let world = World::build(WorldConfig::tiny(7));
        let m = collect_metrics(&world);
        assert_eq!(m.queries, world.test.len() as u64);
        assert!(m.events > 0, "a traced evaluation must observe events");
        assert!(
            m.total_bytes > 0,
            "query fetches must bill payload bytes during evaluation"
        );
        assert_eq!(
            m.total_bytes,
            m.kind_bytes.iter().map(|&(_, b)| b).sum::<u64>(),
            "total must equal the per-kind sum"
        );
        let baseline = json::parse(&doc_for(&m)).expect("serializer emits valid JSON");
        let diffs = compare_against_baseline(&m, &baseline);
        assert!(diffs.is_empty(), "self-comparison must be clean: {diffs:?}");
    }

    #[test]
    fn gate_catches_a_perturbed_baseline() {
        let world = World::build(WorldConfig::tiny(7));
        let m = collect_metrics(&world);
        // Perturb one message count, one ratio, and one histogram bucket.
        let hop_count = m.kind_counts[0].1;
        let doc = doc_for(&m)
            .replacen(
                &format!("\"lookup_hop\": {hop_count}"),
                &format!("\"lookup_hop\": {}", hop_count + 1),
                1,
            )
            .replacen(
                &format!("{:.12}", m.precision_ratio),
                &format!("{:.12}", m.precision_ratio + 1e-6),
                1,
            )
            .replacen(
                &format!("\"total_bytes\": {}", m.total_bytes),
                &format!("\"total_bytes\": {}", m.total_bytes + 1),
                1,
            );
        let baseline = json::parse(&doc).expect("perturbed document still parses");
        let diffs = compare_against_baseline(&m, &baseline);
        assert!(
            diffs.iter().any(|d| d.contains("kind_counts.lookup_hop")),
            "perturbed count not caught: {diffs:?}"
        );
        assert!(
            diffs.iter().any(|d| d.contains("precision_ratio")),
            "perturbed ratio not caught: {diffs:?}"
        );
        assert!(
            diffs.iter().any(|d| d.contains("total_bytes")),
            "perturbed byte total not caught: {diffs:?}"
        );
    }

    #[test]
    fn missing_metrics_object_is_one_readable_diff() {
        let world = World::build(WorldConfig::tiny(7));
        let m = collect_metrics(&world);
        let baseline = json::parse("{\"schema\": \"sprite-bench/v1\"}").expect("valid");
        let diffs = compare_against_baseline(&m, &baseline);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("regenerate"));
    }

    #[test]
    fn metrics_are_reproducible_at_equal_seeds() {
        let w1 = World::build(WorldConfig::tiny(11));
        let w2 = World::build(WorldConfig::tiny(11));
        assert_eq!(collect_metrics(&w1), collect_metrics(&w2));
    }
}
