//! The machine-readable `metrics` object and the regression-gate
//! comparison.
//!
//! [`collect_metrics`] runs the §6.2 standard deployment through a traced
//! evaluation of the full test split and packages everything deterministic
//! about it: the precision/recall ratios (exact to the bit at equal seeds),
//! the per-[`MsgKind`] message bill *and* payload-byte bill, per-phase
//! event counts, and the three cost histograms (hops per lookup, messages
//! per query, replicas probed).
//! `--bin bench` embeds the object in `BENCH_experiments.json`; `--bin
//! gate` recomputes it from a fresh run and diffs it against the committed
//! baseline with [`compare_against_baseline`], failing CI on any drift.
//!
//! Tolerances are declared here, next to the comparison that uses them:
//! ratios must agree within [`RATIO_TOLERANCE`] (they are deterministic;
//! the slack only absorbs the 12-digit decimal round-trip through JSON),
//! and every integer — counts, histogram buckets, sums — must agree within
//! [`COUNT_TOLERANCE`], which is zero: the simulation has no legitimate
//! source of count jitter.

use std::fmt::Write as _;
use std::time::Instant;

use sprite_chord::{MsgKind, Phase, StorageBackend, TraceRecorder};
use sprite_core::{
    freshness_figure, loss_figure, FreshnessFigure, LossFigure, SpriteConfig, SpriteSystem, World,
};
use sprite_corpus::Schedule;
use sprite_util::{override_threads, Histogram};

use crate::json::JsonValue;

/// Absolute tolerance for precision/recall ratios: deterministic values
/// that only round-trip through a 12-decimal JSON rendering.
pub const RATIO_TOLERANCE: f64 = 1e-9;

/// Absolute tolerance for every integer metric. Zero by design: message
/// counts and histogram buckets are exactly reproducible at equal seeds.
pub const COUNT_TOLERANCE: u64 = 0;

/// Relative band for throughput comparisons. Queries/sec and the speedup
/// ratio are the only gated quantities that involve wall-clock time, so
/// the band is wide: the gate fires only when the current run falls below
/// `baseline * (1 - THROUGHPUT_TOLERANCE)` — a real regression, not
/// scheduler jitter. Improvements always pass. Raw millisecond fields are
/// advisory and never compared.
pub const THROUGHPUT_TOLERANCE: f64 = 0.5;

/// The answer-list size the metrics evaluation uses (the paper's K = 20).
pub const METRICS_K: usize = 20;

/// Bernoulli loss rates swept by the committed loss study. 0.0 anchors
/// the lossless baseline; the lossy points must bill real timeouts.
pub const LOSS_RATES: [f64; 3] = [0.0, 0.02, 0.05];

/// Replication degrees swept by the committed loss study: unreplicated
/// versus the §7 default of 3, to show replication absorbing loss.
pub const LOSS_REPLS: [usize; 2] = [1, 3];

/// Document-churn rates swept by the committed freshness study. 0.0
/// anchors the frozen-corpus baseline (zero events, zero staleness); the
/// churned point exercises the full insert/update/delete lifecycle.
pub const FRESHNESS_RATES: [f64; 2] = [0.0, 0.5];

/// Replication degrees swept by the committed freshness study:
/// unreplicated versus the §7 default of 3, to show deletions clearing
/// from replicas too.
pub const FRESHNESS_REPLS: [usize; 2] = [1, 3];

/// Document-churn ticks per freshness point. A maintenance round runs
/// every second tick plus a closing round, so every tombstone raised by
/// the stream is reclaimed before evaluation.
pub const FRESHNESS_TICKS: usize = 6;

/// Acceptance floor for the incremental-update savings ratio: the
/// diff-only publication path must bill at least this fraction fewer
/// bytes than delete+republish of the same edits.
pub const UPDATE_SAVINGS_FLOOR: f64 = 0.30;

/// A histogram flattened for serialization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSummary {
    /// Every bucket, last one the overflow bucket.
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistSummary {
    fn of(h: &Histogram) -> Self {
        HistSummary {
            buckets: h.buckets().to_vec(),
            count: h.count(),
            sum: h.sum(),
            max: h.max(),
        }
    }
}

/// Everything deterministic about a traced standard-system evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct Metrics {
    /// Test queries evaluated.
    pub queries: u64,
    /// Answer-list size.
    pub k: usize,
    /// Precision ratio over the centralized reference.
    pub precision_ratio: f64,
    /// Recall ratio over the centralized reference.
    pub recall_ratio: f64,
    /// Total traced events.
    pub events: u64,
    /// Per-kind message counts, in [`MsgKind::all`] order.
    pub kind_counts: Vec<(&'static str, u64)>,
    /// Per-kind payload bytes, in [`MsgKind::all`] order. Control kinds
    /// (hops, failures, maintenance probes) are 0 by the wire model.
    pub kind_bytes: Vec<(&'static str, u64)>,
    /// Total payload bytes across all kinds.
    pub total_bytes: u64,
    /// Per-phase event counts, in [`Phase::all`] order.
    pub phase_events: Vec<(&'static str, u64)>,
    /// Hops per completed lookup.
    pub hops_per_lookup: HistSummary,
    /// Messages billed per query.
    pub messages_per_query: HistSummary,
    /// Failover replicas probed per query.
    pub replicas_probed: HistSummary,
}

/// Build the §6.2 standard deployment (SPRITE defaults, `w/o-r` schedule),
/// reset its message bill, and run a traced evaluation of the full test
/// split at K = [`METRICS_K`]. Both `--bin bench` and `--bin gate` call
/// this, so the committed object and the gate's fresh run are computed by
/// the same code path.
#[must_use]
pub fn collect_metrics(world: &World) -> Metrics {
    let mut sys = world.standard_system(SpriteConfig::default(), Schedule::WithoutRepeats);
    sys.net_mut().reset_stats();
    let (ratios, mut rec) = world.evaluate_traced(&mut sys, &world.test, METRICS_K);
    // Exercise the removal path too: retire the first published document
    // after the evaluation, so the committed object carries a real
    // `index_remove` bill instead of a structurally-zero row. The ratios
    // above are already computed, so the probe cannot perturb them.
    let retired = (0..sys.corpus().len())
        .map(|i| sprite_ir::DocId(i as u32))
        .find(|&d| !sys.published_terms(d).is_empty());
    if let Some(doc) = retired {
        sys.enable_tracing();
        sys.unpublish_document(doc);
        if let Some(removal) = sys.take_tracer() {
            rec.merge(&removal);
        }
    }
    metrics_from(world.test.len() as u64, &ratios_pair(&ratios), &rec)
}

fn ratios_pair(r: &sprite_ir::RatioEval) -> (f64, f64) {
    (r.precision_ratio, r.recall_ratio)
}

fn metrics_from(queries: u64, &(precision, recall): &(f64, f64), rec: &TraceRecorder) -> Metrics {
    Metrics {
        queries,
        k: METRICS_K,
        precision_ratio: precision,
        recall_ratio: recall,
        events: rec.events(),
        kind_counts: MsgKind::all()
            .iter()
            .map(|&k| (k.name(), rec.kind_count(k)))
            .collect(),
        kind_bytes: MsgKind::all()
            .iter()
            .map(|&k| (k.name(), rec.kind_bytes(k)))
            .collect(),
        total_bytes: rec.total_bytes(),
        phase_events: Phase::all()
            .iter()
            .map(|&p| (p.name(), rec.phase_count(p)))
            .collect(),
        hops_per_lookup: HistSummary::of(rec.hops_per_lookup()),
        messages_per_query: HistSummary::of(rec.messages_per_query()),
        replicas_probed: HistSummary::of(rec.replicas_probed()),
    }
}

/// One point of the thread sweep: the batched pipeline timed at a fixed
/// worker count.
#[derive(Clone, Debug, PartialEq)]
pub struct ThroughputPoint {
    /// Pool workers actually used for this measurement.
    pub workers: usize,
    /// Mean wall-clock milliseconds per full-workload evaluation.
    pub ms_per_eval: f64,
    /// Queries served per second at this width.
    pub queries_per_sec: f64,
    /// `queries_per_sec / (one-worker queries_per_sec × workers)`: 1.0 is
    /// perfect scaling, and on a single-core host every multi-worker point
    /// is expected to sit well below it.
    pub efficiency: f64,
}

/// The headline throughput object: the batched query pipeline measured
/// against the sequential unbatched reference, plus a worker-count sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct Throughput {
    /// Queries per evaluation (the full generated workload — serving
    /// throughput is about volume, so the batch is every query the world
    /// has, not just the held-out test half).
    pub queries: u64,
    /// Answer-list size.
    pub k: usize,
    /// Timed repetitions per measurement (self-calibrated).
    pub repetitions: usize,
    /// `available_parallelism` of the measuring host.
    pub cores: usize,
    /// Workers used by the reference measurement (always 1).
    pub reference_workers: usize,
    /// Milliseconds per evaluation through [`World::evaluate_reference`]
    /// — the sequential, unbatched, per-query path.
    pub reference_ms: f64,
    /// Queries per second through the reference path.
    pub reference_qps: f64,
    /// Workers used by the headline batched measurement.
    pub batched_workers: usize,
    /// Milliseconds per evaluation through the batched pipeline.
    pub batched_ms: f64,
    /// Queries per second through the batched pipeline.
    pub batched_qps: f64,
    /// `batched_qps / reference_qps` — the headline speedup.
    pub speedup_vs_reference: f64,
    /// True when the batched pipeline reproduced the reference evaluation
    /// bit for bit (ratio float bits and the full merged stats ledger).
    pub bit_identical: bool,
    /// The batched pipeline at 1/2/`batched_workers` pool workers.
    pub sweep: Vec<ThroughputPoint>,
}

/// Mean milliseconds per call over `reps` invocations, three decimals.
fn time_reps(reps: usize, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    (t0.elapsed().as_secs_f64() * 1000.0 / reps as f64 * 1000.0).round() / 1000.0
}

fn qps(queries: u64, ms_per_eval: f64) -> f64 {
    (queries as f64 * 1000.0 / ms_per_eval.max(1e-6) * 10.0).round() / 10.0
}

/// Measure the headline throughput object on a freshly trained standard
/// deployment: the sequential unbatched reference at one worker versus the
/// batched pipeline at `headline_workers`, plus a 1/2/`headline_workers`
/// sweep of the batched pipeline. Also verifies the bit-identity contract
/// the determinism auditor enforces — identical ratio bits and merged
/// stats across the two paths. `--bin bench` embeds the result in
/// `BENCH_experiments.json`; `--bin gate` recomputes it and band-compares
/// the speed figures with [`compare_throughput`].
#[must_use]
pub fn measure_throughput(world: &World, headline_workers: usize) -> Throughput {
    let mut sys = world.standard_system(SpriteConfig::default(), Schedule::WithoutRepeats);
    // Serve the whole generated workload per evaluation: throughput is a
    // volume measurement, and the bigger batch amortizes the pool's
    // fixed spawn cost the way a real serving window would.
    let indices: Vec<usize> = (0..world.workload.len()).collect();
    let queries = indices.len() as u64;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // Bit-identity first: one reference pass and one batched pass from a
    // clean ledger each, compared on exact float bits and full stats.
    let prev = override_threads(1);
    sys.net_mut().reset_stats();
    let (r_ref, first_ms) = {
        let t0 = Instant::now();
        let r = world.evaluate_reference(&mut sys, &indices, METRICS_K);
        (r, t0.elapsed().as_secs_f64() * 1000.0)
    };
    let stats_ref = sys.net().stats().clone();
    override_threads(headline_workers);
    sys.net_mut().reset_stats();
    let r_bat = world.evaluate(&mut sys, &indices, METRICS_K);
    let stats_bat = sys.net().stats().clone();
    let bit_identical = r_ref.precision_ratio.to_bits() == r_bat.precision_ratio.to_bits()
        && r_ref.recall_ratio.to_bits() == r_bat.recall_ratio.to_bits()
        && r_ref.queries == r_bat.queries
        && stats_ref == stats_bat;

    // One evaluation at small scale is milliseconds; repeat until each
    // timing is dominated by the work, not the clock.
    let repetitions = ((250.0 / first_ms.max(0.1)).ceil() as usize).clamp(1, 500);
    override_threads(1);
    let reference_ms = time_reps(repetitions, || {
        std::hint::black_box(world.evaluate_reference(&mut sys, &indices, METRICS_K));
    });

    let mut widths = vec![1usize, 2, headline_workers];
    widths.sort_unstable();
    widths.dedup();
    let mut sweep = Vec::with_capacity(widths.len());
    for &workers in &widths {
        override_threads(workers);
        let ms_per_eval = time_reps(repetitions, || {
            std::hint::black_box(world.evaluate(&mut sys, &indices, METRICS_K));
        });
        sweep.push(ThroughputPoint {
            workers,
            ms_per_eval,
            queries_per_sec: qps(queries, ms_per_eval),
            efficiency: 0.0,
        });
    }
    override_threads(prev);
    let base_qps = sweep[0].queries_per_sec;
    for p in &mut sweep {
        p.efficiency =
            (p.queries_per_sec / (base_qps * p.workers as f64).max(1e-6) * 1000.0).round() / 1000.0;
    }

    let batched = sweep
        .iter()
        .find(|p| p.workers == headline_workers)
        .expect("headline width is in the sweep")
        .clone();
    Throughput {
        queries,
        k: METRICS_K,
        repetitions,
        cores,
        reference_workers: 1,
        reference_ms,
        reference_qps: qps(queries, reference_ms),
        batched_workers: headline_workers,
        batched_ms: batched.ms_per_eval,
        batched_qps: batched.queries_per_sec,
        speedup_vs_reference: if batched.ms_per_eval > 0.0 {
            (reference_ms / batched.ms_per_eval * 100.0).round() / 100.0
        } else {
            0.0
        },
        bit_identical,
        sweep,
    }
}

/// Serialize a [`Throughput`] as a JSON object value, same conventions as
/// [`metrics_json`].
#[must_use]
pub fn throughput_json(t: &Throughput, indent: usize) -> String {
    let pad = "  ".repeat(indent + 1);
    let mut out = String::from("{\n");
    let _ = writeln!(out, "{pad}\"queries\": {},", t.queries);
    let _ = writeln!(out, "{pad}\"k\": {},", t.k);
    let _ = writeln!(out, "{pad}\"repetitions\": {},", t.repetitions);
    let _ = writeln!(out, "{pad}\"cores\": {},", t.cores);
    let _ = writeln!(out, "{pad}\"reference_workers\": {},", t.reference_workers);
    let _ = writeln!(out, "{pad}\"reference_ms\": {},", t.reference_ms);
    let _ = writeln!(out, "{pad}\"reference_qps\": {},", t.reference_qps);
    let _ = writeln!(out, "{pad}\"batched_workers\": {},", t.batched_workers);
    let _ = writeln!(out, "{pad}\"batched_ms\": {},", t.batched_ms);
    let _ = writeln!(out, "{pad}\"batched_qps\": {},", t.batched_qps);
    let _ = writeln!(
        out,
        "{pad}\"speedup_vs_reference\": {},",
        t.speedup_vs_reference
    );
    let _ = writeln!(out, "{pad}\"bit_identical\": {},", t.bit_identical);
    let _ = writeln!(out, "{pad}\"sweep\": [");
    for (i, p) in t.sweep.iter().enumerate() {
        let comma = if i + 1 == t.sweep.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "{pad}  {{\"workers\": {}, \"ms_per_eval\": {}, \"queries_per_sec\": {}, \
             \"efficiency\": {}}}{comma}",
            p.workers, p.ms_per_eval, p.queries_per_sec, p.efficiency
        );
    }
    let _ = writeln!(out, "{pad}]");
    let _ = write!(out, "{}}}", "  ".repeat(indent));
    out
}

/// Diff a freshly measured [`Throughput`] against the committed baseline.
/// Structure (queries, k, worker counts, sweep shape) and the
/// `bit_identical` flag are exact; `batched_qps` and
/// `speedup_vs_reference` are gated with the one-sided
/// [`THROUGHPUT_TOLERANCE`] band (only a drop below
/// `baseline × (1 − band)` fails); raw millisecond fields are advisory
/// and never compared.
#[must_use]
pub fn compare_throughput(current: &Throughput, baseline: &JsonValue) -> Vec<String> {
    let mut diffs = Vec::new();
    let Some(t) = baseline.get("throughput") else {
        diffs.push(
            "throughput: object missing from baseline (regenerate BENCH_experiments.json with \
             --bin bench)"
                .to_string(),
        );
        return diffs;
    };
    let u = |key: &str| t.get(key).and_then(JsonValue::as_u64);
    diff_u64(
        &mut diffs,
        "throughput.queries",
        u("queries"),
        current.queries,
    );
    diff_u64(&mut diffs, "throughput.k", u("k"), current.k as u64);
    diff_u64(
        &mut diffs,
        "throughput.reference_workers",
        u("reference_workers"),
        current.reference_workers as u64,
    );
    diff_u64(
        &mut diffs,
        "throughput.batched_workers",
        u("batched_workers"),
        current.batched_workers as u64,
    );
    if !current.bit_identical {
        diffs.push(
            "throughput.bit_identical: the batched pipeline diverged from the sequential \
             reference in this run"
                .to_string(),
        );
    }
    match t.get("bit_identical").and_then(JsonValue::as_bool) {
        None => diffs.push("throughput.bit_identical: missing from baseline".to_string()),
        Some(false) => {
            diffs.push("throughput.bit_identical: baseline recorded a divergent run".to_string());
        }
        Some(true) => {}
    }
    let mut band = |path: &str, baseline: Option<f64>, cur: f64| match baseline {
        None => diffs.push(format!("{path}: missing from baseline")),
        Some(b) if cur < b * (1.0 - THROUGHPUT_TOLERANCE) => diffs.push(format!(
            "{path}: baseline {b}, current {cur} — below the {:.0}% regression band",
            THROUGHPUT_TOLERANCE * 100.0
        )),
        Some(_) => {}
    };
    let f = |key: &str| t.get(key).and_then(JsonValue::as_f64);
    band(
        "throughput.batched_qps",
        f("batched_qps"),
        current.batched_qps,
    );
    band(
        "throughput.speedup_vs_reference",
        f("speedup_vs_reference"),
        current.speedup_vs_reference,
    );
    match t.get("sweep").and_then(JsonValue::as_arr) {
        None => diffs.push("throughput.sweep: missing from baseline".to_string()),
        Some(arr) if arr.len() != current.sweep.len() => diffs.push(format!(
            "throughput.sweep: baseline has {} points, current {}",
            arr.len(),
            current.sweep.len()
        )),
        Some(arr) => {
            for (i, (bp, cp)) in arr.iter().zip(&current.sweep).enumerate() {
                diff_u64(
                    &mut diffs,
                    &format!("throughput.sweep[{i}].workers"),
                    bp.get("workers").and_then(JsonValue::as_u64),
                    cp.workers as u64,
                );
            }
        }
    }
    diffs
}

fn write_hist(out: &mut String, pad: &str, key: &str, h: &HistSummary, last: bool) {
    let comma = if last { "" } else { "," };
    let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
    let _ = writeln!(out, "{pad}\"{key}\": {{");
    let _ = writeln!(out, "{pad}  \"buckets\": [{}],", buckets.join(", "));
    let _ = writeln!(out, "{pad}  \"count\": {},", h.count);
    let _ = writeln!(out, "{pad}  \"sum\": {},", h.sum);
    let _ = writeln!(out, "{pad}  \"max\": {}", h.max);
    let _ = writeln!(out, "{pad}}}{comma}");
}

/// Serialize a [`Metrics`] as a JSON object value, indented so it nests at
/// `indent` levels (the opening brace is unindented: it follows the key on
/// the same line). The trailing brace carries no newline or comma — the
/// caller's serializer adds those.
#[must_use]
pub fn metrics_json(m: &Metrics, indent: usize) -> String {
    let pad = "  ".repeat(indent + 1);
    let mut out = String::from("{\n");
    let _ = writeln!(out, "{pad}\"queries\": {},", m.queries);
    let _ = writeln!(out, "{pad}\"k\": {},", m.k);
    let _ = writeln!(out, "{pad}\"precision_ratio\": {:.12},", m.precision_ratio);
    let _ = writeln!(out, "{pad}\"recall_ratio\": {:.12},", m.recall_ratio);
    let _ = writeln!(out, "{pad}\"events\": {},", m.events);
    let _ = writeln!(out, "{pad}\"kind_counts\": {{");
    for (i, (name, count)) in m.kind_counts.iter().enumerate() {
        let comma = if i + 1 == m.kind_counts.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(out, "{pad}  \"{name}\": {count}{comma}");
    }
    let _ = writeln!(out, "{pad}}},");
    let _ = writeln!(out, "{pad}\"kind_bytes\": {{");
    for (i, (name, bytes)) in m.kind_bytes.iter().enumerate() {
        let comma = if i + 1 == m.kind_bytes.len() { "" } else { "," };
        let _ = writeln!(out, "{pad}  \"{name}\": {bytes}{comma}");
    }
    let _ = writeln!(out, "{pad}}},");
    let _ = writeln!(out, "{pad}\"total_bytes\": {},", m.total_bytes);
    let _ = writeln!(out, "{pad}\"phase_events\": {{");
    for (i, (name, count)) in m.phase_events.iter().enumerate() {
        let comma = if i + 1 == m.phase_events.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(out, "{pad}  \"{name}\": {count}{comma}");
    }
    let _ = writeln!(out, "{pad}}},");
    write_hist(&mut out, &pad, "hops_per_lookup", &m.hops_per_lookup, false);
    write_hist(
        &mut out,
        &pad,
        "messages_per_query",
        &m.messages_per_query,
        false,
    );
    write_hist(&mut out, &pad, "replicas_probed", &m.replicas_probed, true);
    let _ = write!(out, "{}}}", "  ".repeat(indent));
    out
}

fn diff_f64(diffs: &mut Vec<String>, path: &str, baseline: Option<f64>, current: f64) {
    match baseline {
        None => diffs.push(format!("{path}: missing from baseline")),
        Some(b) if (b - current).abs() > RATIO_TOLERANCE => diffs.push(format!(
            "{path}: baseline {b:.12}, current {current:.12} (|delta| {:.3e} > {RATIO_TOLERANCE:.0e})",
            (b - current).abs()
        )),
        Some(_) => {}
    }
}

fn diff_u64(diffs: &mut Vec<String>, path: &str, baseline: Option<u64>, current: u64) {
    match baseline {
        None => diffs.push(format!("{path}: missing from baseline")),
        Some(b) if b.abs_diff(current) > COUNT_TOLERANCE => diffs.push(format!(
            "{path}: baseline {b}, current {current} (delta {})",
            current as i128 - b as i128
        )),
        Some(_) => {}
    }
}

fn diff_hist(
    diffs: &mut Vec<String>,
    path: &str,
    baseline: Option<&JsonValue>,
    current: &HistSummary,
) {
    let Some(b) = baseline else {
        diffs.push(format!("{path}: missing from baseline"));
        return;
    };
    match b.get("buckets").and_then(JsonValue::as_arr) {
        None => diffs.push(format!("{path}.buckets: missing from baseline")),
        Some(arr) => {
            if arr.len() != current.buckets.len() {
                diffs.push(format!(
                    "{path}.buckets: baseline has {} buckets, current {}",
                    arr.len(),
                    current.buckets.len()
                ));
            } else {
                for (i, (bv, &cv)) in arr.iter().zip(&current.buckets).enumerate() {
                    diff_u64(diffs, &format!("{path}.buckets[{i}]"), bv.as_u64(), cv);
                }
            }
        }
    }
    diff_u64(
        diffs,
        &format!("{path}.count"),
        b.get("count").and_then(JsonValue::as_u64),
        current.count,
    );
    diff_u64(
        diffs,
        &format!("{path}.sum"),
        b.get("sum").and_then(JsonValue::as_u64),
        current.sum,
    );
    diff_u64(
        diffs,
        &format!("{path}.max"),
        b.get("max").and_then(JsonValue::as_u64),
        current.max,
    );
}

/// Diff freshly computed [`Metrics`] against a parsed
/// `BENCH_experiments.json` document. Returns one human-readable line per
/// divergence (empty means the gate passes): ratios within
/// [`RATIO_TOLERANCE`], every count and histogram bucket within
/// [`COUNT_TOLERANCE`].
#[must_use]
pub fn compare_against_baseline(current: &Metrics, baseline: &JsonValue) -> Vec<String> {
    let mut diffs = Vec::new();
    let Some(m) = baseline.get("metrics") else {
        diffs.push(
            "metrics: object missing from baseline (regenerate BENCH_experiments.json with \
             --bin bench)"
                .to_string(),
        );
        return diffs;
    };
    let f = |key: &str| m.get(key).and_then(JsonValue::as_f64);
    let u = |key: &str| m.get(key).and_then(JsonValue::as_u64);
    diff_u64(&mut diffs, "metrics.queries", u("queries"), current.queries);
    diff_u64(&mut diffs, "metrics.k", u("k"), current.k as u64);
    diff_f64(
        &mut diffs,
        "metrics.precision_ratio",
        f("precision_ratio"),
        current.precision_ratio,
    );
    diff_f64(
        &mut diffs,
        "metrics.recall_ratio",
        f("recall_ratio"),
        current.recall_ratio,
    );
    diff_u64(&mut diffs, "metrics.events", u("events"), current.events);
    for (name, count) in &current.kind_counts {
        diff_u64(
            &mut diffs,
            &format!("metrics.kind_counts.{name}"),
            m.path(&["kind_counts", name]).and_then(JsonValue::as_u64),
            *count,
        );
    }
    for (name, bytes) in &current.kind_bytes {
        diff_u64(
            &mut diffs,
            &format!("metrics.kind_bytes.{name}"),
            m.path(&["kind_bytes", name]).and_then(JsonValue::as_u64),
            *bytes,
        );
    }
    diff_u64(
        &mut diffs,
        "metrics.total_bytes",
        u("total_bytes"),
        current.total_bytes,
    );
    for (name, count) in &current.phase_events {
        diff_u64(
            &mut diffs,
            &format!("metrics.phase_events.{name}"),
            m.path(&["phase_events", name]).and_then(JsonValue::as_u64),
            *count,
        );
    }
    diff_hist(
        &mut diffs,
        "metrics.hops_per_lookup",
        m.get("hops_per_lookup"),
        &current.hops_per_lookup,
    );
    diff_hist(
        &mut diffs,
        "metrics.messages_per_query",
        m.get("messages_per_query"),
        &current.messages_per_query,
    );
    diff_hist(
        &mut diffs,
        "metrics.replicas_probed",
        m.get("replicas_probed"),
        &current.replicas_probed,
    );
    diffs
}

/// Run the committed loss study: [`LOSS_RATES`] × [`LOSS_REPLS`] through
/// [`loss_figure`], with deployments built over the lossy network model
/// so drops hit publication, maintenance, and the query path alike. Both
/// `--bin bench` and `--bin gate` call this, so the committed object and
/// the gate's fresh run share one code path.
#[must_use]
pub fn collect_loss(world: &World) -> LossFigure {
    loss_figure(world, &LOSS_RATES, &LOSS_REPLS)
}

/// The stable JSON key of one loss point: replication degree and the loss
/// rate as an integer percentage, e.g. `r3_loss5` for 5% loss at
/// replication 3.
fn loss_point_key(replication: usize, loss: f64) -> String {
    format!("r{replication}_loss{}", (loss * 100.0).round() as u64)
}

/// Serialize a [`LossFigure`] as a JSON object value, same conventions as
/// [`metrics_json`]: ratios at 12 decimals (within [`RATIO_TOLERANCE`] of
/// a round-trip), timeout counts exact.
#[must_use]
pub fn loss_json(f: &LossFigure, indent: usize) -> String {
    let pad = "  ".repeat(indent + 1);
    let mut out = String::from("{\n");
    let _ = writeln!(out, "{pad}\"k\": {METRICS_K},");
    let _ = writeln!(out, "{pad}\"points\": {{");
    for (i, p) in f.points.iter().enumerate() {
        let comma = if i + 1 == f.points.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "{pad}  \"{}\": {{\"loss\": {:.12}, \"replication\": {}, \"precision\": {:.12}, \
             \"recall\": {:.12}, \"messages_per_query\": {:.12}, \"timeouts\": {}}}{comma}",
            loss_point_key(p.replication, p.loss),
            p.loss,
            p.replication,
            p.precision,
            p.recall,
            p.messages_per_query,
            p.timeouts
        );
    }
    let _ = writeln!(out, "{pad}}}");
    let _ = write!(out, "{}}}", "  ".repeat(indent));
    out
}

/// Diff a freshly computed [`LossFigure`] against the committed baseline:
/// ratios and message costs within [`RATIO_TOLERANCE`], timeout counts
/// exact (the event order is seeded, so drops are exactly reproducible).
/// Also enforces the tentpole's acceptance bar within the current run
/// itself: lossless points must bill zero timeouts, lossy points a
/// nonzero count.
#[must_use]
pub fn compare_loss(current: &LossFigure, baseline: &JsonValue) -> Vec<String> {
    let mut diffs = Vec::new();
    for p in &current.points {
        let key = loss_point_key(p.replication, p.loss);
        if p.loss == 0.0 && p.timeouts != 0 {
            diffs.push(format!(
                "loss.points.{key}: a lossless run billed {} timeouts",
                p.timeouts
            ));
        }
        if p.loss > 0.0 && p.timeouts == 0 {
            diffs.push(format!(
                "loss.points.{key}: a lossy run billed no timeouts — drops are not surfacing"
            ));
        }
    }
    let Some(l) = baseline.get("loss") else {
        diffs.push(
            "loss: object missing from baseline (regenerate BENCH_experiments.json with \
             --bin bench)"
                .to_string(),
        );
        return diffs;
    };
    diff_u64(
        &mut diffs,
        "loss.k",
        l.get("k").and_then(JsonValue::as_u64),
        METRICS_K as u64,
    );
    for p in &current.points {
        let key = loss_point_key(p.replication, p.loss);
        let path = |field: &str| format!("loss.points.{key}.{field}");
        let f = |field: &str| l.path(&["points", &key, field]).and_then(JsonValue::as_f64);
        diff_f64(&mut diffs, &path("precision"), f("precision"), p.precision);
        diff_f64(&mut diffs, &path("recall"), f("recall"), p.recall);
        diff_f64(
            &mut diffs,
            &path("messages_per_query"),
            f("messages_per_query"),
            p.messages_per_query,
        );
        diff_u64(
            &mut diffs,
            &path("timeouts"),
            l.path(&["points", &key, "timeouts"])
                .and_then(JsonValue::as_u64),
            p.timeouts,
        );
    }
    diffs
}

/// Run the committed freshness study: [`FRESHNESS_RATES`] ×
/// [`FRESHNESS_REPLS`] through [`freshness_figure`] at
/// [`FRESHNESS_TICKS`] ticks of seeded document churn, plus the
/// incremental-vs-full update cost comparison. Both `--bin bench` and
/// `--bin gate` call this, so the committed object and the gate's fresh
/// run share one code path.
#[must_use]
pub fn collect_freshness(world: &World) -> FreshnessFigure {
    freshness_figure(world, &FRESHNESS_RATES, &FRESHNESS_REPLS, FRESHNESS_TICKS)
}

/// The stable JSON key of one freshness point: replication degree and the
/// churn rate as an integer percentage, e.g. `r3_rate50` for 0.5 expected
/// events per tick at replication 3.
fn freshness_point_key(replication: usize, rate: f64) -> String {
    format!("r{replication}_rate{}", (rate * 100.0).round() as u64)
}

/// Serialize a [`FreshnessFigure`] as a JSON object value, same
/// conventions as [`metrics_json`]: ratios at 12 decimals (within
/// [`RATIO_TOLERANCE`] of a round-trip), every event and entry count
/// exact.
#[must_use]
pub fn freshness_json(f: &FreshnessFigure, indent: usize) -> String {
    let pad = "  ".repeat(indent + 1);
    let mut out = String::from("{\n");
    let _ = writeln!(out, "{pad}\"k\": {METRICS_K},");
    let _ = writeln!(out, "{pad}\"points\": {{");
    for (i, p) in f.points.iter().enumerate() {
        let comma = if i + 1 == f.points.len() { "" } else { "," };
        let key = freshness_point_key(p.replication, p.doc_churn);
        let _ = writeln!(out, "{pad}  \"{key}\": {{");
        let _ = writeln!(out, "{pad}    \"doc_churn\": {:.12},", p.doc_churn);
        let _ = writeln!(out, "{pad}    \"replication\": {},", p.replication);
        let _ = writeln!(out, "{pad}    \"precision\": {:.12},", p.precision);
        let _ = writeln!(out, "{pad}    \"recall\": {:.12},", p.recall);
        let _ = writeln!(out, "{pad}    \"inserted\": {},", p.inserted);
        let _ = writeln!(out, "{pad}    \"updated\": {},", p.updated);
        let _ = writeln!(out, "{pad}    \"deleted\": {},", p.deleted);
        let _ = writeln!(
            out,
            "{pad}    \"tombstones_reclaimed\": {},",
            p.tombstones_reclaimed
        );
        let _ = writeln!(
            out,
            "{pad}    \"pending_tombstones\": {},",
            p.pending_tombstones
        );
        let _ = writeln!(
            out,
            "{pad}    \"deleted_doc_hits\": {},",
            p.deleted_doc_hits
        );
        let _ = writeln!(out, "{pad}    \"stale_entries\": {},", p.stale_entries);
        let _ = writeln!(out, "{pad}    \"live_entries\": {},", p.live_entries);
        let _ = writeln!(out, "{pad}    \"live_docs\": {},", p.live_docs);
        let _ = writeln!(
            out,
            "{pad}    \"messages_per_query\": {:.12}",
            p.messages_per_query
        );
        let _ = writeln!(out, "{pad}  }}{comma}");
    }
    let _ = writeln!(out, "{pad}}},");
    let _ = writeln!(out, "{pad}\"cost\": {{");
    let _ = writeln!(out, "{pad}  \"updates\": {},", f.cost.updates);
    let _ = writeln!(
        out,
        "{pad}  \"incremental_bytes\": {},",
        f.cost.incremental_bytes
    );
    let _ = writeln!(
        out,
        "{pad}  \"republish_bytes\": {},",
        f.cost.republish_bytes
    );
    let _ = writeln!(
        out,
        "{pad}  \"savings_ratio\": {:.12}",
        f.cost.savings_ratio
    );
    let _ = writeln!(out, "{pad}}}");
    let _ = write!(out, "{}}}", "  ".repeat(indent));
    out
}

/// Diff a freshly computed [`FreshnessFigure`] against the committed
/// baseline: ratios within [`RATIO_TOLERANCE`], every event, entry, and
/// byte count exact (the churn stream is seeded, so the lifecycle is
/// exactly reproducible). Also enforces the lifecycle invariants within
/// the current run itself, baseline or no baseline: no live query may
/// surface a deleted document, no tombstone may survive the closing
/// maintenance round, and the incremental update path must clear
/// [`UPDATE_SAVINGS_FLOOR`].
#[must_use]
pub fn compare_freshness(current: &FreshnessFigure, baseline: &JsonValue) -> Vec<String> {
    let mut diffs = Vec::new();
    for p in &current.points {
        let key = freshness_point_key(p.replication, p.doc_churn);
        if p.deleted_doc_hits != 0 {
            diffs.push(format!(
                "freshness.points.{key}: {} hit(s) on deleted documents — a live query surfaced \
                 retired content",
                p.deleted_doc_hits
            ));
        }
        if p.pending_tombstones != 0 {
            diffs.push(format!(
                "freshness.points.{key}: {} tombstone(s) survived the closing maintenance round",
                p.pending_tombstones
            ));
        }
    }
    if current.cost.savings_ratio < UPDATE_SAVINGS_FLOOR {
        diffs.push(format!(
            "freshness.cost.savings_ratio: {:.3} is below the {UPDATE_SAVINGS_FLOOR:.2} floor — \
             incremental updates are not beating delete+republish",
            current.cost.savings_ratio
        ));
    }
    let Some(fr) = baseline.get("freshness") else {
        diffs.push(
            "freshness: object missing from baseline (regenerate BENCH_experiments.json with \
             --bin bench)"
                .to_string(),
        );
        return diffs;
    };
    diff_u64(
        &mut diffs,
        "freshness.k",
        fr.get("k").and_then(JsonValue::as_u64),
        METRICS_K as u64,
    );
    for p in &current.points {
        let key = freshness_point_key(p.replication, p.doc_churn);
        let path = |field: &str| format!("freshness.points.{key}.{field}");
        let f = |field: &str| {
            fr.path(&["points", &key, field])
                .and_then(JsonValue::as_f64)
        };
        let u = |field: &str| {
            fr.path(&["points", &key, field])
                .and_then(JsonValue::as_u64)
        };
        diff_f64(&mut diffs, &path("precision"), f("precision"), p.precision);
        diff_f64(&mut diffs, &path("recall"), f("recall"), p.recall);
        diff_u64(&mut diffs, &path("inserted"), u("inserted"), p.inserted);
        diff_u64(&mut diffs, &path("updated"), u("updated"), p.updated);
        diff_u64(&mut diffs, &path("deleted"), u("deleted"), p.deleted);
        diff_u64(
            &mut diffs,
            &path("tombstones_reclaimed"),
            u("tombstones_reclaimed"),
            p.tombstones_reclaimed,
        );
        diff_u64(
            &mut diffs,
            &path("pending_tombstones"),
            u("pending_tombstones"),
            p.pending_tombstones,
        );
        diff_u64(
            &mut diffs,
            &path("deleted_doc_hits"),
            u("deleted_doc_hits"),
            p.deleted_doc_hits,
        );
        diff_u64(
            &mut diffs,
            &path("stale_entries"),
            u("stale_entries"),
            p.stale_entries,
        );
        diff_u64(
            &mut diffs,
            &path("live_entries"),
            u("live_entries"),
            p.live_entries,
        );
        diff_u64(&mut diffs, &path("live_docs"), u("live_docs"), p.live_docs);
        diff_f64(
            &mut diffs,
            &path("messages_per_query"),
            f("messages_per_query"),
            p.messages_per_query,
        );
    }
    let cu = |field: &str| fr.path(&["cost", field]).and_then(JsonValue::as_u64);
    diff_u64(
        &mut diffs,
        "freshness.cost.updates",
        cu("updates"),
        current.cost.updates,
    );
    diff_u64(
        &mut diffs,
        "freshness.cost.incremental_bytes",
        cu("incremental_bytes"),
        current.cost.incremental_bytes,
    );
    diff_u64(
        &mut diffs,
        "freshness.cost.republish_bytes",
        cu("republish_bytes"),
        current.cost.republish_bytes,
    );
    diff_f64(
        &mut diffs,
        "freshness.cost.savings_ratio",
        fr.path(&["cost", "savings_ratio"])
            .and_then(JsonValue::as_f64),
        current.cost.savings_ratio,
    );
    diffs
}

/// The deterministic memory footprint of the standard deployment, plus
/// an advisory build-time figure. Every byte count is *logical* —
/// length-based sums over the ring's routing state and the peers' posting
/// lists, never allocator capacity — so the numbers are pure functions of
/// the deployment's contents and safe to gate exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct Memory {
    /// Alive peers in the deployment's ring.
    pub peers: u64,
    /// Node-state storage backend (`"arena"` or `"map"`).
    pub backend: &'static str,
    /// Whether posting lists are stored delta-gap compressed.
    pub packed_postings: bool,
    /// Logical bytes of all Chord routing state (ids, successor lists,
    /// fingers, store index).
    pub ring_bytes: u64,
    /// Logical bytes of every peer's inverted index as stored.
    pub index_bytes: u64,
    /// What the same indexes would occupy uncompressed (32 bytes per
    /// entry plus per-term keys).
    pub plain_index_bytes: u64,
    /// `ring_bytes + index_bytes`.
    pub total_bytes: u64,
    /// `total_bytes / peers`, floored — the headline scale metric.
    pub bytes_per_peer: u64,
    /// `plain_index_bytes / index_bytes` — > 1.0 when packing wins.
    pub index_compression_ratio: f64,
    /// Wall-clock milliseconds to build and train the deployment.
    /// Machine-dependent; advisory only, never gated.
    pub build_ms: f64,
}

/// Account a deployment's memory footprint. `build_ms` is carried through
/// as the advisory build-time figure.
#[must_use]
pub fn memory_of(sys: &SpriteSystem, build_ms: f64) -> Memory {
    let peers = sys.net().len() as u64;
    let ring_bytes = sys.net().logical_state_bytes();
    let index_bytes = sys.logical_index_bytes();
    let plain_index_bytes = sys.plain_index_bytes();
    let total_bytes = ring_bytes + index_bytes;
    Memory {
        peers,
        backend: match sys.net().backend() {
            StorageBackend::Map => "map",
            StorageBackend::Arena => "arena",
        },
        packed_postings: sys.config().packed_postings,
        ring_bytes,
        index_bytes,
        plain_index_bytes,
        total_bytes,
        bytes_per_peer: total_bytes / peers.max(1),
        index_compression_ratio: plain_index_bytes as f64 / index_bytes.max(1) as f64,
        build_ms,
    }
}

/// Build the §6.2 standard deployment and account its memory footprint.
/// Both `--bin bench` and `--bin gate` call this, so the committed object
/// and the gate's fresh run share one code path.
#[must_use]
pub fn collect_memory(world: &World) -> Memory {
    let t0 = Instant::now();
    let sys = world.standard_system(SpriteConfig::default(), Schedule::WithoutRepeats);
    let build_ms = (t0.elapsed().as_secs_f64() * 10_000.0).round() / 10.0;
    memory_of(&sys, build_ms)
}

/// Serialize a [`Memory`] as a JSON object value, same conventions as
/// [`metrics_json`]: byte counts exact, the compression ratio at 12
/// decimals, `build_ms` advisory.
#[must_use]
pub fn memory_json(m: &Memory, indent: usize) -> String {
    let pad = "  ".repeat(indent + 1);
    let mut out = String::from("{\n");
    let _ = writeln!(out, "{pad}\"peers\": {},", m.peers);
    let _ = writeln!(out, "{pad}\"backend\": \"{}\",", m.backend);
    let _ = writeln!(out, "{pad}\"packed_postings\": {},", m.packed_postings);
    let _ = writeln!(out, "{pad}\"ring_bytes\": {},", m.ring_bytes);
    let _ = writeln!(out, "{pad}\"index_bytes\": {},", m.index_bytes);
    let _ = writeln!(out, "{pad}\"plain_index_bytes\": {},", m.plain_index_bytes);
    let _ = writeln!(out, "{pad}\"total_bytes\": {},", m.total_bytes);
    let _ = writeln!(out, "{pad}\"bytes_per_peer\": {},", m.bytes_per_peer);
    let _ = writeln!(
        out,
        "{pad}\"index_compression_ratio\": {:.12},",
        m.index_compression_ratio
    );
    let _ = writeln!(out, "{pad}\"build_ms\": {}", m.build_ms);
    let _ = write!(out, "{}}}", "  ".repeat(indent));
    out
}

/// Diff a freshly accounted [`Memory`] against the committed baseline.
/// Byte counts, the peer count, the backend, and the packing flag are
/// exact ([`COUNT_TOLERANCE`] is zero); the compression ratio is within
/// [`RATIO_TOLERANCE`]; `build_ms` is machine-dependent and advisory —
/// never compared.
#[must_use]
pub fn compare_memory(current: &Memory, baseline: &JsonValue) -> Vec<String> {
    let mut diffs = Vec::new();
    let Some(m) = baseline.get("memory") else {
        diffs.push(
            "memory: object missing from baseline (regenerate BENCH_experiments.json with \
             --bin bench)"
                .to_string(),
        );
        return diffs;
    };
    let u = |key: &str| m.get(key).and_then(JsonValue::as_u64);
    diff_u64(&mut diffs, "memory.peers", u("peers"), current.peers);
    match m.get("backend").and_then(JsonValue::as_str) {
        None => diffs.push("memory.backend: missing from baseline".to_string()),
        Some(b) if b != current.backend => diffs.push(format!(
            "memory.backend: baseline {b}, current {}",
            current.backend
        )),
        Some(_) => {}
    }
    match m.get("packed_postings").and_then(JsonValue::as_bool) {
        None => diffs.push("memory.packed_postings: missing from baseline".to_string()),
        Some(b) if b != current.packed_postings => diffs.push(format!(
            "memory.packed_postings: baseline {b}, current {}",
            current.packed_postings
        )),
        Some(_) => {}
    }
    diff_u64(
        &mut diffs,
        "memory.ring_bytes",
        u("ring_bytes"),
        current.ring_bytes,
    );
    diff_u64(
        &mut diffs,
        "memory.index_bytes",
        u("index_bytes"),
        current.index_bytes,
    );
    diff_u64(
        &mut diffs,
        "memory.plain_index_bytes",
        u("plain_index_bytes"),
        current.plain_index_bytes,
    );
    diff_u64(
        &mut diffs,
        "memory.total_bytes",
        u("total_bytes"),
        current.total_bytes,
    );
    diff_u64(
        &mut diffs,
        "memory.bytes_per_peer",
        u("bytes_per_peer"),
        current.bytes_per_peer,
    );
    diff_f64(
        &mut diffs,
        "memory.index_compression_ratio",
        m.get("index_compression_ratio").and_then(JsonValue::as_f64),
        current.index_compression_ratio,
    );
    diffs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use sprite_core::WorldConfig;

    fn doc_for(m: &Metrics) -> String {
        format!(
            "{{\n  \"schema\": \"sprite-bench/v1\",\n  \"metrics\": {}\n}}\n",
            metrics_json(m, 1)
        )
    }

    #[test]
    fn metrics_round_trip_matches_itself() {
        let world = World::build(WorldConfig::tiny(7));
        let m = collect_metrics(&world);
        assert_eq!(m.queries, world.test.len() as u64);
        assert!(m.events > 0, "a traced evaluation must observe events");
        assert!(
            m.total_bytes > 0,
            "query fetches must bill payload bytes during evaluation"
        );
        assert_eq!(
            m.total_bytes,
            m.kind_bytes.iter().map(|&(_, b)| b).sum::<u64>(),
            "total must equal the per-kind sum"
        );
        let baseline = json::parse(&doc_for(&m)).expect("serializer emits valid JSON");
        let diffs = compare_against_baseline(&m, &baseline);
        assert!(diffs.is_empty(), "self-comparison must be clean: {diffs:?}");
    }

    #[test]
    fn gate_catches_a_perturbed_baseline() {
        let world = World::build(WorldConfig::tiny(7));
        let m = collect_metrics(&world);
        // Perturb one message count, one ratio, and one histogram bucket.
        let hop_count = m.kind_counts[0].1;
        let doc = doc_for(&m)
            .replacen(
                &format!("\"lookup_hop\": {hop_count}"),
                &format!("\"lookup_hop\": {}", hop_count + 1),
                1,
            )
            .replacen(
                &format!("{:.12}", m.precision_ratio),
                &format!("{:.12}", m.precision_ratio + 1e-6),
                1,
            )
            .replacen(
                &format!("\"total_bytes\": {}", m.total_bytes),
                &format!("\"total_bytes\": {}", m.total_bytes + 1),
                1,
            );
        let baseline = json::parse(&doc).expect("perturbed document still parses");
        let diffs = compare_against_baseline(&m, &baseline);
        assert!(
            diffs.iter().any(|d| d.contains("kind_counts.lookup_hop")),
            "perturbed count not caught: {diffs:?}"
        );
        assert!(
            diffs.iter().any(|d| d.contains("precision_ratio")),
            "perturbed ratio not caught: {diffs:?}"
        );
        assert!(
            diffs.iter().any(|d| d.contains("total_bytes")),
            "perturbed byte total not caught: {diffs:?}"
        );
    }

    #[test]
    fn missing_metrics_object_is_one_readable_diff() {
        let world = World::build(WorldConfig::tiny(7));
        let m = collect_metrics(&world);
        let baseline = json::parse("{\"schema\": \"sprite-bench/v1\"}").expect("valid");
        let diffs = compare_against_baseline(&m, &baseline);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("regenerate"));
    }

    #[test]
    fn metrics_bill_the_removal_path() {
        // The committed object must not carry a structurally-zero
        // index_remove row: the retirement probe exercises publish →
        // remove through the traced path.
        let world = World::build(WorldConfig::tiny(7));
        let m = collect_metrics(&world);
        let count = |name: &str| {
            m.kind_counts
                .iter()
                .find(|&&(n, _)| n == name)
                .map(|&(_, c)| c)
                .expect("known kind")
        };
        let bytes = |name: &str| {
            m.kind_bytes
                .iter()
                .find(|&&(n, _)| n == name)
                .map(|&(_, b)| b)
                .expect("known kind")
        };
        assert!(count("index_remove") > 0, "removal messages must be billed");
        assert!(bytes("index_remove") > 0, "removal records carry bytes");
    }

    #[test]
    fn throughput_round_trips_and_band_catches_regressions() {
        let world = World::build(WorldConfig::tiny(7));
        let t = measure_throughput(&world, 4);
        assert!(
            t.bit_identical,
            "the batched pipeline must reproduce the reference"
        );
        assert_eq!(t.sweep.len(), 3, "1/2/4-worker sweep");
        assert_eq!(
            t.sweep.iter().map(|p| p.workers).collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
        assert!(t.reference_qps > 0.0 && t.batched_qps > 0.0);
        let doc = format!(
            "{{\n  \"schema\": \"sprite-bench/v1\",\n  \"throughput\": {}\n}}\n",
            throughput_json(&t, 1)
        );
        let baseline = json::parse(&doc).expect("serializer emits valid JSON");
        let diffs = compare_throughput(&t, &baseline);
        assert!(diffs.is_empty(), "self-comparison must be clean: {diffs:?}");
        // A drop past the band on either gated speed figure must fire.
        let mut slow = t.clone();
        slow.batched_qps = t.batched_qps * (1.0 - THROUGHPUT_TOLERANCE) * 0.9;
        slow.speedup_vs_reference = t.speedup_vs_reference * (1.0 - THROUGHPUT_TOLERANCE) * 0.9;
        let diffs = compare_throughput(&slow, &baseline);
        assert!(
            diffs.iter().any(|d| d.contains("batched_qps")),
            "qps regression not caught: {diffs:?}"
        );
        assert!(
            diffs.iter().any(|d| d.contains("speedup_vs_reference")),
            "speedup regression not caught: {diffs:?}"
        );
        // Improvements pass: a faster current run never fails the gate.
        let mut fast = t.clone();
        fast.batched_qps = t.batched_qps * 2.0;
        fast.speedup_vs_reference = t.speedup_vs_reference * 2.0;
        assert!(compare_throughput(&fast, &baseline).is_empty());
        // A missing throughput object is one readable diff.
        let empty = json::parse("{\"schema\": \"sprite-bench/v1\"}").expect("valid");
        let diffs = compare_throughput(&t, &empty);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("regenerate"));
    }

    #[test]
    fn loss_sweep_round_trips_and_bills_timeouts() {
        let world = World::build(WorldConfig::tiny(7));
        let f = collect_loss(&world);
        assert_eq!(f.points.len(), LOSS_RATES.len() * LOSS_REPLS.len());
        assert!(
            f.points.iter().any(|p| p.loss > 0.0 && p.timeouts > 0),
            "the lossy points must bill real timeouts"
        );
        let doc = format!(
            "{{\n  \"schema\": \"sprite-bench/v1\",\n  \"loss\": {}\n}}\n",
            loss_json(&f, 1)
        );
        let baseline = json::parse(&doc).expect("serializer emits valid JSON");
        let diffs = compare_loss(&f, &baseline);
        assert!(diffs.is_empty(), "self-comparison must be clean: {diffs:?}");
        // A missing loss object is one readable diff.
        let empty = json::parse("{\"schema\": \"sprite-bench/v1\"}").expect("valid");
        let diffs = compare_loss(&f, &empty);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("regenerate"));
    }

    #[test]
    fn loss_gate_catches_perturbed_timeouts_and_silent_drops() {
        let world = World::build(WorldConfig::tiny(7));
        let f = collect_loss(&world);
        let lossy = f
            .points
            .iter()
            .find(|p| p.loss > 0.0 && p.timeouts > 0)
            .expect("a lossy point with timeouts");
        let key = format!(
            "r{}_loss{}",
            lossy.replication,
            (lossy.loss * 100.0).round() as u64
        );
        let doc = format!(
            "{{\n  \"schema\": \"sprite-bench/v1\",\n  \"loss\": {}\n}}\n",
            loss_json(&f, 1)
        )
        .replacen(
            &format!("\"timeouts\": {}", lossy.timeouts),
            &format!("\"timeouts\": {}", lossy.timeouts + 1),
            1,
        );
        let baseline = json::parse(&doc).expect("perturbed document still parses");
        let diffs = compare_loss(&f, &baseline);
        assert!(
            diffs
                .iter()
                .any(|d| d.contains(&key) && d.contains("timeouts")),
            "perturbed timeout count not caught: {diffs:?}"
        );
        // Within-run enforcement: a lossy point that billed nothing fails
        // even against a matching baseline.
        let mut silent = f.clone();
        for p in &mut silent.points {
            p.timeouts = 0;
        }
        let good = json::parse(&format!(
            "{{\n  \"schema\": \"sprite-bench/v1\",\n  \"loss\": {}\n}}\n",
            loss_json(&silent, 1)
        ))
        .expect("valid");
        let diffs = compare_loss(&silent, &good);
        assert!(
            diffs.iter().any(|d| d.contains("not surfacing")),
            "silent lossy run not caught: {diffs:?}"
        );
    }

    fn freshness_doc(f: &FreshnessFigure) -> String {
        format!(
            "{{\n  \"schema\": \"sprite-bench/v1\",\n  \"freshness\": {}\n}}\n",
            freshness_json(f, 1)
        )
    }

    #[test]
    fn freshness_round_trips_and_holds_the_lifecycle_invariants() {
        let world = World::build(WorldConfig::tiny(7));
        let f = collect_freshness(&world);
        assert_eq!(
            f.points.len(),
            FRESHNESS_RATES.len() * FRESHNESS_REPLS.len()
        );
        for p in &f.points {
            assert_eq!(
                p.deleted_doc_hits, 0,
                "a live query surfaced a deleted document at r{} rate {}",
                p.replication, p.doc_churn
            );
            assert_eq!(
                p.pending_tombstones, 0,
                "tombstones survived the closing maintenance round"
            );
            if p.doc_churn == 0.0 {
                assert_eq!((p.inserted, p.updated, p.deleted), (0, 0, 0));
                assert_eq!(p.stale_entries, 0, "a frozen corpus cannot go stale");
            }
        }
        assert!(
            f.points
                .iter()
                .any(|p| p.deleted > 0 && p.tombstones_reclaimed > 0),
            "the churned points must exercise deletion and reclamation"
        );
        assert!(
            f.cost.savings_ratio >= UPDATE_SAVINGS_FLOOR,
            "incremental updates must beat delete+republish by 30%: {:.3}",
            f.cost.savings_ratio
        );
        let baseline = json::parse(&freshness_doc(&f)).expect("serializer emits valid JSON");
        let diffs = compare_freshness(&f, &baseline);
        assert!(diffs.is_empty(), "self-comparison must be clean: {diffs:?}");
        // A missing freshness object is one readable diff.
        let empty = json::parse("{\"schema\": \"sprite-bench/v1\"}").expect("valid");
        let diffs = compare_freshness(&f, &empty);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("regenerate"));
    }

    #[test]
    fn freshness_gate_catches_perturbations_and_broken_invariants() {
        let world = World::build(WorldConfig::tiny(7));
        let f = collect_freshness(&world);
        let churned = f
            .points
            .iter()
            .find(|p| p.doc_churn > 0.0 && p.deleted > 0)
            .expect("a churned point with deletions");
        let key = format!(
            "r{}_rate{}",
            churned.replication,
            (churned.doc_churn * 100.0).round() as u64
        );
        let doc = freshness_doc(&f)
            .replacen(
                &format!("\"deleted\": {}", churned.deleted),
                &format!("\"deleted\": {}", churned.deleted + 1),
                1,
            )
            .replacen(
                &format!("\"precision\": {:.12}", churned.precision),
                &format!("\"precision\": {:.12}", churned.precision + 1e-6),
                1,
            );
        let baseline = json::parse(&doc).expect("perturbed document still parses");
        let diffs = compare_freshness(&f, &baseline);
        assert!(
            diffs
                .iter()
                .any(|d| d.contains(&key) && d.contains("deleted")),
            "perturbed event count not caught: {diffs:?}"
        );
        assert!(
            diffs.iter().any(|d| d.contains("precision")),
            "perturbed ratio not caught: {diffs:?}"
        );
        // Within-run enforcement: broken invariants fail even against a
        // matching baseline.
        let mut broken = f.clone();
        broken.points[0].deleted_doc_hits = 1;
        broken.points[0].pending_tombstones = 2;
        broken.cost.savings_ratio = UPDATE_SAVINGS_FLOOR / 2.0;
        let own = json::parse(&freshness_doc(&broken)).expect("valid");
        let diffs = compare_freshness(&broken, &own);
        assert!(
            diffs.iter().any(|d| d.contains("retired content")),
            "deleted-doc hit not caught: {diffs:?}"
        );
        assert!(
            diffs.iter().any(|d| d.contains("survived the closing")),
            "surviving tombstones not caught: {diffs:?}"
        );
        assert!(
            diffs.iter().any(|d| d.contains("savings_ratio")),
            "savings floor not enforced: {diffs:?}"
        );
    }

    #[test]
    fn freshness_is_reproducible_at_equal_seeds() {
        let w1 = World::build(WorldConfig::tiny(11));
        let w2 = World::build(WorldConfig::tiny(11));
        assert_eq!(
            freshness_json(&collect_freshness(&w1), 1),
            freshness_json(&collect_freshness(&w2), 1)
        );
    }

    #[test]
    fn memory_round_trips_and_gate_catches_perturbations() {
        let world = World::build(WorldConfig::tiny(7));
        let m = collect_memory(&world);
        assert!(m.peers > 0 && m.ring_bytes > 0 && m.index_bytes > 0);
        assert_eq!(m.total_bytes, m.ring_bytes + m.index_bytes);
        assert_eq!(m.bytes_per_peer, m.total_bytes / m.peers);
        assert_eq!(m.backend, "arena", "the scale-tier layout is the default");
        assert!(m.packed_postings, "packing is the default");
        assert!(
            m.index_bytes < m.plain_index_bytes,
            "packed postings must undercut the plain layout: {} vs {}",
            m.index_bytes,
            m.plain_index_bytes
        );
        assert!(m.index_compression_ratio > 1.0);
        let doc = format!(
            "{{\n  \"schema\": \"sprite-bench/v1\",\n  \"memory\": {}\n}}\n",
            memory_json(&m, 1)
        );
        let baseline = json::parse(&doc).expect("serializer emits valid JSON");
        let diffs = compare_memory(&m, &baseline);
        assert!(diffs.is_empty(), "self-comparison must be clean: {diffs:?}");
        // One perturbed byte count must fire; a changed build time must not.
        let perturbed = doc
            .replacen(
                &format!("\"ring_bytes\": {}", m.ring_bytes),
                &format!("\"ring_bytes\": {}", m.ring_bytes + 1),
                1,
            )
            .replacen(
                &format!("\"build_ms\": {}", m.build_ms),
                "\"build_ms\": 999999.9",
                1,
            );
        let baseline = json::parse(&perturbed).expect("perturbed document still parses");
        let diffs = compare_memory(&m, &baseline);
        assert!(
            diffs.iter().any(|d| d.contains("ring_bytes")),
            "perturbed byte count not caught: {diffs:?}"
        );
        assert!(
            !diffs.iter().any(|d| d.contains("build_ms")),
            "build time is advisory and must never gate: {diffs:?}"
        );
        // A missing memory object is one readable diff.
        let empty = json::parse("{\"schema\": \"sprite-bench/v1\"}").expect("valid");
        let diffs = compare_memory(&m, &empty);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("regenerate"));
    }

    #[test]
    fn memory_is_reproducible_at_equal_seeds() {
        let w1 = World::build(WorldConfig::tiny(11));
        let w2 = World::build(WorldConfig::tiny(11));
        let (a, b) = (collect_memory(&w1), collect_memory(&w2));
        assert_eq!(
            (a.ring_bytes, a.index_bytes, a.plain_index_bytes),
            (b.ring_bytes, b.index_bytes, b.plain_index_bytes)
        );
    }

    #[test]
    fn metrics_are_reproducible_at_equal_seeds() {
        let w1 = World::build(WorldConfig::tiny(11));
        let w2 = World::build(WorldConfig::tiny(11));
        assert_eq!(collect_metrics(&w1), collect_metrics(&w2));
    }
}
