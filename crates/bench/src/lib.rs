//! Shared plumbing for the experiment binaries.
//!
//! Every figure of the paper has a binary in `src/bin/` that prints the
//! same series the paper plots. The scale is selected with the
//! `SPRITE_SCALE` environment variable:
//!
//! * `full` (default) — the DESIGN.md default scale (8,000 documents,
//!   63 seed queries → 630 generated queries, 64 peers);
//! * `small` — integration-test scale (runs in seconds);
//! * `tiny` — smoke-test scale (sub-second);
//! * `huge` — the 100,000-peer population-scale tier (the `--bin scale`
//!   smoke runner and the nightly CI job; needs the arena node store
//!   and compressed postings to fit a runner).

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod json;
pub mod metrics;

use sprite_core::{World, WorldConfig};

/// Resolve the experiment scale from `SPRITE_SCALE` (default `full`).
#[must_use]
pub fn world_config_from_env(seed: u64) -> WorldConfig {
    match std::env::var("SPRITE_SCALE").as_deref() {
        Ok("tiny") => WorldConfig::tiny(seed),
        Ok("small") => WorldConfig::small(seed),
        Ok("huge") => WorldConfig::huge(seed),
        _ => WorldConfig {
            seed,
            ..WorldConfig::default()
        },
    }
}

/// Build the world, echoing its parameters.
#[must_use]
pub fn build_world(seed: u64) -> World {
    let cfg = world_config_from_env(seed);
    eprintln!(
        "# world: {} docs, {} topics, {} peers, {} queries (O={:.0}%, k={}), seed {}",
        cfg.corpus.n_docs,
        cfg.corpus.n_topics,
        cfg.n_peers,
        cfg.corpus.n_seed_queries * (cfg.gen.k_per_seed + 1),
        cfg.gen.overlap * 100.0,
        cfg.gen.k_per_seed,
        cfg.seed,
    );
    let t0 = std::time::Instant::now();
    let world = World::build(cfg);
    eprintln!("# world built in {:.1?}", t0.elapsed());
    world
}

/// Print a fixed-width table: a header row then data rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:>w$}"))
        .collect();
    println!("{}", line.join("  "));
    println!("{}", "-".repeat(line.join("  ").len()));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Format a ratio as e.g. `0.873`.
#[must_use]
pub fn r3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_scale_selection() {
        // Serial by nature (env var); test only the parse logic through
        // explicit calls on the current process state.
        std::env::set_var("SPRITE_SCALE", "tiny");
        assert_eq!(world_config_from_env(1).corpus.n_docs, 200);
        std::env::set_var("SPRITE_SCALE", "small");
        assert_eq!(world_config_from_env(1).corpus.n_docs, 1_500);
        std::env::remove_var("SPRITE_SCALE");
        assert_eq!(world_config_from_env(1).corpus.n_docs, 8_000);
    }

    #[test]
    fn table_formatting_does_not_panic() {
        print_table(
            "demo",
            &["k", "precision"],
            &[
                vec!["5".into(), "0.91".into()],
                vec!["10".into(), "0.88".into()],
            ],
        );
        assert_eq!(r3(0.8734), "0.873");
    }
}
