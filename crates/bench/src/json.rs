//! A minimal JSON reader for the regression gate.
//!
//! The workspace is dependency-free by policy, and `BENCH_experiments.json`
//! is written by our own hand-rolled serializer, so the reader only needs
//! honest RFC 8259 subset coverage: objects, arrays, strings with the
//! common escapes, numbers, booleans, and null. Numbers are held as `f64`
//! (every value the bench writes — counts, ratios, millisecond timings —
//! is far inside the 2^53 exact-integer range).

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, held as `f64`.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in document order (duplicate keys keep the last value on
    /// lookup, like every mainstream parser).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object; `None` on other variants or a missing
    /// key. Duplicate keys resolve to the **last** occurrence.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Path lookup: `get` chained over several keys.
    #[must_use]
    pub fn path(&self, keys: &[&str]) -> Option<&JsonValue> {
        keys.iter().try_fold(self, |v, k| v.get(k))
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an exact unsigned integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n < 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Errors carry a byte offset and a short
/// description — enough to debug a corrupted baseline, which is the only
/// failure mode this parser ever sees in practice.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", char::from(b), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, b"true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, b"false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, b"null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &[u8],
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!(
            "invalid literal at byte {} (expected {})",
            *pos,
            String::from_utf8_lossy(lit)
        ))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| format!("bad \\u escape: {e}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (bytes is valid UTF-8 by
                // construction: it came from a &str).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0b1100_0000 == 0b1000_0000 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": 1, "b": [true, null, -2.5e1], "c": {"d": "x\ny"}}"#)
            .expect("valid document");
        assert_eq!(v.path(&["a"]).and_then(JsonValue::as_u64), Some(1));
        let arr = v.get("b").and_then(JsonValue::as_arr).expect("array");
        assert_eq!(arr[0], JsonValue::Bool(true));
        assert_eq!(arr[1], JsonValue::Null);
        assert_eq!(arr[2].as_f64(), Some(-25.0));
        assert_eq!(
            v.path(&["c", "d"]).and_then(JsonValue::as_str),
            Some("x\ny")
        );
    }

    #[test]
    fn round_trips_the_bench_shapes() {
        let doc = "{\n  \"schema\": \"sprite-bench/v1\",\n  \"metrics\": {\n    \
                   \"precision_ratio\": 0.873201234567,\n    \"kind_counts\": {\n      \
                   \"lookup_hop\": 12345\n    }\n  }\n}\n";
        let v = parse(doc).expect("bench-shaped document");
        assert_eq!(
            v.get("schema").and_then(JsonValue::as_str),
            Some("sprite-bench/v1")
        );
        assert_eq!(
            v.path(&["metrics", "precision_ratio"])
                .and_then(JsonValue::as_f64),
            Some(0.873_201_234_567)
        );
        assert_eq!(
            v.path(&["metrics", "kind_counts", "lookup_hop"])
                .and_then(JsonValue::as_u64),
            Some(12345)
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn integers_past_2_53_are_not_exact() {
        let v = parse("9007199254740993").expect("parses as f64");
        assert_eq!(v.as_u64(), None, "must refuse silently-rounded integers");
    }
}
