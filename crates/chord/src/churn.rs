//! The continuous-churn engine (§7 under realistic maintenance).
//!
//! The churn studies need something stronger than "fail k peers, then
//! `converge(64)`": real deployments see a *stream* of joins, graceful
//! leaves, and abrupt failures, with only a bounded amount of
//! stabilization between events — fingers stay stale, successor lists
//! carry dead entries, and lookups must survive anyway. [`ChurnEngine`]
//! produces exactly that regime, deterministically: a seeded schedule of
//! [`ChurnEvent`]s per tick, applied with a configured budget of
//! [`ChordNet::stabilize_round`] / [`ChordNet::fix_fingers_round`] passes
//! — never `converge`, never `ideal_repair`.
//!
//! [`ChurnEngine::plan`] and [`ChurnEngine::apply`] are split so layers
//! above the ring (SPRITE's indexing state) can react to planned events
//! before the membership actually changes — e.g. hand a leaving peer's
//! inverted lists to its successor while its routing state still exists.

use sprite_util::{derive_rng, DetRng, RingId};

use crate::ring::ChordNet;

/// Churn intensity and the per-tick maintenance budget.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Expected joins per tick (fractional rates are sampled).
    pub join_rate: f64,
    /// Expected graceful leaves per tick.
    pub leave_rate: f64,
    /// Expected abrupt failures per tick.
    pub fail_rate: f64,
    /// `stabilize_round` passes run after the tick's events.
    pub stabilize_rounds: usize,
    /// `fix_fingers_round` passes run after stabilization.
    pub fix_finger_rounds: usize,
    /// Departures are suppressed once the network would shrink below this.
    pub min_peers: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            join_rate: 1.0,
            leave_rate: 0.5,
            fail_rate: 0.5,
            stabilize_rounds: 2,
            fix_finger_rounds: 1,
            min_peers: 4,
        }
    }
}

/// One membership event of a churn tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnEvent {
    /// A new peer joins via an alive bootstrap peer.
    Join {
        /// The joining peer's identifier.
        id: RingId,
        /// The alive peer it bootstraps through.
        bootstrap: RingId,
    },
    /// A peer departs gracefully (hands off to its neighbors).
    Leave {
        /// The departing peer.
        id: RingId,
    },
    /// A peer vanishes without warning.
    Fail {
        /// The failing peer.
        id: RingId,
    },
}

/// What one [`ChurnEngine::apply`] actually did to the ring.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TickReport {
    /// Joins that completed.
    pub joins: usize,
    /// Graceful leaves that completed.
    pub leaves: usize,
    /// Abrupt failures that completed.
    pub fails: usize,
    /// Events rejected by the ring (e.g. a join whose bootstrap lookup
    /// dead-ended mid-damage).
    pub rejected: usize,
    /// Pointer changes made by the bounded stabilization passes.
    pub stabilize_changes: usize,
    /// Finger entries changed by the bounded fix-fingers passes.
    pub finger_changes: usize,
}

/// Deterministic continuous-churn driver over a [`ChordNet`].
#[derive(Clone, Debug)]
pub struct ChurnEngine {
    cfg: ChurnConfig,
    rng: DetRng,
    /// Monotonic counter naming spawned peers (ids must never collide with
    /// a replay of the same seed elsewhere in the experiment).
    spawned: u64,
}

impl ChurnEngine {
    /// An engine with its own derived RNG stream; the same `(cfg, seed)`
    /// replays the same event schedule against the same ring history.
    #[must_use]
    pub fn new(cfg: ChurnConfig, seed: u64) -> Self {
        ChurnEngine {
            cfg,
            rng: derive_rng(seed, "churn-engine"),
            spawned: 0,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ChurnConfig {
        &self.cfg
    }

    /// Sample an event count with expectation `rate` (integer part plus a
    /// Bernoulli trial on the fraction).
    fn sample_count(&mut self, rate: f64) -> usize {
        if rate <= 0.0 {
            return 0;
        }
        let whole = rate.floor();
        let mut n = whole as usize;
        if self.rng.gen_bool(rate - whole) {
            n += 1;
        }
        n
    }

    /// Plan one tick's events against the current membership: abrupt
    /// failures first, then graceful leaves, then joins. Victims are
    /// distinct, drawn in ring order via the seeded RNG, and capped so the
    /// network never shrinks below `min_peers`; join bootstraps are drawn
    /// from the planned survivors. The plan does not mutate the ring —
    /// pass it to [`Self::apply`].
    pub fn plan(&mut self, net: &ChordNet) -> Vec<ChurnEvent> {
        let mut events = Vec::new();
        let alive = net.node_ids();
        let n_fails = self.sample_count(self.cfg.fail_rate);
        let n_leaves = self.sample_count(self.cfg.leave_rate);
        let n_joins = self.sample_count(self.cfg.join_rate);

        let departures_allowed = alive.len().saturating_sub(self.cfg.min_peers);
        let mut victims: Vec<RingId> = Vec::new();
        // Candidate pool for departures: draw without replacement by
        // swap-removing picks, so victims are always distinct, high churn
        // rates deliver exactly `min(requested, departures_allowed)`
        // departures (the old bounded rejection sampler silently
        // under-delivered once most peers were victims), and an empty ring
        // can never be indexed.
        let mut pool: Vec<RingId> = alive.clone();
        let mut pick_victim = |rng: &mut DetRng, victims: &mut Vec<RingId>| -> Option<RingId> {
            if victims.len() >= departures_allowed || pool.is_empty() {
                return None;
            }
            let cand = pool.swap_remove(rng.gen_range(0..pool.len()));
            victims.push(cand);
            Some(cand)
        };
        for _ in 0..n_fails {
            if let Some(id) = pick_victim(&mut self.rng, &mut victims) {
                events.push(ChurnEvent::Fail { id });
            }
        }
        for _ in 0..n_leaves {
            if let Some(id) = pick_victim(&mut self.rng, &mut victims) {
                events.push(ChurnEvent::Leave { id });
            }
        }

        let survivors: Vec<RingId> = alive
            .iter()
            .copied()
            .filter(|p| !victims.contains(p))
            .collect();
        if !survivors.is_empty() {
            for _ in 0..n_joins {
                let addr = format!("churn-join-{}-{:08x}", self.spawned, self.rng.gen_u32());
                self.spawned += 1;
                let id = RingId::hash_bytes(addr.as_bytes());
                let bootstrap = survivors[self.rng.gen_range(0..survivors.len())];
                events.push(ChurnEvent::Join { id, bootstrap });
            }
        }
        events
    }

    /// Apply planned events to the ring, then run the bounded maintenance
    /// budget (`stabilize_rounds` stabilization passes, `fix_finger_rounds`
    /// finger refreshes). Deliberately **never** calls
    /// [`ChordNet::converge`] or [`ChordNet::ideal_repair`]: whatever
    /// staleness the budget leaves behind is the point of the experiment.
    pub fn apply(&mut self, net: &mut ChordNet, events: &[ChurnEvent]) -> TickReport {
        let mut report = TickReport::default();
        for ev in events {
            let outcome = match *ev {
                ChurnEvent::Fail { id } => net.fail(id).map(|()| &mut report.fails),
                ChurnEvent::Leave { id } => net.leave(id).map(|()| &mut report.leaves),
                ChurnEvent::Join { id, bootstrap } => {
                    net.join(id, bootstrap).map(|()| &mut report.joins)
                }
            };
            match outcome {
                Ok(slot) => *slot += 1,
                Err(_) => report.rejected += 1,
            }
        }
        for _ in 0..self.cfg.stabilize_rounds {
            report.stabilize_changes += net.stabilize_round();
        }
        for _ in 0..self.cfg.fix_finger_rounds {
            report.finger_changes += net.fix_fingers_round();
        }
        report
    }

    /// Plan and apply one tick. Returns the events alongside the report so
    /// callers can audit what happened.
    pub fn tick(&mut self, net: &mut ChordNet) -> (Vec<ChurnEvent>, TickReport) {
        let events = self.plan(net);
        let report = self.apply(net, &events);
        (events, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::ChordConfig;

    fn ring_of(n: usize) -> ChordNet {
        ChordNet::with_random_nodes(ChordConfig::default(), n, 4242)
    }

    #[test]
    fn same_seed_replays_the_same_schedule() {
        let run = || {
            let mut net = ring_of(48);
            let mut engine = ChurnEngine::new(ChurnConfig::default(), 7);
            let mut all = Vec::new();
            for _ in 0..6 {
                let (events, _) = engine.tick(&mut net);
                all.push(events);
            }
            (all, net.node_ids())
        };
        let (a_events, a_ids) = run();
        let (b_events, b_ids) = run();
        assert_eq!(a_events, b_events);
        assert_eq!(a_ids, b_ids);
    }

    #[test]
    fn ring_stays_routable_under_bounded_maintenance() {
        let mut net = ring_of(64);
        let mut engine = ChurnEngine::new(
            ChurnConfig {
                join_rate: 2.0,
                leave_rate: 1.0,
                fail_rate: 1.0,
                ..ChurnConfig::default()
            },
            11,
        );
        for _ in 0..10 {
            engine.tick(&mut net);
        }
        let alive = net.node_ids();
        let mut ok = 0;
        let total = 100;
        for i in 0..total {
            let from = alive[i % alive.len()];
            let key = RingId::hash_bytes(format!("mid-churn-{i}").as_bytes());
            if let Ok(l) = net.lookup_fast(from, key) {
                assert!(net.contains(l.owner));
                ok += 1;
            }
        }
        // Bounded stabilization is not convergence, but r=8 successor
        // lists should keep nearly every lookup alive at this churn rate.
        assert!(ok * 10 >= total * 9, "only {ok}/{total} lookups survived");
    }

    #[test]
    fn min_peers_floor_suppresses_departures() {
        let mut net = ring_of(6);
        let mut engine = ChurnEngine::new(
            ChurnConfig {
                join_rate: 0.0,
                leave_rate: 4.0,
                fail_rate: 4.0,
                min_peers: 4,
                ..ChurnConfig::default()
            },
            3,
        );
        for _ in 0..10 {
            engine.tick(&mut net);
        }
        assert!(
            net.len() >= 4,
            "network shrank below min_peers: {}",
            net.len()
        );
    }

    #[test]
    fn rates_scale_event_volume() {
        let mut net = ring_of(64);
        let mut engine = ChurnEngine::new(
            ChurnConfig {
                join_rate: 3.0,
                leave_rate: 0.0,
                fail_rate: 0.0,
                ..ChurnConfig::default()
            },
            5,
        );
        let before = net.len();
        let (events, report) = engine.tick(&mut net);
        assert_eq!(events.len(), 3);
        assert_eq!(report.joins + report.rejected, 3);
        assert_eq!(net.len(), before + report.joins);
    }

    #[test]
    fn empty_ring_plans_no_departures() {
        let net = ChordNet::new(ChordConfig::default());
        let mut engine = ChurnEngine::new(
            ChurnConfig {
                join_rate: 0.0,
                leave_rate: 5.0,
                fail_rate: 5.0,
                min_peers: 0,
                ..ChurnConfig::default()
            },
            21,
        );
        // The old sampler indexed `alive[..]` unconditionally and panicked
        // here; an empty pool must simply yield an empty plan.
        assert!(engine.plan(&net).is_empty());
    }

    #[test]
    fn extreme_rates_deliver_every_allowed_departure() {
        let net = ring_of(8);
        let mut engine = ChurnEngine::new(
            ChurnConfig {
                join_rate: 0.0,
                leave_rate: 16.0,
                fail_rate: 0.0,
                min_peers: 0,
                ..ChurnConfig::default()
            },
            13,
        );
        let events = engine.plan(&net);
        // Without-replacement sampling fills the whole allowance; the
        // 8-retry rejection sampler used to stall below it at high rates.
        assert_eq!(events.len(), 8);
        let mut ids: Vec<RingId> = events
            .iter()
            .map(|e| match *e {
                ChurnEvent::Leave { id } => id,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 8, "victims must be distinct");
    }

    #[test]
    fn apply_charges_maintenance_traffic() {
        let mut net = ring_of(32);
        net.reset_stats();
        let mut engine = ChurnEngine::new(ChurnConfig::default(), 9);
        engine.tick(&mut net);
        assert!(
            net.stats().count(crate::stats::MsgKind::Maintenance) > 0,
            "stabilization and joins must be charged"
        );
    }
}
