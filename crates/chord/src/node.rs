//! Per-node Chord routing state.
//!
//! Each peer keeps exactly what the Chord paper prescribes: a predecessor
//! pointer, a successor list (for fault tolerance), and a finger table with
//! one entry per identifier bit. All entries are plain [`RingId`]s — whether
//! the referenced peer is still alive is a question only the network
//! ([`crate::ring::ChordNet`]) can answer.

use sprite_util::{RingId, ID_BITS};

/// Routing state of a single Chord node.
#[derive(Clone, Debug)]
pub struct NodeState {
    /// This node's ring identifier.
    pub(crate) id: RingId,
    /// Predecessor pointer (None right after an un-stabilized join).
    pub(crate) pred: Option<RingId>,
    /// Successor list; entry 0 is the immediate successor. Never empty for
    /// a node that has joined (a lone node lists itself).
    pub(crate) succ: Vec<RingId>,
    /// Finger table: `fingers[k]` ≈ successor(id + 2^k). Length [`ID_BITS`].
    pub(crate) fingers: Vec<RingId>,
}

impl NodeState {
    /// A lone node: every pointer refers to itself.
    #[must_use]
    pub fn solitary(id: RingId) -> Self {
        NodeState {
            id,
            pred: Some(id),
            succ: vec![id],
            fingers: vec![id; ID_BITS as usize],
        }
    }

    /// A freshly joining node that only knows its successor. Fingers start
    /// at the successor and are refined by `fix_fingers`.
    #[must_use]
    pub fn joining(id: RingId, successor: RingId, succ_list_len: usize) -> Self {
        NodeState {
            id,
            pred: None,
            succ: {
                let mut s = Vec::with_capacity(succ_list_len);
                s.push(successor);
                s
            },
            fingers: vec![successor; ID_BITS as usize],
        }
    }

    /// This node's identifier.
    #[must_use]
    pub fn id(&self) -> RingId {
        self.id
    }

    /// Immediate successor as currently believed.
    #[must_use]
    pub fn successor(&self) -> RingId {
        self.succ[0]
    }

    /// Current predecessor pointer.
    #[must_use]
    pub fn predecessor(&self) -> Option<RingId> {
        self.pred
    }

    /// The successor list (entry 0 first).
    #[must_use]
    pub fn successor_list(&self) -> &[RingId] {
        &self.succ
    }

    /// The finger table.
    #[must_use]
    pub fn finger_table(&self) -> &[RingId] {
        &self.fingers
    }

    /// Overwrite finger `k` — **corruption injection** for audits and tests
    /// only; the simulation itself never calls this. Pairs with
    /// [`crate::ring::ChordNet::node_mut`] so `sprite-audit`'s checkers can
    /// be exercised against known-broken routing state.
    pub fn set_finger(&mut self, k: usize, target: RingId) {
        self.fingers[k] = target;
    }

    /// Replace the successor list — corruption injection (see
    /// [`Self::set_finger`]). The list must stay non-empty.
    pub fn set_successor_list(&mut self, list: Vec<RingId>) {
        assert!(!list.is_empty(), "successor list must stay non-empty");
        self.succ = list;
    }

    /// Replace the predecessor pointer — corruption injection (see
    /// [`Self::set_finger`]).
    pub fn set_predecessor(&mut self, pred: Option<RingId>) {
        self.pred = pred;
    }

    /// Best local candidate strictly preceding `key` (closer than this
    /// node), chosen among fingers and the successor list, subject to
    /// `is_usable` (the network's aliveness check). Returns `None` when no
    /// usable entry makes progress.
    pub(crate) fn closest_preceding<F>(&self, key: RingId, mut is_usable: F) -> Option<RingId>
    where
        F: FnMut(RingId) -> bool,
    {
        // Fingers, highest (farthest) first — the classic Chord scan.
        for &f in self.fingers.iter().rev() {
            if f != self.id && f.in_open(self.id, key) && is_usable(f) {
                return Some(f);
            }
        }
        // Fall back to the successor list: take the farthest usable entry
        // that still precedes the key.
        let mut best: Option<RingId> = None;
        let mut best_dist = 0u128;
        for &s in &self.succ {
            if s != self.id && s.in_open(self.id, key) && is_usable(s) {
                let d = self.id.distance_cw(s);
                if d > best_dist {
                    best_dist = d;
                    best = Some(s);
                }
            }
        }
        best
    }

    /// Deterministic *logical* bytes of this node's routing state: 16 per
    /// stored ring id (the id itself, the predecessor when present, every
    /// successor-list entry, every finger). Length-based, never capacity,
    /// so the number depends only on the state's contents — the
    /// memory-per-peer metric gates on it exactly.
    #[must_use]
    pub fn logical_bytes(&self) -> u64 {
        let ids =
            1 + u64::from(self.pred.is_some()) + self.succ.len() as u64 + self.fingers.len() as u64;
        ids * 16
    }

    /// Number of *distinct* peers this node references (ring-degree metric).
    #[must_use]
    pub fn distinct_neighbors(&self) -> usize {
        let mut set: std::collections::HashSet<RingId> = self.fingers.iter().copied().collect();
        set.extend(self.succ.iter().copied());
        if let Some(p) = self.pred {
            set.insert(p);
        }
        set.remove(&self.id);
        set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solitary_points_to_self() {
        let n = NodeState::solitary(RingId(42));
        assert_eq!(n.successor(), RingId(42));
        assert_eq!(n.predecessor(), Some(RingId(42)));
        assert!(n.finger_table().iter().all(|&f| f == RingId(42)));
        assert_eq!(n.distinct_neighbors(), 0);
    }

    #[test]
    fn joining_knows_only_successor() {
        let n = NodeState::joining(RingId(10), RingId(99), 4);
        assert_eq!(n.successor(), RingId(99));
        assert_eq!(n.predecessor(), None);
        assert_eq!(n.successor_list(), [RingId(99)]);
        assert_eq!(n.distinct_neighbors(), 1);
    }

    #[test]
    fn closest_preceding_prefers_far_fingers() {
        let mut n = NodeState::solitary(RingId(0));
        n.fingers = vec![RingId(0); 128];
        n.fingers[3] = RingId(8); // id + 8
        n.fingers[6] = RingId(64); // id + 64
                                   // Key 100: finger 64 precedes it and is farther than 8.
        assert_eq!(n.closest_preceding(RingId(100), |_| true), Some(RingId(64)));
        // Key 50: only finger 8 precedes it.
        assert_eq!(n.closest_preceding(RingId(50), |_| true), Some(RingId(8)));
    }

    #[test]
    fn closest_preceding_skips_dead_fingers() {
        let mut n = NodeState::solitary(RingId(0));
        n.fingers = vec![RingId(0); 128];
        n.fingers[3] = RingId(8);
        n.fingers[6] = RingId(64);
        let alive = |id: RingId| id != RingId(64);
        assert_eq!(n.closest_preceding(RingId(100), alive), Some(RingId(8)));
    }

    #[test]
    fn closest_preceding_uses_successor_list_as_fallback() {
        let mut n = NodeState::solitary(RingId(0));
        n.fingers = vec![RingId(0); 128];
        n.succ = vec![RingId(5), RingId(9)];
        assert_eq!(n.closest_preceding(RingId(100), |_| true), Some(RingId(9)));
        // Key 7: only succ 5 precedes.
        assert_eq!(n.closest_preceding(RingId(7), |_| true), Some(RingId(5)));
    }

    #[test]
    fn closest_preceding_none_when_no_progress() {
        let n = NodeState::solitary(RingId(0));
        assert_eq!(n.closest_preceding(RingId(100), |_| true), None);
    }
}
