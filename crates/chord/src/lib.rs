//! A Chord DHT simulator, as the SPRITE paper uses it.
//!
//! "We implemented Chord as designed in \[15\]. All terms are hashed using
//! MD5" (§6). This crate provides that substrate as a deterministic
//! single-process simulation:
//!
//! * [`ring`] — the network: finger-table routing with honest O(log N) hop
//!   accounting, join/leave/abrupt-failure, and the stabilization protocol;
//! * [`node`] — per-node routing state (predecessor, successor list,
//!   fingers);
//! * [`stats`] — message counters classified by purpose, feeding the cost
//!   studies;
//! * [`kv`] — a replicated key-value layer demonstrating §7's
//!   successor-replication scheme;
//! * [`trace`] — the deterministic observability layer: zero-cost-when-
//!   disabled trace sinks, structured events, and mergeable cost recorders;
//! * [`sim`] — pluggable network models (latency/jitter, link asymmetry,
//!   Bernoulli loss) behind the event-driven delivery layer; the default
//!   perfect network is bit-identical to lockstep execution.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod churn;
pub mod kv;
pub mod node;
pub mod ring;
pub mod sim;
pub mod stats;
pub mod store;
pub mod trace;

pub use churn::{ChurnConfig, ChurnEngine, ChurnEvent, TickReport};
pub use kv::Dht;
pub use node::NodeState;
pub use ring::{ChordConfig, ChordError, ChordNet, Lookup, LookupLite, RouteMemo};
pub use sim::{Delivery, LinkModel, NetworkModel, PerfectNetwork, SimConfig};
pub use stats::{MsgKind, NetStats, MSG_KINDS};
pub use store::StorageBackend;
pub use trace::{Event, NullTrace, Phase, TraceRecorder, TraceSink, PHASES};
