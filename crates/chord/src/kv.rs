//! A replicated key-value layer over the Chord ring.
//!
//! SPRITE's indexing peers are, at bottom, DHT storage: a term's metadata
//! lives at the peer owning `md5(term)`, optionally replicated to its
//! successors (§7: "we can replicate the indexes of a peer in its successor
//! peers periodically"). [`Dht`] packages that pattern — lookup, store at
//! the owner, mirror to `replication - 1` successors, and fail over to a
//! replica on reads when the owner has died.

use std::collections::HashMap;

use sprite_util::{RingId, WireSize};

use crate::ring::{ChordError, ChordNet};
use crate::stats::{MsgKind, NetStats};
use crate::trace::{NullTrace, Phase, TraceSink};

/// Replicated DHT storage of values of type `V`.
#[derive(Clone, Debug)]
pub struct Dht<V> {
    net: ChordNet,
    /// Replication degree: the owner plus `replication - 1` successors hold
    /// each key. 1 means no replication.
    replication: usize,
    /// node id → (key → value).
    store: HashMap<u128, HashMap<u128, V>>,
}

impl<V: Clone> Dht<V> {
    /// Wrap a network with a replication degree (≥ 1).
    #[must_use]
    pub fn new(net: ChordNet, replication: usize) -> Self {
        Dht {
            net,
            replication: replication.max(1),
            store: HashMap::new(),
        }
    }

    /// The underlying network.
    #[must_use]
    pub fn net(&self) -> &ChordNet {
        &self.net
    }

    /// Mutable access to the underlying network (churn injection).
    pub fn net_mut(&mut self) -> &mut ChordNet {
        &mut self.net
    }

    /// Store `value` under `key`, issued by peer `from`. Routes to the
    /// owner, writes there, and mirrors to the replicas resolved by walking
    /// the owner's successor chain — no global knowledge involved.
    pub fn put(&mut self, from: RingId, key: RingId, value: V) -> Result<(), ChordError>
    where
        V: WireSize,
    {
        self.put_traced(from, key, value, 0, &mut NullTrace)
    }

    /// [`Dht::put`] with trace events emitted into `sink` under
    /// [`Phase::Publish`]. Charging is bit-identical to the untraced call.
    /// Every copy written — primary and replicas — bills the value's
    /// canonical wire size to its message kind; the key rides in the
    /// routing header and is payload-free.
    pub fn put_traced<T: TraceSink>(
        &mut self,
        from: RingId,
        key: RingId,
        value: V,
        tick: u64,
        sink: &mut T,
    ) -> Result<(), ChordError>
    where
        V: WireSize,
    {
        let owner = self
            .net
            .lookup_fast_traced(from, key, Phase::Publish, tick, sink)?
            .owner;
        let mut delta = NetStats::new();
        let replicas = self.net.replicas_from_owner_traced(
            owner,
            self.replication,
            &mut delta,
            Phase::Publish,
            tick,
            sink,
        );
        self.net.absorb_stats(&delta);
        debug_assert_eq!(replicas.first(), Some(&owner));
        for (i, peer) in replicas.into_iter().enumerate() {
            let kind = if i == 0 {
                MsgKind::IndexPublish
            } else {
                MsgKind::Replication
            };
            self.net
                .charge_traced(kind, Phase::Publish, tick, peer, sink);
            self.net
                .charge_bytes_traced(kind, value.wire_size() as u64, sink);
            self.store
                .entry(peer.0)
                .or_default()
                .insert(key.0, value.clone());
        }
        Ok(())
    }

    /// Read the value under `key`, issued by peer `from`. Falls back to any
    /// replica within the replication span when the routed owner holds no
    /// copy (e.g. it joined after the write and has not synced).
    pub fn get(&mut self, from: RingId, key: RingId) -> Result<Option<V>, ChordError>
    where
        V: WireSize,
    {
        self.get_traced(from, key, 0, &mut NullTrace)
    }

    /// [`Dht::get`] with trace events emitted into `sink` under
    /// [`Phase::Query`]. Charging is bit-identical to the untraced call.
    /// Each probe bills the wire size of its response: one presence byte,
    /// plus the value's canonical encoding on a hit.
    pub fn get_traced<T: TraceSink>(
        &mut self,
        from: RingId,
        key: RingId,
        tick: u64,
        sink: &mut T,
    ) -> Result<Option<V>, ChordError>
    where
        V: WireSize,
    {
        let owner = self
            .net
            .lookup_fast_traced(from, key, Phase::Query, tick, sink)?
            .owner;
        self.net
            .charge_traced(MsgKind::QueryFetch, Phase::Query, tick, owner, sink);
        if let Some(v) = self.store.get(&owner.0).and_then(|m| m.get(&key.0)) {
            self.net
                .charge_bytes_traced(MsgKind::QueryFetch, 1 + v.wire_size() as u64, sink);
            return Ok(Some(v.clone()));
        }
        self.net.charge_bytes_traced(MsgKind::QueryFetch, 1, sink);
        // Probe the remaining replicas, resolved by walking the owner's
        // successor chain (the routed failover of §7).
        if self.replication > 1 {
            let mut delta = NetStats::new();
            let replicas = self.net.replicas_from_owner_traced(
                owner,
                self.replication,
                &mut delta,
                Phase::Query,
                tick,
                sink,
            );
            self.net.absorb_stats(&delta);
            for peer in replicas.into_iter().skip(1) {
                self.net
                    .charge_traced(MsgKind::QueryFetch, Phase::Query, tick, peer, sink);
                if let Some(v) = self.store.get(&peer.0).and_then(|m| m.get(&key.0)) {
                    self.net.charge_bytes_traced(
                        MsgKind::QueryFetch,
                        1 + v.wire_size() as u64,
                        sink,
                    );
                    return Ok(Some(v.clone()));
                }
                self.net.charge_bytes_traced(MsgKind::QueryFetch, 1, sink);
            }
        }
        Ok(None)
    }

    /// Remove `key` from every replica, issued by peer `from`. Returns true
    /// if at least one copy existed.
    pub fn remove(&mut self, from: RingId, key: RingId) -> Result<bool, ChordError> {
        self.remove_traced(from, key, 0, &mut NullTrace)
    }

    /// [`Dht::remove`] with trace events emitted into `sink` under
    /// [`Phase::Publish`] (removal is the write path of an index update).
    /// Removal messages carry only the key — already in the routing
    /// header — so they bill zero payload bytes.
    pub fn remove_traced<T: TraceSink>(
        &mut self,
        from: RingId,
        key: RingId,
        tick: u64,
        sink: &mut T,
    ) -> Result<bool, ChordError> {
        let owner = self
            .net
            .lookup_fast_traced(from, key, Phase::Publish, tick, sink)?
            .owner;
        let mut delta = NetStats::new();
        let replicas = self.net.replicas_from_owner_traced(
            owner,
            self.replication,
            &mut delta,
            Phase::Publish,
            tick,
            sink,
        );
        self.net.absorb_stats(&delta);
        let mut existed = false;
        for peer in replicas {
            self.net
                .charge_traced(MsgKind::IndexRemove, Phase::Publish, tick, peer, sink);
            if let Some(m) = self.store.get_mut(&peer.0) {
                existed |= m.remove(&key.0).is_some();
            }
        }
        Ok(existed)
    }

    /// Drop all values stored at a (failed) peer — models the data loss an
    /// abrupt failure causes. Graceful leaves should instead call
    /// [`Dht::rereplicate`] after removing the node from the network.
    pub fn drop_peer_data(&mut self, peer: RingId) {
        self.store.remove(&peer.0);
    }

    /// Re-replicate every stored key to its current replica set (the
    /// periodic repair of §7). Each key's replica set is resolved by a
    /// routed lookup from an alive holder followed by a successor-chain
    /// walk; one replication message is charged per copy created. Returns
    /// the number of copies written.
    pub fn rereplicate(&mut self) -> usize
    where
        V: WireSize,
    {
        self.rereplicate_traced(0, &mut NullTrace)
    }

    /// [`Dht::rereplicate`] with trace events emitted into `sink` under
    /// [`Phase::ChurnRepair`]. Charging is bit-identical to the untraced
    /// call. Each copy written bills the value's wire size to
    /// [`MsgKind::Replication`].
    pub fn rereplicate_traced<T: TraceSink>(&mut self, tick: u64, sink: &mut T) -> usize
    where
        V: WireSize,
    {
        // Union of all (key, value) pairs still alive anywhere, each with
        // the smallest-id alive holder to route the repair from. Keys are
        // then repaired in sorted order so the schedule — and its message
        // bill — is deterministic.
        let mut all: HashMap<u128, (V, u128)> = HashMap::new();
        for (&peer, m) in &self.store {
            if self.net.contains(RingId(peer)) {
                for (k, v) in m {
                    let slot = all.entry(*k).or_insert_with(|| (v.clone(), peer));
                    slot.1 = slot.1.min(peer);
                }
            }
        }
        let mut keys: Vec<u128> = all.keys().copied().collect();
        keys.sort_unstable();
        let mut written = 0;
        for k in keys {
            let Some((v, holder)) = all.remove(&k) else {
                continue;
            };
            // A dead-end here means the key is unroutable under the current
            // damage; leave it for the next repair round.
            let Ok(lookup) = self.net.lookup_fast_traced(
                RingId(holder),
                RingId(k),
                Phase::ChurnRepair,
                tick,
                sink,
            ) else {
                continue;
            };
            let mut delta = NetStats::new();
            let replicas = self.net.replicas_from_owner_traced(
                lookup.owner,
                self.replication,
                &mut delta,
                Phase::ChurnRepair,
                tick,
                sink,
            );
            self.net.absorb_stats(&delta);
            for peer in replicas {
                let slot = self.store.entry(peer.0).or_default();
                if let std::collections::hash_map::Entry::Vacant(e) = slot.entry(k) {
                    let bytes = v.wire_size() as u64;
                    e.insert(v.clone());
                    self.net.charge_traced(
                        MsgKind::Replication,
                        Phase::ChurnRepair,
                        tick,
                        peer,
                        sink,
                    );
                    self.net
                        .charge_bytes_traced(MsgKind::Replication, bytes, sink);
                    written += 1;
                }
            }
        }
        written
    }

    /// Number of (peer, key) copies currently stored.
    #[must_use]
    pub fn total_copies(&self) -> usize {
        self.store.values().map(HashMap::len).sum()
    }

    /// Configured replication degree.
    #[must_use]
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Every stored copy as `(holding peer, key)`, sorted by peer then key
    /// so callers never observe `HashMap` iteration order.
    #[must_use]
    pub fn copies(&self) -> Vec<(RingId, RingId)> {
        let mut out: Vec<(RingId, RingId)> = self
            .store
            .iter()
            .flat_map(|(&p, m)| m.keys().map(move |&k| (RingId(p), RingId(k))))
            .collect();
        out.sort_unstable();
        out
    }

    /// Write a copy directly at `peer`, bypassing routing and replication —
    /// **corruption injection** for `sprite-audit` tests only (plants a
    /// misplaced key so the placement checker can be exercised).
    pub fn inject_copy(&mut self, peer: RingId, key: RingId, value: V) {
        self.store.entry(peer.0).or_default().insert(key.0, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::ChordConfig;

    fn dht(n: usize, replication: usize) -> Dht<String> {
        let net = ChordNet::with_random_nodes(ChordConfig::default(), n, 7);
        Dht::new(net, replication)
    }

    #[test]
    fn put_get_roundtrip() {
        let mut d = dht(16, 1);
        let from = d.net().node_ids()[0];
        let key = RingId::hash_term("alpha");
        d.put(from, key, "value-a".to_string()).unwrap();
        assert_eq!(d.get(from, key).unwrap().as_deref(), Some("value-a"));
        assert_eq!(d.get(from, RingId::hash_term("missing")).unwrap(), None);
    }

    #[test]
    fn replication_writes_extra_copies() {
        let mut d = dht(16, 3);
        let from = d.net().node_ids()[0];
        d.put(from, RingId::hash_term("beta"), "v".into()).unwrap();
        assert_eq!(d.total_copies(), 3);
        assert_eq!(d.net().stats().count(MsgKind::Replication), 2);
        assert_eq!(d.net().stats().count(MsgKind::IndexPublish), 1);
    }

    #[test]
    fn writes_and_reads_bill_payload_bytes() {
        let mut d = dht(16, 3);
        let from = d.net().node_ids()[0];
        let key = RingId::hash_term("bytes");
        let value = "four".to_string();
        let per_copy = value.wire_size() as u64;
        d.put(from, key, value).unwrap();
        // One primary write plus two replicas, each carrying the value.
        assert_eq!(d.net().stats().bytes(MsgKind::IndexPublish), per_copy);
        assert_eq!(d.net().stats().bytes(MsgKind::Replication), 2 * per_copy);
        let before = d.net().stats().bytes(MsgKind::QueryFetch);
        assert!(d.get(from, key).unwrap().is_some());
        // A hit at the owner: one presence byte plus the value.
        assert_eq!(
            d.net().stats().bytes(MsgKind::QueryFetch) - before,
            1 + per_copy
        );
        let before = d.net().stats().bytes(MsgKind::QueryFetch);
        let miss = RingId::hash_term("absent");
        assert!(d.get(from, miss).unwrap().is_none());
        // A miss probes the owner and both replicas: one byte each.
        assert_eq!(d.net().stats().bytes(MsgKind::QueryFetch) - before, 3);
        assert_eq!(d.net().stats().bytes(MsgKind::IndexRemove), 0);
    }

    #[test]
    fn survives_owner_failure_with_replication() {
        let mut d = dht(16, 3);
        let key = RingId::hash_term("gamma");
        let owner = d.net().oracle_owner(key).unwrap();
        let from = *d
            .net()
            .node_ids()
            .iter()
            .find(|&&n| n != owner)
            .expect("16 nodes, one owner");
        d.put(from, key, "precious".into()).unwrap();
        d.net_mut().fail(owner).unwrap();
        d.drop_peer_data(owner);
        d.net_mut().converge(40);
        assert_eq!(d.get(from, key).unwrap().as_deref(), Some("precious"));
    }

    #[test]
    fn lost_without_replication() {
        let mut d = dht(16, 1);
        let key = RingId::hash_term("delta");
        let owner = d.net().oracle_owner(key).unwrap();
        let from = *d
            .net()
            .node_ids()
            .iter()
            .find(|&&n| n != owner)
            .expect("16 nodes, one owner");
        d.put(from, key, "fragile".into()).unwrap();
        d.net_mut().fail(owner).unwrap();
        d.drop_peer_data(owner);
        d.net_mut().converge(40);
        assert_eq!(d.get(from, key).unwrap(), None);
    }

    #[test]
    fn remove_deletes_all_replicas() {
        let mut d = dht(16, 3);
        let from = d.net().node_ids()[0];
        let key = RingId::hash_term("epsilon");
        d.put(from, key, "v".into()).unwrap();
        assert!(d.remove(from, key).unwrap());
        assert_eq!(d.get(from, key).unwrap(), None);
        assert_eq!(d.total_copies(), 0);
        assert!(!d.remove(from, key).unwrap());
    }

    #[test]
    fn rereplicate_restores_degree_after_failure() {
        let mut d = dht(16, 3);
        let from = d.net().node_ids()[0];
        let key = RingId::hash_term("zeta");
        d.put(from, key, "v".into()).unwrap();
        let owner = d.net_mut().lookup(from, key).unwrap().owner;
        d.net_mut().fail(owner).unwrap();
        d.drop_peer_data(owner);
        d.net_mut().converge(40);
        let written = d.rereplicate();
        assert!(written >= 1);
        assert_eq!(d.total_copies(), 3, "replication degree restored");
    }
}
