//! Network cost accounting.
//!
//! The motivation for SPRITE is cost: "a single document insertion could
//! require updates in a large fraction of the network" (§1). The simulator
//! therefore counts every inter-peer message, classified by purpose, so the
//! cost studies can report exactly what full-term indexing, eSearch, and
//! SPRITE each pay.

/// Message classes counted by the simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// One routing step of a Chord lookup.
    LookupHop,
    /// Publishing or updating an index entry at an indexing peer.
    IndexPublish,
    /// Removing an index entry from an indexing peer.
    IndexRemove,
    /// Retrieving an inverted list during query processing.
    QueryFetch,
    /// An owner peer polling indexing peers for cached queries (learning).
    LearnPoll,
    /// An indexing peer returning cached queries to an owner peer.
    LearnReturn,
    /// Ring maintenance (stabilize, notify, fix-fingers probes).
    Maintenance,
    /// Replicating state to successor peers (§7).
    Replication,
    /// A message attempt that hit a dead peer (timeout).
    Failed,
    /// A message that timed out in flight: either an application-level
    /// failover probe against a dead successor-list replica entry (§7), or
    /// a transmission the network model dropped — one timeout per dropped
    /// attempt, including retransmissions. Distinct from
    /// [`MsgKind::Failed`], which counts dead-probe timeouts *inside* a
    /// routing walk.
    Timeout,
}

/// Number of distinct [`MsgKind`] values.
pub const MSG_KINDS: usize = 10;

impl MsgKind {
    pub(crate) fn index(self) -> usize {
        match self {
            MsgKind::LookupHop => 0,
            MsgKind::IndexPublish => 1,
            MsgKind::IndexRemove => 2,
            MsgKind::QueryFetch => 3,
            MsgKind::LearnPoll => 4,
            MsgKind::LearnReturn => 5,
            MsgKind::Maintenance => 6,
            MsgKind::Replication => 7,
            MsgKind::Failed => 8,
            MsgKind::Timeout => 9,
        }
    }

    /// Stable lower-snake name, used by trace reports and the bench
    /// `metrics` JSON object (so the CI gate can key counts by kind).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MsgKind::LookupHop => "lookup_hop",
            MsgKind::IndexPublish => "index_publish",
            MsgKind::IndexRemove => "index_remove",
            MsgKind::QueryFetch => "query_fetch",
            MsgKind::LearnPoll => "learn_poll",
            MsgKind::LearnReturn => "learn_return",
            MsgKind::Maintenance => "maintenance",
            MsgKind::Replication => "replication",
            MsgKind::Failed => "failed",
            MsgKind::Timeout => "timeout",
        }
    }

    /// All kinds, in index order.
    #[must_use]
    pub fn all() -> [MsgKind; MSG_KINDS] {
        [
            MsgKind::LookupHop,
            MsgKind::IndexPublish,
            MsgKind::IndexRemove,
            MsgKind::QueryFetch,
            MsgKind::LearnPoll,
            MsgKind::LearnReturn,
            MsgKind::Maintenance,
            MsgKind::Replication,
            MsgKind::Failed,
            MsgKind::Timeout,
        ]
    }
}

/// Aggregate message counters plus lookup hop distribution.
///
/// Every field is a sum or a max, so [`NetStats::merge`] is commutative and
/// associative: per-thread deltas merged in input order reproduce the exact
/// totals a sequential run would have produced, which is what makes the
/// parallel experiment engine bit-identical to the sequential one.
///
/// Alongside message *counts*, every kind carries a payload *byte* counter.
/// Control traffic (routing hops, polls, maintenance probes, timeouts) is
/// payload-free and stays at zero bytes; data-bearing kinds (publishes,
/// removals, fetches, replication transfers, learning returns) are charged
/// the exact canonical wire size of their payload as reported by the
/// `sprite-util` codec's `WireSize` trait.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    counts: [u64; MSG_KINDS],
    /// Payload bytes shipped per kind (sum of canonical wire sizes).
    bytes: [u64; MSG_KINDS],
    /// Number of completed lookups.
    lookups: u64,
    /// Total hops across completed lookups.
    lookup_hops: u64,
    /// Maximum hops seen on any single lookup.
    max_hops: u32,
}

impl NetStats {
    /// Fresh, zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one message of `kind`.
    pub fn record(&mut self, kind: MsgKind) {
        self.counts[kind.index()] += 1;
    }

    /// Count `n` messages of `kind`.
    pub fn record_n(&mut self, kind: MsgKind, n: u64) {
        self.counts[kind.index()] += n;
    }

    /// Charge `n` payload bytes to `kind`, without counting a message.
    ///
    /// Message counts and byte totals are deliberately independent: a
    /// batched transfer is one message carrying many records' bytes, while
    /// a zero-payload control message counts as one message of zero bytes.
    pub fn record_bytes(&mut self, kind: MsgKind, n: u64) {
        self.bytes[kind.index()] += n;
    }

    /// Record one completed lookup that took `hops` routing steps.
    pub fn record_lookup(&mut self, hops: u32) {
        self.lookups += 1;
        self.lookup_hops += u64::from(hops);
        self.max_hops = self.max_hops.max(hops);
    }

    /// Charge one routing walk: `hops` messages of `kind`, `failed` dead
    /// probes, `lost` in-flight drops (real [`MsgKind::Timeout`]s from the
    /// network model — zero on the perfect default, so the call is
    /// unchanged), and — for completed application lookups — the
    /// hop-distribution entry. Shared by the in-place router and the
    /// read-only query path so both charge identically.
    pub fn charge_route(
        &mut self,
        kind: MsgKind,
        hops: u32,
        failed: u64,
        lost: u64,
        completed: bool,
    ) {
        self.record_n(kind, u64::from(hops));
        self.record_n(MsgKind::Failed, failed);
        self.record_n(MsgKind::Timeout, lost);
        if completed && kind == MsgKind::LookupHop {
            self.record_lookup(hops);
        }
    }

    /// Messages of `kind` so far.
    #[must_use]
    pub fn count(&self, kind: MsgKind) -> u64 {
        self.counts[kind.index()]
    }

    /// All messages of all kinds.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Payload bytes charged to `kind` so far.
    #[must_use]
    pub fn bytes(&self, kind: MsgKind) -> u64 {
        self.bytes[kind.index()]
    }

    /// All payload bytes across all kinds.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Number of completed lookups.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Mean hops per completed lookup (0 if none).
    #[must_use]
    pub fn mean_hops(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.lookup_hops as f64 / self.lookups as f64
        }
    }

    /// Worst-case hops over all completed lookups.
    #[must_use]
    pub fn max_hops(&self) -> u32 {
        self.max_hops
    }

    /// Zero every counter (start of a measured phase).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Absorb the counters of `other`.
    pub fn merge(&mut self, other: &NetStats) {
        for i in 0..MSG_KINDS {
            self.counts[i] += other.counts[i];
            self.bytes[i] += other.bytes[i];
        }
        self.lookups += other.lookups;
        self.lookup_hops += other.lookup_hops;
        self.max_hops = self.max_hops.max(other.max_hops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_by_kind() {
        let mut s = NetStats::new();
        s.record(MsgKind::LookupHop);
        s.record(MsgKind::LookupHop);
        s.record(MsgKind::IndexPublish);
        s.record_n(MsgKind::QueryFetch, 5);
        assert_eq!(s.count(MsgKind::LookupHop), 2);
        assert_eq!(s.count(MsgKind::IndexPublish), 1);
        assert_eq!(s.count(MsgKind::QueryFetch), 5);
        assert_eq!(s.count(MsgKind::Failed), 0);
        assert_eq!(s.total_messages(), 8);
    }

    #[test]
    fn lookup_hop_statistics() {
        let mut s = NetStats::new();
        s.record_lookup(3);
        s.record_lookup(5);
        s.record_lookup(1);
        assert_eq!(s.lookups(), 3);
        assert!((s.mean_hops() - 3.0).abs() < 1e-12);
        assert_eq!(s.max_hops(), 5);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut s = NetStats::new();
        s.record(MsgKind::Maintenance);
        s.record_lookup(7);
        s.reset();
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.lookups(), 0);
        assert_eq!(s.mean_hops(), 0.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = NetStats::new();
        a.record(MsgKind::LookupHop);
        a.record_lookup(2);
        let mut b = NetStats::new();
        b.record(MsgKind::LookupHop);
        b.record(MsgKind::Replication);
        b.record_lookup(6);
        a.merge(&b);
        assert_eq!(a.count(MsgKind::LookupHop), 2);
        assert_eq!(a.count(MsgKind::Replication), 1);
        assert_eq!(a.lookups(), 2);
        assert!((a.mean_hops() - 4.0).abs() < 1e-12);
        assert_eq!(a.max_hops(), 6);
    }

    #[test]
    fn charge_route_zero_hop_completed_lookup() {
        // A lookup answered by the origin itself: no hop messages, but the
        // hop distribution must still record a completed zero-hop lookup.
        let mut s = NetStats::new();
        s.charge_route(MsgKind::LookupHop, 0, 0, 0, true);
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.lookups(), 1);
        assert_eq!(s.mean_hops(), 0.0);
        assert_eq!(s.max_hops(), 0);
    }

    #[test]
    fn charge_route_failed_only_walk() {
        // A walk that only hit dead peers: timeouts are billed, no lookup
        // completes, the hop distribution stays empty.
        let mut s = NetStats::new();
        s.charge_route(MsgKind::LookupHop, 0, 3, 0, false);
        assert_eq!(s.count(MsgKind::Failed), 3);
        assert_eq!(s.count(MsgKind::LookupHop), 0);
        assert_eq!(s.lookups(), 0);
        assert_eq!(s.max_hops(), 0);
    }

    #[test]
    fn charge_route_non_lookup_kind_skips_hop_distribution() {
        // Maintenance walks bill their hops under their own kind but never
        // enter the application-lookup hop distribution, even when
        // completed.
        let mut s = NetStats::new();
        s.charge_route(MsgKind::Maintenance, 4, 1, 0, true);
        assert_eq!(s.count(MsgKind::Maintenance), 4);
        assert_eq!(s.count(MsgKind::Failed), 1);
        assert_eq!(s.lookups(), 0, "non-LookupHop kinds skip record_lookup");
        assert_eq!(s.max_hops(), 0);
    }

    #[test]
    fn charge_route_incomplete_lookup_bills_hops_without_distribution() {
        let mut s = NetStats::new();
        s.charge_route(MsgKind::LookupHop, 5, 2, 0, false);
        assert_eq!(s.count(MsgKind::LookupHop), 5);
        assert_eq!(s.count(MsgKind::Failed), 2);
        assert_eq!(s.lookups(), 0);
    }

    #[test]
    fn charge_route_bills_in_flight_losses_as_timeouts() {
        let mut s = NetStats::new();
        s.charge_route(MsgKind::LookupHop, 3, 1, 2, true);
        assert_eq!(s.count(MsgKind::LookupHop), 3);
        assert_eq!(s.count(MsgKind::Failed), 1);
        assert_eq!(s.count(MsgKind::Timeout), 2);
        assert_eq!(s.lookups(), 1, "a lossy but completed walk still counts");
    }

    #[test]
    fn bytes_are_independent_of_message_counts() {
        let mut s = NetStats::new();
        s.record(MsgKind::IndexPublish);
        s.record_bytes(MsgKind::IndexPublish, 17);
        s.record_bytes(MsgKind::QueryFetch, 5);
        assert_eq!(s.bytes(MsgKind::IndexPublish), 17);
        assert_eq!(s.bytes(MsgKind::QueryFetch), 5);
        assert_eq!(
            s.count(MsgKind::QueryFetch),
            0,
            "bytes never count messages"
        );
        assert_eq!(s.total_bytes(), 22);
        assert_eq!(s.total_messages(), 1);
        s.reset();
        assert_eq!(s.total_bytes(), 0);
    }

    #[test]
    fn merge_adds_bytes_commutatively() {
        // Byte counters are pure sums, so merge order must not matter —
        // the parallel engine's per-worker deltas rely on it.
        let mut a = NetStats::new();
        a.record_bytes(MsgKind::Replication, 100);
        a.record_bytes(MsgKind::QueryFetch, 3);
        a.record(MsgKind::Replication);
        let mut b = NetStats::new();
        b.record_bytes(MsgKind::Replication, 11);
        b.record_bytes(MsgKind::LearnReturn, 42);
        b.record_lookup(4);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "byte merge must commute");
        assert_eq!(ab.bytes(MsgKind::Replication), 111);
        assert_eq!(ab.bytes(MsgKind::LearnReturn), 42);
        assert_eq!(ab.total_bytes(), 156);
    }

    #[test]
    fn msg_kind_names_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for k in MsgKind::all() {
            assert!(seen.insert(k.name()));
        }
        assert_eq!(seen.len(), MSG_KINDS);
    }

    #[test]
    fn all_kinds_have_distinct_indices() {
        let mut seen = std::collections::HashSet::new();
        for k in MsgKind::all() {
            assert!(seen.insert(k.index()));
        }
        assert_eq!(seen.len(), MSG_KINDS);
    }
}
