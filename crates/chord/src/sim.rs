//! Network models for event-driven message delivery (DESIGN.md §13).
//!
//! Every message the simulator "sends" — a routing hop during a Chord walk,
//! a batched index-publication transfer, a maintenance re-replication —
//! transits a [`NetworkModel`]: per-link latency with bounded jitter, link
//! asymmetry, and Bernoulli packet loss. Two properties are load-bearing:
//!
//! * **Stateless sampling.** A link's fate is a pure hash of
//!   `(seed, from, to, salt)` — no RNG stream is consumed, so read-only
//!   walks stay `&self`, a [`crate::RouteMemo`] replay bills exactly what
//!   the live walk billed, and the worker count of a parallel evaluation
//!   cannot perturb a single sample. Same seed ⇒ same event order, at any
//!   parallelism.
//! * **A perfect default.** [`SimConfig::default`] is zero-latency,
//!   zero-loss; the delivery layer short-circuits it without sampling, so
//!   the default pipeline is bit-identical to the lockstep execution the
//!   scheduler replaced (audited as the `sim/loss` determinism stage).
//!
//! Under nonzero loss a transmission may be dropped; each drop is billed as
//! one real [`crate::MsgKind::Timeout`], and a sender retries up to
//! [`SimConfig::max_retries`] times before giving up — surfacing as
//! [`crate::ChordError::Lost`] on routing hops, or as a drowned transfer
//! whose records never arrive on application messages. That is what drives
//! the per-keyword retry and partial-result ranking paths that dead-probe
//! timeouts alone never exercised.

use sprite_util::RingId;

/// Network-model parameters. The default is the *perfect* network:
/// zero latency, zero jitter, zero asymmetry, zero loss.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    /// Seed mixed into every link sample (independent of peer/query seeds).
    pub seed: u64,
    /// Base one-way latency, in scheduler time units.
    pub latency: u64,
    /// Uniform extra latency in `0..=jitter` sampled per transmission.
    pub jitter: u64,
    /// Extra latency charged when `from > to` on the identifier ring —
    /// a crude model of asymmetric links.
    pub asymmetry: u64,
    /// Bernoulli per-transmission drop probability in `[0, 1]`.
    pub loss: f64,
    /// Retransmissions attempted after a drop before the message is
    /// abandoned (so up to `1 + max_retries` transmissions total).
    pub max_retries: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            latency: 0,
            jitter: 0,
            asymmetry: 0,
            loss: 0.0,
            max_retries: 2,
        }
    }
}

impl SimConfig {
    /// True when transmissions can be dropped.
    #[must_use]
    pub fn lossy(&self) -> bool {
        self.loss > 0.0
    }

    /// True when the model can neither delay nor drop anything — the
    /// configuration the bit-identity contract is proven against.
    #[must_use]
    pub fn is_perfect(&self) -> bool {
        !self.lossy() && self.latency == 0 && self.jitter == 0 && self.asymmetry == 0
    }

    /// Transmit one message `from → to` with retransmissions.
    ///
    /// Returns `Ok((arrival, drops))` when some attempt gets through:
    /// `arrival` is the modeled delivery time offset (each preceding drop
    /// adds one retransmission-timeout interval) and `drops` the number of
    /// dropped attempts, each owed one [`crate::MsgKind::Timeout`] charge.
    /// Returns `Err(drops)` when the whole budget drowned.
    pub fn transmit(&self, from: RingId, to: RingId, salt: u64) -> Result<(u64, u64), u64> {
        let model = LinkModel::new(self);
        let rto = self.latency + self.jitter + 1;
        let mut drops = 0u64;
        for attempt in 0..=u64::from(self.max_retries) {
            match model.link_delivery(from, to, salt.wrapping_add(attempt)) {
                Delivery::Deliver { latency } => return Ok((drops * rto + latency, drops)),
                Delivery::Drop => drops += 1,
            }
        }
        Err(drops)
    }
}

/// Fate of a single transmission attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delivery {
    /// The message arrives after `latency` time units.
    Deliver {
        /// One-way delay of this attempt.
        latency: u64,
    },
    /// The message is lost in flight.
    Drop,
}

/// A pluggable link model: given sender, receiver, and a caller-chosen
/// salt (distinguishing attempts on the same link), decide the fate of one
/// transmission. Implementations must be pure functions of their inputs.
pub trait NetworkModel {
    /// Sample the fate of one transmission `from → to`.
    ///
    /// Application crates must not call this directly — route messages
    /// through [`crate::ChordNet::plan_delivery`] or the lossy walk instead
    /// (enforced by the `no-direct-delivery` lint rule).
    fn link_delivery(&self, from: RingId, to: RingId, salt: u64) -> Delivery;
}

/// The ideal network: instant, reliable delivery.
#[derive(Clone, Copy, Debug, Default)]
pub struct PerfectNetwork;

impl NetworkModel for PerfectNetwork {
    fn link_delivery(&self, _from: RingId, _to: RingId, _salt: u64) -> Delivery {
        Delivery::Deliver { latency: 0 }
    }
}

/// The [`SimConfig`]-driven model: base latency plus uniform jitter, an
/// asymmetry surcharge for "uphill" links, and Bernoulli loss — all sampled
/// by hashing `(seed, from, to, salt)` with a splitmix64 finalizer.
#[derive(Clone, Copy, Debug)]
pub struct LinkModel {
    seed: u64,
    latency: u64,
    jitter: u64,
    asymmetry: u64,
    loss: f64,
}

impl LinkModel {
    /// A model over the given parameters.
    #[must_use]
    pub fn new(cfg: &SimConfig) -> Self {
        LinkModel {
            seed: cfg.seed,
            latency: cfg.latency,
            jitter: cfg.jitter,
            asymmetry: cfg.asymmetry,
            loss: cfg.loss,
        }
    }
}

impl NetworkModel for LinkModel {
    fn link_delivery(&self, from: RingId, to: RingId, salt: u64) -> Delivery {
        let mut h = splitmix64(self.seed ^ 0xa076_1d64_78bd_642f);
        h = splitmix64(h ^ (from.0 as u64));
        h = splitmix64(h ^ ((from.0 >> 64) as u64));
        h = splitmix64(h ^ (to.0 as u64));
        h = splitmix64(h ^ ((to.0 >> 64) as u64));
        h = splitmix64(h ^ salt);
        // Top 53 bits → uniform in [0, 1) for the Bernoulli loss trial.
        let u = (h >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0);
        if u < self.loss {
            return Delivery::Drop;
        }
        let mut latency = self.latency;
        if self.jitter > 0 {
            latency += splitmix64(h) % (self.jitter + 1);
        }
        if from > to {
            latency += self.asymmetry;
        }
        Delivery::Deliver { latency }
    }
}

/// Mix three caller values into a transmission salt. Used to derive
/// per-message salts from `(tick, destination, kind)`-style coordinates so
/// distinct messages on the same link sample independent fates.
#[must_use]
pub fn message_salt(a: u64, b: u64, c: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(a).wrapping_add(b)).wrapping_add(c))
}

/// Salt for the `hop`-th routing transmission of a walk toward `key`.
#[must_use]
pub fn hop_salt(key: RingId, hop: u32) -> u64 {
    message_salt(key.0 as u64, (key.0 >> 64) as u64, u64::from(hop) << 8)
}

/// The splitmix64 finalizer: a fast, well-mixed 64-bit permutation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_perfect() {
        let cfg = SimConfig::default();
        assert!(cfg.is_perfect());
        assert!(!cfg.lossy());
        assert_eq!(
            cfg.transmit(RingId(1), RingId(2), 99),
            Ok((0, 0)),
            "the perfect network delivers instantly with no drops"
        );
    }

    #[test]
    fn sampling_is_pure_and_seeded() {
        let cfg = SimConfig {
            seed: 7,
            latency: 3,
            jitter: 5,
            loss: 0.3,
            ..SimConfig::default()
        };
        let m = LinkModel::new(&cfg);
        let a = m.link_delivery(RingId(10), RingId(20), 1);
        let b = m.link_delivery(RingId(10), RingId(20), 1);
        assert_eq!(a, b, "same inputs must sample the same fate");
        let other_seed = LinkModel::new(&SimConfig { seed: 8, ..cfg });
        let mut differs = false;
        for salt in 0..64 {
            if m.link_delivery(RingId(10), RingId(20), salt)
                != other_seed.link_delivery(RingId(10), RingId(20), salt)
            {
                differs = true;
                break;
            }
        }
        assert!(differs, "different seeds must realize different links");
    }

    #[test]
    fn loss_rate_tracks_configuration() {
        let cfg = SimConfig {
            seed: 42,
            loss: 0.25,
            ..SimConfig::default()
        };
        let m = LinkModel::new(&cfg);
        let n = 20_000;
        let dropped = (0..n)
            .filter(|&salt| m.link_delivery(RingId(3), RingId(9), salt) == Delivery::Drop)
            .count();
        let emp = dropped as f64 / n as f64;
        assert!(
            (emp - 0.25).abs() < 0.02,
            "empirical drop rate {emp} far from 0.25"
        );
    }

    #[test]
    fn jitter_and_asymmetry_shape_latency() {
        let cfg = SimConfig {
            seed: 5,
            latency: 10,
            jitter: 4,
            asymmetry: 100,
            ..SimConfig::default()
        };
        let m = LinkModel::new(&cfg);
        for salt in 0..200 {
            // Downhill link (from < to): latency in [10, 14].
            match m.link_delivery(RingId(1), RingId(2), salt) {
                Delivery::Deliver { latency } => {
                    assert!((10..=14).contains(&latency), "downhill latency {latency}");
                }
                Delivery::Drop => panic!("lossless model dropped"),
            }
            // Uphill link (from > to): the asymmetry surcharge applies.
            match m.link_delivery(RingId(2), RingId(1), salt) {
                Delivery::Deliver { latency } => {
                    assert!((110..=114).contains(&latency), "uphill latency {latency}");
                }
                Delivery::Drop => panic!("lossless model dropped"),
            }
        }
    }

    #[test]
    fn transmit_retries_then_gives_up() {
        let always_lost = SimConfig {
            seed: 1,
            loss: 1.0,
            max_retries: 3,
            ..SimConfig::default()
        };
        assert_eq!(
            always_lost.transmit(RingId(1), RingId(2), 0),
            Err(4),
            "1 + max_retries transmissions, all dropped"
        );
        let lossy = SimConfig {
            seed: 9,
            loss: 0.5,
            max_retries: 8,
            ..SimConfig::default()
        };
        let mut delivered_after_drop = false;
        for salt in 0..64 {
            if let Ok((arrival, drops)) = lossy.transmit(RingId(1), RingId(2), salt * 1000) {
                // Each drop delays arrival by one RTO (latency+jitter+1 = 1).
                assert_eq!(arrival, drops);
                if drops > 0 {
                    delivered_after_drop = true;
                }
            }
        }
        assert!(delivered_after_drop, "retransmission path never exercised");
    }

    #[test]
    fn perfect_network_model_never_drops() {
        let m = PerfectNetwork;
        for salt in 0..32 {
            assert_eq!(
                m.link_delivery(RingId(salt as u128), RingId(0), salt),
                Delivery::Deliver { latency: 0 }
            );
        }
    }
}
