//! Deterministic observability: structured trace events and mergeable
//! cost recorders.
//!
//! `NetStats` answers *how many* messages the simulation sent; it cannot
//! answer *where they went* or *which phase paid them*. This module adds
//! that second axis without touching the cost model:
//!
//! * [`Event`] — one charged message, tagged with a logical tick, the peer
//!   it targeted, its [`MsgKind`], and the [`Phase`] span that caused it;
//! * [`TraceSink`] — the zero-cost-when-disabled consumer trait. The
//!   `ENABLED` associated constant lets every traced helper compile down to
//!   its untraced body when the sink is [`NullTrace`]: the branch
//!   `if T::ENABLED` is resolved at monomorphization time;
//! * [`TraceRecorder`] — the recording sink: per-phase and per-kind event
//!   counts plus fixed-bucket [`Histogram`]s (hops per lookup, messages per
//!   query, replicas probed). Every field is a sum or a max, so
//!   [`TraceRecorder::merge`] is commutative like [`NetStats::merge`] and
//!   per-worker recorders fold bit-identically under `par_map`.
//!
//! The determinism contract is **observation only**: a traced run must
//! produce exactly the same results and `NetStats` as an untraced run
//! (audited by `sprite-audit`'s tracing stages).

use sprite_util::{Histogram, RingId};

use crate::stats::{MsgKind, NetStats, MSG_KINDS};

/// Operation spans that charge messages. Every traced event belongs to
/// exactly one phase, so per-phase counts partition the message bill.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Index publication (term metadata writes and their replication).
    Publish,
    /// A bare Chord lookup outside any higher-level span.
    Lookup,
    /// Query processing: keyword routing, inverted-list fetches, failover.
    Query,
    /// The learning protocol (owner polls, cached-query returns, diffs).
    Learn,
    /// Ring and index maintenance (stabilization probes, orphan repair).
    Maintenance,
    /// Churn repair: re-replication after membership changes.
    ChurnRepair,
}

/// Number of distinct [`Phase`] values.
pub const PHASES: usize = 6;

impl Phase {
    fn index(self) -> usize {
        match self {
            Phase::Publish => 0,
            Phase::Lookup => 1,
            Phase::Query => 2,
            Phase::Learn => 3,
            Phase::Maintenance => 4,
            Phase::ChurnRepair => 5,
        }
    }

    /// All phases, in index order.
    #[must_use]
    pub fn all() -> [Phase; PHASES] {
        [
            Phase::Publish,
            Phase::Lookup,
            Phase::Query,
            Phase::Learn,
            Phase::Maintenance,
            Phase::ChurnRepair,
        ]
    }

    /// Stable lower-snake name, used by trace reports and the bench
    /// `metrics` JSON object.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Publish => "publish",
            Phase::Lookup => "lookup",
            Phase::Query => "query",
            Phase::Learn => "learn",
            Phase::Maintenance => "maintenance",
            Phase::ChurnRepair => "churn_repair",
        }
    }
}

/// One charged message, as seen by a [`TraceSink`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Logical time: experiment-defined (query index, learning iteration,
    /// maintenance round), never wall-clock — traces must be deterministic.
    pub tick: u64,
    /// The peer the message targeted (origin for timeout tallies).
    pub peer: RingId,
    /// Message class, identical to the `NetStats` classification.
    pub kind: MsgKind,
    /// The operation span that charged it.
    pub phase: Phase,
}

/// Consumer of trace events.
///
/// Not object-safe on purpose: the `ENABLED` constant makes
/// `if T::ENABLED { sink.emit(..) }` a compile-time branch, so the traced
/// helpers cost nothing when instantiated with [`NullTrace`]. Dispatch
/// between recording and not recording therefore happens by
/// monomorphization, not by `dyn` indirection.
pub trait TraceSink {
    /// Whether this sink observes anything at all. Helpers skip event
    /// construction entirely when this is `false`.
    const ENABLED: bool;

    /// Observe one charged message.
    fn emit(&mut self, ev: Event);

    /// Observe `n` identical charged messages (bulk charges).
    fn emit_n(&mut self, ev: Event, n: u64) {
        for _ in 0..n {
            self.emit(ev);
        }
    }

    /// Observe `n` payload bytes charged to `kind`. Bytes are an
    /// independent axis from events: a batched transfer emits one event
    /// but many records' bytes, a control message emits an event and no
    /// bytes.
    fn emit_bytes(&mut self, kind: MsgKind, n: u64);

    /// A completed application lookup took `hops` routing steps.
    fn lookup_done(&mut self, hops: u32);

    /// A query finished: total messages billed, replicas probed during
    /// failover, and the final rank size it returned.
    fn query_done(&mut self, messages: u64, replicas_probed: u64, rank_size: usize);
}

/// The disabled sink: every traced helper instantiated with this compiles
/// down to its untraced body.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullTrace;

impl TraceSink for NullTrace {
    const ENABLED: bool = false;

    #[inline]
    fn emit(&mut self, _ev: Event) {}

    #[inline]
    fn emit_n(&mut self, _ev: Event, _n: u64) {}

    #[inline]
    fn emit_bytes(&mut self, _kind: MsgKind, _n: u64) {}

    #[inline]
    fn lookup_done(&mut self, _hops: u32) {}

    #[inline]
    fn query_done(&mut self, _messages: u64, _replicas_probed: u64, _rank_size: usize) {}
}

/// Buckets of the hops-per-lookup histogram (last bucket = overflow).
pub const HOP_BUCKETS: usize = 32;
/// Buckets of the messages-per-query histogram (last bucket = overflow).
pub const QUERY_MSG_BUCKETS: usize = 64;
/// Buckets of the replicas-probed histogram (last bucket = overflow).
pub const REPLICA_BUCKETS: usize = 8;

/// The recording sink: aggregate counters and histograms over every event
/// it observed. All fields are sums or maxes, so [`TraceRecorder::merge`]
/// is commutative and associative — per-worker recorders merged in input
/// order reproduce the sequential recorder bit for bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecorder {
    phase_counts: [u64; PHASES],
    kind_counts: [u64; MSG_KINDS],
    /// Payload bytes observed per kind, mirroring `NetStats` byte charges.
    kind_bytes: [u64; MSG_KINDS],
    events: u64,
    queries: u64,
    hops_per_lookup: Histogram,
    messages_per_query: Histogram,
    replicas_probed: Histogram,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// A zeroed recorder with the standard bucket layout.
    #[must_use]
    pub fn new() -> Self {
        TraceRecorder {
            phase_counts: [0; PHASES],
            kind_counts: [0; MSG_KINDS],
            kind_bytes: [0; MSG_KINDS],
            events: 0,
            queries: 0,
            hops_per_lookup: Histogram::new(HOP_BUCKETS),
            messages_per_query: Histogram::new(QUERY_MSG_BUCKETS),
            replicas_probed: Histogram::new(REPLICA_BUCKETS),
        }
    }

    /// Absorb the counts of `other` (commutative, like [`NetStats::merge`]).
    pub fn merge(&mut self, other: &TraceRecorder) {
        for i in 0..PHASES {
            self.phase_counts[i] += other.phase_counts[i];
        }
        for i in 0..MSG_KINDS {
            self.kind_counts[i] += other.kind_counts[i];
            self.kind_bytes[i] += other.kind_bytes[i];
        }
        self.events += other.events;
        self.queries += other.queries;
        self.hops_per_lookup.merge(&other.hops_per_lookup);
        self.messages_per_query.merge(&other.messages_per_query);
        self.replicas_probed.merge(&other.replicas_probed);
    }

    /// Attribute a whole `NetStats` span to one phase: every message
    /// counted between `before` and `after` becomes `diff` events of its
    /// kind under `phase`. Used for coarse spans (maintenance rounds, churn
    /// ticks) whose internals charge the network counters directly — the
    /// trace is derived *from* the accounting, so the two cannot diverge.
    pub fn absorb_span(&mut self, phase: Phase, before: &NetStats, after: &NetStats) {
        for kind in MsgKind::all() {
            let diff = after.count(kind).saturating_sub(before.count(kind));
            if diff > 0 {
                self.kind_counts[kind.index()] += diff;
                self.phase_counts[phase.index()] += diff;
                self.events += diff;
            }
            let byte_diff = after.bytes(kind).saturating_sub(before.bytes(kind));
            if byte_diff > 0 {
                self.kind_bytes[kind.index()] += byte_diff;
            }
        }
        // Per-lookup hop values are not recoverable from an aggregate span,
        // so coarse spans contribute event counts only — the hop histogram
        // is fed exclusively by per-lookup [`TraceSink::lookup_done`] calls.
    }

    /// Events observed under `phase`.
    #[must_use]
    pub fn phase_count(&self, phase: Phase) -> u64 {
        self.phase_counts[phase.index()]
    }

    /// Events observed of `kind`.
    #[must_use]
    pub fn kind_count(&self, kind: MsgKind) -> u64 {
        self.kind_counts[kind.index()]
    }

    /// Payload bytes observed for `kind`.
    #[must_use]
    pub fn kind_bytes(&self, kind: MsgKind) -> u64 {
        self.kind_bytes[kind.index()]
    }

    /// Payload bytes observed across all kinds.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.kind_bytes.iter().sum()
    }

    /// Total events observed.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Queries completed ([`TraceSink::query_done`] calls).
    #[must_use]
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Hops per completed application lookup.
    #[must_use]
    pub fn hops_per_lookup(&self) -> &Histogram {
        &self.hops_per_lookup
    }

    /// Messages billed per completed query.
    #[must_use]
    pub fn messages_per_query(&self) -> &Histogram {
        &self.messages_per_query
    }

    /// Failover replicas probed per completed query.
    #[must_use]
    pub fn replicas_probed(&self) -> &Histogram {
        &self.replicas_probed
    }
}

impl TraceSink for TraceRecorder {
    const ENABLED: bool = true;

    fn emit(&mut self, ev: Event) {
        self.emit_n(ev, 1);
    }

    fn emit_n(&mut self, ev: Event, n: u64) {
        if n == 0 {
            return;
        }
        self.phase_counts[ev.phase.index()] += n;
        self.kind_counts[ev.kind.index()] += n;
        self.events += n;
    }

    fn emit_bytes(&mut self, kind: MsgKind, n: u64) {
        self.kind_bytes[kind.index()] += n;
    }

    fn lookup_done(&mut self, hops: u32) {
        self.hops_per_lookup.record(u64::from(hops));
    }

    fn query_done(&mut self, messages: u64, replicas_probed: u64, rank_size: usize) {
        self.queries += 1;
        self.messages_per_query.record(messages);
        self.replicas_probed.record(replicas_probed);
        let _ = rank_size;
    }
}

/// Charge one message to `stats` and, when the sink is enabled, emit the
/// matching event. This is the helper query-path modules must use instead
/// of calling `NetStats::record` directly (enforced by `sprite-lint`), so
/// accounting and tracing cannot diverge.
#[inline]
pub fn charge<T: TraceSink>(
    stats: &mut NetStats,
    sink: &mut T,
    tick: u64,
    peer: RingId,
    kind: MsgKind,
    phase: Phase,
) {
    stats.record(kind);
    if T::ENABLED {
        sink.emit(Event {
            tick,
            peer,
            kind,
            phase,
        });
    }
}

/// Bulk variant of [`charge`]: `n` messages of `kind` at once.
#[inline]
pub fn charge_n<T: TraceSink>(
    stats: &mut NetStats,
    sink: &mut T,
    tick: u64,
    peer: RingId,
    kind: MsgKind,
    phase: Phase,
    n: u64,
) {
    stats.record_n(kind, n);
    if T::ENABLED && n > 0 {
        sink.emit_n(
            Event {
                tick,
                peer,
                kind,
                phase,
            },
            n,
        );
    }
}

/// Charge `bytes` payload bytes to `kind`, keeping accounting and trace in
/// step. Byte charges never count messages — pair this with [`charge`] (or
/// a routed charge) for the message the payload rides on. Like the message
/// helpers, this is the only spelling the lint allows in charge-audited
/// modules, so `NetStats` and `TraceRecorder` byte totals cannot diverge.
#[inline]
pub fn charge_bytes<T: TraceSink>(stats: &mut NetStats, sink: &mut T, kind: MsgKind, bytes: u64) {
    stats.record_bytes(kind, bytes);
    if T::ENABLED && bytes > 0 {
        sink.emit_bytes(kind, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: MsgKind, phase: Phase) -> Event {
        Event {
            tick: 1,
            peer: RingId(42),
            kind,
            phase,
        }
    }

    #[test]
    fn recorder_counts_by_phase_and_kind() {
        let mut r = TraceRecorder::new();
        r.emit(ev(MsgKind::LookupHop, Phase::Query));
        r.emit(ev(MsgKind::LookupHop, Phase::Query));
        r.emit_n(ev(MsgKind::Replication, Phase::Publish), 3);
        assert_eq!(r.phase_count(Phase::Query), 2);
        assert_eq!(r.phase_count(Phase::Publish), 3);
        assert_eq!(r.kind_count(MsgKind::LookupHop), 2);
        assert_eq!(r.kind_count(MsgKind::Replication), 3);
        assert_eq!(r.events(), 5);
    }

    #[test]
    fn recorder_histograms() {
        let mut r = TraceRecorder::new();
        r.lookup_done(3);
        r.lookup_done(3);
        r.lookup_done(500); // overflow bucket
        r.query_done(12, 1, 20);
        r.query_done(7, 0, 20);
        assert_eq!(r.hops_per_lookup().count(), 3);
        assert_eq!(r.hops_per_lookup().buckets()[3], 2);
        assert_eq!(r.hops_per_lookup().buckets()[HOP_BUCKETS - 1], 1);
        assert_eq!(r.hops_per_lookup().max(), 500);
        assert_eq!(r.queries(), 2);
        assert_eq!(r.messages_per_query().sum(), 19);
        assert_eq!(r.replicas_probed().count(), 2);
    }

    #[test]
    fn merge_commutes_and_has_identity() {
        let mut a = TraceRecorder::new();
        a.emit(ev(MsgKind::QueryFetch, Phase::Query));
        a.lookup_done(2);
        a.query_done(5, 1, 10);
        let mut b = TraceRecorder::new();
        b.emit_n(ev(MsgKind::Maintenance, Phase::ChurnRepair), 4);
        b.lookup_done(9);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "recorder merge must be commutative");

        let mut with_empty = a.clone();
        with_empty.merge(&TraceRecorder::new());
        assert_eq!(with_empty, a, "merging a fresh recorder is the identity");
    }

    #[test]
    fn absorb_span_attributes_stats_diff_to_one_phase() {
        let before = NetStats::new();
        let mut after = NetStats::new();
        after.record_n(MsgKind::Maintenance, 6);
        after.record_n(MsgKind::Replication, 2);
        after.record_lookup(3);

        let mut r = TraceRecorder::new();
        r.absorb_span(Phase::Maintenance, &before, &after);
        assert_eq!(r.phase_count(Phase::Maintenance), 8);
        assert_eq!(r.kind_count(MsgKind::Maintenance), 6);
        assert_eq!(r.kind_count(MsgKind::Replication), 2);
        assert_eq!(r.events(), 8);
    }

    #[test]
    fn byte_charges_track_stats_and_recorder_together() {
        let mut stats = NetStats::new();
        let mut rec = TraceRecorder::new();
        charge_bytes(&mut stats, &mut rec, MsgKind::IndexPublish, 23);
        charge_bytes(&mut stats, &mut rec, MsgKind::IndexPublish, 7);
        charge_bytes(&mut stats, &mut rec, MsgKind::QueryFetch, 1);
        assert_eq!(stats.bytes(MsgKind::IndexPublish), 30);
        assert_eq!(rec.kind_bytes(MsgKind::IndexPublish), 30);
        assert_eq!(rec.kind_bytes(MsgKind::QueryFetch), 1);
        assert_eq!(rec.total_bytes(), stats.total_bytes());
        assert_eq!(rec.events(), 0, "byte charges never count messages");
        assert_eq!(stats.total_messages(), 0);
    }

    #[test]
    fn absorb_span_carries_byte_diffs() {
        let mut before = NetStats::new();
        before.record_bytes(MsgKind::Replication, 10);
        let mut after = before.clone();
        after.record_n(MsgKind::Replication, 2);
        after.record_bytes(MsgKind::Replication, 90);
        let mut r = TraceRecorder::new();
        r.absorb_span(Phase::ChurnRepair, &before, &after);
        assert_eq!(r.kind_count(MsgKind::Replication), 2);
        assert_eq!(r.kind_bytes(MsgKind::Replication), 90);
        assert_eq!(r.total_bytes(), 90);
    }

    #[test]
    fn merge_adds_byte_totals() {
        let mut a = TraceRecorder::new();
        a.emit_bytes(MsgKind::LearnReturn, 40);
        let mut b = TraceRecorder::new();
        b.emit_bytes(MsgKind::LearnReturn, 2);
        b.emit_bytes(MsgKind::QueryFetch, 8);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "byte merge must be commutative");
        assert_eq!(ab.kind_bytes(MsgKind::LearnReturn), 42);
        assert_eq!(ab.total_bytes(), 50);
    }

    #[test]
    fn charge_helpers_keep_stats_and_trace_in_step() {
        let mut stats = NetStats::new();
        let mut rec = TraceRecorder::new();
        charge(
            &mut stats,
            &mut rec,
            0,
            RingId(7),
            MsgKind::QueryFetch,
            Phase::Query,
        );
        charge_n(
            &mut stats,
            &mut rec,
            0,
            RingId(7),
            MsgKind::LearnReturn,
            Phase::Learn,
            5,
        );
        assert_eq!(stats.count(MsgKind::QueryFetch), 1);
        assert_eq!(stats.count(MsgKind::LearnReturn), 5);
        assert_eq!(rec.kind_count(MsgKind::QueryFetch), 1);
        assert_eq!(rec.kind_count(MsgKind::LearnReturn), 5);
        assert_eq!(rec.events(), stats.total_messages());
    }

    #[test]
    fn null_trace_observes_nothing_and_is_disabled() {
        // The associated consts drive the zero-cost dispatch; pin them
        // (through a generic reader, as call sites observe them).
        fn enabled<T: TraceSink>() -> bool {
            T::ENABLED
        }
        assert!(!enabled::<NullTrace>());
        assert!(enabled::<TraceRecorder>());
        let mut stats = NetStats::new();
        let mut null = NullTrace;
        charge(
            &mut stats,
            &mut null,
            0,
            RingId(1),
            MsgKind::Failed,
            Phase::Lookup,
        );
        assert_eq!(stats.count(MsgKind::Failed), 1);
    }

    #[test]
    fn phase_names_and_indices_are_distinct() {
        let mut names = std::collections::HashSet::new();
        let mut indices = std::collections::HashSet::new();
        for p in Phase::all() {
            assert!(names.insert(p.name()));
            assert!(indices.insert(p.index()));
        }
        assert_eq!(names.len(), PHASES);
    }
}
