//! Node-state storage backends for [`crate::ring::ChordNet`].
//!
//! The simulator historically kept every peer's [`NodeState`] in a
//! `HashMap<u128, NodeState>`. That is fine at 64 peers and ruinous at
//! 100k+: each lookup hashes a 16-byte key into a sparsely-populated
//! table, and the states themselves are scattered across the heap. The
//! huge scale tier instead uses an **arena**: node states live in one
//! dense `Vec`, and a compact `id → slot` index gives O(1) access while
//! successor/finger chasing walks contiguous memory.
//!
//! Both backends implement the same operations with the same observable
//! behavior; the crate-private `NodeStore` dispatches between them. Nothing about
//! iteration order is observable — the ring-order source of truth stays
//! the sorted id set in `ChordNet` — so swapping backends is bit-exact
//! (enforced by the `storage/packed` determinism stage and the
//! dual-backend invariant tests in `sprite-audit`).

use std::collections::HashMap;

use crate::node::NodeState;

/// Which storage layout a [`crate::ring::ChordNet`] keeps its node states
/// in. Observable behavior is identical; only memory layout differs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StorageBackend {
    /// One `HashMap` entry per node — the historical layout.
    Map,
    /// Dense arena slots plus an `id → slot` index — the scale-tier
    /// layout (default).
    #[default]
    Arena,
}

/// Dense arena of node states: states live contiguously in `nodes`, and
/// `index` maps a ring id to its slot. Removal is `swap_remove` plus one
/// index fixup, so slots stay dense forever.
#[derive(Clone, Debug, Default)]
pub(crate) struct ArenaStore {
    index: HashMap<u128, u32>,
    nodes: Vec<NodeState>,
}

impl ArenaStore {
    fn get(&self, id: u128) -> Option<&NodeState> {
        self.index.get(&id).map(|&slot| &self.nodes[slot as usize])
    }

    fn get_mut(&mut self, id: u128) -> Option<&mut NodeState> {
        let slot = *self.index.get(&id)?;
        Some(&mut self.nodes[slot as usize])
    }

    fn insert(&mut self, id: u128, node: NodeState) {
        match self.index.get(&id) {
            Some(&slot) => self.nodes[slot as usize] = node,
            None => {
                assert!(
                    self.nodes.len() < u32::MAX as usize,
                    "arena slot index overflow"
                );
                self.index.insert(id, self.nodes.len() as u32);
                self.nodes.push(node);
            }
        }
    }

    fn remove(&mut self, id: u128) -> Option<NodeState> {
        let slot = self.index.remove(&id)? as usize;
        let node = self.nodes.swap_remove(slot);
        if slot < self.nodes.len() {
            let moved = self.nodes[slot].id().0;
            self.index.insert(moved, slot as u32);
        }
        Some(node)
    }
}

/// The storage behind a [`crate::ring::ChordNet`]: either the historical
/// per-node map or the dense arena. All accessors are O(1) on both.
#[derive(Clone, Debug)]
pub(crate) enum NodeStore {
    Map(HashMap<u128, NodeState>),
    Arena(ArenaStore),
}

impl NodeStore {
    pub(crate) fn new(backend: StorageBackend) -> Self {
        match backend {
            StorageBackend::Map => NodeStore::Map(HashMap::new()),
            StorageBackend::Arena => NodeStore::Arena(ArenaStore::default()),
        }
    }

    pub(crate) fn backend(&self) -> StorageBackend {
        match self {
            NodeStore::Map(_) => StorageBackend::Map,
            NodeStore::Arena(_) => StorageBackend::Arena,
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            NodeStore::Map(m) => m.len(),
            NodeStore::Arena(a) => a.nodes.len(),
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn contains(&self, id: u128) -> bool {
        match self {
            NodeStore::Map(m) => m.contains_key(&id),
            NodeStore::Arena(a) => a.index.contains_key(&id),
        }
    }

    pub(crate) fn get(&self, id: u128) -> Option<&NodeState> {
        match self {
            NodeStore::Map(m) => m.get(&id),
            NodeStore::Arena(a) => a.get(id),
        }
    }

    pub(crate) fn get_mut(&mut self, id: u128) -> Option<&mut NodeState> {
        match self {
            NodeStore::Map(m) => m.get_mut(&id),
            NodeStore::Arena(a) => a.get_mut(id),
        }
    }

    /// The state of an alive node; panics when `id` is dead (callers hold
    /// ids they just verified alive — the map backend's `&map[&id]`).
    pub(crate) fn alive(&self, id: u128) -> &NodeState {
        self.get(id).expect("node is alive")
    }

    pub(crate) fn insert(&mut self, id: u128, node: NodeState) {
        match self {
            NodeStore::Map(m) => {
                m.insert(id, node);
            }
            NodeStore::Arena(a) => a.insert(id, node),
        }
    }

    pub(crate) fn remove(&mut self, id: u128) -> Option<NodeState> {
        match self {
            NodeStore::Map(m) => m.remove(&id),
            NodeStore::Arena(a) => a.remove(id),
        }
    }

    /// Iterate `(id, state)` pairs in **unspecified order** — only for
    /// order-free consumers (convergence `all()`, structural validation,
    /// memory accounting). Ring-ordered walks go through the sorted id
    /// set, never this.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u128, &NodeState)> {
        let map_iter;
        let arena_iter;
        match self {
            NodeStore::Map(m) => {
                map_iter = Some(m.iter().map(|(&id, n)| (id, n)));
                arena_iter = None;
            }
            NodeStore::Arena(a) => {
                map_iter = None;
                arena_iter = Some(a.nodes.iter().map(|n| (n.id().0, n)));
            }
        }
        map_iter
            .into_iter()
            .flatten()
            .chain(arena_iter.into_iter().flatten())
    }

    /// Node states in unspecified order (see [`Self::iter`]).
    pub(crate) fn values(&self) -> impl Iterator<Item = &NodeState> {
        self.iter().map(|(_, n)| n)
    }

    /// Deterministic *logical* bytes of all stored routing state: the sum
    /// of each node's [`NodeState::logical_bytes`] plus the per-slot index
    /// cost (16-byte id key + 4-byte slot for the arena; 16-byte key for
    /// the map, whose value is stored inline). Length-based — never
    /// capacity, never allocator overhead — so the number is a pure
    /// function of the ring's contents and safe to gate exactly.
    pub(crate) fn logical_bytes(&self) -> u64 {
        let per_slot: u64 = match self {
            NodeStore::Map(_) => 16,
            NodeStore::Arena(_) => 16 + 4,
        };
        self.values()
            .map(|n| n.logical_bytes() + per_slot)
            .sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprite_util::RingId;

    fn solitary(id: u128) -> NodeState {
        NodeState::solitary(RingId(id))
    }

    #[test]
    fn arena_insert_get_remove_with_swap_fixup() {
        let mut store = NodeStore::new(StorageBackend::Arena);
        for id in [10u128, 20, 30, 40] {
            store.insert(id, solitary(id));
        }
        assert_eq!(store.len(), 4);
        assert!(store.contains(20));
        // Removing a middle slot swaps the tail in; the moved node must
        // stay addressable by id.
        let removed = store.remove(20).expect("alive");
        assert_eq!(removed.id(), RingId(20));
        assert!(!store.contains(20));
        assert_eq!(store.len(), 3);
        for id in [10u128, 30, 40] {
            assert_eq!(store.get(id).expect("alive").id(), RingId(id));
        }
        assert!(store.remove(20).is_none());
        // Re-insert over an existing id replaces in place.
        store.insert(30, solitary(30));
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn backends_agree_on_contents() {
        let mut map = NodeStore::new(StorageBackend::Map);
        let mut arena = NodeStore::new(StorageBackend::Arena);
        for id in 0..50u128 {
            map.insert(id, solitary(id));
            arena.insert(id, solitary(id));
        }
        for id in (0..50u128).step_by(7) {
            map.remove(id);
            arena.remove(id);
        }
        assert_eq!(map.len(), arena.len());
        let mut a: Vec<u128> = map.iter().map(|(id, _)| id).collect();
        let mut b: Vec<u128> = arena.iter().map(|(id, _)| id).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        for id in 0..50u128 {
            assert_eq!(map.contains(id), arena.contains(id));
            assert_eq!(map.get(id).is_some(), arena.get(id).is_some());
        }
    }

    #[test]
    fn logical_bytes_count_state_not_capacity() {
        let mut store = NodeStore::new(StorageBackend::Arena);
        assert_eq!(store.logical_bytes(), 0);
        store.insert(1, solitary(1));
        let one = store.logical_bytes();
        assert!(one > 0);
        store.insert(2, solitary(2));
        assert_eq!(store.logical_bytes(), 2 * one, "identical states sum");
    }
}
