//! The Chord network simulator.
//!
//! "We implemented Chord as designed in \[15\]" (§6 of the SPRITE paper).
//! This module is that implementation, as a deterministic single-process
//! simulation: every peer's routing state is explicit ([`NodeState`]), every
//! inter-peer interaction is charged to [`NetStats`], and lookups route using
//! **only node-local information** (fingers + successor lists), so hop counts
//! are honest O(log N) Chord hops, not oracle shortcuts.
//!
//! Two construction modes:
//!
//! * [`ChordNet::with_nodes`] builds an already-converged ring (free of
//!   charge) — the steady-state starting point of the retrieval experiments;
//! * [`ChordNet::create`] / [`ChordNet::join`] / [`ChordNet::leave`] /
//!   [`ChordNet::fail`] plus [`ChordNet::stabilize_round`] and
//!   [`ChordNet::fix_fingers_round`] implement the full dynamic protocol for
//!   the churn studies (§7).

use std::collections::{BTreeSet, HashMap};

use sprite_util::{derive_rng, RingId, ID_BITS};

use crate::node::NodeState;
use crate::sim::{self, SimConfig};
use crate::stats::{MsgKind, NetStats};
use crate::store::NodeStore;
use crate::trace::{self, Event, Phase, TraceSink};

pub use crate::store::StorageBackend;

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct ChordConfig {
    /// Successor-list length `r` (fault tolerance; Chord suggests
    /// `r = Θ(log N)`). Default 8.
    pub succ_list_len: usize,
    /// Safety bound on routing steps before a lookup aborts. Default 512.
    pub max_lookup_hops: u32,
    /// Node-state storage layout (default the dense arena). Bit-exact
    /// either way — the map backend exists so audits and tests can prove
    /// that equivalence.
    pub backend: StorageBackend,
}

impl Default for ChordConfig {
    fn default() -> Self {
        ChordConfig {
            succ_list_len: 8,
            max_lookup_hops: 512,
            backend: StorageBackend::Arena,
        }
    }
}

/// Errors from membership operations and lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChordError {
    /// The referenced node is not in the network.
    UnknownNode(RingId),
    /// Attempt to add a node with an identifier already present.
    DuplicateNode(RingId),
    /// Operation requires a non-empty network.
    EmptyNetwork,
    /// Routing reached a node with no usable (alive) successor.
    DeadEnd {
        /// The node where routing got stuck.
        at: RingId,
        /// Dead peers probed over the whole walk before giving up — the
        /// retry layer uses this to back off instead of silently dropping
        /// the key (a walk that burned many timeouts is evidence the ring
        /// is badly damaged, not just that one entry was stale).
        failed_probes: u64,
    },
    /// Routing exceeded the configured hop bound (ring badly damaged).
    TooManyHops {
        /// Origin of the lookup.
        from: RingId,
        /// The key being resolved.
        key: RingId,
    },
    /// An in-flight hop message was dropped by the network model on every
    /// retransmission attempt — a *real* timeout, not a dead-probe one.
    Lost {
        /// The sender of the undeliverable hop.
        at: RingId,
        /// Its unreachable target (alive, but the link drowned).
        to: RingId,
        /// Transmissions dropped over the whole walk, each already billed
        /// as one [`MsgKind::Timeout`].
        dropped: u64,
    },
}

impl std::fmt::Display for ChordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChordError::UnknownNode(id) => write!(f, "unknown node {id:?}"),
            ChordError::DuplicateNode(id) => write!(f, "node {id:?} already present"),
            ChordError::EmptyNetwork => write!(f, "network is empty"),
            ChordError::DeadEnd { at, failed_probes } => {
                write!(
                    f,
                    "routing dead end at {at:?} after {failed_probes} failed probes"
                )
            }
            ChordError::TooManyHops { from, key } => {
                write!(f, "lookup from {from:?} for {key:?} exceeded hop bound")
            }
            ChordError::Lost { at, to, dropped } => {
                write!(
                    f,
                    "hop {at:?} -> {to:?} lost in flight after {dropped} dropped transmissions"
                )
            }
        }
    }
}

impl std::error::Error for ChordError {}

/// A resolved lookup.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lookup {
    /// The node responsible for the key.
    pub owner: RingId,
    /// Routing steps taken (0 when the origin's successor owns the key).
    pub hops: u32,
    /// Nodes visited, origin first, owner *not* included.
    pub path: Vec<RingId>,
}

/// A resolved lookup without the visited-path allocation — the hot-path
/// result of [`ChordNet::lookup_fast`] and [`ChordNet::probe`]. The path is
/// only needed by audits and diagnostics; the retrieval loops resolve
/// millions of keys and should not pay a `Vec` per lookup for it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LookupLite {
    /// The node responsible for the key.
    pub owner: RingId,
    /// Routing steps taken (0 when the origin's successor owns the key).
    pub hops: u32,
}

/// Memoized routing outcomes for the batched query pipeline.
///
/// The batched evaluate path resolves every distinct `(from, key)` pair of
/// a query batch once up front ([`RouteMemo::build`] — one sequential pass
/// of read-only walks), then each in-flight query replays the
/// recorded outcome through [`ChordNet::probe_via`]. Replay bills exactly
/// what [`ChordNet::probe`] would have billed — the walk's `(hops,
/// failed-probe)` tally is stored next to its outcome — so per-query
/// [`NetStats`] deltas merged in input order reproduce the unmemoized
/// reference bit for bit, while keywords shared across in-flight queries
/// pay the routing walk only once.
#[derive(Clone, Debug, Default)]
pub struct RouteMemo {
    routes: HashMap<(u128, u128), MemoRoute>,
}

/// One recorded walk: the outcome [`ChordNet::probe`] would return plus
/// the exact charge it would make.
#[derive(Clone, Debug)]
struct MemoRoute {
    outcome: Result<LookupLite, ChordError>,
    hops: u32,
    failed: u64,
    lost: u64,
}

impl RouteMemo {
    /// Walk every distinct `(from, key)` pair once over a frozen network.
    /// Duplicates are collapsed on insertion (`entry` — first occurrence
    /// walks, the rest reuse), so the memo's contents depend only on the
    /// pair *set*: a walk is a pure function of `(from, key)` on a frozen
    /// ring, making the build order unobservable. The build is a single
    /// sequential pass — route resolution is a small fraction of a batch's
    /// work, and spawning pool workers for it costs more than the walks.
    #[must_use]
    pub fn build(net: &ChordNet, pairs: &[(RingId, RingId)]) -> Self {
        let mut routes = HashMap::with_capacity(pairs.len());
        for &(from, key) in pairs {
            routes.entry((from.0, key.0)).or_insert_with(|| {
                let (outcome, hops, failed, lost) = net.walk(from, key, None);
                MemoRoute {
                    outcome,
                    hops,
                    failed,
                    lost,
                }
            });
        }
        RouteMemo { routes }
    }

    /// Number of distinct routes memoized.
    #[must_use]
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when no routes are memoized.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

/// The simulated Chord network.
#[derive(Clone, Debug)]
pub struct ChordNet {
    cfg: ChordConfig,
    nodes: NodeStore,
    /// Sorted alive identifiers (oracle for ideal construction and tests;
    /// never consulted during routing).
    sorted: BTreeSet<u128>,
    stats: NetStats,
    /// Network model every message transits; the default is the perfect
    /// (zero-latency, zero-loss) network, which is never even sampled.
    sim: SimConfig,
}

impl ChordNet {
    /// An empty network.
    #[must_use]
    pub fn new(cfg: ChordConfig) -> Self {
        let nodes = NodeStore::new(cfg.backend);
        ChordNet {
            cfg,
            nodes,
            sorted: BTreeSet::new(),
            stats: NetStats::new(),
            sim: SimConfig::default(),
        }
    }

    /// Build an already-converged ring over `ids` (duplicates ignored).
    /// Charges no messages: this is the experiment's steady-state start.
    #[must_use]
    pub fn with_nodes(cfg: ChordConfig, ids: &[RingId]) -> Self {
        let mut net = ChordNet::new(cfg);
        for &id in ids {
            if net.sorted.insert(id.0) {
                net.nodes.insert(id.0, NodeState::solitary(id));
            }
        }
        net.ideal_repair();
        net
    }

    /// Build a converged ring of `n` peers with identifiers derived from the
    /// seed (MD5 of synthetic peer addresses, like a deployment hashing
    /// `ip:port`).
    #[must_use]
    pub fn with_random_nodes(cfg: ChordConfig, n: usize, seed: u64) -> Self {
        let mut rng = derive_rng(seed, "chord-peers");
        let ids: Vec<RingId> = (0..n)
            .map(|i| {
                let addr = format!("peer-{i}-{:08x}:{}", rng.gen_u32(), 1024 + (i % 60000));
                RingId::hash_bytes(addr.as_bytes())
            })
            .collect();
        Self::with_nodes(cfg, &ids)
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ChordConfig {
        &self.cfg
    }

    /// The active network model.
    #[must_use]
    pub fn sim(&self) -> &SimConfig {
        &self.sim
    }

    /// Install a network model. Must be set before any traffic a caller
    /// wants modeled; replacing the model mid-run is deterministic (link
    /// fates are pure functions) but changes subsequent samples.
    pub fn set_sim(&mut self, sim: SimConfig) {
        self.sim = sim;
    }

    /// Plan one application-level message `from → to` through the network
    /// model. `Ok((arrival, drops))` means some transmission got through:
    /// `arrival` is its scheduler-time offset and `drops` the dropped
    /// attempts, each owed one [`MsgKind::Timeout`] charge by the caller.
    /// `Err(drops)` means the retransmission budget drowned and the message
    /// is lost for good. The perfect default short-circuits to
    /// `Ok((0, 0))` without sampling — the bit-identity contract. This is
    /// the only sanctioned delivery entry for application crates: direct
    /// `link_delivery` calls outside the delivery layer are lint-banned.
    pub fn plan_delivery(&self, from: RingId, to: RingId, salt: u64) -> Result<(u64, u64), u64> {
        if self.sim.is_perfect() {
            return Ok((0, 0));
        }
        self.sim.transmit(from, to, salt)
    }

    /// Number of alive nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes are alive.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Is `id` an alive node?
    #[must_use]
    pub fn contains(&self, id: RingId) -> bool {
        self.nodes.contains(id.0)
    }

    /// Routing state of a node, if alive.
    #[must_use]
    pub fn node(&self, id: RingId) -> Option<&NodeState> {
        self.nodes.get(id.0)
    }

    /// Mutable routing state of a node — **corruption injection** for
    /// `sprite-audit` tests only. The simulation never mutates node state
    /// through this; it exists so audits can plant known violations
    /// (a wrong finger, a dropped successor) and assert the checkers
    /// detect them.
    pub fn node_mut(&mut self, id: RingId) -> Option<&mut NodeState> {
        self.nodes.get_mut(id.0)
    }

    /// Alive node identifiers in ring order.
    #[must_use]
    pub fn node_ids(&self) -> Vec<RingId> {
        self.sorted.iter().map(|&v| RingId(v)).collect()
    }

    /// The active node-state storage backend.
    #[must_use]
    pub fn backend(&self) -> StorageBackend {
        self.nodes.backend()
    }

    /// Deterministic logical bytes of all stored routing state (see
    /// `NodeStore::logical_bytes`): length-based accounting of every ring
    /// id a node keeps, plus per-slot index cost. The memory-per-peer
    /// bench metric divides this by [`Self::len`] and gates it exactly.
    #[must_use]
    pub fn logical_state_bytes(&self) -> u64 {
        self.nodes.logical_bytes()
    }

    /// Message counters.
    #[must_use]
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Zero the message counters (start of a measured phase).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Charge an application-level message (e.g. an index publish after the
    /// routing already paid its hops).
    pub fn charge(&mut self, kind: MsgKind) {
        self.stats.record(kind);
    }

    /// Charge `n` application-level messages.
    pub fn charge_n(&mut self, kind: MsgKind, n: u64) {
        self.stats.record_n(kind, n);
    }

    /// Charge `n` payload bytes to `kind` without counting a message (the
    /// message itself is billed separately via [`Self::charge`] or a
    /// routed walk).
    pub fn charge_bytes(&mut self, kind: MsgKind, n: u64) {
        self.stats.record_bytes(kind, n);
    }

    // ------------------------------------------------------------------
    // Oracle (test / setup only — never used in routing)
    // ------------------------------------------------------------------

    /// The node that *should* own `key`: the first alive identifier
    /// clockwise at or after it.
    #[must_use]
    pub fn oracle_owner(&self, key: RingId) -> Option<RingId> {
        self.sorted
            .range(key.0..)
            .next()
            .or_else(|| self.sorted.iter().next())
            .map(|&v| RingId(v))
    }

    /// The `n` alive nodes clockwise from (and including) the owner of
    /// `key` — the replica set for that key (§7 successor replication).
    #[must_use]
    pub fn oracle_replicas(&self, key: RingId, n: usize) -> Vec<RingId> {
        let mut out = Vec::with_capacity(n.min(self.nodes.len()));
        if self.is_empty() || n == 0 {
            return out;
        }
        let mut iter = self
            .sorted
            .range(key.0..)
            .chain(self.sorted.iter())
            .map(|&v| RingId(v));
        while out.len() < n.min(self.nodes.len()) {
            let id = iter.next().expect("cycle over non-empty set");
            if !out.contains(&id) {
                out.push(id);
            }
        }
        out
    }

    /// Is every node's successor pointer and finger table exactly what the
    /// oracle says it should be? (Convergence check for churn tests.)
    #[must_use]
    pub fn is_converged(&self) -> bool {
        self.nodes.values().all(|node| {
            let want_succ = self
                .oracle_owner(RingId(node.id().0.wrapping_add(1)))
                .expect("non-empty");
            node.successor() == want_succ
                && (0..ID_BITS).all(|k| {
                    let want = self
                        .oracle_owner(node.id().finger_start(k))
                        .expect("non-empty");
                    node.finger_table()[k as usize] == want
                })
        })
    }

    /// Rebuild every node's pointers from the oracle, free of charge.
    /// Used to construct converged rings and to fast-forward repair in
    /// experiments that are not about the repair protocol itself.
    pub fn ideal_repair(&mut self) {
        let ids: Vec<u128> = self.sorted.iter().copied().collect();
        if ids.is_empty() {
            return;
        }
        let n = ids.len();
        // A node never lists itself among its successors (except when alone).
        let r = self.cfg.succ_list_len.min(n.saturating_sub(1)).max(1);
        for (i, &idv) in ids.iter().enumerate() {
            let id = RingId(idv);
            let succ: Vec<RingId> = (1..=r.max(1)).map(|j| RingId(ids[(i + j) % n])).collect();
            let pred = RingId(ids[(i + n - 1) % n]);
            let fingers: Vec<RingId> = (0..ID_BITS)
                .map(|k| self.oracle_owner(id.finger_start(k)).expect("non-empty"))
                .collect();
            let node = self.nodes.get_mut(idv).expect("id from sorted set");
            node.succ = succ;
            node.pred = Some(pred);
            node.fingers = fingers;
        }
    }

    // ------------------------------------------------------------------
    // Membership
    // ------------------------------------------------------------------

    /// Create the first node of the network.
    pub fn create(&mut self, id: RingId) -> Result<(), ChordError> {
        if !self.is_empty() {
            return Err(ChordError::DuplicateNode(id));
        }
        self.nodes.insert(id.0, NodeState::solitary(id));
        self.sorted.insert(id.0);
        self.debug_validate();
        Ok(())
    }

    /// Join `id` via an alive `bootstrap` node: one lookup to find the
    /// successor, then immediate successor/predecessor hookup. Finger tables
    /// of other nodes converge through [`Self::stabilize_round`] /
    /// [`Self::fix_fingers_round`].
    pub fn join(&mut self, id: RingId, bootstrap: RingId) -> Result<(), ChordError> {
        if self.contains(id) {
            return Err(ChordError::DuplicateNode(id));
        }
        if !self.contains(bootstrap) {
            return Err(ChordError::UnknownNode(bootstrap));
        }
        let succ = self.route(bootstrap, id, MsgKind::Maintenance)?.owner;
        // Copy the successor's list (one message), then hook up pointers
        // (one notify message).
        self.stats.record_n(MsgKind::Maintenance, 2);
        let (succ_list, succ_pred) = {
            let s = self.nodes.alive(succ.0);
            (s.successor_list().to_vec(), s.predecessor())
        };
        let mut node = NodeState::joining(id, succ, self.cfg.succ_list_len);
        node.succ.extend(
            succ_list
                .into_iter()
                .filter(|&x| x != id)
                .take(self.cfg.succ_list_len - 1),
        );
        // Adopt the successor's old predecessor when it is still plausible.
        if let Some(p) = succ_pred {
            if self.contains(p) && id.in_open(p, succ) {
                node.pred = Some(p);
            }
        }
        self.nodes.insert(id.0, node);
        self.sorted.insert(id.0);
        // Notify the successor that we now precede it.
        let s = self.nodes.get_mut(succ.0).expect("successor is alive");
        match s.pred {
            Some(p) if p != id && self.sorted.contains(&p.0) && !id.in_open(p, succ) => {}
            _ => s.pred = Some(id),
        }
        self.debug_validate();
        Ok(())
    }

    /// Graceful departure: the node hands its position to its neighbors
    /// before leaving (two messages). Other nodes' fingers remain stale
    /// until maintenance runs.
    pub fn leave(&mut self, id: RingId) -> Result<(), ChordError> {
        let node = self.nodes.remove(id.0).ok_or(ChordError::UnknownNode(id))?;
        self.sorted.remove(&id.0);
        if self.is_empty() {
            return Ok(());
        }
        self.stats.record_n(MsgKind::Maintenance, 2);
        // Tell the successor its new predecessor.
        let succ = node
            .successor_list()
            .iter()
            .copied()
            .find(|s| self.contains(*s));
        let pred = node.predecessor().filter(|p| self.contains(*p));
        if let (Some(sv), Some(pv)) = (succ, pred) {
            if let Some(s) = self.nodes.get_mut(sv.0) {
                if s.pred == Some(id) {
                    s.pred = Some(pv);
                }
            }
            if let Some(p) = self.nodes.get_mut(pv.0) {
                if p.succ[0] == id {
                    p.succ[0] = sv;
                }
                p.succ.retain(|&x| x != id);
                if p.succ.is_empty() {
                    p.succ.push(sv);
                }
            }
        }
        self.debug_validate();
        Ok(())
    }

    /// Abrupt failure: the node vanishes without telling anyone. Stale
    /// pointers remain everywhere until maintenance repairs them.
    pub fn fail(&mut self, id: RingId) -> Result<(), ChordError> {
        self.nodes.remove(id.0).ok_or(ChordError::UnknownNode(id))?;
        self.sorted.remove(&id.0);
        self.debug_validate();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Routing
    // ------------------------------------------------------------------

    /// Resolve the owner of `key` starting from node `from`, charging one
    /// [`MsgKind::LookupHop`] per routing step and recording the lookup in
    /// the hop statistics. Returns the full visited path; hot callers that
    /// do not need it should use [`Self::lookup_fast`].
    pub fn lookup(&mut self, from: RingId, key: RingId) -> Result<Lookup, ChordError> {
        self.route(from, key, MsgKind::LookupHop)
    }

    /// [`Self::lookup`] without the visited-path allocation. Identical
    /// routing decisions and identical stats charging — only the `path`
    /// bookkeeping is skipped. The retrieval hot paths (publish, query,
    /// learning) use this; audit and diagnostic callers keep `lookup`.
    pub fn lookup_fast(&mut self, from: RingId, key: RingId) -> Result<LookupLite, ChordError> {
        let (result, hops, failed, lost) = self.walk(from, key, None);
        self.stats
            .charge_route(MsgKind::LookupHop, hops, failed, lost, result.is_ok());
        result
    }

    /// Read-only lookup for the parallel query engine: routes exactly like
    /// [`Self::lookup_fast`] but charges into a caller-owned [`NetStats`]
    /// delta instead of the network's own counters, so concurrent queries
    /// can each accumulate their share and merge deterministically
    /// afterwards (see [`Self::absorb_stats`]).
    pub fn probe(
        &self,
        from: RingId,
        key: RingId,
        stats: &mut NetStats,
    ) -> Result<LookupLite, ChordError> {
        let (result, hops, failed, lost) = self.walk(from, key, None);
        stats.charge_route(MsgKind::LookupHop, hops, failed, lost, result.is_ok());
        result
    }

    /// [`Self::probe`] through a [`RouteMemo`]: a memoized `(from, key)`
    /// pair replays the recorded outcome and bills exactly what the walk
    /// would have billed; a miss falls back to walking. Results and
    /// charges are bit-identical to [`Self::probe`] either way — the memo
    /// only removes repeated work, never changes it.
    pub fn probe_via(
        &self,
        memo: &RouteMemo,
        from: RingId,
        key: RingId,
        stats: &mut NetStats,
    ) -> Result<LookupLite, ChordError> {
        match memo.routes.get(&(from.0, key.0)) {
            Some(route) => {
                stats.charge_route(
                    MsgKind::LookupHop,
                    route.hops,
                    route.failed,
                    route.lost,
                    route.outcome.is_ok(),
                );
                route.outcome.clone()
            }
            None => self.probe(from, key, stats),
        }
    }

    /// Merge a [`NetStats`] delta produced by [`Self::probe`] (or any
    /// off-to-the-side accounting) back into the network's counters.
    pub fn absorb_stats(&mut self, delta: &NetStats) {
        self.stats.merge(delta);
    }

    /// Resolve the §7 replica set of a key **by routing**, not the oracle:
    /// starting from the already-routed `owner`, walk successor lists
    /// (node-local state only) and collect the first `n` distinct alive
    /// peers clockwise, owner first. Each alive peer contacted beyond the
    /// owner costs one [`MsgKind::Maintenance`] message (the probe that
    /// confirms it and fetches its successor list); each dead successor
    /// entry probed costs one [`MsgKind::Timeout`]. Charges go to a
    /// caller-owned delta so the read-only query path can resolve replicas
    /// concurrently and merge later via [`Self::absorb_stats`].
    ///
    /// On a converged ring this returns exactly [`Self::oracle_replicas`]
    /// of the owner's key; mid-churn it returns whatever the successor
    /// chain can actually reach, which may be shorter than `n`.
    #[must_use]
    pub fn replicas_from_owner(
        &self,
        owner: RingId,
        n: usize,
        stats: &mut NetStats,
    ) -> Vec<RingId> {
        let mut out = Vec::with_capacity(n.min(self.nodes.len()));
        if n == 0 || !self.contains(owner) {
            return out;
        }
        out.push(owner);
        let mut cur = owner;
        while out.len() < n.min(self.nodes.len()) {
            let node = self.nodes.alive(cur.0);
            let mut next = None;
            for &s in node.successor_list() {
                if s == cur {
                    continue; // a lone node (or tiny ring) listing itself
                }
                if !self.nodes.contains(s.0) {
                    stats.record(MsgKind::Timeout);
                    continue;
                }
                if !out.contains(&s) {
                    next = Some(s);
                    break;
                }
                // Already collected (wrap-around on a small ring): keep
                // scanning this list for a fresh peer, free of charge.
            }
            let Some(next) = next else {
                break; // chain exhausted; degrade to the replicas we have
            };
            stats.record(MsgKind::Maintenance);
            out.push(next);
            cur = next;
        }
        out
    }

    /// Mutating-caller convenience over [`Self::replicas_from_owner`]:
    /// route `key` to its owner ([`Self::lookup_fast`] charging), then
    /// extend along the successor chain to `n` replicas, charging the
    /// network's own counters.
    pub fn route_replicas(
        &mut self,
        from: RingId,
        key: RingId,
        n: usize,
    ) -> Result<Vec<RingId>, ChordError> {
        let lookup = self.lookup_fast(from, key)?;
        let mut delta = NetStats::new();
        let replicas = self.replicas_from_owner(lookup.owner, n, &mut delta);
        self.stats.merge(&delta);
        Ok(replicas)
    }

    /// Resolve the owner of `key` hashing a `term` string first — the
    /// operation SPRITE performs for every query keyword and index publish.
    pub fn lookup_term(&mut self, from: RingId, term: &str) -> Result<Lookup, ChordError> {
        self.lookup(from, RingId::hash_term(term))
    }

    // ------------------------------------------------------------------
    // Traced routing (observability layer)
    // ------------------------------------------------------------------

    /// [`Self::probe`] with the full visited path: read-only, charges into
    /// the caller's delta exactly like `probe`, but returns a [`Lookup`] so
    /// trace reports can show the route. Only the tracing/diagnostic query
    /// path pays the path allocation.
    pub fn probe_full(
        &self,
        from: RingId,
        key: RingId,
        stats: &mut NetStats,
    ) -> Result<Lookup, ChordError> {
        let mut path = Vec::new();
        let (result, hops, failed, lost) = self.walk(from, key, Some(&mut path));
        stats.charge_route(MsgKind::LookupHop, hops, failed, lost, result.is_ok());
        result.map(|lite| Lookup {
            owner: lite.owner,
            hops: lite.hops,
            path,
        })
    }

    /// [`Self::lookup_fast`] that additionally emits one event per routing
    /// hop (and per failed probe) into `sink`. Charging is bit-identical to
    /// the untraced call; when `T::ENABLED` is false this *is* the untraced
    /// call — the path bookkeeping compiles out.
    pub fn lookup_fast_traced<T: TraceSink>(
        &mut self,
        from: RingId,
        key: RingId,
        phase: Phase,
        tick: u64,
        sink: &mut T,
    ) -> Result<LookupLite, ChordError> {
        if !T::ENABLED {
            return self.lookup_fast(from, key);
        }
        let mut path = Vec::new();
        let (result, hops, failed, lost) = self.walk(from, key, Some(&mut path));
        self.stats
            .charge_route(MsgKind::LookupHop, hops, failed, lost, result.is_ok());
        // `path` holds the origin plus every intermediate node contacted:
        // exactly `hops` hop messages target `path[1..]`.
        for &peer in path.iter().skip(1) {
            sink.emit(Event {
                tick,
                peer,
                kind: MsgKind::LookupHop,
                phase,
            });
        }
        if failed > 0 {
            // Timeout probes are attributed to the walk's origin: the dead
            // targets are no longer addressable peers.
            sink.emit_n(
                Event {
                    tick,
                    peer: from,
                    kind: MsgKind::Failed,
                    phase,
                },
                failed,
            );
        }
        if lost > 0 {
            // In-flight drops are likewise attributed to the origin; the
            // stats side already billed them via `charge_route`.
            sink.emit_n(
                Event {
                    tick,
                    peer: from,
                    kind: MsgKind::Timeout,
                    phase,
                },
                lost,
            );
        }
        if result.is_ok() {
            sink.lookup_done(hops);
        }
        result
    }

    /// [`Self::charge`] that also emits the matching trace event. Query-path
    /// modules use this (enforced by `sprite-lint`) so accounting and
    /// tracing cannot diverge.
    pub fn charge_traced<T: TraceSink>(
        &mut self,
        kind: MsgKind,
        phase: Phase,
        tick: u64,
        peer: RingId,
        sink: &mut T,
    ) {
        trace::charge(&mut self.stats, sink, tick, peer, kind, phase);
    }

    /// [`Self::charge_n`] that also emits the matching trace events.
    pub fn charge_n_traced<T: TraceSink>(
        &mut self,
        kind: MsgKind,
        phase: Phase,
        tick: u64,
        peer: RingId,
        n: u64,
        sink: &mut T,
    ) {
        trace::charge_n(&mut self.stats, sink, tick, peer, kind, phase, n);
    }

    /// Charge `bytes` payload bytes to `kind`, mirrored into `sink`. Byte
    /// charges ride on messages billed separately via
    /// [`Self::charge_traced`]/[`Self::charge_n_traced`]; this is the only
    /// spelling charge-audited modules may use (enforced by `sprite-lint`),
    /// so `NetStats` and recorder byte totals cannot diverge.
    pub fn charge_bytes_traced<T: TraceSink>(&mut self, kind: MsgKind, bytes: u64, sink: &mut T) {
        trace::charge_bytes(&mut self.stats, sink, kind, bytes);
    }

    /// [`Self::replicas_from_owner`] that additionally emits one event per
    /// successor-chain probe (and per dead-entry timeout) into `sink`.
    /// Charging into `stats` is bit-identical to the untraced call.
    #[must_use]
    pub fn replicas_from_owner_traced<T: TraceSink>(
        &self,
        owner: RingId,
        n: usize,
        stats: &mut NetStats,
        phase: Phase,
        tick: u64,
        sink: &mut T,
    ) -> Vec<RingId> {
        if !T::ENABLED {
            return self.replicas_from_owner(owner, n, stats);
        }
        let timeouts_before = stats.count(MsgKind::Timeout);
        let out = self.replicas_from_owner(owner, n, stats);
        for &peer in out.iter().skip(1) {
            sink.emit(Event {
                tick,
                peer,
                kind: MsgKind::Maintenance,
                phase,
            });
        }
        let timeouts = stats.count(MsgKind::Timeout) - timeouts_before;
        if timeouts > 0 {
            sink.emit_n(
                Event {
                    tick,
                    peer: owner,
                    kind: MsgKind::Timeout,
                    phase,
                },
                timeouts,
            );
        }
        out
    }

    /// Routing engine shared by lookups and maintenance probes; `kind`
    /// selects the message class charged per step. Hop statistics are only
    /// recorded for application lookups ([`MsgKind::LookupHop`]).
    fn route(&mut self, from: RingId, key: RingId, kind: MsgKind) -> Result<Lookup, ChordError> {
        let mut path = Vec::new();
        let (result, hops, failed, lost) = self.walk(from, key, Some(&mut path));
        self.stats
            .charge_route(kind, hops, failed, lost, result.is_ok());
        result.map(|lite| Lookup {
            owner: lite.owner,
            hops: lite.hops,
            path,
        })
    }

    /// The routing walk itself, shared by every lookup flavor: immutable
    /// over the network, optional path recording, returns the outcome plus
    /// the (hops, failed-probe) tally for the caller to charge. Keeping this
    /// `&self` is what lets [`Self::probe`] serve concurrent readers.
    fn walk(
        &self,
        from: RingId,
        key: RingId,
        mut path: Option<&mut Vec<RingId>>,
    ) -> (Result<LookupLite, ChordError>, u32, u64, u64) {
        if !self.contains(from) {
            return (Err(ChordError::UnknownNode(from)), 0, 0, 0);
        }
        let mut cur = from;
        let mut hops: u32 = 0;
        let mut failed: u64 = 0;
        let mut lost: u64 = 0;
        if let Some(p) = path.as_deref_mut() {
            p.push(from);
        }
        loop {
            let node = self.nodes.alive(cur.0);
            // The node's first usable successor (probing a dead entry costs
            // a timeout message).
            let mut succ = None;
            for &s in node.successor_list() {
                if self.nodes.contains(s.0) {
                    succ = Some(s);
                    break;
                }
                failed += 1;
            }
            let Some(succ) = succ else {
                return (
                    Err(ChordError::DeadEnd {
                        at: cur,
                        failed_probes: failed,
                    }),
                    hops,
                    failed,
                    lost,
                );
            };
            if key.in_open_closed(cur, succ) {
                return (Ok(LookupLite { owner: succ, hops }), hops, failed, lost);
            }
            let nodes = &self.nodes;
            let next = node
                .closest_preceding(key, |cand| {
                    let ok = nodes.contains(cand.0);
                    if !ok {
                        failed += 1;
                    }
                    ok
                })
                .unwrap_or(succ);
            if next == cur {
                return (
                    Err(ChordError::DeadEnd {
                        at: cur,
                        failed_probes: failed,
                    }),
                    hops,
                    failed,
                    lost,
                );
            }
            // The hop message `cur → next` transits the network model:
            // every dropped transmission is one real in-flight timeout,
            // and an exhausted retransmission budget abandons the walk.
            // Sampling is a pure function of `(sim seed, cur, next, key,
            // hop index)`, so replaying this walk — memoized or parallel —
            // realizes the same fates.
            if self.sim.lossy() {
                match self.sim.transmit(cur, next, sim::hop_salt(key, hops)) {
                    Ok((_arrival, drops)) => lost += drops,
                    Err(drops) => {
                        lost += drops;
                        return (
                            Err(ChordError::Lost {
                                at: cur,
                                to: next,
                                dropped: lost,
                            }),
                            hops,
                            failed,
                            lost,
                        );
                    }
                }
            }
            cur = next;
            hops += 1;
            if let Some(p) = path.as_deref_mut() {
                p.push(cur);
            }
            if hops > self.cfg.max_lookup_hops {
                return (
                    Err(ChordError::TooManyHops { from, key }),
                    hops,
                    failed,
                    lost,
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Maintenance protocol
    // ------------------------------------------------------------------

    /// One stabilization pass over every node (deterministic ring order):
    /// reconcile successors, notify, and refresh successor lists. Returns
    /// the number of pointer changes made (0 ⇒ successor structure stable).
    pub fn stabilize_round(&mut self) -> usize {
        let ids: Vec<u128> = self.sorted.iter().copied().collect();
        let mut changes = 0;
        for idv in ids {
            if !self.nodes.contains(idv) {
                continue; // failed since the snapshot
            }
            let id = RingId(idv);
            // Find the first alive entry of the successor list (or any alive
            // finger as a last resort).
            let (s, failed) = {
                let node = self.nodes.alive(idv);
                let mut failed = 0u64;
                let mut found = None;
                // A node may legitimately find itself in its successor list
                // (lone node, or a ring smaller than the list); `self` is
                // always reachable.
                for &cand in node.successor_list() {
                    if cand == id || self.nodes.contains(cand.0) {
                        found = Some(cand);
                        break;
                    }
                    failed += 1;
                }
                if found.is_none() {
                    found = node
                        .finger_table()
                        .iter()
                        .copied()
                        .find(|f| *f != id && self.nodes.contains(f.0));
                }
                (found, failed)
            };
            self.stats.record_n(MsgKind::Failed, failed);
            let Some(mut s) = s else {
                continue; // isolated; nothing to stabilize against
            };
            // Ask s for its predecessor (one message); adopt it when closer.
            // With s == id this asks ourselves — how a lone node discovers a
            // newly joined predecessor, since (id, id) is the full circle.
            self.stats.record(MsgKind::Maintenance);
            if let Some(p) = self.nodes.alive(s.0).predecessor() {
                if p != id && self.nodes.contains(p.0) && p.in_open(id, s) {
                    s = p;
                }
            }
            // Copy s's successor list (one message) and adopt [s] + prefix.
            self.stats.record(MsgKind::Maintenance);
            let s_list = self.nodes.alive(s.0).successor_list().to_vec();
            {
                let node = self.nodes.get_mut(idv).expect("alive in this pass");
                let mut new_list = Vec::with_capacity(self.cfg.succ_list_len);
                new_list.push(s);
                for x in s_list {
                    if x != id && !new_list.contains(&x) && new_list.len() < self.cfg.succ_list_len
                    {
                        new_list.push(x);
                    }
                }
                if node.succ != new_list {
                    changes += 1;
                    node.succ = new_list;
                }
            }
            // Notify s (one message): "I might be your predecessor."
            self.stats.record(MsgKind::Maintenance);
            if s != id {
                let s_node = self.nodes.get_mut(s.0).expect("alive");
                let adopt = match s_node.pred {
                    None => true,
                    Some(p) => p == id || !self.sorted.contains(&p.0) || id.in_open(p, s),
                };
                if adopt && s_node.pred != Some(id) {
                    s_node.pred = Some(id);
                    changes += 1;
                }
            }
        }
        self.debug_validate();
        changes
    }

    /// One finger-refresh pass over every node: each finger is re-resolved
    /// by routing (charged as maintenance traffic). Consecutive fingers that
    /// provably share an owner reuse the previous answer, the standard Chord
    /// optimization. Returns the number of finger entries changed.
    pub fn fix_fingers_round(&mut self) -> usize {
        let ids: Vec<u128> = self.sorted.iter().copied().collect();
        let mut changes = 0;
        for idv in ids {
            if !self.nodes.contains(idv) {
                continue;
            }
            let id = RingId(idv);
            let mut prev: Option<RingId> = None;
            for k in 0..ID_BITS {
                let start = id.finger_start(k);
                // Reuse the previous finger when the interval start has not
                // passed it yet: owner(start) is then the same node.
                if let Some(pf) = prev {
                    if pf != id && start.in_open_closed(id, pf) {
                        let node = self.nodes.get_mut(idv).expect("alive");
                        if node.fingers[k as usize] != pf {
                            node.fingers[k as usize] = pf;
                            changes += 1;
                        }
                        continue;
                    }
                }
                let resolved = self.route(id, start, MsgKind::Maintenance).map(|l| l.owner);
                if let Ok(owner) = resolved {
                    let node = self.nodes.get_mut(idv).expect("alive");
                    if node.fingers[k as usize] != owner {
                        node.fingers[k as usize] = owner;
                        changes += 1;
                    }
                    prev = Some(owner);
                } else {
                    prev = None;
                }
            }
        }
        changes
    }

    /// Structural self-check run after every mutation in debug builds
    /// (free in release). These are the invariants that must hold at *all*
    /// times, even mid-churn — the stronger converged-ring properties
    /// (finger correctness, successor-list prefixes) belong to
    /// `sprite-audit`'s `check_ring`, which is only meaningful on a
    /// quiescent network.
    fn debug_validate(&self) {
        #[cfg(debug_assertions)]
        {
            debug_assert_eq!(
                self.nodes.len(),
                self.sorted.len(),
                "node map and sorted index out of sync"
            );
            for (idv, node) in self.nodes.iter() {
                debug_assert!(self.sorted.contains(&idv), "node {idv} missing from index");
                debug_assert_eq!(node.id().0, idv, "node keyed under a foreign id");
                debug_assert!(
                    !node.successor_list().is_empty(),
                    "successor list of {idv} is empty"
                );
                debug_assert!(
                    node.successor_list().len() <= self.cfg.succ_list_len,
                    "successor list of {idv} exceeds configured length"
                );
                debug_assert_eq!(
                    node.finger_table().len(),
                    ID_BITS as usize,
                    "finger table of {idv} has wrong length"
                );
            }
        }
    }

    /// Run maintenance until quiescent or `max_rounds` exhausted. Returns
    /// the number of rounds executed.
    pub fn converge(&mut self, max_rounds: usize) -> usize {
        for round in 1..=max_rounds {
            let a = self.stabilize_round();
            let b = self.fix_fingers_round();
            if a == 0 && b == 0 {
                return round;
            }
        }
        max_rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_of(n: usize) -> ChordNet {
        ChordNet::with_random_nodes(ChordConfig::default(), n, 99)
    }

    #[test]
    fn with_nodes_is_converged() {
        let net = ring_of(32);
        assert_eq!(net.len(), 32);
        assert!(net.is_converged());
    }

    #[test]
    fn single_node_owns_everything() {
        let mut net = ChordNet::with_nodes(ChordConfig::default(), &[RingId(7)]);
        for key in [0u128, 7, 8, u128::MAX] {
            let l = net.lookup(RingId(7), RingId(key)).expect("lookup");
            assert_eq!(l.owner, RingId(7));
            assert_eq!(l.hops, 0);
        }
    }

    #[test]
    fn two_node_ring() {
        let mut net = ChordNet::with_nodes(ChordConfig::default(), &[RingId(100), RingId(200)]);
        // Key 150 belongs to 200; key 250 wraps to 100.
        assert_eq!(
            net.lookup(RingId(100), RingId(150)).unwrap().owner,
            RingId(200)
        );
        assert_eq!(
            net.lookup(RingId(100), RingId(250)).unwrap().owner,
            RingId(100)
        );
        assert_eq!(
            net.lookup(RingId(200), RingId(150)).unwrap().owner,
            RingId(200)
        );
        assert_eq!(
            net.lookup(RingId(200), RingId(100)).unwrap().owner,
            RingId(100)
        );
    }

    #[test]
    fn probe_via_memo_replays_probe_bit_for_bit() {
        // Converged and damaged rings alike: for every (from, key) pair,
        // the memoized probe must return the same outcome and charge the
        // same stats as a fresh walk — including failed-probe billing on
        // rings with dead successor entries.
        let mut net = ring_of(48);
        let victims: Vec<RingId> = net.node_ids().into_iter().step_by(9).take(4).collect();
        for v in victims {
            net.fail(v).expect("alive node");
        }
        let ids = net.node_ids();
        let keys: Vec<RingId> = (0..24)
            .map(|i| RingId::hash_bytes(format!("memo-key-{i}").as_bytes()))
            .collect();
        let mut pairs: Vec<(RingId, RingId)> = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            pairs.push((ids[i % ids.len()], key));
            // Duplicates on purpose: the memo must dedup without drift.
            pairs.push((ids[i % ids.len()], key));
        }
        let memo = RouteMemo::build(&net, &pairs);
        assert_eq!(memo.len(), keys.len(), "duplicate pairs must coalesce");
        assert!(!memo.is_empty());
        for &(from, key) in &pairs {
            let mut direct = NetStats::new();
            let mut replayed = NetStats::new();
            let a = net.probe(from, key, &mut direct);
            let b = net.probe_via(&memo, from, key, &mut replayed);
            assert_eq!(a, b, "outcome drift from {from:?} key {key:?}");
            assert_eq!(direct, replayed, "charge drift from {from:?} key {key:?}");
        }
        // A miss falls back to the plain walk.
        let fresh = RingId::hash_bytes(b"not-memoized");
        let mut direct = NetStats::new();
        let mut fallback = NetStats::new();
        assert_eq!(
            net.probe(ids[0], fresh, &mut direct),
            net.probe_via(&memo, ids[0], fresh, &mut fallback)
        );
        assert_eq!(direct, fallback);
    }

    #[test]
    fn lookup_matches_oracle_from_every_node() {
        let mut net = ring_of(64);
        let ids = net.node_ids();
        let keys: Vec<RingId> = (0..50)
            .map(|i| RingId::hash_bytes(format!("key-{i}").as_bytes()))
            .collect();
        for &from in &ids {
            for &key in &keys {
                let want = net.oracle_owner(key).unwrap();
                let got = net.lookup(from, key).expect("lookup");
                assert_eq!(got.owner, want, "from {from:?} key {key:?}");
            }
        }
    }

    #[test]
    fn hops_are_logarithmic() {
        let mut net = ring_of(256);
        let ids = net.node_ids();
        net.reset_stats();
        for i in 0..500 {
            let from = ids[i % ids.len()];
            let key = RingId::hash_bytes(format!("probe-{i}").as_bytes());
            net.lookup(from, key).expect("lookup");
        }
        let mean = net.stats().mean_hops();
        // Chord: ~(1/2) log2 N expected, log2 N worst typical. For N=256,
        // log2 N = 8; allow generous slack.
        assert!(mean > 1.0, "mean hops {mean} suspiciously low");
        assert!(mean < 9.0, "mean hops {mean} too high for N=256");
        assert!(net.stats().max_hops() <= 20);
    }

    #[test]
    fn lookup_from_unknown_node_fails() {
        let mut net = ring_of(8);
        let err = net.lookup(RingId(1), RingId(5)).unwrap_err();
        assert!(matches!(err, ChordError::UnknownNode(_)));
    }

    #[test]
    fn explicit_perfect_sim_is_bit_identical_to_default() {
        // A SimConfig with zero latency/jitter/asymmetry/loss must leave the
        // pipeline untouched even with a nonzero seed: the delivery layer
        // short-circuits before sampling.
        let run = |configure: bool| {
            let mut net = ring_of(48);
            if configure {
                net.set_sim(SimConfig {
                    seed: 0xdead_beef,
                    ..SimConfig::default()
                });
            }
            net.reset_stats();
            let ids = net.node_ids();
            let mut owners = Vec::new();
            for i in 0..200 {
                let from = ids[i % ids.len()];
                let key = RingId::hash_bytes(format!("perfect-{i}").as_bytes());
                owners.push(net.lookup_fast(from, key).map(|l| l.owner));
            }
            (owners, net.stats().clone())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn lossy_walks_bill_real_timeouts_and_replay_identically() {
        let run = || {
            let mut net = ring_of(64);
            net.set_sim(SimConfig {
                seed: 7,
                loss: 0.05,
                ..SimConfig::default()
            });
            net.reset_stats();
            let ids = net.node_ids();
            let mut outcomes = Vec::new();
            for i in 0..300 {
                let from = ids[i % ids.len()];
                let key = RingId::hash_bytes(format!("lossy-{i}").as_bytes());
                outcomes.push(net.lookup_fast(from, key).map(|l| l.owner));
            }
            (outcomes, net.stats().clone())
        };
        let (outcomes, stats) = run();
        assert!(
            stats.count(MsgKind::Timeout) > 0,
            "5% loss over 300 walks must drop some transmissions"
        );
        assert_eq!((outcomes, stats), run(), "same seed, same event order");
    }

    #[test]
    fn lossy_probe_and_memo_replay_match_the_mutating_walk() {
        let mut net = ring_of(64);
        net.set_sim(SimConfig {
            seed: 11,
            loss: 0.08,
            ..SimConfig::default()
        });
        let ids = net.node_ids();
        let pairs: Vec<(RingId, RingId)> = (0..150)
            .map(|i| {
                (
                    ids[i % ids.len()],
                    RingId::hash_bytes(format!("memo-{i}").as_bytes()),
                )
            })
            .collect();
        let memo = RouteMemo::build(&net, &pairs);
        for &(from, key) in &pairs {
            net.reset_stats();
            let live = net.lookup_fast(from, key);
            let live_stats = net.stats().clone();
            let mut probe_stats = NetStats::new();
            let probed = net.probe(from, key, &mut probe_stats);
            let mut memo_stats = NetStats::new();
            let replayed = net.probe_via(&memo, from, key, &mut memo_stats);
            assert_eq!(live, probed, "pure link sampling: probe == lookup_fast");
            assert_eq!(live, replayed, "memo replay must reproduce the walk");
            assert_eq!(live_stats, probe_stats, "charges must match");
            assert_eq!(live_stats, memo_stats, "memo charges must match");
        }
    }

    #[test]
    fn total_loss_surfaces_as_lost_with_exhausted_retries() {
        let mut net = ring_of(32);
        net.set_sim(SimConfig {
            seed: 3,
            loss: 1.0,
            max_retries: 2,
            ..SimConfig::default()
        });
        net.reset_stats();
        let ids = net.node_ids();
        let mut lost_seen = false;
        for i in 0..50 {
            let from = ids[i % ids.len()];
            let key = RingId::hash_bytes(format!("drowned-{i}").as_bytes());
            match net.lookup_fast(from, key) {
                // Zero-hop lookups (key owned by the origin's successor)
                // send nothing and legitimately still succeed.
                Ok(l) => assert_eq!(l.hops, 0, "no hop message can survive 100% loss"),
                Err(ChordError::Lost { dropped, .. }) => {
                    lost_seen = true;
                    assert_eq!(dropped, 3, "1 + max_retries transmissions dropped");
                }
                Err(other) => panic!("expected Lost, got {other}"),
            }
        }
        assert!(lost_seen, "some walk must need at least one hop");
        assert!(net.stats().count(MsgKind::Timeout) > 0);
    }

    #[test]
    fn join_then_converge_restores_correctness() {
        let mut net = ring_of(32);
        let ids = net.node_ids();
        let newbie = RingId::hash_bytes(b"late-arrival");
        net.join(newbie, ids[0]).expect("join");
        assert_eq!(net.len(), 33);
        net.converge(40);
        assert!(net.is_converged(), "ring should converge after join");
        // The new node now owns its arc.
        let key = RingId(newbie.0); // its own id
        let l = net.lookup(ids[5], key).expect("lookup");
        assert_eq!(l.owner, newbie);
    }

    #[test]
    fn duplicate_join_rejected() {
        let mut net = ring_of(4);
        let ids = net.node_ids();
        assert_eq!(
            net.join(ids[1], ids[0]).unwrap_err(),
            ChordError::DuplicateNode(ids[1])
        );
    }

    #[test]
    fn graceful_leave_keeps_ring_working() {
        let mut net = ring_of(16);
        let ids = net.node_ids();
        net.leave(ids[3]).expect("leave");
        assert_eq!(net.len(), 15);
        // Immediately after a graceful leave, the spliced neighbors keep the
        // ring routable (fingers may be stale but succ pointers are fixed).
        for i in 0..20 {
            let key = RingId::hash_bytes(format!("after-leave-{i}").as_bytes());
            let want = net.oracle_owner(key).unwrap();
            let from = ids[(i * 5) % ids.len()];
            if from == ids[3] {
                continue;
            }
            let got = net.lookup(from, key).expect("lookup after leave");
            assert_eq!(got.owner, want);
        }
        net.converge(40);
        assert!(net.is_converged());
    }

    #[test]
    fn abrupt_failure_repaired_by_maintenance() {
        let mut net = ring_of(32);
        let ids = net.node_ids();
        // Kill three scattered nodes without warning.
        for &victim in [ids[2], ids[10], ids[25]].iter() {
            net.fail(victim).expect("fail");
        }
        assert_eq!(net.len(), 29);
        net.converge(60);
        assert!(net.is_converged(), "maintenance should repair the ring");
        let from = net.node_ids()[0];
        for i in 0..30 {
            let key = RingId::hash_bytes(format!("post-churn-{i}").as_bytes());
            let want = net.oracle_owner(key).unwrap();
            assert_eq!(net.lookup(from, key).unwrap().owner, want);
        }
    }

    #[test]
    fn lookups_survive_failures_via_successor_lists() {
        let mut net = ring_of(64);
        let ids = net.node_ids();
        // Fail 4 nodes, no repair at all.
        for &v in &[ids[1], ids[20], ids[40], ids[60]] {
            net.fail(v).unwrap();
        }
        let alive = net.node_ids();
        let mut ok = 0;
        let mut total = 0;
        for i in 0..100 {
            let key = RingId::hash_bytes(format!("dodgy-{i}").as_bytes());
            let from = alive[i % alive.len()];
            total += 1;
            if let Ok(l) = net.lookup(from, key) {
                // Owner must at least be alive.
                assert!(net.contains(l.owner));
                ok += 1;
            }
        }
        // With r=8 successor lists and 4/64 failures, virtually every lookup
        // must still complete.
        assert!(ok >= total - 2, "only {ok}/{total} lookups survived");
    }

    #[test]
    fn oracle_replicas_wrap_and_dedup() {
        let net = ChordNet::with_nodes(
            ChordConfig::default(),
            &[RingId(10), RingId(20), RingId(30)],
        );
        assert_eq!(
            net.oracle_replicas(RingId(25), 2),
            vec![RingId(30), RingId(10)]
        );
        // Asking for more replicas than nodes returns each node once.
        assert_eq!(net.oracle_replicas(RingId(0), 10).len(), 3);
        assert!(net.oracle_replicas(RingId(0), 0).is_empty());
    }

    #[test]
    fn create_and_grow_from_scratch() {
        let mut net = ChordNet::new(ChordConfig::default());
        let first = RingId::hash_bytes(b"genesis");
        net.create(first).expect("create");
        for i in 0..15 {
            let id = RingId::hash_bytes(format!("grower-{i}").as_bytes());
            net.join(id, first).expect("join");
            net.converge(50);
        }
        assert_eq!(net.len(), 16);
        assert!(net.is_converged());
        // All lookups correct from everywhere.
        let ids = net.node_ids();
        for (i, &from) in ids.iter().enumerate() {
            let key = RingId::hash_bytes(format!("check-{i}").as_bytes());
            assert_eq!(
                net.lookup(from, key).unwrap().owner,
                net.oracle_owner(key).unwrap()
            );
        }
    }

    #[test]
    fn maintenance_traffic_is_charged() {
        let mut net = ring_of(16);
        net.reset_stats();
        net.stabilize_round();
        assert!(net.stats().count(MsgKind::Maintenance) >= 16 * 3);
        let before = net.stats().count(MsgKind::Maintenance);
        net.fix_fingers_round();
        assert!(net.stats().count(MsgKind::Maintenance) >= before);
        // Lookup stats untouched by maintenance routing.
        assert_eq!(net.stats().lookups(), 0);
    }

    #[test]
    fn fast_and_probe_lookups_match_full_lookup() {
        // Same owners, same hops, same charged stats — on a healthy ring and
        // on a damaged one (dead successors make `failed` counting matter).
        for kill in [0usize, 5] {
            let mut reference = ring_of(64);
            let ids = reference.node_ids();
            for &v in ids.iter().skip(1).take(kill) {
                reference.fail(v).unwrap();
            }
            let mut fast = reference.clone();
            let frozen = reference.clone();
            let mut delta = NetStats::new();
            reference.reset_stats();
            fast.reset_stats();
            let alive = reference.node_ids();
            for i in 0..200 {
                let from = alive[i % alive.len()];
                let key = RingId::hash_bytes(format!("variant-{i}").as_bytes());
                let full = reference.lookup(from, key);
                let lite = fast.lookup_fast(from, key);
                let probed = frozen.probe(from, key, &mut delta);
                match (full, lite, probed) {
                    (Ok(f), Ok(l), Ok(p)) => {
                        assert_eq!((f.owner, f.hops), (l.owner, l.hops));
                        assert_eq!(l, p);
                        assert_eq!(f.path.len() as u32, f.hops + 1);
                    }
                    (Err(ef), Err(el), Err(ep)) => {
                        assert_eq!(ef, el);
                        assert_eq!(el, ep);
                    }
                    other => panic!("variants disagree on outcome: {other:?}"),
                }
            }
            assert_eq!(reference.stats(), fast.stats(), "kill={kill}");
            assert_eq!(reference.stats(), &delta, "kill={kill}");
        }
    }

    #[test]
    fn absorb_stats_merges_probe_deltas() {
        let mut net = ring_of(16);
        net.reset_stats();
        let from = net.node_ids()[0];
        let mut delta = NetStats::new();
        net.probe(from, RingId::hash_bytes(b"absorbed"), &mut delta)
            .expect("probe");
        assert_eq!(net.stats().lookups(), 0, "probe must not touch the net");
        net.absorb_stats(&delta);
        assert_eq!(net.stats().lookups(), 1);
        assert_eq!(net.stats(), &delta);
    }

    #[test]
    fn routed_replicas_match_oracle_on_converged_ring() {
        let net = ring_of(64);
        for i in 0..40 {
            let key = RingId::hash_bytes(format!("replica-key-{i}").as_bytes());
            let owner = net.oracle_owner(key).unwrap();
            let mut delta = NetStats::new();
            for n in [1usize, 3, 8] {
                let routed = net.replicas_from_owner(owner, n, &mut delta);
                assert_eq!(routed, net.oracle_replicas(key, n), "key {i}, n {n}");
            }
            // A healthy chain never times out.
            assert_eq!(delta.count(MsgKind::Timeout), 0);
        }
    }

    #[test]
    fn routed_replicas_charge_per_contact_and_timeout() {
        let mut net = ring_of(32);
        let key = RingId::hash_bytes(b"charged-key");
        let owner = net.oracle_owner(key).unwrap();
        // Kill the owner's immediate successor so the chain walk must probe
        // a dead entry.
        let victim = net.oracle_replicas(key, 2)[1];
        net.fail(victim).unwrap();
        let mut delta = NetStats::new();
        let routed = net.replicas_from_owner(owner, 3, &mut delta);
        assert_eq!(routed.len(), 3);
        assert!(!routed.contains(&victim));
        assert!(routed.iter().all(|&p| net.contains(p)));
        assert_eq!(
            delta.count(MsgKind::Maintenance),
            2,
            "one contact per replica beyond the owner"
        );
        assert!(
            delta.count(MsgKind::Timeout) >= 1,
            "the dead successor entry must be charged as a timeout"
        );
    }

    #[test]
    fn route_replicas_resolves_via_lookup() {
        let mut net = ring_of(32);
        net.reset_stats();
        let from = net.node_ids()[0];
        let key = RingId::hash_bytes(b"routed-end-to-end");
        let replicas = net.route_replicas(from, key, 3).expect("converged ring");
        assert_eq!(replicas, net.oracle_replicas(key, 3));
        assert_eq!(net.stats().lookups(), 1, "owner resolution is a lookup");
        assert_eq!(net.stats().count(MsgKind::Maintenance), 2);
    }

    #[test]
    fn dead_end_reports_failed_probe_count() {
        // A two-node ring where the survivor's every pointer is dead ends
        // immediately; the error must carry the probes burned.
        let mut net = ChordNet::with_nodes(ChordConfig::default(), &[RingId(10), RingId(900)]);
        net.fail(RingId(900)).unwrap();
        // Re-plant a stale successor so routing has something dead to probe.
        net.node_mut(RingId(10))
            .unwrap()
            .set_successor_list(vec![RingId(900)]);
        let err = net.lookup(RingId(10), RingId(500)).unwrap_err();
        match err {
            ChordError::DeadEnd { at, failed_probes } => {
                assert_eq!(at, RingId(10));
                assert_eq!(failed_probes, 1, "one dead successor entry probed");
            }
            other => panic!("expected DeadEnd, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(
            msg.contains("1 failed probe"),
            "display surfaces count: {msg}"
        );
    }

    #[test]
    fn term_lookup_places_by_md5() {
        let mut net = ring_of(16);
        let from = net.node_ids()[0];
        let l = net.lookup_term(from, "retrieval").expect("lookup");
        assert_eq!(
            l.owner,
            net.oracle_owner(RingId::hash_term("retrieval")).unwrap()
        );
    }
}
