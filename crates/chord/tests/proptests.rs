//! Property-based tests for the Chord simulator's routing invariants.

use proptest::prelude::*;
use sprite_chord::{ChordConfig, ChordNet};
use sprite_util::RingId;

/// Build a ring from arbitrary raw ids (deduplicated inside `with_nodes`).
fn ring(ids: &[u128]) -> ChordNet {
    let ids: Vec<RingId> = ids.iter().map(|&v| RingId(v)).collect();
    ChordNet::with_nodes(ChordConfig::default(), &ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On a converged ring, lookups from any member for any key resolve to
    /// the oracle owner, within the Chord hop bound.
    #[test]
    fn lookup_agrees_with_oracle(
        ids in proptest::collection::hash_set(any::<u128>(), 1..40),
        keys in proptest::collection::vec(any::<u128>(), 1..20),
        from_sel in any::<prop::sample::Index>(),
    ) {
        let ids: Vec<u128> = ids.into_iter().collect();
        let mut net = ring(&ids);
        let members = net.node_ids();
        let from = members[from_sel.index(members.len())];
        for &k in &keys {
            let key = RingId(k);
            let want = net.oracle_owner(key).expect("non-empty");
            let got = net.lookup(from, key).expect("converged ring lookup");
            prop_assert_eq!(got.owner, want);
            // Hop bound: fingers halve the remaining distance each step.
            prop_assert!(got.hops as usize <= 2 * (members.len().ilog2() as usize + 1) + 2,
                "hops {} too many for {} nodes", got.hops, members.len());
        }
    }

    /// The lookup path never revisits a node (progress is strictly
    /// monotone along the ring).
    #[test]
    fn lookup_path_is_simple(
        ids in proptest::collection::hash_set(any::<u128>(), 2..40),
        key in any::<u128>(),
    ) {
        let ids: Vec<u128> = ids.into_iter().collect();
        let mut net = ring(&ids);
        let from = net.node_ids()[0];
        let l = net.lookup(from, RingId(key)).expect("lookup");
        let mut seen = std::collections::HashSet::new();
        for p in &l.path {
            prop_assert!(seen.insert(*p), "path revisits {p:?}");
        }
        prop_assert_eq!(l.path.len() as u32, l.hops + 1);
    }

    /// Replica sets: correct length, start at the owner, no duplicates.
    #[test]
    fn replica_sets_well_formed(
        ids in proptest::collection::hash_set(any::<u128>(), 1..30),
        key in any::<u128>(),
        r in 1usize..6,
    ) {
        let ids: Vec<u128> = ids.into_iter().collect();
        let net = ring(&ids);
        let reps = net.oracle_replicas(RingId(key), r);
        prop_assert_eq!(reps.len(), r.min(ids.len()));
        prop_assert_eq!(reps.first().copied(), net.oracle_owner(RingId(key)));
        let set: std::collections::HashSet<_> = reps.iter().collect();
        prop_assert_eq!(set.len(), reps.len());
    }

    /// After arbitrary graceful leaves, maintenance reconverges the ring and
    /// lookups still match the oracle.
    #[test]
    fn leaves_then_converge(
        ids in proptest::collection::hash_set(any::<u128>(), 4..24),
        leaver_sel in proptest::collection::vec(any::<prop::sample::Index>(), 1..3),
    ) {
        let ids: Vec<u128> = ids.into_iter().collect();
        let mut net = ring(&ids);
        for sel in leaver_sel {
            if net.len() <= 2 { break; }
            let members = net.node_ids();
            let victim = members[sel.index(members.len())];
            net.leave(victim).expect("leave");
        }
        net.converge(80);
        prop_assert!(net.is_converged());
        let members = net.node_ids();
        let from = members[0];
        let key = RingId(0xdead_beef);
        prop_assert_eq!(
            net.lookup(from, key).expect("post-leave lookup").owner,
            net.oracle_owner(key).expect("non-empty")
        );
    }

    /// After abrupt failures (no goodbye), maintenance repairs the ring.
    #[test]
    fn failures_then_converge(
        ids in proptest::collection::hash_set(any::<u128>(), 6..24),
        victim_sel in any::<prop::sample::Index>(),
    ) {
        let ids: Vec<u128> = ids.into_iter().collect();
        let mut net = ring(&ids);
        let members = net.node_ids();
        let victim = members[victim_sel.index(members.len())];
        net.fail(victim).expect("fail");
        net.converge(80);
        prop_assert!(net.is_converged());
    }
}
