//! Property-style tests for the Chord simulator's routing invariants.
//!
//! Formerly `proptest` suites; now deterministic seeded loops over
//! `DetRng`-generated rings so the workspace builds with an empty registry.

use sprite_chord::{ChordConfig, ChordNet};
use sprite_util::{derive_rng, DetRng, RingId};

/// Build a ring from arbitrary raw ids (deduplicated inside `with_nodes`).
fn ring(ids: &[u128]) -> ChordNet {
    let ids: Vec<RingId> = ids.iter().map(|&v| RingId(v)).collect();
    ChordNet::with_nodes(ChordConfig::default(), &ids)
}

fn rng(label: &str) -> DetRng {
    derive_rng(0xC0DE, label)
}

fn gen_u128(rng: &mut DetRng) -> u128 {
    (u128::from(rng.gen_u64()) << 64) | u128::from(rng.gen_u64())
}

fn gen_ids(rng: &mut DetRng, lo: usize, hi: usize) -> Vec<u128> {
    let n = rng.gen_range(lo..hi);
    let mut ids: Vec<u128> = (0..n).map(|_| gen_u128(rng)).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// On a converged ring, lookups from any member for any key resolve to
/// the oracle owner, within the Chord hop bound.
#[test]
fn lookup_agrees_with_oracle() {
    let mut r = rng("lookup-oracle");
    for _ in 0..64 {
        let ids = gen_ids(&mut r, 1, 40);
        let mut net = ring(&ids);
        let members = net.node_ids();
        let from = members[r.gen_range(0..members.len())];
        let n_keys = r.gen_range(1..20);
        for _ in 0..n_keys {
            let key = RingId(gen_u128(&mut r));
            let want = net.oracle_owner(key).expect("non-empty");
            let got = net.lookup(from, key).expect("converged ring lookup");
            assert_eq!(got.owner, want);
            // Hop bound: fingers halve the remaining distance each step.
            assert!(
                got.hops as usize <= 2 * (members.len().ilog2() as usize + 1) + 2,
                "hops {} too many for {} nodes",
                got.hops,
                members.len()
            );
        }
    }
}

/// The lookup path never revisits a node (progress is strictly
/// monotone along the ring).
#[test]
fn lookup_path_is_simple() {
    let mut r = rng("path-simple");
    for _ in 0..64 {
        let ids = gen_ids(&mut r, 2, 40);
        let mut net = ring(&ids);
        let from = net.node_ids()[0];
        let l = net.lookup(from, RingId(gen_u128(&mut r))).expect("lookup");
        let mut seen = std::collections::HashSet::new();
        for p in &l.path {
            assert!(seen.insert(*p), "path revisits {p:?}");
        }
        assert_eq!(l.path.len() as u32, l.hops + 1);
    }
}

/// Replica sets: correct length, start at the owner, no duplicates.
#[test]
fn replica_sets_well_formed() {
    let mut r = rng("replica-sets");
    for _ in 0..64 {
        let ids = gen_ids(&mut r, 1, 30);
        let key = RingId(gen_u128(&mut r));
        let k = r.gen_range(1..6);
        let net = ring(&ids);
        let reps = net.oracle_replicas(key, k);
        assert_eq!(reps.len(), k.min(ids.len()));
        assert_eq!(reps.first().copied(), net.oracle_owner(key));
        let set: std::collections::HashSet<_> = reps.iter().collect();
        assert_eq!(set.len(), reps.len());
    }
}

/// After arbitrary graceful leaves, maintenance reconverges the ring and
/// lookups still match the oracle.
#[test]
fn leaves_then_converge() {
    let mut r = rng("leaves-converge");
    for _ in 0..64 {
        let ids = gen_ids(&mut r, 4, 24);
        let mut net = ring(&ids);
        let n_leavers = r.gen_range(1..3);
        for _ in 0..n_leavers {
            if net.len() <= 2 {
                break;
            }
            let members = net.node_ids();
            let victim = members[r.gen_range(0..members.len())];
            net.leave(victim).expect("leave");
        }
        net.converge(80);
        assert!(net.is_converged());
        let members = net.node_ids();
        let from = members[0];
        let key = RingId(0xdead_beef);
        assert_eq!(
            net.lookup(from, key).expect("post-leave lookup").owner,
            net.oracle_owner(key).expect("non-empty")
        );
    }
}

/// After abrupt failures (no goodbye), maintenance repairs the ring.
#[test]
fn failures_then_converge() {
    let mut r = rng("failures-converge");
    for _ in 0..64 {
        let ids = gen_ids(&mut r, 6, 24);
        let mut net = ring(&ids);
        let members = net.node_ids();
        let victim = members[r.gen_range(0..members.len())];
        net.fail(victim).expect("fail");
        net.converge(80);
        assert!(net.is_converged());
    }
}
