//! Property-based tests for the util crate's core invariants.

use proptest::prelude::*;
use sprite_util::{md5, percentile, top_k, F64Ord, Md5, RingId, Summary, TopK, Zipf};

proptest! {
    /// Streaming MD5 over arbitrary chunkings equals one-shot MD5.
    #[test]
    fn md5_streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512),
                                    cuts in proptest::collection::vec(0usize..512, 0..8)) {
        let oneshot = md5(&data);
        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c % (data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut h = Md5::new();
        let mut prev = 0;
        for c in cuts {
            h.update(&data[prev..c]);
            prev = c;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    /// `in_open_closed` partitions the ring: for distinct a != b, every id is
    /// in exactly one of (a, b] and (b, a].
    #[test]
    fn ring_intervals_partition(a in any::<u128>(), b in any::<u128>(), x in any::<u128>()) {
        prop_assume!(a != b);
        let (a, b, x) = (RingId(a), RingId(b), RingId(x));
        let in_ab = x.in_open_closed(a, b);
        let in_ba = x.in_open_closed(b, a);
        prop_assert!(in_ab ^ in_ba, "x must be in exactly one half: {in_ab} {in_ba}");
    }

    /// Open interval membership implies open-closed membership.
    #[test]
    fn open_implies_open_closed(a in any::<u128>(), b in any::<u128>(), x in any::<u128>()) {
        let (a, b, x) = (RingId(a), RingId(b), RingId(x));
        if x.in_open(a, b) {
            prop_assert!(x.in_open_closed(a, b));
        }
    }

    /// Top-k returns exactly the k greatest elements, in descending order.
    #[test]
    fn topk_matches_sort(xs in proptest::collection::vec(any::<i64>(), 0..200), k in 0usize..20) {
        let got = top_k(k, xs.iter().map(|&x| (x, x)));
        let mut sorted = xs.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        sorted.truncate(k);
        let got_scores: Vec<i64> = got.iter().map(|s| s.score).collect();
        prop_assert_eq!(got_scores, sorted);
    }

    /// TopK never retains more than k entries and its threshold is the
    /// minimum retained score.
    #[test]
    fn topk_threshold_invariant(xs in proptest::collection::vec(any::<i32>(), 1..100), k in 1usize..10) {
        let mut sel = TopK::new(k);
        for &x in &xs {
            sel.offer(x, x);
            prop_assert!(sel.len() <= k);
        }
        let sorted = sel.into_sorted();
        for w in sorted.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
    }

    /// Zipf pmf is non-increasing in rank and sums to ~1.
    #[test]
    fn zipf_pmf_monotone(n in 1usize..500, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s);
        let mut total = 0.0;
        let mut prev = f64::INFINITY;
        for kk in 0..n {
            let p = z.pmf(kk);
            prop_assert!(p <= prev + 1e-12);
            prev = p;
            total += p;
        }
        prop_assert!((total - 1.0).abs() < 1e-6);
    }

    /// Zipf samples always land in the domain.
    #[test]
    fn zipf_sample_in_domain(n in 1usize..100, s in 0.0f64..2.0, seed in any::<u64>()) {
        let z = Zipf::new(n, s);
        let mut rng = sprite_util::derive_rng(seed, "prop");
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Summary merge is equivalent to sequential accumulation.
    #[test]
    fn summary_merge_associative(xs in proptest::collection::vec(-1e6f64..1e6, 0..100),
                                 split in 0usize..100) {
        let split = split.min(xs.len());
        let whole: Summary = xs.iter().copied().collect();
        let mut left: Summary = xs[..split].iter().copied().collect();
        let right: Summary = xs[split..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        if whole.count() > 0 {
            prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
            prop_assert!((left.variance() - whole.variance()).abs() < 1e-3);
        }
    }

    /// Percentile is always an element of the sample, and monotone in p.
    #[test]
    fn percentile_monotone(xs in proptest::collection::vec(-1e3f64..1e3, 1..50)) {
        let p50 = percentile(&xs, 50.0);
        let p90 = percentile(&xs, 90.0);
        prop_assert!(xs.contains(&p50));
        prop_assert!(p50 <= p90);
    }

    /// F64Ord ordering is total and consistent with f64 ordering on non-NaN.
    #[test]
    fn f64ord_total(a in any::<f64>(), b in any::<f64>()) {
        use std::cmp::Ordering;
        let ord = F64Ord(a).cmp(&F64Ord(b));
        if !a.is_nan() && !b.is_nan() {
            prop_assert_eq!(ord, a.partial_cmp(&b).unwrap());
        }
        // Antisymmetry.
        prop_assert_eq!(F64Ord(b).cmp(&F64Ord(a)), ord.reverse(), "antisymmetry");
        if ord == Ordering::Equal {
            prop_assert_eq!(F64Ord(a).cmp(&F64Ord(b)), Ordering::Equal);
        }
    }
}
