//! Property-style tests for the util crate's core invariants.
//!
//! These were `proptest` suites in an earlier revision; the workspace now
//! builds with an empty registry, so each property is exercised by a
//! deterministic seeded loop over `DetRng`-generated inputs instead of a
//! shrinking framework. Coverage per property is a few hundred cases.

use sprite_util::{
    derive_rng, md5, percentile, top_k, DetRng, F64Ord, Md5, RingId, Summary, TopK, Zipf,
};

fn rng(label: &str) -> DetRng {
    derive_rng(0xC0FF_EE00, label)
}

fn gen_u128(rng: &mut DetRng) -> u128 {
    (u128::from(rng.gen_u64()) << 64) | u128::from(rng.gen_u64())
}

/// u128 generator biased toward ring edge cases (0, MAX, near-collisions).
fn gen_ring_point(rng: &mut DetRng, anchor: u128) -> u128 {
    match rng.gen_range(0..8) {
        0 => 0,
        1 => u128::MAX,
        2 => anchor,
        3 => anchor.wrapping_add(1),
        4 => anchor.wrapping_sub(1),
        _ => gen_u128(rng),
    }
}

/// Streaming MD5 over arbitrary chunkings equals one-shot MD5.
#[test]
fn md5_streaming_equals_oneshot() {
    let mut r = rng("md5-chunking");
    for _ in 0..300 {
        let len = r.gen_range(0..512);
        let data: Vec<u8> = (0..len).map(|_| r.gen_u32() as u8).collect();
        let oneshot = md5(&data);
        let n_cuts = r.gen_range(0..8);
        let mut cuts: Vec<usize> = (0..n_cuts).map(|_| r.gen_range(0..len + 1)).collect();
        cuts.sort_unstable();
        let mut h = Md5::new();
        let mut prev = 0;
        for c in cuts {
            h.update(&data[prev..c]);
            prev = c;
        }
        h.update(&data[prev..]);
        assert_eq!(h.finalize(), oneshot);
    }
}

/// `in_open_closed` partitions the ring: for distinct a != b, every id is
/// in exactly one of (a, b] and (b, a].
#[test]
fn ring_intervals_partition() {
    let mut r = rng("ring-partition");
    for _ in 0..2000 {
        let a = gen_u128(&mut r);
        let b = gen_ring_point(&mut r, a);
        if a == b {
            continue;
        }
        let x = gen_ring_point(&mut r, a);
        let (a, b, x) = (RingId(a), RingId(b), RingId(x));
        let in_ab = x.in_open_closed(a, b);
        let in_ba = x.in_open_closed(b, a);
        assert!(
            in_ab ^ in_ba,
            "x must be in exactly one half: {in_ab} {in_ba}"
        );
    }
}

/// Open interval membership implies open-closed membership.
#[test]
fn open_implies_open_closed() {
    let mut r = rng("open-implies");
    for _ in 0..2000 {
        let a = gen_u128(&mut r);
        let b = gen_ring_point(&mut r, a);
        let x = gen_ring_point(&mut r, b);
        let (a, b, x) = (RingId(a), RingId(b), RingId(x));
        if x.in_open(a, b) {
            assert!(x.in_open_closed(a, b));
        }
    }
}

/// Top-k returns exactly the k greatest elements, in descending order.
#[test]
fn topk_matches_sort() {
    let mut r = rng("topk-sort");
    for _ in 0..300 {
        let len = r.gen_range(0..200);
        let xs: Vec<i64> = (0..len).map(|_| r.gen_u64() as i64).collect();
        let k = r.gen_range(0..20);
        let got = top_k(k, xs.iter().map(|&x| (x, x)));
        let mut sorted = xs.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        sorted.truncate(k);
        let got_scores: Vec<i64> = got.iter().map(|s| s.score).collect();
        assert_eq!(got_scores, sorted);
    }
}

/// TopK never retains more than k entries and yields descending output.
#[test]
fn topk_threshold_invariant() {
    let mut r = rng("topk-threshold");
    for _ in 0..300 {
        let len = r.gen_range(1..100);
        let xs: Vec<i32> = (0..len).map(|_| r.gen_u32() as i32).collect();
        let k = r.gen_range(1..10);
        let mut sel = TopK::new(k);
        for &x in &xs {
            sel.offer(x, x);
            assert!(sel.len() <= k);
        }
        let sorted = sel.into_sorted();
        for w in sorted.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}

/// Zipf pmf is non-increasing in rank and sums to ~1.
#[test]
fn zipf_pmf_monotone() {
    let mut r = rng("zipf-pmf");
    for _ in 0..60 {
        let n = r.gen_range(1..500);
        let s = r.gen_f64() * 3.0;
        let z = Zipf::new(n, s);
        let mut total = 0.0;
        let mut prev = f64::INFINITY;
        for kk in 0..n {
            let p = z.pmf(kk);
            assert!(p <= prev + 1e-12);
            prev = p;
            total += p;
        }
        assert!((total - 1.0).abs() < 1e-6);
    }
}

/// Zipf samples always land in the domain.
#[test]
fn zipf_sample_in_domain() {
    let mut r = rng("zipf-domain");
    for _ in 0..60 {
        let n = r.gen_range(1..100);
        let s = r.gen_f64() * 2.0;
        let z = Zipf::new(n, s);
        let mut sample_rng = derive_rng(r.gen_u64(), "prop");
        for _ in 0..50 {
            assert!(z.sample(&mut sample_rng) < n);
        }
    }
}

/// Summary merge is equivalent to sequential accumulation.
#[test]
fn summary_merge_associative() {
    let mut r = rng("summary-merge");
    for _ in 0..300 {
        let len = r.gen_range(0..100);
        let xs: Vec<f64> = (0..len).map(|_| (r.gen_f64() - 0.5) * 2e6).collect();
        let split = r.gen_range(0..=len);
        let whole: Summary = xs.iter().copied().collect();
        let mut left: Summary = xs[..split].iter().copied().collect();
        let right: Summary = xs[split..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        if whole.count() > 0 {
            assert!((left.mean() - whole.mean()).abs() < 1e-6);
            assert!((left.variance() - whole.variance()).abs() < 1e-3);
        }
    }
}

/// Percentile is always an element of the sample, and monotone in p.
#[test]
fn percentile_monotone() {
    let mut r = rng("percentile");
    for _ in 0..300 {
        let len = r.gen_range(1..50);
        let xs: Vec<f64> = (0..len).map(|_| (r.gen_f64() - 0.5) * 2e3).collect();
        let p50 = percentile(&xs, 50.0);
        let p90 = percentile(&xs, 90.0);
        assert!(xs.contains(&p50));
        assert!(p50 <= p90);
    }
}

/// F64Ord ordering is total and consistent with f64 ordering on non-NaN.
#[test]
fn f64ord_total() {
    use std::cmp::Ordering;
    let mut r = rng("f64ord");
    // Raw bit patterns hit NaNs, infinities, and subnormals too.
    for _ in 0..2000 {
        let a = f64::from_bits(r.gen_u64());
        let b = match r.gen_range(0..4) {
            0 => a,
            1 => f64::NAN,
            _ => f64::from_bits(r.gen_u64()),
        };
        let ord = F64Ord(a).cmp(&F64Ord(b));
        if !a.is_nan() && !b.is_nan() {
            assert_eq!(ord, a.partial_cmp(&b).expect("both non-NaN"));
        }
        // Antisymmetry.
        assert_eq!(F64Ord(b).cmp(&F64Ord(a)), ord.reverse(), "antisymmetry");
        if ord == Ordering::Equal {
            assert_eq!(F64Ord(a).cmp(&F64Ord(b)), Ordering::Equal);
        }
    }
}
