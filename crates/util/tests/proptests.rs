//! Property-style tests for the util crate's core invariants.
//!
//! These were `proptest` suites in an earlier revision; the workspace now
//! builds with an empty registry, so each property is exercised by a
//! deterministic seeded loop over `DetRng`-generated inputs instead of a
//! shrinking framework. Coverage per property is a few hundred cases.

use sprite_util::{
    decode_gap_list, decode_varint, derive_rng, encode_gap_list, encode_varint, gap_list_len, md5,
    percentile, top_k, unzigzag, varint_len, zigzag, DetRng, F64Ord, Md5, RingId, Summary, TopK,
    Zipf, MAX_VARINT_LEN,
};

fn rng(label: &str) -> DetRng {
    derive_rng(0xC0FF_EE00, label)
}

fn gen_u128(rng: &mut DetRng) -> u128 {
    (u128::from(rng.gen_u64()) << 64) | u128::from(rng.gen_u64())
}

/// u128 generator biased toward ring edge cases (0, MAX, near-collisions).
fn gen_ring_point(rng: &mut DetRng, anchor: u128) -> u128 {
    match rng.gen_range(0..8) {
        0 => 0,
        1 => u128::MAX,
        2 => anchor,
        3 => anchor.wrapping_add(1),
        4 => anchor.wrapping_sub(1),
        _ => gen_u128(rng),
    }
}

/// Streaming MD5 over arbitrary chunkings equals one-shot MD5.
#[test]
fn md5_streaming_equals_oneshot() {
    let mut r = rng("md5-chunking");
    for _ in 0..300 {
        let len = r.gen_range(0..512);
        let data: Vec<u8> = (0..len).map(|_| r.gen_u32() as u8).collect();
        let oneshot = md5(&data);
        let n_cuts = r.gen_range(0..8);
        let mut cuts: Vec<usize> = (0..n_cuts).map(|_| r.gen_range(0..len + 1)).collect();
        cuts.sort_unstable();
        let mut h = Md5::new();
        let mut prev = 0;
        for c in cuts {
            h.update(&data[prev..c]);
            prev = c;
        }
        h.update(&data[prev..]);
        assert_eq!(h.finalize(), oneshot);
    }
}

/// `in_open_closed` partitions the ring: for distinct a != b, every id is
/// in exactly one of (a, b] and (b, a].
#[test]
fn ring_intervals_partition() {
    let mut r = rng("ring-partition");
    for _ in 0..2000 {
        let a = gen_u128(&mut r);
        let b = gen_ring_point(&mut r, a);
        if a == b {
            continue;
        }
        let x = gen_ring_point(&mut r, a);
        let (a, b, x) = (RingId(a), RingId(b), RingId(x));
        let in_ab = x.in_open_closed(a, b);
        let in_ba = x.in_open_closed(b, a);
        assert!(
            in_ab ^ in_ba,
            "x must be in exactly one half: {in_ab} {in_ba}"
        );
    }
}

/// Open interval membership implies open-closed membership.
#[test]
fn open_implies_open_closed() {
    let mut r = rng("open-implies");
    for _ in 0..2000 {
        let a = gen_u128(&mut r);
        let b = gen_ring_point(&mut r, a);
        let x = gen_ring_point(&mut r, b);
        let (a, b, x) = (RingId(a), RingId(b), RingId(x));
        if x.in_open(a, b) {
            assert!(x.in_open_closed(a, b));
        }
    }
}

/// Top-k returns exactly the k greatest elements, in descending order.
#[test]
fn topk_matches_sort() {
    let mut r = rng("topk-sort");
    for _ in 0..300 {
        let len = r.gen_range(0..200);
        let xs: Vec<i64> = (0..len).map(|_| r.gen_u64() as i64).collect();
        let k = r.gen_range(0..20);
        let got = top_k(k, xs.iter().map(|&x| (x, x)));
        let mut sorted = xs.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        sorted.truncate(k);
        let got_scores: Vec<i64> = got.iter().map(|s| s.score).collect();
        assert_eq!(got_scores, sorted);
    }
}

/// TopK never retains more than k entries and yields descending output.
#[test]
fn topk_threshold_invariant() {
    let mut r = rng("topk-threshold");
    for _ in 0..300 {
        let len = r.gen_range(1..100);
        let xs: Vec<i32> = (0..len).map(|_| r.gen_u32() as i32).collect();
        let k = r.gen_range(1..10);
        let mut sel = TopK::new(k);
        for &x in &xs {
            sel.offer(x, x);
            assert!(sel.len() <= k);
        }
        let sorted = sel.into_sorted();
        for w in sorted.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}

/// Zipf pmf is non-increasing in rank and sums to ~1.
#[test]
fn zipf_pmf_monotone() {
    let mut r = rng("zipf-pmf");
    for _ in 0..60 {
        let n = r.gen_range(1..500);
        let s = r.gen_f64() * 3.0;
        let z = Zipf::new(n, s);
        let mut total = 0.0;
        let mut prev = f64::INFINITY;
        for kk in 0..n {
            let p = z.pmf(kk);
            assert!(p <= prev + 1e-12);
            prev = p;
            total += p;
        }
        assert!((total - 1.0).abs() < 1e-6);
    }
}

/// Zipf samples always land in the domain.
#[test]
fn zipf_sample_in_domain() {
    let mut r = rng("zipf-domain");
    for _ in 0..60 {
        let n = r.gen_range(1..100);
        let s = r.gen_f64() * 2.0;
        let z = Zipf::new(n, s);
        let mut sample_rng = derive_rng(r.gen_u64(), "prop");
        for _ in 0..50 {
            assert!(z.sample(&mut sample_rng) < n);
        }
    }
}

/// Summary merge is equivalent to sequential accumulation.
#[test]
fn summary_merge_associative() {
    let mut r = rng("summary-merge");
    for _ in 0..300 {
        let len = r.gen_range(0..100);
        let xs: Vec<f64> = (0..len).map(|_| (r.gen_f64() - 0.5) * 2e6).collect();
        let split = r.gen_range(0..=len);
        let whole: Summary = xs.iter().copied().collect();
        let mut left: Summary = xs[..split].iter().copied().collect();
        let right: Summary = xs[split..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        if whole.count() > 0 {
            assert!((left.mean() - whole.mean()).abs() < 1e-6);
            assert!((left.variance() - whole.variance()).abs() < 1e-3);
        }
    }
}

/// Percentile is always an element of the sample, and monotone in p.
#[test]
fn percentile_monotone() {
    let mut r = rng("percentile");
    for _ in 0..300 {
        let len = r.gen_range(1..50);
        let xs: Vec<f64> = (0..len).map(|_| (r.gen_f64() - 0.5) * 2e3).collect();
        let p50 = percentile(&xs, 50.0);
        let p90 = percentile(&xs, 90.0);
        assert!(xs.contains(&p50));
        assert!(p50 <= p90);
    }
}

/// u64 generator biased toward varint edge cases (0, MAX, 7-bit
/// boundaries and their neighbours).
fn gen_varint_value(rng: &mut DetRng) -> u64 {
    match rng.gen_range(0..8) {
        0 => 0,
        1 => u64::MAX,
        2 => {
            // A boundary of the 7-bit groups, ±1.
            let group = rng.gen_range(1..10) as u32;
            let base = 1u64 << (7 * group);
            match rng.gen_range(0..3) {
                0 => base - 1,
                1 => base,
                _ => base + 1,
            }
        }
        3 => u64::from(rng.gen_u32()),
        _ => rng.gen_u64(),
    }
}

/// Every value round-trips through the varint codec, the declared length
/// matches the encoder, and concatenated varints decode back in sequence.
#[test]
fn varint_round_trips_at_any_value() {
    let mut r = rng("varint-roundtrip");
    for _ in 0..500 {
        let n = r.gen_range(1..20);
        let values: Vec<u64> = (0..n).map(|_| gen_varint_value(&mut r)).collect();
        let mut buf = Vec::new();
        let mut expected_len = 0;
        for &v in &values {
            encode_varint(v, &mut buf);
            expected_len += varint_len(v);
            assert!(varint_len(v) <= MAX_VARINT_LEN);
            assert_eq!(buf.len(), expected_len, "varint_len must match encoder");
        }
        let mut at = 0;
        for &v in &values {
            let (got, next) = decode_varint(&buf, at).expect("canonical stream decodes");
            assert_eq!(got, v);
            at = next;
        }
        assert_eq!(at, buf.len(), "stream consumed exactly");
    }
}

/// Zig-zag is a bijection (involution with unzigzag) across random and
/// extreme signed values, and never grows the varint beyond the magnitude.
#[test]
fn zigzag_round_trips_at_any_value() {
    let mut r = rng("zigzag-roundtrip");
    for _ in 0..2000 {
        let v = match r.gen_range(0..6) {
            0 => 0i64,
            1 => i64::MAX,
            2 => i64::MIN,
            3 => -1,
            _ => r.gen_u64() as i64,
        };
        assert_eq!(unzigzag(zigzag(v)), v);
        // Small magnitudes of either sign must stay in one byte.
        if (-63..=63).contains(&v) {
            assert_eq!(varint_len(zigzag(v)), 1, "small delta must encode short");
        }
    }
}

/// Strictly ascending list generator: `len` unique sorted u64 values with
/// a mix of dense (gap 1) and sparse runs.
fn gen_ascending(rng: &mut DetRng, len: usize) -> Vec<u64> {
    let mut v = 0u64;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let gap = match rng.gen_range(0..4) {
            0 => 1u64,
            1 => rng.gen_range(1..100) as u64,
            _ => u64::from(rng.gen_u32()) + 1,
        };
        // Keep headroom so 10k elements never approach u64::MAX.
        v += gap.clamp(1, u64::MAX / (len as u64 + 1));
        out.push(v);
    }
    out
}

/// Gap lists round-trip at every size — empty, single-element, and a
/// 10k-element ascending list — and the size function always agrees with
/// the encoder byte-for-byte.
#[test]
fn gap_list_round_trips_at_any_size() {
    let mut r = rng("gap-list-roundtrip");
    let mut sizes: Vec<usize> = vec![0, 1, 2, 10_000];
    sizes.extend((0..60).map(|_| r.gen_range(0..300)));
    for len in sizes {
        let list = gen_ascending(&mut r, len);
        let mut buf = Vec::new();
        encode_gap_list(&list, &mut buf).expect("ascending list encodes");
        assert_eq!(buf.len(), gap_list_len(&list), "size fn matches encoder");
        let (got, end) = decode_gap_list(&buf, 0).expect("round trip");
        assert_eq!(got, list);
        assert_eq!(end, buf.len(), "decoder consumed exactly the encoding");
    }
    // Single-element lists holding the extremes.
    for v in [0u64, u64::MAX] {
        let mut buf = Vec::new();
        encode_gap_list(&[v], &mut buf).expect("singleton encodes");
        let (got, _) = decode_gap_list(&buf, 0).expect("singleton decodes");
        assert_eq!(got, vec![v]);
    }
}

/// Dense ascending lists compress: the delta encoding of a gap-1 run is
/// strictly smaller than encoding every absolute value.
#[test]
fn gap_encoding_beats_absolute_encoding_on_dense_lists() {
    let mut r = rng("gap-list-compression");
    for _ in 0..50 {
        let start = u64::from(r.gen_u32()) + (1 << 20);
        let list: Vec<u64> = (0..100).map(|i| start + i).collect();
        let absolute: usize =
            varint_len(list.len() as u64) + list.iter().map(|&v| varint_len(v)).sum::<usize>();
        assert!(
            gap_list_len(&list) < absolute,
            "delta coding must beat absolute coding on a dense run"
        );
    }
}

/// F64Ord ordering is total and consistent with f64 ordering on non-NaN.
#[test]
fn f64ord_total() {
    use std::cmp::Ordering;
    let mut r = rng("f64ord");
    // Raw bit patterns hit NaNs, infinities, and subnormals too.
    for _ in 0..2000 {
        let a = f64::from_bits(r.gen_u64());
        let b = match r.gen_range(0..4) {
            0 => a,
            1 => f64::NAN,
            _ => f64::from_bits(r.gen_u64()),
        };
        let ord = F64Ord(a).cmp(&F64Ord(b));
        if !a.is_nan() && !b.is_nan() {
            assert_eq!(ord, a.partial_cmp(&b).expect("both non-NaN"));
        }
        // Antisymmetry.
        assert_eq!(F64Ord(b).cmp(&F64Ord(a)), ord.reverse(), "antisymmetry");
        if ord == Ordering::Equal {
            assert_eq!(F64Ord(a).cmp(&F64Ord(b)), Ordering::Equal);
        }
    }
}
