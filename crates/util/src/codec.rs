//! Dependency-free wire codec: LEB128 varints, zig-zag signed mapping,
//! and delta-encoded ascending doc-id lists.
//!
//! The simulator charges network cost in *bytes*, not just messages, so
//! every payload that crosses the simulated wire needs an exact, canonical
//! serialized size. This module is that single source of truth:
//!
//! * [`varint_len`] / [`encode_varint`] / [`decode_varint`] — the
//!   little-endian base-128 encoding (LEB128) used for every integer
//!   field. Encoding is canonical: the shortest form is the only form a
//!   decoder accepts, so byte sizes are a pure function of the value.
//! * [`zigzag`] / [`unzigzag`] — the standard signed↔unsigned mapping so
//!   small-magnitude deltas of either sign encode in one byte.
//! * [`encode_gap_list`] / [`decode_gap_list`] — strictly ascending `u64`
//!   lists (posting lists of doc ids) stored as a count, a first value,
//!   and varint gaps.
//! * [`WireSize`] — the trait every DHT payload implements to report the
//!   exact number of bytes its canonical encoding occupies. Byte
//!   accounting throughout the workspace goes through this trait so that
//!   batched and unbatched transfers of the same records always sum to
//!   the same total.
//!
//! Decoding is total: every slice of bytes either decodes or yields a
//! typed [`CodecError`]. No input may panic, loop, or trigger an
//! unbounded allocation — the corruption-injection suite in
//! `sprite-audit` holds the decoders to that contract.

use std::fmt;

/// Longest canonical LEB128 encoding of a `u64`: ⌈64/7⌉ bytes.
pub const MAX_VARINT_LEN: usize = 10;

/// Typed decode/encode failure. Every variant carries enough position
/// information to point at the offending byte (or element) in a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    Truncated {
        /// Byte offset at which more input was required.
        offset: usize,
    },
    /// A varint encoded a value wider than 64 bits, or a decoded gap
    /// list overflowed `u64` while accumulating.
    Overflow {
        /// Byte offset of the byte (or gap) that overflowed.
        offset: usize,
    },
    /// A varint used more bytes than the shortest encoding of its value.
    /// Canonical encodings are required so wire sizes are deterministic.
    NonCanonical {
        /// Byte offset of the final, redundant continuation byte.
        offset: usize,
    },
    /// `encode_gap_list` was handed a list that is not strictly
    /// ascending.
    NotAscending {
        /// Index of the first element that does not exceed its
        /// predecessor.
        index: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CodecError::Truncated { offset } => {
                write!(f, "input truncated at byte {offset}")
            }
            CodecError::Overflow { offset } => {
                write!(f, "value overflows u64 at byte {offset}")
            }
            CodecError::NonCanonical { offset } => {
                write!(f, "non-canonical varint ending at byte {offset}")
            }
            CodecError::NotAscending { index } => {
                write!(f, "gap list not strictly ascending at index {index}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Exact canonical serialized size, in bytes.
///
/// Implementations must agree with the actual encoder: for any value,
/// `encode(v).len() == v.wire_size()`. Batching relies on this being a
/// pure per-record function — a batch's payload is the sum of its
/// records' wire sizes, never less.
pub trait WireSize {
    /// Number of bytes the canonical encoding of `self` occupies.
    fn wire_size(&self) -> usize;
}

impl WireSize for u64 {
    fn wire_size(&self) -> usize {
        varint_len(*self)
    }
}

impl WireSize for u32 {
    fn wire_size(&self) -> usize {
        varint_len(u64::from(*self))
    }
}

impl WireSize for String {
    /// Length-prefixed raw bytes.
    fn wire_size(&self) -> usize {
        varint_len(self.len() as u64) + self.len()
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    /// Count prefix plus the sum of element sizes.
    fn wire_size(&self) -> usize {
        varint_len(self.len() as u64) + self.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

/// Number of bytes the canonical LEB128 encoding of `v` occupies (1–10).
#[inline]
pub fn varint_len(v: u64) -> usize {
    // ⌈bits/7⌉ with a floor of one byte for zero.
    let bits = 64 - v.leading_zeros() as usize;
    bits.div_ceil(7).max(1)
}

/// Append the canonical LEB128 encoding of `v` to `out`.
pub fn encode_varint(mut v: u64, out: &mut Vec<u8>) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Decode one canonical LEB128 varint from `buf` starting at `offset`.
///
/// Returns the value and the offset one past its final byte. Rejects
/// encodings longer than [`MAX_VARINT_LEN`], encodings whose tenth byte
/// carries more than one significant bit ([`CodecError::Overflow`]), and
/// non-shortest encodings ([`CodecError::NonCanonical`]).
pub fn decode_varint(buf: &[u8], offset: usize) -> Result<(u64, usize), CodecError> {
    let mut value: u64 = 0;
    let mut shift: u32 = 0;
    let mut at = offset;
    loop {
        let byte = *buf.get(at).ok_or(CodecError::Truncated { offset: at })?;
        let payload = u64::from(byte & 0x7f);
        if shift == 63 && payload > 1 {
            // Tenth byte: only the low bit of its payload fits in u64.
            return Err(CodecError::Overflow { offset: at });
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            // A multi-byte encoding whose final byte contributes nothing
            // is a longer-than-shortest form of the same value.
            if payload == 0 && shift > 0 {
                return Err(CodecError::NonCanonical { offset: at });
            }
            return Ok((value, at + 1));
        }
        shift += 7;
        if shift >= 64 {
            return Err(CodecError::Overflow { offset: at + 1 });
        }
        at += 1;
    }
}

/// Map a signed value onto unsigned so small magnitudes of either sign
/// get short varints: 0 → 0, -1 → 1, 1 → 2, -2 → 3, …
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encode a strictly ascending `u64` list as `count, first, gaps…`.
///
/// The empty list encodes as a single zero-count byte. Returns
/// [`CodecError::NotAscending`] if any element fails to exceed its
/// predecessor — equal elements included, since a zero gap would make
/// the encoding ambiguous with a canonical one-shorter list.
pub fn encode_gap_list(list: &[u64], out: &mut Vec<u8>) -> Result<(), CodecError> {
    encode_varint(list.len() as u64, out);
    let mut prev = match list.first() {
        Some(&first) => {
            encode_varint(first, out);
            first
        }
        None => return Ok(()),
    };
    for (i, &v) in list.iter().enumerate().skip(1) {
        if v <= prev {
            return Err(CodecError::NotAscending { index: i });
        }
        encode_varint(v - prev, out);
        prev = v;
    }
    Ok(())
}

/// Exact encoded size of a strictly ascending list, without encoding it.
///
/// Agrees byte-for-byte with [`encode_gap_list`] on valid input.
pub fn gap_list_len(list: &[u64]) -> usize {
    let mut n = varint_len(list.len() as u64);
    let mut prev = 0u64;
    for (i, &v) in list.iter().enumerate() {
        n += if i == 0 {
            varint_len(v)
        } else {
            varint_len(v.wrapping_sub(prev))
        };
        prev = v;
    }
    n
}

/// Decode a gap list produced by [`encode_gap_list`] from `buf` starting
/// at `offset`. Returns the list and the offset one past its last byte.
///
/// Accumulation is checked: a gap that would push a value past
/// `u64::MAX` is [`CodecError::Overflow`], not a wrap. The declared
/// count only *reserves* capacity up to what the remaining bytes could
/// possibly hold (each element needs at least one byte), so a corrupt
/// count can never trigger an unbounded allocation.
pub fn decode_gap_list(buf: &[u8], offset: usize) -> Result<(Vec<u64>, usize), CodecError> {
    let (count, mut at) = decode_varint(buf, offset)?;
    let count = count as usize;
    let mut list = Vec::with_capacity(count.min(buf.len().saturating_sub(at)));
    if count == 0 {
        return Ok((list, at));
    }
    let (first, next) = decode_varint(buf, at)?;
    at = next;
    list.push(first);
    let mut prev = first;
    for _ in 1..count {
        let gap_at = at;
        let (gap, next) = decode_varint(buf, at)?;
        at = next;
        prev = prev
            .checked_add(gap)
            .ok_or(CodecError::Overflow { offset: gap_at })?;
        if gap == 0 {
            // A zero gap re-encodes shorter by dropping the duplicate;
            // reject it so decode∘encode is the identity on byte level.
            return Err(CodecError::NonCanonical { offset: gap_at });
        }
        list.push(prev);
    }
    Ok((list, at))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) -> (u64, usize) {
        let mut buf = Vec::new();
        encode_varint(v, &mut buf);
        assert_eq!(buf.len(), varint_len(v), "varint_len must match encoder");
        decode_varint(&buf, 0).expect("canonical encoding decodes")
    }

    #[test]
    fn varint_boundaries_round_trip() {
        for v in [
            0u64,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let (got, _) = roundtrip(v);
            assert_eq!(got, v);
        }
    }

    #[test]
    fn varint_lengths_step_at_seven_bit_boundaries() {
        assert_eq!(varint_len(0), 1);
        assert_eq!(varint_len(0x7f), 1);
        assert_eq!(varint_len(0x80), 2);
        assert_eq!(varint_len(u64::MAX), MAX_VARINT_LEN);
    }

    #[test]
    fn non_canonical_varint_is_rejected() {
        // 0x80 0x00 is a two-byte zero; only 0x00 is canonical.
        assert_eq!(
            decode_varint(&[0x80, 0x00], 0),
            Err(CodecError::NonCanonical { offset: 1 })
        );
    }

    #[test]
    fn truncated_varint_is_rejected() {
        assert_eq!(
            decode_varint(&[0x80], 0),
            Err(CodecError::Truncated { offset: 1 })
        );
        assert_eq!(
            decode_varint(&[], 0),
            Err(CodecError::Truncated { offset: 0 })
        );
    }

    #[test]
    fn overlong_varint_overflows() {
        // Eleven continuation bytes can never terminate inside u64.
        let buf = [0xffu8; 11];
        assert_eq!(
            decode_varint(&buf, 0),
            Err(CodecError::Overflow { offset: 9 })
        );
    }

    #[test]
    fn zigzag_is_an_involution_on_edges() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 4711, -4711] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn gap_list_round_trips_and_sizes_agree() {
        let lists: &[&[u64]] = &[
            &[],
            &[0],
            &[u64::MAX],
            &[0, 1, 2, 3],
            &[5, 100, 10_000, u64::MAX],
        ];
        for list in lists {
            let mut buf = Vec::new();
            encode_gap_list(list, &mut buf).expect("ascending list encodes");
            assert_eq!(buf.len(), gap_list_len(list));
            let (got, end) = decode_gap_list(&buf, 0).expect("round trip");
            assert_eq!(&got, list);
            assert_eq!(end, buf.len());
        }
    }

    #[test]
    fn non_ascending_list_is_a_typed_encode_error() {
        let mut buf = Vec::new();
        assert_eq!(
            encode_gap_list(&[3, 3], &mut buf),
            Err(CodecError::NotAscending { index: 1 })
        );
        let mut buf = Vec::new();
        assert_eq!(
            encode_gap_list(&[5, 2], &mut buf),
            Err(CodecError::NotAscending { index: 1 })
        );
    }

    #[test]
    fn corrupt_count_cannot_overallocate() {
        // Claims 2^40 elements but carries no bytes for them: decoding
        // must fail fast with a bounded allocation.
        let mut buf = Vec::new();
        encode_varint(1 << 40, &mut buf);
        assert!(matches!(
            decode_gap_list(&buf, 0),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn gap_overflow_is_detected() {
        // first = u64::MAX, then any nonzero gap overflows.
        let mut buf = Vec::new();
        encode_varint(2, &mut buf);
        encode_varint(u64::MAX, &mut buf);
        encode_varint(1, &mut buf);
        assert!(matches!(
            decode_gap_list(&buf, 0),
            Err(CodecError::Overflow { .. })
        ));
    }

    #[test]
    fn wire_size_impls_match_varint_len() {
        assert_eq!(0u64.wire_size(), 1);
        assert_eq!(u64::MAX.wire_size(), MAX_VARINT_LEN);
        assert_eq!(300u32.wire_size(), 2);
        assert_eq!(String::from("abc").wire_size(), 1 + 3);
        assert_eq!(vec![0u64, 1, 2].wire_size(), 4);
    }
}
