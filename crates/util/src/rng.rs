//! Deterministic randomness plumbing.
//!
//! Every experiment in this repository must be reproducible bit-for-bit:
//! the corpus generator, the query generator, the Chord ring layout, and the
//! query schedules all consume randomness. To keep the streams independent —
//! so that, say, enlarging the corpus does not perturb the query schedule —
//! each component derives its own [`DetRng`] from a master seed and a label.
//!
//! [`DetRng`] is a self-contained xoshiro256** generator: no external
//! crates, no process-global state, no OS entropy. Identical seeds produce
//! identical streams on every platform and every run, which is exactly the
//! property the determinism auditor in `sprite-audit` verifies end-to-end.

use std::ops::{Range, RangeInclusive};

use crate::md5::Md5;

/// A deterministic pseudo-random generator (xoshiro256**).
///
/// Statistically strong for simulation workloads, 256-bit state, and —
/// unlike `rand`'s `StdRng` — guaranteed stable across versions because the
/// implementation lives in this repository. Not cryptographically secure;
/// nothing in SPRITE needs that.
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Construct from a full 256-bit seed.
    ///
    /// An all-zero seed (the one degenerate xoshiro state) is remapped to a
    /// fixed non-zero state, so every input produces a usable stream.
    #[must_use]
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(b);
        }
        if s == [0; 4] {
            // xoshiro must not start at the all-zero state.
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        DetRng { s }
    }

    /// Construct from a single `u64`, expanded with SplitMix64 (the
    /// seeding procedure recommended by the xoshiro authors).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        DetRng { s }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// A uniform `u64`.
    pub fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// A uniform `u32` (the high half of one 64-bit output).
    pub fn gen_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with full 53-bit mantissa resolution.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.gen_f64() < p
        }
    }

    /// A uniform value from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> usize {
        range.sample_from(self)
    }

    /// Unbiased uniform draw from `0..n` (Lemire's multiply–shift method
    /// with rejection).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn bounded(&mut self, n: u64) -> u64 {
        assert!(n > 0, "bounded(0) is an empty range");
        // Widening multiply maps the 64-bit stream onto 0..n; the rejection
        // zone removes the modulo bias (at most one extra draw on average).
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(n);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(n);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// Ranges [`DetRng::gen_range`] can sample from.
pub trait UniformRange {
    /// Draw one uniform value from the range.
    fn sample_from(self, rng: &mut DetRng) -> usize;
}

impl UniformRange for Range<usize> {
    fn sample_from(self, rng: &mut DetRng) -> usize {
        assert!(self.start < self.end, "gen_range over an empty range");
        self.start + rng.bounded((self.end - self.start) as u64) as usize
    }
}

impl UniformRange for RangeInclusive<usize> {
    fn sample_from(self, rng: &mut DetRng) -> usize {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range over an empty range");
        let span = (end - start) as u64;
        if span == u64::MAX {
            return rng.next_u64() as usize;
        }
        start + rng.bounded(span + 1) as usize
    }
}

/// Deterministic slice operations (shuffle / choose / sample), mirroring the
/// method names of `rand::seq::SliceRandom` so call sites read identically.
pub trait SliceRng<T> {
    /// Fisher–Yates shuffle in place.
    fn shuffle(&mut self, rng: &mut DetRng);
    /// One uniformly chosen element, or `None` if empty.
    fn choose(&self, rng: &mut DetRng) -> Option<&T>;
    /// `amount` distinct elements chosen uniformly without replacement
    /// (fewer if the slice is shorter). Order is random.
    fn choose_multiple<'a>(
        &'a self,
        rng: &mut DetRng,
        amount: usize,
    ) -> impl Iterator<Item = &'a T>
    where
        T: 'a;
}

impl<T> SliceRng<T> for [T] {
    fn shuffle(&mut self, rng: &mut DetRng) {
        for i in (1..self.len()).rev() {
            let j = rng.bounded(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose(&self, rng: &mut DetRng) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.bounded(self.len() as u64) as usize])
        }
    }

    fn choose_multiple<'a>(&'a self, rng: &mut DetRng, amount: usize) -> impl Iterator<Item = &'a T>
    where
        T: 'a,
    {
        // Partial Fisher–Yates over an index table: O(len) setup,
        // O(amount) draws, no replacement.
        let k = amount.min(self.len());
        let mut idx: Vec<usize> = (0..self.len()).collect();
        for i in 0..k {
            let j = i + rng.bounded((idx.len() - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx.into_iter().map(move |i| &self[i])
    }
}

/// Derive an independent RNG from `master` and a component `label`.
///
/// Uses MD5(master || label) to spread the seed over the full 256-bit
/// [`DetRng`] seed space (two chained digests). Same inputs always give the
/// same stream; different labels give streams with no designed correlation.
#[must_use]
pub fn derive_rng(master: u64, label: &str) -> DetRng {
    let mut seed = [0u8; 32];
    let mut h1 = Md5::new();
    h1.update(&master.to_le_bytes());
    h1.update(label.as_bytes());
    let d1 = h1.finalize();
    let mut h2 = Md5::new();
    h2.update(&d1.0);
    h2.update(label.as_bytes());
    let d2 = h2.finalize();
    seed[..16].copy_from_slice(&d1.0);
    seed[16..].copy_from_slice(&d2.0);
    DetRng::from_seed(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = derive_rng(42, "corpus");
        let mut b = derive_rng(42, "corpus");
        for _ in 0..16 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
    }

    #[test]
    fn different_labels_differ() {
        let mut a = derive_rng(42, "corpus");
        let mut b = derive_rng(42, "queries");
        let va: Vec<u64> = (0..4).map(|_| a.gen_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_masters_differ() {
        let mut a = derive_rng(1, "x");
        let mut b = derive_rng(2, "x");
        assert_ne!(a.gen_u64(), b.gen_u64());
    }

    #[test]
    fn xoshiro_reference_vector() {
        // xoshiro256** from state [1, 2, 3, 4]: first outputs per the
        // reference implementation (Blackman & Vigna).
        let mut rng = DetRng { s: [1, 2, 3, 4] };
        assert_eq!(rng.next_u64(), 11520);
        assert_eq!(rng.next_u64(), 0);
        assert_eq!(rng.next_u64(), 1509978240);
        assert_eq!(rng.next_u64(), 1215971899390074240);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = DetRng::from_seed([0u8; 32]);
        let draws: Vec<u64> = (0..8).map(|_| rng.gen_u64()).collect();
        assert!(draws.iter().any(|&v| v != 0));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = DetRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = DetRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let a = rng.gen_range(10..20);
            assert!((10..20).contains(&a));
            let b = rng.gen_range(5..=5);
            assert_eq!(b, 5);
            let c = rng.gen_range(0..=3);
            assert!(c <= 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = DetRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rng = DetRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..100).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_and_choose_multiple() {
        let mut rng = DetRng::seed_from_u64(13);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v: Vec<u32> = (0..50).collect();
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).expect("non-empty slice")));
        }
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "sampling without replacement");
        // Asking for more than available returns everything.
        assert_eq!(v.choose_multiple(&mut rng, 999).count(), 50);
    }

    #[test]
    fn bounded_is_unbiased_enough() {
        // Coarse chi-square-style sanity check over a small modulus.
        let mut rng = DetRng::seed_from_u64(17);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.bounded(7) as usize] += 1;
        }
        for &c in &counts {
            let expected = n / 7;
            assert!(c.abs_diff(expected) < expected / 10, "counts {counts:?}");
        }
    }
}
