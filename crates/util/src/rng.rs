//! Deterministic randomness plumbing.
//!
//! Every experiment in this repository must be reproducible bit-for-bit:
//! the corpus generator, the query generator, the Chord ring layout, and the
//! query schedules all consume randomness. To keep the streams independent —
//! so that, say, enlarging the corpus does not perturb the query schedule —
//! each component derives its own [`StdRng`] from a master seed and a label.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::md5::Md5;

/// Derive an independent RNG from `master` and a component `label`.
///
/// Uses MD5(master || label) to spread the seed over the full 256-bit
/// `StdRng` seed space (two digests). Same inputs always give the same
/// stream; different labels give streams with no designed correlation.
#[must_use]
pub fn derive_rng(master: u64, label: &str) -> StdRng {
    let mut seed = [0u8; 32];
    let mut h1 = Md5::new();
    h1.update(&master.to_le_bytes());
    h1.update(label.as_bytes());
    let d1 = h1.finalize();
    let mut h2 = Md5::new();
    h2.update(&d1.0);
    h2.update(label.as_bytes());
    let d2 = h2.finalize();
    seed[..16].copy_from_slice(&d1.0);
    seed[16..].copy_from_slice(&d2.0);
    StdRng::from_seed(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = derive_rng(42, "corpus");
        let mut b = derive_rng(42, "corpus");
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_labels_differ() {
        let mut a = derive_rng(42, "corpus");
        let mut b = derive_rng(42, "queries");
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_masters_differ() {
        let mut a = derive_rng(1, "x");
        let mut b = derive_rng(2, "x");
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }
}
