//! Deterministic discrete-event queue.
//!
//! The event-driven delivery layer (DESIGN.md §13) schedules every in-flight
//! message at its modeled arrival time and processes arrivals in time order.
//! Determinism demands a total order even among simultaneous events, so the
//! queue is keyed `(time, seq)` where `seq` is a monotonically increasing
//! push counter: ties in `time` always pop in push order. In the degenerate
//! zero-latency configuration every event arrives at `time == 0` and the
//! queue collapses to FIFO — exactly the lockstep execution it replaces,
//! which is what makes the bit-identity audit of the perfect-network default
//! possible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One scheduled event: ordering ignores the payload entirely.
#[derive(Clone, Debug)]
struct Entry<T> {
    time: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Binary-heap event queue with deterministic `(time, seq)` ordering.
///
/// `pop` yields events in nondecreasing `time`; events pushed with equal
/// times come out in push order. The sequence counter is internal, so two
/// queues fed the same `(time, payload)` stream always drain identically.
#[derive(Clone, Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Fresh, empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `payload` at `time`.
    pub fn push(&mut self, time: u64, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
    }

    /// Remove and return the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.payload))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn equal_times_pop_in_push_order() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(7, i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn zero_latency_collapses_to_fifo() {
        // The bit-identity contract: all-zero times reproduce push order.
        let mut q = EventQueue::new();
        let items = ["pub", "rep", "pub", "fetch", "rep"];
        for &it in &items {
            q.push(0, it);
        }
        let drained: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(drained, items);
    }

    #[test]
    fn interleaved_push_pop_keeps_total_order() {
        let mut q = EventQueue::new();
        q.push(5, 'x');
        q.push(1, 'y');
        assert_eq!(q.pop(), Some((1, 'y')));
        q.push(1, 'z'); // earlier than the pending (5, 'x')
        assert_eq!(q.pop(), Some((1, 'z')));
        assert_eq!(q.pop(), Some((5, 'x')));
    }
}
