//! Small statistics helpers for the experiment harness.
//!
//! Every figure in the paper reports averages over a query set (precision and
//! recall ratios), and the cost studies report message/hop distributions.
//! [`Summary`] is a one-pass accumulator (Welford's algorithm for variance)
//! and [`percentile`] a nearest-rank percentile over a sorted sample.

/// One-pass accumulator for count / mean / variance / min / max.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Fresh, empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Absorb one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel sweeps).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (0 with fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN if empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN if empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

impl std::iter::FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

/// Nearest-rank percentile (`p` in `[0, 100]`) of a sample.
///
/// Sorts a copy; intended for end-of-run reporting, not hot paths.
#[must_use]
pub fn percentile(sample: &[f64], p: f64) -> f64 {
    if sample.is_empty() {
        return f64::NAN;
    }
    let mut v = sample.to_vec();
    v.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * v.len() as f64).ceil() as usize;
    v[rank.clamp(1, v.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic example is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole: Summary = xs.iter().copied().collect();
        let mut left: Summary = xs[..37].iter().copied().collect();
        let right: Summary = xs[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: Summary = [1.0, 2.0].into_iter().collect();
        a.merge(&Summary::new());
        assert_eq!(a.count(), 2);
        let mut b = Summary::new();
        b.merge(&a);
        assert_eq!(b.count(), 2);
        assert!((b.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn percentile_is_nan_robust() {
        // `total_cmp` sends NaN samples to the top of the sort instead of
        // leaving them scattered wherever `partial_cmp(..).unwrap_or(Equal)`
        // happened to strand them, so finite percentiles stay meaningful.
        let v = [f64::NAN, 3.0, 1.0, f64::NAN, 2.0];
        assert_eq!(percentile(&v, 20.0), 1.0);
        assert_eq!(percentile(&v, 40.0), 2.0);
        assert_eq!(percentile(&v, 60.0), 3.0);
        assert!(percentile(&v, 100.0).is_nan());
    }
}
