//! MD5 message digest (RFC 1321), implemented from scratch.
//!
//! The SPRITE paper hashes every term (and every cached query) with MD5 to
//! place it on the Chord identifier circle: *"All terms are hashed using MD5
//! hash function"* (§6). MD5 is long broken for cryptographic purposes, but
//! here it is used purely as a uniform hash into the 128-bit ring — exactly
//! the role it plays in the original Chord paper as well.
//!
//! The implementation is a straightforward streaming transcription of
//! RFC 1321 and is validated against the RFC's appendix A.5 test suite.

/// Per-round left-rotate amounts, RFC 1321 §3.4.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Sine-derived constants `K[i] = floor(2^32 * abs(sin(i + 1)))`, RFC 1321 §3.4.
const K: [u32; 64] = [
    0xd76a_a478,
    0xe8c7_b756,
    0x2420_70db,
    0xc1bd_ceee,
    0xf57c_0faf,
    0x4787_c62a,
    0xa830_4613,
    0xfd46_9501,
    0x6980_98d8,
    0x8b44_f7af,
    0xffff_5bb1,
    0x895c_d7be,
    0x6b90_1122,
    0xfd98_7193,
    0xa679_438e,
    0x49b4_0821,
    0xf61e_2562,
    0xc040_b340,
    0x265e_5a51,
    0xe9b6_c7aa,
    0xd62f_105d,
    0x0244_1453,
    0xd8a1_e681,
    0xe7d3_fbc8,
    0x21e1_cde6,
    0xc337_07d6,
    0xf4d5_0d87,
    0x455a_14ed,
    0xa9e3_e905,
    0xfcef_a3f8,
    0x676f_02d9,
    0x8d2a_4c8a,
    0xfffa_3942,
    0x8771_f681,
    0x6d9d_6122,
    0xfde5_380c,
    0xa4be_ea44,
    0x4bde_cfa9,
    0xf6bb_4b60,
    0xbebf_bc70,
    0x289b_7ec6,
    0xeaa1_27fa,
    0xd4ef_3085,
    0x0488_1d05,
    0xd9d4_d039,
    0xe6db_99e5,
    0x1fa2_7cf8,
    0xc4ac_5665,
    0xf429_2244,
    0x432a_ff97,
    0xab94_23a7,
    0xfc93_a039,
    0x655b_59c3,
    0x8f0c_cc92,
    0xffef_f47d,
    0x8584_5dd1,
    0x6fa8_7e4f,
    0xfe2c_e6e0,
    0xa301_4314,
    0x4e08_11a1,
    0xf753_7e82,
    0xbd3a_f235,
    0x2ad7_d2bb,
    0xeb86_d391,
];

/// Initial chaining values A, B, C, D (RFC 1321 §3.3).
const INIT: [u32; 4] = [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476];

/// A 16-byte MD5 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest(pub [u8; 16]);

impl Digest {
    /// The digest interpreted as a big-endian 128-bit integer.
    ///
    /// This is the value placed on the Chord identifier circle.
    #[must_use]
    pub fn as_u128(&self) -> u128 {
        u128::from_be_bytes(self.0)
    }

    /// Lower-case hexadecimal rendering (the conventional MD5 text form).
    #[must_use]
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            use std::fmt::Write as _;
            let _ = write!(s, "{b:02x}");
        }
        s
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Streaming MD5 hasher.
///
/// Accepts input incrementally via [`Md5::update`]; call [`Md5::finalize`]
/// to obtain the digest. For one-shot hashing use [`md5`].
#[derive(Clone)]
pub struct Md5 {
    state: [u32; 4],
    /// Total message length in bytes (mod 2^64 as the RFC requires).
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// Create a hasher in the RFC initial state.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: INIT,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorb `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;

        // Top up a partially filled block first.
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }

        // Whole blocks straight from the input.
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut tmp = [0u8; 64];
            tmp.copy_from_slice(block);
            self.compress(&tmp);
            rest = tail;
        }

        // Stash the tail.
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Apply RFC 1321 padding and produce the digest.
    #[must_use]
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: a single 0x80 byte, then zeros to 56 mod 64, then the
        // little-endian 64-bit bit count.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // `update` would keep counting length; write the length block by hand.
        self.buf[56..64].copy_from_slice(&bit_len.to_le_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        Digest(out)
    }

    /// The RFC 1321 compression function over one 64-byte block.
    fn compress(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }

        let [mut a, mut b, mut c, mut d] = self.state;

        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            let sum = a.wrapping_add(f).wrapping_add(K[i]).wrapping_add(m[g]);
            b = b.wrapping_add(sum.rotate_left(S[i]));
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

/// One-shot MD5 of `data`.
#[must_use]
pub fn md5(data: &[u8]) -> Digest {
    let mut h = Md5::new();
    h.update(data);
    h.finalize()
}

/// One-shot MD5 of a string, returned as the ring position (big-endian u128).
#[must_use]
pub fn md5_u128(data: &str) -> u128 {
    md5(data.as_bytes()).as_u128()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: &[(&str, &str)] = &[
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                "abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expect) in cases {
            assert_eq!(md5(input.as_bytes()).to_hex(), *expect, "md5({input:?})");
        }
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog repeatedly and at length";
        let oneshot = md5(data);
        // Feed in awkward chunk sizes crossing block boundaries.
        for chunk in [1usize, 3, 7, 63, 64, 65] {
            let mut h = Md5::new();
            for piece in data.chunks(chunk) {
                h.update(piece);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk}");
        }
    }

    #[test]
    fn long_input_crosses_many_blocks() {
        // Known digest for one million 'a' characters (classic MD5 stress vector).
        let mut h = Md5::new();
        let block = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&block);
        }
        assert_eq!(h.finalize().to_hex(), "7707d6ae4e027c70eea2a935c2296f21");
    }

    #[test]
    fn digest_u128_is_big_endian() {
        let d = Digest([
            0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e,
            0x0f, 0x10,
        ]);
        assert_eq!(d.as_u128(), 0x0102_0304_0506_0708_090a_0b0c_0d0e_0f10);
    }

    #[test]
    fn display_and_debug() {
        let d = md5(b"abc");
        assert_eq!(format!("{d}"), "900150983cd24fb0d6963f7d28e17f72");
        assert!(format!("{d:?}").contains("900150983cd24fb0d6963f7d28e17f72"));
    }
}
