//! Zipfian sampling.
//!
//! Two places in the SPRITE evaluation need a Zipf distribution:
//!
//! * the synthetic corpus draws vocabulary terms with Zipf-distributed
//!   frequency (natural-language term statistics), and
//! * the `w-zipf` query schedule of Figure 4(b) issues queries "with Zipfian
//!   distribution, whose slope is set to 0.5" — query popularity inversely
//!   proportional to rank^0.5.
//!
//! The sampler precomputes the normalized cumulative mass over the `n` ranks
//! and draws by binary search, so sampling is O(log n) and exact (no
//! rejection), which keeps experiment runs deterministic given a seeded RNG.

use crate::rng::DetRng;

/// Exact inverse-CDF sampler for the Zipf distribution over ranks `1..=n`
/// with exponent `s`: `P(rank = k) ∝ 1 / k^s`.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative probability for each rank; last entry is 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/NaN.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        assert!(
            s >= 0.0 && s.is_finite(),
            "Zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Defend against floating point: the last entry must be exactly 1.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks in the domain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the domain holds no ranks.
    ///
    /// [`Zipf::new`] rejects `n == 0`, so this is `false` for every sampler
    /// it returns — but the answer is derived from the stored CDF rather
    /// than hardcoded, so `len()` and `is_empty()` can never disagree.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a 0-based rank (0 is the most popular).
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u: f64 = rng.gen_f64();
        // partition_point returns the first index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of 0-based rank `k`.
    #[must_use]
    pub fn pmf(&self, k: usize) -> f64 {
        let lo = if k == 0 { 0.0 } else { self.cdf[k - 1] };
        self.cdf[k] - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_s_is_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn mass_sums_to_one() {
        let z = Zipf::new(1000, 0.5);
        let total: f64 = (0..1000).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_one_dominates() {
        let z = Zipf::new(100, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
        // Classic Zipf: p(1)/p(2) = 2^s.
        assert!((z.pmf(0) / z.pmf(1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_frequencies_track_pmf() {
        let z = Zipf::new(10, 0.5);
        let mut rng = DetRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let emp = count as f64 / n as f64;
            assert!(
                (emp - z.pmf(k)).abs() < 0.01,
                "rank {k}: empirical {emp} vs pmf {}",
                z.pmf(k)
            );
        }
    }

    #[test]
    fn len_and_is_empty_agree() {
        let z = Zipf::new(3, 0.5);
        assert_eq!(z.len(), 3);
        assert!(!z.is_empty());
        let single = Zipf::new(1, 0.0);
        assert_eq!(single.len(), 1);
        assert!(!single.is_empty());
    }

    #[test]
    fn single_rank_domain() {
        let z = Zipf::new(1, 2.0);
        let mut rng = DetRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn zero_domain_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
