//! Bounded top-k selection.
//!
//! SPRITE is full of "keep the best k" operations: the top-F most frequent
//! terms at initial indexing, the top-T terms of the learning rank list
//! (Algorithm 1 line 17), and the top-K answers of every query. [`TopK`]
//! implements the standard bounded min-heap: O(log k) per offer, O(k log k)
//! to extract the sorted result, O(k) memory regardless of stream length.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An ordered score/item pair. Ordering is by score first, then by item, so
/// results are deterministic even with tied scores (ties break toward the
/// *smaller* item value — e.g. the lexicographically earlier term).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scored<S, T> {
    /// The ranking score.
    pub score: S,
    /// The ranked item.
    pub item: T,
}

impl<S: Ord, T: Ord> PartialOrd for Scored<S, T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<S: Ord, T: Ord> Ord for Scored<S, T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Score first; tied scores prefer the smaller item (a *greater*
        // entry is the one with the smaller item), so ranked output is
        // deterministic — e.g. the lexicographically earlier term wins.
        self.score
            .cmp(&other.score)
            .then_with(|| other.item.cmp(&self.item))
    }
}

/// A bounded selector keeping the `k` greatest entries seen so far.
#[derive(Clone, Debug)]
pub struct TopK<S, T>
where
    S: Ord,
    T: Ord,
{
    k: usize,
    heap: BinaryHeap<Reverse<Scored<S, T>>>,
}

impl<S, T> TopK<S, T>
where
    S: Ord,
    T: Ord,
{
    /// Create a selector for the `k` greatest entries. `k == 0` keeps nothing.
    #[must_use]
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            // Capacity is a hint; clamp so pathological k (e.g. "keep
            // everything" = usize::MAX) doesn't pre-allocate the world.
            heap: BinaryHeap::with_capacity(k.saturating_add(1).min(4096)),
        }
    }

    /// Offer one entry; returns `true` if it was retained (possibly evicting
    /// the current minimum).
    pub fn offer(&mut self, score: S, item: T) -> bool {
        if self.k == 0 {
            return false;
        }
        let entry = Scored { score, item };
        if self.heap.len() < self.k {
            self.heap.push(Reverse(entry));
            return true;
        }
        // Full: replace the smallest retained entry if the newcomer beats it.
        let min = self.heap.peek().expect("heap non-empty when full");
        if entry > min.0 {
            self.heap.pop();
            self.heap.push(Reverse(entry));
            true
        } else {
            false
        }
    }

    /// Number of currently retained entries (≤ k).
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The smallest retained score, if any (the current admission threshold
    /// once the selector is full).
    #[must_use]
    pub fn threshold(&self) -> Option<&S> {
        self.heap.peek().map(|Reverse(e)| &e.score)
    }

    /// Consume the selector, returning entries in descending score order.
    #[must_use]
    pub fn into_sorted(self) -> Vec<Scored<S, T>> {
        let mut v: Vec<_> = self.heap.into_iter().map(|Reverse(e)| e).collect();
        v.sort_by(|a, b| b.cmp(a));
        v
    }
}

/// Convenience: top `k` of an iterator of `(score, item)` pairs, descending.
pub fn top_k<S, T, I>(k: usize, items: I) -> Vec<Scored<S, T>>
where
    I: IntoIterator<Item = (S, T)>,
    S: Ord,
    T: Ord,
{
    let mut sel = TopK::new(k);
    for (s, t) in items {
        sel.offer(s, t);
    }
    sel.into_sorted()
}

/// Total ordering wrapper for `f64` scores (NaN sorts lowest). The similarity
/// scores flowing through SPRITE are finite by construction, but ranked lists
/// must never panic on a stray NaN.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct F64Ord(pub f64);

impl Eq for F64Ord {}

impl PartialOrd for F64Ord {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64Ord {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match (self.0.is_nan(), other.0.is_nan()) {
            (true, true) => std::cmp::Ordering::Equal,
            (true, false) => std::cmp::Ordering::Less,
            (false, true) => std::cmp::Ordering::Greater,
            (false, false) => self.0.partial_cmp(&other.0).expect("both non-NaN"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_k_greatest() {
        let got = top_k(3, [(5, "e"), (1, "a"), (4, "d"), (2, "b"), (3, "c")]);
        let items: Vec<_> = got.iter().map(|s| s.item).collect();
        assert_eq!(items, ["e", "d", "c"]);
        assert_eq!(got[0].score, 5);
    }

    #[test]
    fn fewer_items_than_k() {
        let got = top_k(10, [(1, "a"), (2, "b")]);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].item, "b");
    }

    #[test]
    fn k_zero_keeps_nothing() {
        let mut sel: TopK<i32, &str> = TopK::new(0);
        assert!(!sel.offer(100, "x"));
        assert!(sel.into_sorted().is_empty());
    }

    #[test]
    fn ties_break_toward_smaller_item() {
        let got = top_k(2, [(1, "zebra"), (1, "apple"), (1, "mango")]);
        let items: Vec<_> = got.iter().map(|s| s.item).collect();
        // All scores tie; deterministic preference for earlier strings.
        assert_eq!(items, ["apple", "mango"]);
    }

    #[test]
    fn threshold_tracks_admission_bar() {
        let mut sel = TopK::new(2);
        assert_eq!(sel.threshold(), None);
        sel.offer(5, "a");
        sel.offer(9, "b");
        assert_eq!(sel.threshold(), Some(&5));
        sel.offer(7, "c"); // evicts 5
        assert_eq!(sel.threshold(), Some(&7));
        assert!(!sel.offer(6, "d")); // below bar
    }

    #[test]
    fn f64ord_handles_nan() {
        let mut v = [F64Ord(1.0), F64Ord(f64::NAN), F64Ord(-2.0), F64Ord(3.0)];
        v.sort();
        assert!(v[0].0.is_nan());
        assert_eq!(v[1].0, -2.0);
        assert_eq!(v[3].0, 3.0);
    }

    #[test]
    fn float_scores_in_topk() {
        let got = top_k(
            2,
            [
                (F64Ord(0.1), 1u32),
                (F64Ord(0.9), 2),
                (F64Ord(0.5), 3),
                (F64Ord(f64::NAN), 4),
            ],
        );
        let items: Vec<_> = got.iter().map(|s| s.item).collect();
        assert_eq!(items, [2, 3]);
    }
}
