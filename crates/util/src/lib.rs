//! Foundations shared by every SPRITE crate.
//!
//! This crate holds the paper-mandated primitives that do not belong to any
//! one subsystem:
//!
//! * [`md5()`] — the MD5 digest (RFC 1321) used to hash terms, queries, and
//!   peer addresses onto the Chord ring (SPRITE §6);
//! * [`id`] — 128-bit ring identifiers with Chord's wrap-around interval
//!   arithmetic;
//! * [`zipf`] — exact Zipf sampling for term statistics and the `w-zipf`
//!   query schedule of Figure 4(b);
//! * [`topk`] — bounded top-k selection used for term budgets and answer
//!   lists;
//! * [`stats`] — one-pass summaries for experiment reporting;
//! * [`rng`] — labeled, deterministic RNG derivation so every experiment is
//!   reproducible;
//! * [`pool`] — the deterministic scoped-thread pool behind every parallel
//!   construct in the workspace (order-preserving `par_map`);
//! * [`hist`] — fixed-bucket histograms with a commutative merge, the
//!   aggregation primitive of the observability layer;
//! * [`codec`] — the dependency-free wire codec (LEB128 varints, zig-zag,
//!   delta-encoded gap lists) and the [`WireSize`] trait behind the
//!   byte-accurate network accounting;
//! * [`event`] — the `(time, seq)`-keyed discrete-event queue behind the
//!   event-driven message delivery layer.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod codec;
pub mod event;
pub mod hist;
pub mod id;
pub mod md5;
pub mod pool;
pub mod rng;
pub mod stats;
pub mod topk;
pub mod zipf;

pub use codec::{
    decode_gap_list, decode_varint, encode_gap_list, encode_varint, gap_list_len, unzigzag,
    varint_len, zigzag, CodecError, WireSize, MAX_VARINT_LEN,
};
pub use event::EventQueue;
pub use hist::Histogram;
pub use id::{RingId, ID_BITS};
pub use md5::{md5, md5_u128, Digest, Md5};
pub use pool::{configured_threads, override_threads, par_map, par_map_init};
pub use rng::{derive_rng, DetRng, SliceRng, UniformRange};
pub use stats::{percentile, Summary};
pub use topk::{top_k, F64Ord, Scored, TopK};
pub use zipf::Zipf;
