//! Identifiers on the Chord ring.
//!
//! Chord places both peers and keys on a circular identifier space; SPRITE
//! uses MD5, so the circle is 2^128 positions (§6 of the paper). This module
//! provides the [`RingId`] newtype with the modular arithmetic Chord needs:
//! half-open interval membership (`in_range`), clockwise distance, and
//! finger-table offsets.

use crate::md5::md5;

/// Number of bits in the identifier space (MD5 digest width).
pub const ID_BITS: u32 = 128;

/// A position on the 2^128 Chord identifier circle.
///
/// Ordering is the natural integer order; ring-aware comparisons go through
/// [`RingId::in_open`], [`RingId::in_open_closed`], and
/// [`RingId::distance_cw`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RingId(pub u128);

impl RingId {
    /// Hash arbitrary bytes onto the ring with MD5 (the paper's placement
    /// function for terms, queries, and peer addresses).
    #[must_use]
    pub fn hash_bytes(data: &[u8]) -> Self {
        RingId(md5(data).as_u128())
    }

    /// Hash a string term onto the ring.
    #[must_use]
    pub fn hash_term(term: &str) -> Self {
        Self::hash_bytes(term.as_bytes())
    }

    /// `self + 2^k (mod 2^128)` — the start of finger interval `k`.
    #[must_use]
    pub fn finger_start(self, k: u32) -> Self {
        debug_assert!(k < ID_BITS);
        RingId(self.0.wrapping_add(1u128 << k))
    }

    /// Clockwise distance from `self` to `other` (how far a lookup must
    /// travel along the circle).
    #[must_use]
    pub fn distance_cw(self, other: RingId) -> u128 {
        other.0.wrapping_sub(self.0)
    }

    /// Membership in the *open* interval `(from, to)` on the circle.
    ///
    /// Intervals wrap: `in_open(9, 2)` contains 10, 0, and 1 but not 9 or 2.
    /// When `from == to` the interval covers the whole circle minus the
    /// endpoint, matching Chord's convention for a single-node ring.
    #[must_use]
    pub fn in_open(self, from: RingId, to: RingId) -> bool {
        if from == to {
            self != from
        } else {
            let d_self = from.distance_cw(self);
            d_self > 0 && d_self < from.distance_cw(to)
        }
    }

    /// Membership in the half-open interval `(from, to]` — the test Chord
    /// uses to decide whether a key belongs to a node (its predecessor
    /// excluded, the node itself included).
    #[must_use]
    pub fn in_open_closed(self, from: RingId, to: RingId) -> bool {
        if from == to {
            // Single node owns the whole circle.
            true
        } else {
            self == to || self.in_open(from, to)
        }
    }
}

impl std::fmt::Debug for RingId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Show the top 16 hex digits; enough to eyeball ring positions.
        write!(f, "RingId({:016x}…)", (self.0 >> 64) as u64)
    }
}

impl std::fmt::Display for RingId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl From<u128> for RingId {
    fn from(v: u128) -> Self {
        RingId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: RingId = RingId(10);
    const B: RingId = RingId(20);

    #[test]
    fn open_interval_basic() {
        assert!(RingId(15).in_open(A, B));
        assert!(!RingId(10).in_open(A, B));
        assert!(!RingId(20).in_open(A, B));
        assert!(!RingId(25).in_open(A, B));
    }

    #[test]
    fn open_interval_wraps() {
        // (20, 10): wraps through 0.
        assert!(RingId(25).in_open(B, A));
        assert!(RingId(u128::MAX).in_open(B, A));
        assert!(RingId(0).in_open(B, A));
        assert!(RingId(5).in_open(B, A));
        assert!(!RingId(15).in_open(B, A));
        assert!(!RingId(20).in_open(B, A));
        assert!(!RingId(10).in_open(B, A));
    }

    #[test]
    fn open_closed_includes_right_endpoint() {
        assert!(RingId(20).in_open_closed(A, B));
        assert!(!RingId(10).in_open_closed(A, B));
        assert!(RingId(15).in_open_closed(A, B));
        assert!(!RingId(21).in_open_closed(A, B));
    }

    #[test]
    fn degenerate_interval() {
        // (x, x] is the full circle: every id belongs to a lone node.
        assert!(RingId(999).in_open_closed(A, A));
        assert!(RingId(10).in_open_closed(A, A));
        // (x, x) is everything except x.
        assert!(RingId(999).in_open(A, A));
        assert!(!RingId(10).in_open(A, A));
    }

    #[test]
    fn finger_start_wraps() {
        let near_top = RingId(u128::MAX - 1);
        assert_eq!(near_top.finger_start(2).0, 2);
        assert_eq!(RingId(0).finger_start(127).0, 1u128 << 127);
    }

    #[test]
    fn distance_cw_wraps() {
        assert_eq!(A.distance_cw(B), 10);
        assert_eq!(B.distance_cw(A), u128::MAX - 10 + 1);
        assert_eq!(A.distance_cw(A), 0);
    }

    #[test]
    fn hash_term_is_md5() {
        // md5("abc") = 900150983cd24fb0d6963f7d28e17f72
        assert_eq!(
            RingId::hash_term("abc").0,
            0x9001_5098_3cd2_4fb0_d696_3f7d_28e1_7f72u128
        );
    }
}
