//! Fixed-bucket histograms with a commutative merge.
//!
//! The observability layer records per-operation costs (hops per lookup,
//! messages per query, replicas probed) into [`Histogram`]s that are folded
//! across worker threads exactly like `NetStats`: every field is a sum or a
//! max, so merging per-worker recorders in input order reproduces the exact
//! histogram a sequential run would have produced, bit for bit.

/// A fixed-bucket histogram of small non-negative integer samples.
///
/// Bucket `i` counts samples with value exactly `i`; the final bucket is an
/// overflow bucket that absorbs every sample `>= len - 1`. The exact sum and
/// max are tracked alongside, so the mean is not quantized by the overflow
/// bucket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// A zeroed histogram with `buckets` buckets (at least 2: one value
    /// bucket plus the overflow bucket).
    #[must_use]
    pub fn new(buckets: usize) -> Self {
        Histogram {
            buckets: vec![0; buckets.max(2)],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let last = self.buckets.len() - 1;
        let slot = usize::try_from(value).map_or(last, |v| v.min(last));
        self.buckets[slot] += n;
        self.count += n;
        self.sum += value * n;
        self.max = self.max.max(value);
    }

    /// Absorb the samples of `other`.
    ///
    /// Every field is a sum or a max, so `merge` is commutative and
    /// associative — per-worker histograms merged in any order produce the
    /// same result. The bucket layouts must match.
    ///
    /// # Panics
    /// If the two histograms have different bucket counts.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "histogram bucket layouts must match to merge"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (not quantized by the overflow bucket).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample value (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample recorded (0 if empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The bucket counts; the last entry is the overflow bucket.
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Number of buckets, overflow included.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True when no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_value_buckets() {
        let mut h = Histogram::new(5);
        h.record(0);
        h.record(2);
        h.record(2);
        h.record(3);
        assert_eq!(h.buckets(), &[1, 0, 2, 1, 0]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 7);
        assert_eq!(h.max(), 3);
        assert!((h.mean() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn overflow_bucket_absorbs_large_samples() {
        let mut h = Histogram::new(4);
        h.record(3); // exactly the overflow bucket index
        h.record(100);
        assert_eq!(h.buckets(), &[0, 0, 0, 2]);
        assert_eq!(h.sum(), 103, "sum stays exact past the overflow bucket");
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::new(6);
        a.record_n(4, 3);
        a.record_n(9, 0);
        let mut b = Histogram::new(6);
        for _ in 0..3 {
            b.record(4);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn merge_identity() {
        let mut h = Histogram::new(8);
        h.record(1);
        h.record(5);
        h.record(19);
        let before = h.clone();
        h.merge(&Histogram::new(8));
        assert_eq!(h, before, "merging an empty histogram is the identity");
        let mut empty = Histogram::new(8);
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn merge_commutes() {
        let mut a = Histogram::new(5);
        a.record(0);
        a.record(2);
        a.record(11);
        let mut b = Histogram::new(5);
        b.record(2);
        b.record(7);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(ab.count(), 5);
        assert_eq!(ab.sum(), 22);
        assert_eq!(ab.max(), 11);
    }

    #[test]
    fn merge_is_associative() {
        let mut parts = Vec::new();
        for seed in 0u64..3 {
            let mut h = Histogram::new(4);
            h.record(seed);
            h.record(seed * 3);
            parts.push(h);
        }
        // ((a + b) + c)
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        // (a + (b + c))
        let mut bc = parts[1].clone();
        bc.merge(&parts[2]);
        let mut right = parts[0].clone();
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn par_map_merge_is_thread_count_invariant() {
        // The contract the observability layer's byte and event counters
        // lean on: per-item histograms produced under `par_map` and merged
        // in input order are bit-identical at 1 worker and 4 workers —
        // scheduling must never leak into any bucket, sum, or max.
        use crate::{derive_rng, override_threads, par_map};
        let items: Vec<u64> = (0..257).collect();
        let run = |threads: usize| {
            let prev = override_threads(threads);
            let parts: Vec<Histogram> = par_map(&items, |i, &item| {
                let mut rng = derive_rng(item, "hist-par-map");
                let mut h = Histogram::new(8);
                for _ in 0..(i % 7) + 1 {
                    h.record(rng.gen_range(0..32) as u64);
                }
                h
            });
            override_threads(prev);
            let mut total = Histogram::new(8);
            for p in &parts {
                total.merge(p);
            }
            total
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq, par, "worker count leaked into the merged histogram");
        assert!(seq.count() > 0);
    }

    #[test]
    #[should_panic(expected = "bucket layouts")]
    fn merge_rejects_mismatched_layouts() {
        let mut a = Histogram::new(4);
        a.merge(&Histogram::new(5));
    }

    #[test]
    fn minimum_two_buckets() {
        let mut h = Histogram::new(0);
        assert_eq!(h.len(), 2);
        h.record(0);
        h.record(9);
        assert_eq!(h.buckets(), &[1, 1]);
        assert!(!h.is_empty());
    }
}
