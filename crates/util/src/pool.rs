//! Deterministic scoped-thread pool for the experiment engine.
//!
//! Every parallel construct in this workspace goes through [`par_map`] /
//! [`par_map_init`]: an order-preserving map over a slice, fanned out over
//! scoped worker threads that pull items from a shared atomic cursor. The
//! contract that makes parallelism safe in a bit-for-bit deterministic
//! simulation:
//!
//! * the worker function must be **pure per item** (no shared mutable
//!   state; anything it needs to report is part of its return value);
//! * results are reassembled **in input order**, so the output is
//!   byte-identical no matter how the items were scheduled across threads;
//! * with one worker (`SPRITE_THREADS=1`) no threads are spawned at all —
//!   the map degenerates to a plain sequential loop, which is the reference
//!   the determinism audit compares the parallel runs against.
//!
//! Worker count: [`override_threads`] (thread-local, used by benches and
//! tests — local so concurrent `cargo test` threads flipping thread counts
//! never race each other) beats the `SPRITE_THREADS` environment variable,
//! which beats [`std::thread::available_parallelism`]. Nested calls from
//! inside a worker run sequentially instead of spawning threads
//! recursively, so a parallel outer sweep (e.g. one deployment per budget)
//! composes with the parallel inner evaluation without oversubscribing the
//! machine.
//!
//! This module is the only place in the workspace allowed to touch
//! `std::thread::spawn` / `std::thread::scope` (enforced by `sprite-lint`'s
//! `no-raw-spawn` rule).

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Worker-count override for [`par_map`] calls made from this thread
    /// (0 = none). Thread-local so parallel test threads cannot race.
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };

    /// Set inside pool workers so nested maps stay sequential.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Force the worker count for subsequent [`par_map`] calls made from the
/// current thread (`0` clears the override). Returns the previous override
/// so callers can restore it. Benches and determinism tests use this to
/// compare thread counts without re-spawning the process.
pub fn override_threads(n: usize) -> usize {
    OVERRIDE.with(|o| o.replace(n))
}

/// The worker count the next [`par_map`] will use: the
/// [`override_threads`] value if set, else `SPRITE_THREADS` if set and
/// positive, else [`std::thread::available_parallelism`].
#[must_use]
pub fn configured_threads() -> usize {
    let forced = OVERRIDE.with(Cell::get);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("SPRITE_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// True when called from inside a pool worker (nested maps run inline).
#[must_use]
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Order-preserving parallel map: `f(index, &item)` for every item, results
/// in input order. See the module docs for the purity contract.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_init(items, || (), |(), i, t| f(i, t))
}

/// [`par_map`] with per-worker scratch state: `init()` runs once per worker
/// thread (once total in the sequential fallback) and the resulting state is
/// threaded through every item that worker processes. The state must not
/// influence results — it exists to reuse allocations (ranking scratch
/// buffers), not to carry information between items.
pub fn par_map_init<S, T, U, I, F>(items: &[T], init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> U + Sync,
{
    let threads = configured_threads().min(items.len());
    if threads <= 1 || in_worker() {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                IN_WORKER.with(|w| w.set(true));
                let mut state = init();
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(&mut state, i, &items[i])));
                }
                results
                    .lock()
                    .expect("a pool worker panicked while publishing results")
                    .extend(local);
            });
        }
    });
    let mut pairs = results
        .into_inner()
        .expect("a pool worker panicked while publishing results");
    debug_assert_eq!(pairs.len(), items.len(), "every item maps to one result");
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order() {
        let prev = override_threads(4);
        let items: Vec<u64> = (0..257).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * x
        });
        override_threads(prev);
        let want: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let items: Vec<u64> = (0..100).collect();
        let f = |_: usize, &x: &u64| (x as f64).sqrt().to_bits();
        let prev = override_threads(1);
        let seq = par_map(&items, f);
        override_threads(3);
        let par = par_map(&items, f);
        override_threads(prev);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_single_inputs() {
        let prev = override_threads(8);
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], |_, &x| x + 1), vec![8]);
        override_threads(prev);
    }

    #[test]
    fn nested_maps_run_inline() {
        let prev = override_threads(4);
        let out = par_map(&[10u32, 20, 30], |_, &x| {
            assert!(!in_worker() || configured_threads() >= 1);
            let inner: Vec<u32> = (0..x).collect();
            // Inside a worker this must not spawn another layer of threads.
            par_map(&inner, |_, &y| y).into_iter().sum::<u32>()
        });
        override_threads(prev);
        assert_eq!(out, vec![45, 190, 435]);
    }

    #[test]
    fn per_worker_state_is_reused_not_shared() {
        let prev = override_threads(2);
        let items: Vec<usize> = (0..50).collect();
        // The scratch buffer grows per worker; results must not depend on it.
        let out = par_map_init(&items, Vec::<usize>::new, |scratch, _, &x| {
            scratch.push(x);
            x * 2
        });
        override_threads(prev);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn override_beats_env_and_restores() {
        let prev = override_threads(5);
        assert_eq!(configured_threads(), 5);
        override_threads(prev);
    }
}
