//! Deterministic scoped-thread pool for the experiment engine.
//!
//! Every parallel construct in this workspace goes through [`par_map`] /
//! [`par_map_init`]: an order-preserving map over a slice, fanned out over
//! scoped worker threads that pull items from a shared atomic cursor. The
//! contract that makes parallelism safe in a bit-for-bit deterministic
//! simulation:
//!
//! * the worker function must be **pure per item** (no shared mutable
//!   state; anything it needs to report is part of its return value);
//! * results are reassembled **in input order**, so the output is
//!   byte-identical no matter how the items were scheduled across threads;
//! * with one worker (`SPRITE_THREADS=1`) no threads are spawned at all —
//!   the map degenerates to a plain sequential loop, which is the reference
//!   the determinism audit compares the parallel runs against — and at
//!   width N the calling thread claims chunks as worker zero, so only
//!   N − 1 threads are actually spawned per map.
//!
//! Worker count: [`override_threads`] (thread-local, used by benches and
//! tests — local so concurrent `cargo test` threads flipping thread counts
//! never race each other) beats the `SPRITE_THREADS` environment variable,
//! which beats [`std::thread::available_parallelism`]. Nested calls from
//! inside a worker run sequentially instead of spawning threads
//! recursively, so a parallel outer sweep (e.g. one deployment per budget)
//! composes with the parallel inner evaluation without oversubscribing the
//! machine.
//!
//! This module is the only place in the workspace allowed to touch
//! `std::thread::spawn` / `std::thread::scope` (enforced by `sprite-lint`'s
//! `no-raw-spawn` rule).

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

thread_local! {
    /// Worker-count override for [`par_map`] calls made from this thread
    /// (0 = none). Thread-local so parallel test threads cannot race.
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };

    /// Set inside pool workers so nested maps stay sequential.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Force the worker count for subsequent [`par_map`] calls made from the
/// current thread (`0` clears the override). Returns the previous override
/// so callers can restore it. Benches and determinism tests use this to
/// compare thread counts without re-spawning the process.
pub fn override_threads(n: usize) -> usize {
    OVERRIDE.with(|o| o.replace(n))
}

/// The `SPRITE_THREADS` parse, cached for the life of the process (0 =
/// unset or invalid). [`configured_threads`] sits on the hot path — every
/// `par_map` consults it — and environment reads take a process-global
/// lock, so the variable is read exactly once. Runtime changes to the
/// environment are deliberately ignored; tests and benches that need to
/// vary the width use [`override_threads`] instead.
fn env_threads() -> usize {
    static ENV_THREADS: OnceLock<usize> = OnceLock::new();
    *ENV_THREADS.get_or_init(|| {
        std::env::var("SPRITE_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0)
    })
}

/// The worker count the next [`par_map`] will use: the
/// [`override_threads`] value if set, else `SPRITE_THREADS` if set and
/// positive (parsed once per process), else
/// [`std::thread::available_parallelism`].
#[must_use]
pub fn configured_threads() -> usize {
    let forced = OVERRIDE.with(Cell::get);
    if forced > 0 {
        return forced;
    }
    let env = env_threads();
    if env > 0 {
        return env;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// True when called from inside a pool worker (nested maps run inline).
#[must_use]
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// The contiguous run length a worker claims per cursor fetch: small
/// enough for load balance (at least 8 claims per worker when the input
/// allows it), large enough that the shared cursor is touched once per
/// run instead of once per item. Purely a scheduling decision — results
/// are reassembled in input order regardless, so the output never depends
/// on this value (the chunking tests pin that down).
#[must_use]
pub fn chunk_size(items: usize, threads: usize) -> usize {
    (items / (threads.max(1) * 8)).max(1)
}

/// Order-preserving parallel map: `f(index, &item)` for every item, results
/// in input order. See the module docs for the purity contract.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_init(items, || (), |(), i, t| f(i, t))
}

/// [`par_map`] with per-worker scratch state: `init()` runs once per worker
/// thread (once total in the sequential fallback) and the resulting state is
/// threaded through every item that worker processes. The state must not
/// influence results — it exists to reuse allocations (ranking scratch
/// buffers), not to carry information between items.
pub fn par_map_init<S, T, U, I, F>(items: &[T], init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> U + Sync,
{
    let threads = configured_threads().min(items.len());
    if threads <= 1 || in_worker() {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }
    // Workers claim contiguous chunks, not single items: one atomic
    // fetch-add per run keeps the shared cursor off the per-item hot path,
    // and each claimed run lands in one `(start, results)` pair so the
    // final reassembly sorts a handful of runs instead of every item.
    let chunk = chunk_size(items.len(), threads);
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, Vec<U>)>> = Mutex::new(Vec::new());
    let work = || {
        let mut state = init();
        let mut local: Vec<(usize, Vec<U>)> = Vec::new();
        loop {
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= items.len() {
                break;
            }
            let end = (start + chunk).min(items.len());
            let mut run = Vec::with_capacity(end - start);
            for (i, item) in items.iter().enumerate().take(end).skip(start) {
                run.push(f(&mut state, i, item));
            }
            local.push((start, run));
        }
        results
            .lock()
            .expect("a pool worker panicked while publishing results")
            .extend(local);
    };
    std::thread::scope(|scope| {
        // The caller is worker zero: it claims chunks instead of blocking
        // at the join, so a width-N map spawns only N − 1 threads.
        for _ in 1..threads {
            scope.spawn(|| {
                IN_WORKER.with(|w| w.set(true));
                work();
            });
        }
        let was = IN_WORKER.with(|w| w.replace(true));
        work();
        IN_WORKER.with(|w| w.set(was));
    });
    let mut runs = results
        .into_inner()
        .expect("a pool worker panicked while publishing results");
    runs.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(items.len());
    for (_, run) in runs {
        out.extend(run);
    }
    debug_assert_eq!(out.len(), items.len(), "every item maps to one result");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order() {
        let prev = override_threads(4);
        let items: Vec<u64> = (0..257).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * x
        });
        override_threads(prev);
        let want: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let items: Vec<u64> = (0..100).collect();
        let f = |_: usize, &x: &u64| (x as f64).sqrt().to_bits();
        let prev = override_threads(1);
        let seq = par_map(&items, f);
        override_threads(3);
        let par = par_map(&items, f);
        override_threads(prev);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_single_inputs() {
        let prev = override_threads(8);
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], |_, &x| x + 1), vec![8]);
        override_threads(prev);
    }

    #[test]
    fn nested_maps_run_inline() {
        let prev = override_threads(4);
        let out = par_map(&[10u32, 20, 30], |_, &x| {
            assert!(!in_worker() || configured_threads() >= 1);
            let inner: Vec<u32> = (0..x).collect();
            // Inside a worker this must not spawn another layer of threads.
            par_map(&inner, |_, &y| y).into_iter().sum::<u32>()
        });
        override_threads(prev);
        assert_eq!(out, vec![45, 190, 435]);
    }

    #[test]
    fn per_worker_state_is_reused_not_shared() {
        let prev = override_threads(2);
        let items: Vec<usize> = (0..50).collect();
        // The scratch buffer grows per worker; results must not depend on it.
        let out = par_map_init(&items, Vec::<usize>::new, |scratch, _, &x| {
            scratch.push(x);
            x * 2
        });
        override_threads(prev);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn override_beats_env_and_restores() {
        let prev = override_threads(5);
        assert_eq!(configured_threads(), 5);
        override_threads(prev);
    }

    #[test]
    fn chunk_size_balances_load_without_degenerating() {
        // At least one item per claim, no matter how small the input.
        assert_eq!(chunk_size(0, 4), 1);
        assert_eq!(chunk_size(3, 7), 1);
        // Big inputs yield ≥ 8 claims per worker for load balance.
        assert_eq!(chunk_size(320, 4), 10);
        assert!(chunk_size(100_000, 4) * 4 * 8 <= 100_000);
        // Degenerate thread counts never divide by zero.
        assert_eq!(chunk_size(64, 0), 8);
    }

    #[test]
    fn chunked_claiming_is_bit_identical_across_widths() {
        // Seeded pseudo-random payload; the map mixes the index into a
        // float so any reassembly slip flips observable bits.
        let items: Vec<u64> = (0..321).map(|i| i * 0x9e37_79b9).collect();
        let f = |i: usize, &x: &u64| {
            let v = (x ^ i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            (v as f64).sqrt().to_bits()
        };
        let prev = override_threads(1);
        let reference = par_map(&items, f);
        for workers in [2usize, 4, 7] {
            override_threads(workers);
            assert_eq!(par_map(&items, f), reference, "{workers} workers");
        }
        override_threads(prev);
    }

    #[test]
    fn chunking_handles_empty_input_and_fewer_items_than_workers() {
        let prev = override_threads(7);
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        // 3 items, 7 configured workers: threads clamp to the item count
        // and every item still maps exactly once, in order.
        let items: Vec<u32> = (0..3).collect();
        assert_eq!(par_map(&items, |_, &x| x * 3), vec![0, 3, 6]);
        override_threads(prev);
    }

    #[test]
    fn panicking_worker_propagates_and_pool_stays_usable() {
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let prev = override_threads(4);
            let out = par_map(&items, |_, &x| {
                assert!(x != 13, "injected worker panic");
                x
            });
            override_threads(prev);
            out
        }));
        assert!(result.is_err(), "a panicking worker must fail the map");
        // The panic must not wedge thread-local state or the pool itself.
        override_threads(0);
        let prev = override_threads(4);
        let ok = par_map(&items, |_, &x| x + 1);
        override_threads(prev);
        assert_eq!(ok, (1..=64).collect::<Vec<u32>>());
    }
}
