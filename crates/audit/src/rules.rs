//! The `sprite-lint` rule engine: token-accurate ports of the legacy line
//! rules plus call-graph semantic rules over [`crate::syntax`] models.
//!
//! ## Rule catalog
//!
//! Token rules (per file, skipping the `#[cfg(test)]` tail and the exempt
//! `tests/`, `benches/`, `examples/` directories):
//!
//! * **no-unwrap** — `.unwrap()` is banned in library code.
//! * **expect-message** — `.expect(…)` must carry a non-empty string
//!   literal.
//! * **no-ambient-time** — simulation crates must not read wall-clock time
//!   or ambient randomness (`SystemTime`, `Instant::now`, `thread_rng`,
//!   `rand::`); `crates/bench` is exempt.
//! * **forbid-unsafe** — crate roots must carry `#![forbid(unsafe_code)]`.
//! * **no-raw-spawn** — `thread::spawn` / `thread::scope` only inside
//!   `crates/util/src/pool.rs`.
//! * **no-direct-delivery** — `link_delivery(…)` (sampling a network
//!   model's per-link fate) only inside the delivery layer
//!   (`crates/chord/src/{sim,ring}.rs`); everyone else plans transmissions
//!   through `ChordNet::plan_delivery` so drops bill real timeouts.
//! * **postings-codec** — `PostingList::{Plain,Packed}` variants may only
//!   be constructed inside the codec-backed postings module
//!   (`crates/core/src/postings.rs`); everyone else builds lists through
//!   `PostingList::new`/`from_entries`/`publish`, which uphold the
//!   doc-sorted delta-gap invariants the decode-on-read iterators rely
//!   on. The companion semantic check bans *storing* an inverted index
//!   raw: no struct field may pair `TermId` with `IndexEntry` (the
//!   pre-codec `HashMap<TermId, Vec<IndexEntry>>` layout) — index
//!   storage goes through `PostingList`.
//!
//! Semantic rules (over the workspace call graph; see DESIGN.md §11):
//!
//! * **oracle-taint** — no function transitively reachable from the
//!   retrieval roots (`QueryView::query*`, `SpriteSystem::issue_query*`,
//!   `Dht::{get,put,remove}*`) may call an `oracle_*` helper. This replaces
//!   the old four-file allowlist: reachability follows refactors.
//! * **charge-coverage** — reachable functions outside the billing layer
//!   (`stats.rs`, `trace.rs`, `ring.rs`) must not touch the raw `NetStats`
//!   mutators, and any reachable function constructing a `MsgKind` must
//!   also call a billing sink (`charge_route`, a `charge*_traced` helper,
//!   or the `trace::charge*` free functions). Additionally, every `MsgKind`
//!   variant needs at least one billing site somewhere in the workspace.
//! * **hashmap-order** — any function iterating a `HashMap` (locals,
//!   parameters, or same-file struct fields) is flagged unless the
//!   function contains an ordering construct (`sort*`, `top_k`, `TopK`,
//!   `BinaryHeap`, `BTreeMap`, `BTreeSet`) or the iterating statement
//!   reduces commutatively (`sum`, `count`, `max`, `min`, `all`, `any`).
//!   Previously only four ranked-output files were checked.
//! * **config-drift** — every `SpriteConfig` field must be read somewhere
//!   outside its defining file: a field nothing reads is a knob that
//!   silently stopped steering the system.
//!
//! ## Opt-out
//!
//! A diagnostic is suppressed when a comment on the same line contains
//! `sprite-lint: allow(<rule>): <justification>` — the rule name and a
//! trailing justification are both required (the old scanner's bare marker
//! suppressed every rule on the line; this one is per-rule and demands a
//! written why).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lex::TokenKind;
use crate::syntax::{is_hashmap_type, FileModel, Recv};

/// One finding, rendered as `file:line: [rule] message` (or JSON).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule identifier.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Diagnostic {
    /// One-line JSON object, matching the CI problem matcher.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&self.file),
            self.line,
            self.rule,
            json_escape(&self.message)
        )
    }
}

/// Crates whose sources are simulation code: deterministic by contract.
const SIM_PREFIXES: &[&str] = &[
    "crates/util/",
    "crates/text/",
    "crates/ir/",
    "crates/chord/",
    "crates/corpus/",
    "crates/core/",
    "crates/audit/",
    "src/",
];

/// The one module allowed to touch raw threading primitives.
const POOL_MODULE: &str = "crates/util/src/pool.rs";

/// The codec-backed postings module: the only place allowed to construct
/// `PostingList` variants directly (everyone else goes through the
/// constructors, which uphold the delta-gap encoding invariants).
const POSTINGS_MODULE: &str = "crates/core/src/postings.rs";

/// The message-accounting layer itself: the files that *implement* billing
/// and are therefore allowed to touch the raw `NetStats` mutators.
const BILLING_LAYER: &[&str] = &[
    "crates/chord/src/stats.rs",
    "crates/chord/src/trace.rs",
    "crates/chord/src/ring.rs",
];

/// The event-driven delivery layer: the only files allowed to sample a
/// network model's per-link fate directly. Everything else must plan
/// transmissions through `ChordNet::plan_delivery` (or the routed walks),
/// which bill drops as real timeouts and respect the retry budget.
const DELIVERY_LAYER: &[&str] = &["crates/chord/src/sim.rs", "crates/chord/src/ring.rs"];

/// Raw `NetStats` mutators banned (as method calls) on the reachable
/// retrieval path outside the billing layer.
const RAW_MUTATORS: &[&str] = &[
    "record",
    "record_n",
    "record_bytes",
    "charge",
    "charge_n",
    "charge_bytes",
];

/// Method names that iterate a map in storage order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Commutative reducers that make iteration order irrelevant.
const REDUCERS: &[&str] = &["sum", "count", "max", "min", "all", "any"];

/// Idents whose presence in a function marks its output as ordered.
const ORDER_MARKERS: &[&str] = &["top_k", "TopK", "BinaryHeap", "BTreeMap", "BTreeSet"];

fn is_sim_crate(rel: &str) -> bool {
    SIM_PREFIXES.iter().any(|p| rel.starts_with(p))
}

fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs" || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"))
}

fn is_exempt_dir(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.starts_with("examples/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
}

/// Inner emptiness of a string-literal token's text (`""`, `r""`, `b""` …).
fn str_lit_is_empty(text: &str) -> bool {
    text.chars().all(|c| matches!(c, '"' | '#' | 'r' | 'b'))
}

/// The retrieval roots: taint starts here.
fn is_root(owner: Option<&str>, name: &str) -> bool {
    match owner {
        Some("QueryView") => name.starts_with("query"),
        Some("SpriteSystem") => name.starts_with("issue_query"),
        Some("Dht") => {
            name.starts_with("get") || name.starts_with("put") || name.starts_with("remove")
        }
        _ => false,
    }
}

/// A billing sink: the traced/routed charge spellings, plus the
/// `trace::charge*` free helpers.
fn is_sink_call(name: &str, recv: &Recv) -> bool {
    if name == "charge_route" {
        return true;
    }
    if name.starts_with("charge") && name.ends_with("_traced") {
        return true;
    }
    matches!(name, "charge" | "charge_n" | "charge_bytes")
        && matches!(recv, Recv::Path(_) | Recv::Free)
}

/// Any call that bills a message (used for workspace-wide variant
/// coverage, where the billing layer's raw mutators count too).
fn is_billing_call(name: &str) -> bool {
    name.starts_with("charge") || name.starts_with("record")
}

struct Workspace {
    files: Vec<FileModel>,
    /// Per file: line → concatenated comment text (for allow markers).
    comments: Vec<BTreeMap<u32, String>>,
}

type FnRef = (usize, usize);

impl Workspace {
    fn build(sources: &[(String, String)]) -> Workspace {
        let mut files = Vec::with_capacity(sources.len());
        let mut comments = Vec::with_capacity(sources.len());
        for (rel, content) in sources {
            let model = FileModel::parse(rel, content);
            let mut per_line: BTreeMap<u32, String> = BTreeMap::new();
            for t in &model.tokens {
                if matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                    per_line
                        .entry(t.line)
                        .or_default()
                        .push_str(t.text(&model.src));
                }
            }
            files.push(model);
            comments.push(per_line);
        }
        Workspace { files, comments }
    }

    fn allowed(&self, fi: usize, line: u32, rule: &str) -> bool {
        self.comments[fi]
            .get(&line)
            .is_some_and(|c| c.contains(&format!("sprite-lint: allow({rule}):")))
    }

    /// Resolve one call site in `(file, fn)` to candidate workspace
    /// functions. Name-keyed and conservative: unresolvable receivers fan
    /// out to every method of that name.
    fn resolve(
        &self,
        caller: FnRef,
        name: &str,
        recv: &Recv,
        methods: &BTreeMap<(&str, &str), Vec<FnRef>>,
        by_name: &BTreeMap<&str, Vec<FnRef>>,
        free: &BTreeMap<&str, Vec<FnRef>>,
    ) -> Vec<FnRef> {
        let (fi, ki) = caller;
        let owner = self.files[fi].fns[ki].owner.as_deref();
        let of = |key: Option<Vec<FnRef>>| key.unwrap_or_default();
        match recv {
            Recv::SelfCall => of(owner.and_then(|o| methods.get(&(o, name)).cloned())),
            Recv::Named(x) => {
                // A field of the enclosing type (same file) resolves to the
                // field's type; anything else fans out by name.
                let field_type = owner.and_then(|o| {
                    self.files[fi]
                        .structs
                        .iter()
                        .find(|s| s.name == o)
                        .and_then(|s| s.fields.iter().find(|f| f.name == *x))
                        .and_then(|f| f.type_idents.first().cloned())
                });
                match field_type {
                    Some(t) => of(methods.get(&(t.as_str(), name)).cloned()),
                    None => of(by_name.get(name).cloned()),
                }
            }
            Recv::Method => of(by_name.get(name).cloned()),
            Recv::Path(q) => {
                let q = if q == "Self" { owner.unwrap_or(q) } else { q };
                match methods.get(&(q, name)) {
                    Some(v) => v.clone(),
                    None => of(free.get(name).cloned()),
                }
            }
            Recv::Free => of(free.get(name).cloned()),
        }
    }

    /// Non-test functions transitively reachable from the retrieval roots.
    fn reachable(&self) -> BTreeSet<FnRef> {
        let mut methods: BTreeMap<(&str, &str), Vec<FnRef>> = BTreeMap::new();
        let mut by_name: BTreeMap<&str, Vec<FnRef>> = BTreeMap::new();
        let mut free: BTreeMap<&str, Vec<FnRef>> = BTreeMap::new();
        let mut queue: Vec<FnRef> = Vec::new();
        for (fi, f) in self.files.iter().enumerate() {
            if is_exempt_dir(&f.rel) {
                continue;
            }
            for (ki, fun) in f.fns.iter().enumerate() {
                if fun.in_test {
                    continue;
                }
                match fun.owner.as_deref() {
                    Some(o) => {
                        methods.entry((o, &fun.name)).or_default().push((fi, ki));
                        by_name.entry(&fun.name).or_default().push((fi, ki));
                    }
                    None => free.entry(&fun.name).or_default().push((fi, ki)),
                }
                if is_root(fun.owner.as_deref(), &fun.name) {
                    queue.push((fi, ki));
                }
            }
        }
        let mut seen: BTreeSet<FnRef> = queue.iter().copied().collect();
        while let Some(cur) = queue.pop() {
            let (fi, ki) = cur;
            let calls = self.files[fi].fns[ki].calls.clone();
            for call in &calls {
                for tgt in self.resolve(cur, &call.name, &call.recv, &methods, &by_name, &free) {
                    if seen.insert(tgt) {
                        queue.push(tgt);
                    }
                }
            }
        }
        seen
    }
}

/// Run every rule over in-memory `(relative path, content)` sources.
/// This is the engine the fixture tests drive directly.
#[must_use]
pub fn analyze_sources(sources: &[(String, String)]) -> Vec<Diagnostic> {
    let ws = Workspace::build(sources);
    let mut out: Vec<Diagnostic> = Vec::new();
    for f in &ws.files {
        token_rules(f, &mut out);
    }
    semantic_rules(&ws, &mut out);
    out.retain(|d| match ws.files.iter().position(|f| f.rel == d.file) {
        Some(fi) => !ws.allowed(fi, d.line, d.rule),
        None => true,
    });
    out.sort();
    out.dedup();
    out
}

/// Token-accurate ports of the legacy line rules.
fn token_rules(f: &FileModel, out: &mut Vec<Diagnostic>) {
    let rel = f.rel.as_str();
    let diag = |line: u32, rule: &'static str, message: String| Diagnostic {
        file: rel.to_string(),
        line,
        rule,
        message,
    };
    let n = f.sig.len();
    let text = |i: usize| f.sig_text(i);

    if is_crate_root(rel) {
        let seq = ["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"];
        let found = (0..n.saturating_sub(seq.len() - 1))
            .any(|i| seq.iter().enumerate().all(|(k, s)| text(i + k) == *s));
        if !found {
            out.push(diag(
                1,
                "forbid-unsafe",
                "crate root lacks #![forbid(unsafe_code)]".to_string(),
            ));
        }
    }
    if is_exempt_dir(rel) {
        return;
    }

    let sim = is_sim_crate(rel);
    for i in 0..f.test_from.min(n) {
        if f.sig_kind(i) != TokenKind::Ident {
            continue;
        }
        let t = text(i);
        let line = f.sig_line(i);
        let prev = if i > 0 { text(i - 1) } else { "" };
        let next = if i + 1 < n { text(i + 1) } else { "" };

        if t == "unwrap" && prev == "." && next == "(" {
            out.push(diag(
                line,
                "no-unwrap",
                "unwrap() in library code; handle the None/Err or expect with a message"
                    .to_string(),
            ));
        }
        if t == "expect" && prev == "." && next == "(" {
            let ok = i + 2 < n
                && f.sig_kind(i + 2) == TokenKind::StrLit
                && !str_lit_is_empty(text(i + 2));
            if !ok {
                out.push(diag(
                    line,
                    "expect-message",
                    "expect() without a non-empty string-literal message".to_string(),
                ));
            }
        }
        if t == "link_delivery" && next == "(" && !DELIVERY_LAYER.contains(&rel) {
            out.push(diag(
                line,
                "no-direct-delivery",
                format!(
                    "link_delivery sampled outside the delivery layer ({}); plan \
                     transmissions through ChordNet::plan_delivery so drops are billed \
                     as timeouts and retries respect the budget",
                    DELIVERY_LAYER.join(", ")
                ),
            ));
        }
        if t == "PostingList" && next == "::" && i + 2 < n && rel != POSTINGS_MODULE {
            let variant = text(i + 2);
            if variant == "Plain" || variant == "Packed" {
                out.push(diag(
                    line,
                    "postings-codec",
                    format!(
                        "PostingList::{variant} constructed outside {POSTINGS_MODULE}; build \
                         posting lists through PostingList::new/from_entries/publish so the \
                         delta-gap encoding invariants hold"
                    ),
                ));
            }
        }
        if t == "thread" && next == "::" && i + 2 < n && rel != POOL_MODULE {
            let what = text(i + 2);
            if what == "spawn" || what == "scope" {
                out.push(diag(
                    line,
                    "no-raw-spawn",
                    format!(
                        "thread::{what} outside {POOL_MODULE}; use sprite_util's \
                         order-preserving par_map"
                    ),
                ));
            }
        }
        if sim && !rel.starts_with("crates/bench/") {
            let ambient = if t == "SystemTime" {
                Some(("wall-clock time", "SystemTime"))
            } else if t == "Instant" && next == "::" && i + 2 < n && text(i + 2) == "now" {
                Some(("wall-clock time", "Instant::now"))
            } else if t == "thread_rng" {
                Some(("ambient randomness", "thread_rng"))
            } else if t == "rand" && next == "::" {
                Some(("the rand crate", "rand::"))
            } else {
                None
            };
            if let Some((what, pat)) = ambient {
                out.push(diag(
                    line,
                    "no-ambient-time",
                    format!("{what} ({pat}) in a simulation crate; use seeded DetRng"),
                ));
            }
        }
    }
}

/// Call-graph rules: oracle-taint, charge-coverage, hashmap-order,
/// config-drift.
fn semantic_rules(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let reachable = ws.reachable();

    for &(fi, ki) in &reachable {
        let f = &ws.files[fi];
        let fun = &f.fns[ki];
        let rel = f.rel.as_str();
        let billing_layer = BILLING_LAYER.contains(&rel);

        for call in &fun.calls {
            if call.name.starts_with("oracle_") {
                out.push(Diagnostic {
                    file: rel.to_string(),
                    line: call.line,
                    rule: "oracle-taint",
                    message: format!(
                        "global-knowledge helper `{}` called in `{}`, which is reachable \
                         from the retrieval roots; resolve owners and replicas with \
                         routed lookups",
                        call.name, fun.name
                    ),
                });
            }
            // A raw-mutator *name* only counts when the receiver is (or
            // may be) the accounting state: an unresolvable receiver, a
            // `NetStats`, or a `ChordNet`. A resolved receiver of another
            // type (say a `Histogram`, whose `record` is innocent) passes.
            let stats_receiver = match &call.recv {
                Recv::SelfCall => fun.owner.as_deref(),
                Recv::Named(x) => fun
                    .owner
                    .as_deref()
                    .and_then(|o| f.structs.iter().find(|s| s.name == o))
                    .and_then(|s| s.fields.iter().find(|fd| fd.name == *x))
                    .and_then(|fd| fd.type_idents.first().map(String::as_str)),
                Recv::Method => None,
                Recv::Path(_) | Recv::Free => Some("-"),
            }
            .is_none_or(|t| t == "NetStats" || t == "ChordNet");
            if !billing_layer
                && stats_receiver
                && RAW_MUTATORS.contains(&call.name.as_str())
                && matches!(call.recv, Recv::SelfCall | Recv::Named(_) | Recv::Method)
            {
                out.push(Diagnostic {
                    file: rel.to_string(),
                    line: call.line,
                    rule: "charge-coverage",
                    message: format!(
                        "raw stats mutator `.{}(` in `{}` on the reachable retrieval \
                         path; bill through charge_route or the traced charge helpers",
                        call.name, fun.name
                    ),
                });
            }
        }
        if !billing_layer {
            let has_sink = fun.calls.iter().any(|c| is_sink_call(&c.name, &c.recv));
            for p in &fun.path_pairs {
                if p.qual == "MsgKind" && !has_sink {
                    out.push(Diagnostic {
                        file: rel.to_string(),
                        line: p.line,
                        rule: "charge-coverage",
                        message: format!(
                            "`MsgKind::{}` constructed in `{}` with no billing call in \
                             the function; bill through charge_route or the traced \
                             charge helpers",
                            p.name, fun.name
                        ),
                    });
                }
            }
        }
    }

    variant_coverage(ws, out);
    hashmap_order(ws, out);
    config_drift(ws, out);
    raw_posting_storage(ws, out);
}

/// No struct field outside the postings module may store an inverted
/// index raw: a field whose type pairs `TermId` with `IndexEntry` is the
/// pre-codec `HashMap<TermId, Vec<IndexEntry>>` layout resurfacing.
/// Transient snapshots (locals, return values) are fine — only durable
/// storage must go through `PostingList`.
fn raw_posting_storage(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for f in &ws.files {
        if is_exempt_dir(&f.rel) || f.rel == POSTINGS_MODULE {
            continue;
        }
        for s in &f.structs {
            if s.in_test {
                continue;
            }
            for field in &s.fields {
                let has = |ident: &str| field.type_idents.iter().any(|t| t == ident);
                if has("TermId") && has("IndexEntry") {
                    out.push(Diagnostic {
                        file: f.rel.clone(),
                        line: field.line,
                        rule: "postings-codec",
                        message: format!(
                            "field `{}` of `{}` stores postings as raw TermId → IndexEntry \
                             containers; store a PostingList from {POSTINGS_MODULE} so the \
                             index stays delta-gap compressed",
                            field.name, s.name
                        ),
                    });
                }
            }
        }
    }
}

/// Every `MsgKind` variant needs ≥ 1 billing site workspace-wide.
fn variant_coverage(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let mut billed: BTreeSet<String> = BTreeSet::new();
    for f in &ws.files {
        if is_exempt_dir(&f.rel) {
            continue;
        }
        for fun in &f.fns {
            if fun.in_test || !fun.calls.iter().any(|c| is_billing_call(&c.name)) {
                continue;
            }
            for p in &fun.path_pairs {
                if p.qual == "MsgKind" {
                    billed.insert(p.name.clone());
                }
            }
        }
    }
    for f in &ws.files {
        if is_exempt_dir(&f.rel) {
            continue;
        }
        for e in &f.enums {
            if e.name != "MsgKind" || e.in_test {
                continue;
            }
            for (v, line) in &e.variants {
                if !billed.contains(v) {
                    out.push(Diagnostic {
                        file: f.rel.clone(),
                        line: *line,
                        rule: "charge-coverage",
                        message: format!(
                            "MsgKind::{v} has no billing site anywhere in the workspace \
                             (no non-test function both names it and calls a charge/record \
                             helper)"
                        ),
                    });
                }
            }
        }
    }
}

/// Scope-aware `HashMap` iteration-order rule over the whole workspace.
fn hashmap_order(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for f in &ws.files {
        if is_exempt_dir(&f.rel) {
            continue;
        }
        // HashMap-typed fields of structs defined in this file.
        let hm_fields: BTreeSet<&str> = f
            .structs
            .iter()
            .flat_map(|s| s.fields.iter())
            .filter(|fd| is_hashmap_type(&fd.type_idents))
            .map(|fd| fd.name.as_str())
            .collect();
        for fun in &f.fns {
            if fun.in_test {
                continue;
            }
            let is_hm = |ident: &str| {
                fun.hashmap_locals.iter().any(|h| h == ident) || hm_fields.contains(ident)
            };
            let ordered_fn = fn_has_order_marker(f, fun.body);
            let mut flag = |ident: &str, line: u32, ordered_stmt: bool| {
                if !ordered_fn && !ordered_stmt {
                    out.push(Diagnostic {
                        file: f.rel.clone(),
                        line,
                        rule: "hashmap-order",
                        message: format!(
                            "HashMap `{ident}` iterated in `{}` with no sort/top-k in \
                             the function and no commutative reduction in the statement",
                            fun.name
                        ),
                    });
                }
            };
            // Method-call iterations: find `x . iter (`-shaped sites in the
            // body so the statement tail can be scanned for reducers.
            let (lo, hi) = fun.body;
            let mut i = lo;
            while i + 3 < hi {
                if f.sig_kind(i) == TokenKind::Ident
                    && f.sig_text(i + 1) == "."
                    && ITER_METHODS.contains(&f.sig_text(i + 2))
                    && f.sig_text(i + 3) == "("
                    && is_hm(f.sig_text(i))
                {
                    flag(
                        f.sig_text(i),
                        f.sig_line(i),
                        statement_reduces(f, i + 2, hi),
                    );
                }
                i += 1;
            }
            for (ident, line) in &fun.for_iterations {
                if is_hm(ident) {
                    flag(ident, *line, false);
                }
            }
        }
    }
}

/// Does the function body contain an ordering construct?
fn fn_has_order_marker(f: &FileModel, body: (usize, usize)) -> bool {
    (body.0..body.1).any(|i| {
        if f.sig_kind(i) != TokenKind::Ident {
            return false;
        }
        let t = f.sig_text(i);
        t.starts_with("sort") || ORDER_MARKERS.contains(&t)
    })
}

/// Scan the statement containing significant index `from` (to `;` at outer
/// nesting, or at most the body end) for a commutative reducer call.
fn statement_reduces(f: &FileModel, from: usize, body_end: usize) -> bool {
    let mut nest = 0i32;
    let mut i = from;
    while i < body_end {
        match f.sig_text(i) {
            "(" | "[" | "{" => nest += 1,
            ")" | "]" | "}" => {
                if nest == 0 {
                    return false;
                }
                nest -= 1;
            }
            ";" if nest <= 0 => return false,
            t if f.sig_kind(i) == TokenKind::Ident
                && REDUCERS.contains(&t)
                && i + 1 < body_end
                && f.sig_text(i + 1) == "(" =>
            {
                return true;
            }
            _ => {}
        }
        i += 1;
    }
    false
}

/// Every `SpriteConfig` field must be read outside its defining file.
fn config_drift(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for (fi, f) in ws.files.iter().enumerate() {
        if is_exempt_dir(&f.rel) {
            continue;
        }
        for s in &f.structs {
            if s.name != "SpriteConfig" || s.in_test {
                continue;
            }
            for field in &s.fields {
                let read_elsewhere = ws.files.iter().enumerate().any(|(oi, other)| {
                    oi != fi
                        && !is_exempt_dir(&other.rel)
                        && other.fns.iter().any(|fun| {
                            !fun.in_test && fun.field_reads.iter().any(|(r, _)| r == &field.name)
                        })
                });
                if !read_elsewhere {
                    out.push(Diagnostic {
                        file: f.rel.clone(),
                        line: field.line,
                        rule: "config-drift",
                        message: format!(
                            "SpriteConfig field `{}` is never read outside its \
                             definition; a knob nothing reads no longer steers the \
                             system",
                            field.name
                        ),
                    });
                }
            }
        }
    }
}

/// Recursively collect `.rs` files under `dir`, sorted for determinism.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Read every workspace source under `root` as `(relative path, content)`
/// pairs. Walks `src/`, `crates/`, and — unlike the old scanner — the
/// top-level `tests/` and `examples/` trees.
pub fn collect_sources(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut files = Vec::new();
    for top in ["src", "crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files).map_err(|e| format!("walking {}: {e}", dir.display()))?;
        }
    }
    if files.is_empty() {
        return Err(format!(
            "no Rust sources under {} (expected src/ and crates/)",
            root.display()
        ));
    }
    let mut out = Vec::with_capacity(files.len());
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let content =
            fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        out.push((rel, content));
    }
    Ok(out)
}

/// Analyze the workspace rooted at `root`: collect sources, run every
/// rule, and return the sorted diagnostics. This is the entry point the
/// lint binary, the CI gate, and the tests share.
pub fn analyze(root: &Path) -> Result<Vec<Diagnostic>, String> {
    Ok(analyze_sources(&collect_sources(root)?))
}
