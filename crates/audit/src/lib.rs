//! Auditing for the SPRITE reproduction: invariant checkers and a
//! determinism auditor.
//!
//! Every layer of this workspace is a deterministic simulation, which makes
//! strong auditing cheap: any structural property the papers promise can be
//! checked against the *live* state of a run, and whole experiments can be
//! replayed bit-for-bit. This crate packages those checks:
//!
//! * [`invariants`] — pure checkers over a [`sprite_chord::ChordNet`], a
//!   [`sprite_chord::Dht`], and a [`sprite_core::SpriteSystem`], returning
//!   typed [`Violation`]s: ring symmetry and finger correctness (Chord's
//!   §IV invariants), key placement under successor replication (§7),
//!   posting-list shape, the per-document global-term cap, and TF·IDF
//!   weight sanity (§4).
//! * [`determinism`] — runs a small end-to-end experiment twice from the
//!   same seed and fingerprints every stage (ring state, index contents,
//!   ranked results) with MD5, reporting the first stage that diverges.
//!
//! The companion binary `sprite-lint` (see `src/bin/sprite-lint.rs`) is a
//! workspace *source* audit: it scans every crate for patterns that would
//! undermine the determinism and safety story (`unwrap()` in library code,
//! wall-clock time or ambient randomness in simulation crates, missing
//! `#![forbid(unsafe_code)]`, unsorted `HashMap` iteration in ranked-output
//! modules) and exits nonzero with `file:line` diagnostics.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod determinism;
pub mod invariants;
pub mod lex;
pub mod rules;
pub mod syntax;

pub use rules::{analyze, analyze_sources, Diagnostic};

pub use determinism::{
    audit_determinism, audit_lifecycle, audit_sim, fingerprint_recorder,
    parallel_results_fingerprint, run_trace, traced_parallel_fingerprints, DeterminismReport,
    LifecycleAudit, SimAudit, Trace,
};
pub use invariants::{check_index, check_kv, check_ring, check_system, Violation};
