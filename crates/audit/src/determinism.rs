//! The determinism auditor.
//!
//! The whole workspace is built on one promise: the same seed replays the
//! same experiment, bit for bit. That promise is easy to break silently —
//! one `HashMap` iteration leaking into published state, one wall-clock
//! read — so this module *tests* it end to end: [`run_trace`] executes a
//! small but complete SPRITE experiment (build, publish, query, learn,
//! churn, re-query) and fingerprints the state after every stage with MD5;
//! [`audit_determinism`] runs the trace twice from the same seed and
//! reports the first stage whose fingerprint diverges, which localizes the
//! nondeterminism to the subsystem that stage exercised.

use sprite_chord::{
    ChordConfig, ChordNet, ChurnConfig, ChurnEngine, MsgKind, NetStats, Phase, SimConfig,
    StorageBackend, TraceRecorder,
};
use sprite_core::{RankScratch, SpriteConfig, SpriteSystem};
use sprite_corpus::{CorpusConfig, DocChurnConfig, DocChurnEngine, SyntheticCorpus};
use sprite_ir::{Hit, Query, TermId};
use sprite_util::{override_threads, par_map_init, Md5};

/// A fingerprinted experiment run: `(stage name, MD5)` pairs in execution
/// order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Stage fingerprints, chronological.
    pub stages: Vec<(&'static str, u128)>,
}

/// Outcome of a two-run determinism audit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeterminismReport {
    /// True when every stage fingerprint matched.
    pub passed: bool,
    /// The first stage whose fingerprints differed, if any.
    pub first_divergence: Option<&'static str>,
    /// Number of stages compared.
    pub stages: usize,
}

fn feed_u128(h: &mut Md5, v: u128) {
    h.update(&v.to_be_bytes());
}

fn feed_u64(h: &mut Md5, v: u64) {
    h.update(&v.to_be_bytes());
}

/// MD5 over a network's complete routing state, in ring order.
#[must_use]
pub fn fingerprint_ring(net: &ChordNet) -> u128 {
    let mut h = Md5::new();
    for id in net.node_ids() {
        let node = net.node(id).expect("listed node is alive");
        feed_u128(&mut h, id.0);
        match node.predecessor() {
            Some(p) => {
                h.update(b"P");
                feed_u128(&mut h, p.0);
            }
            None => h.update(b"-"),
        }
        feed_u64(&mut h, node.successor_list().len() as u64);
        for s in node.successor_list() {
            feed_u128(&mut h, s.0);
        }
        for f in node.finger_table() {
            feed_u128(&mut h, f.0);
        }
    }
    h.finalize().as_u128()
}

/// MD5 over every inverted list in the deployment, in `(peer, term, doc)`
/// order.
#[must_use]
pub fn fingerprint_index(sys: &SpriteSystem) -> u128 {
    let mut h = Md5::new();
    for peer in sys.indexing_peers() {
        let Some(st) = sys.indexing_state(peer) else {
            continue;
        };
        feed_u128(&mut h, peer.0);
        let mut terms: Vec<TermId> = st.terms().map(|(t, _)| t).collect();
        terms.sort_unstable();
        for t in terms {
            feed_u64(&mut h, u64::from(t.0));
            for e in st.postings(t).into_iter().flatten() {
                feed_u64(&mut h, u64::from(e.doc.0));
                feed_u128(&mut h, e.owner.0);
                feed_u64(&mut h, u64::from(e.tf));
                feed_u64(&mut h, u64::from(e.doc_len));
                feed_u64(&mut h, u64::from(e.distinct));
            }
        }
    }
    h.finalize().as_u128()
}

/// MD5 over the owner-side learning state: published terms (rank order)
/// and per-term statistics (term order, exact float bits).
#[must_use]
pub fn fingerprint_owners(sys: &SpriteSystem) -> u128 {
    let mut h = Md5::new();
    for i in 0..sys.corpus().len() {
        let doc = sprite_ir::DocId(i as u32);
        let owner = sys.owner_state(doc);
        for &t in &owner.published {
            feed_u64(&mut h, u64::from(t.0));
        }
        h.update(b"|");
        let mut stat_terms: Vec<TermId> = owner.stats.keys().copied().collect();
        stat_terms.sort_unstable();
        for t in stat_terms {
            let s = owner.stats[&t];
            feed_u64(&mut h, u64::from(t.0));
            feed_u64(&mut h, s.qf);
            feed_u64(&mut h, s.qs.to_bits());
        }
        h.update(b";");
    }
    h.finalize().as_u128()
}

/// MD5 over a ranked result list (doc order and exact score bits).
#[must_use]
pub fn fingerprint_hits(hits: &[Hit]) -> u128 {
    let mut h = Md5::new();
    for hit in hits {
        feed_u64(&mut h, u64::from(hit.doc.0));
        feed_u64(&mut h, hit.score.to_bits());
    }
    h.finalize().as_u128()
}

/// MD5 over every [`NetStats`] counter (message counts and payload bytes
/// per kind in index order, completed lookups, exact mean-hops bits, max
/// hops).
#[must_use]
pub fn fingerprint_stats(stats: &NetStats) -> u128 {
    let mut h = Md5::new();
    for kind in MsgKind::all() {
        feed_u64(&mut h, stats.count(kind));
    }
    for kind in MsgKind::all() {
        feed_u64(&mut h, stats.bytes(kind));
    }
    feed_u64(&mut h, stats.lookups());
    feed_u64(&mut h, stats.mean_hops().to_bits());
    feed_u64(&mut h, u64::from(stats.max_hops()));
    h.finalize().as_u128()
}

/// Fingerprint of a **parallel** read-only evaluation: `queries` fan out
/// over `threads` pool workers against a frozen [`sprite_core::QueryView`],
/// each charging a private [`NetStats`] delta; the hash covers every
/// ranked list (exact float bits) plus the in-input-order merge of the
/// deltas. Bit-identical across thread counts by the engine's contract —
/// the companion test pins `threads = 1` against `threads = 4`.
#[must_use]
pub fn parallel_results_fingerprint(
    sys: &mut SpriteSystem,
    queries: &[Query],
    threads: usize,
) -> u128 {
    let prev = override_threads(threads);
    let fp = {
        let view = sys.query_view();
        let peers = view.peers();
        let per: Vec<(u128, NetStats)> =
            par_map_init(queries, RankScratch::new, |scratch, i, q| {
                let mut delta = NetStats::new();
                let hits = view.query(peers[i % peers.len()], q, 10, &mut delta, scratch);
                (fingerprint_hits(&hits), delta)
            });
        let mut h = Md5::new();
        let mut total = NetStats::new();
        for (hits_fp, delta) in &per {
            feed_u128(&mut h, *hits_fp);
            total.merge(delta);
        }
        feed_u128(&mut h, fingerprint_stats(&total));
        h.finalize().as_u128()
    };
    override_threads(prev);
    fp
}

/// Fingerprint of the **batched** query pipeline: the same frozen-view
/// fan-out as [`parallel_results_fingerprint`], but every query is served
/// through [`sprite_core::QueryView::query_batched`] against one shared
/// [`sprite_chord::RouteMemo`] covering the whole batch. The hash covers
/// every ranked list (exact float bits) plus the in-input-order merge of
/// the [`NetStats`] deltas — the same shape as the unbatched fingerprint,
/// so the two are directly comparable. The batching contract says the
/// memoized destination replay charges exactly what a live walk would
/// have, so this must equal `parallel_results_fingerprint` bit for bit.
#[must_use]
pub fn batched_results_fingerprint(
    sys: &mut SpriteSystem,
    queries: &[Query],
    threads: usize,
) -> u128 {
    let prev = override_threads(threads);
    let fp = {
        let view = sys.query_view();
        let peers = view.peers();
        let memo = view.resolve_routes(
            queries
                .iter()
                .enumerate()
                .map(|(i, q)| (peers[i % peers.len()], q)),
        );
        let per: Vec<(u128, NetStats)> =
            par_map_init(queries, RankScratch::new, |scratch, i, q| {
                let mut delta = NetStats::new();
                let hits =
                    view.query_batched(peers[i % peers.len()], q, 10, &memo, &mut delta, scratch);
                (fingerprint_hits(&hits), delta)
            });
        let mut h = Md5::new();
        let mut total = NetStats::new();
        for (hits_fp, delta) in &per {
            feed_u128(&mut h, *hits_fp);
            total.merge(delta);
        }
        feed_u128(&mut h, fingerprint_stats(&total));
        h.finalize().as_u128()
    };
    override_threads(prev);
    fp
}

/// MD5 over a merged [`TraceRecorder`]: per-phase and per-kind event
/// counts, per-kind payload bytes, query totals, and all three cost
/// histograms (bucket layout, every bucket, count/sum/max — exact
/// integers, no summarization).
#[must_use]
pub fn fingerprint_recorder(rec: &TraceRecorder) -> u128 {
    let mut h = Md5::new();
    for phase in Phase::all() {
        feed_u64(&mut h, rec.phase_count(phase));
    }
    for kind in MsgKind::all() {
        feed_u64(&mut h, rec.kind_count(kind));
    }
    for kind in MsgKind::all() {
        feed_u64(&mut h, rec.kind_bytes(kind));
    }
    feed_u64(&mut h, rec.events());
    feed_u64(&mut h, rec.queries());
    for hist in [
        rec.hops_per_lookup(),
        rec.messages_per_query(),
        rec.replicas_probed(),
    ] {
        feed_u64(&mut h, hist.len() as u64);
        for &b in hist.buckets() {
            feed_u64(&mut h, b);
        }
        feed_u64(&mut h, hist.count());
        feed_u64(&mut h, hist.sum());
        feed_u64(&mut h, hist.max());
    }
    h.finalize().as_u128()
}

/// The traced twin of [`parallel_results_fingerprint`]: the same
/// frozen-view fan-out with a private [`TraceRecorder`] per query, merged
/// in input order alongside the stats deltas. Returns
/// `(results fingerprint, recorder fingerprint)`.
///
/// The observability contract this function audits: the first element must
/// equal the *untraced* fingerprint exactly (tracing only observes — every
/// traced helper charges through the same code path as its untraced twin),
/// and both elements must be bit-identical at any worker count (the
/// recorder's merge is commutative and the fold order is fixed).
#[must_use]
pub fn traced_parallel_fingerprints(
    sys: &mut SpriteSystem,
    queries: &[Query],
    threads: usize,
) -> (u128, u128) {
    let prev = override_threads(threads);
    let out = {
        let view = sys.query_view();
        let peers = view.peers();
        let per: Vec<(u128, NetStats, TraceRecorder)> =
            par_map_init(queries, RankScratch::new, |scratch, i, q| {
                let mut delta = NetStats::new();
                let mut rec = TraceRecorder::new();
                let hits = view.query_traced(
                    peers[i % peers.len()],
                    q,
                    10,
                    &mut delta,
                    scratch,
                    i as u64,
                    &mut rec,
                );
                (fingerprint_hits(&hits), delta, rec)
            });
        let mut h = Md5::new();
        let mut total = NetStats::new();
        let mut trace = TraceRecorder::new();
        for (hits_fp, delta, rec) in &per {
            feed_u128(&mut h, *hits_fp);
            total.merge(delta);
            trace.merge(rec);
        }
        feed_u128(&mut h, fingerprint_stats(&total));
        (h.finalize().as_u128(), fingerprint_recorder(&trace))
    };
    override_threads(prev);
    out
}

/// Outcome of the batched-vs-unbatched publication equivalence audit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchingAudit {
    /// Published index contents are bit-identical across modes.
    pub index_match: bool,
    /// Per-kind payload byte totals are equal across modes (records are
    /// encoded independently, so a batch's size is the sum of its records).
    pub bytes_match: bool,
    /// Batching strictly reduced the publish + replication message count.
    pub fewer_messages: bool,
    /// Replay fingerprint over both runs' index and stats state.
    pub fingerprint: u128,
}

impl BatchingAudit {
    /// True when every clause of the batching contract holds.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.index_match && self.bytes_match && self.fewer_messages
    }
}

/// Publish the reference corpus twice from `seed` — once with
/// [`SpriteConfig::batched_publish`] on, once off — and audit the batching
/// contract: identical index contents, equal per-kind payload bytes,
/// strictly fewer publish/replication messages. Replication degree 2 so
/// both the publish and the replica legs of the batch are exercised.
#[must_use]
pub fn audit_batching(seed: u64) -> BatchingAudit {
    let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(seed));
    let build = |batched: bool| {
        let cfg = SpriteConfig {
            replication: 2,
            batched_publish: batched,
            ..SpriteConfig::default()
        };
        let mut sys = SpriteSystem::build(sc.corpus().clone(), 24, cfg, seed);
        sys.publish_all();
        sys
    };
    let on = build(true);
    let off = build(false);
    let data_msgs = |sys: &SpriteSystem| {
        sys.net().stats().count(MsgKind::IndexPublish)
            + sys.net().stats().count(MsgKind::Replication)
    };
    let kind_bytes = |sys: &SpriteSystem| -> Vec<u64> {
        MsgKind::all()
            .iter()
            .map(|&k| sys.net().stats().bytes(k))
            .collect()
    };
    let mut h = Md5::new();
    for fp in [
        fingerprint_index(&on),
        fingerprint_index(&off),
        fingerprint_stats(on.net().stats()),
        fingerprint_stats(off.net().stats()),
    ] {
        feed_u128(&mut h, fp);
    }
    BatchingAudit {
        index_match: fingerprint_index(&on) == fingerprint_index(&off),
        bytes_match: kind_bytes(&on) == kind_bytes(&off),
        fewer_messages: data_msgs(&on) < data_msgs(&off),
        fingerprint: h.finalize().as_u128(),
    }
}

/// Outcome of the network-model simulation audit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimAudit {
    /// An explicitly-installed perfect model (different sim seed, bigger
    /// retry budget — none of which a perfect link ever samples)
    /// reproduced the default lockstep deployment bit for bit.
    pub zero_loss_match: bool,
    /// Two lossy runs from the same seed produced identical indexes,
    /// ranked lists, and stats.
    pub lossy_replay_match: bool,
    /// The lossy evaluation is bit-identical at 1 vs 4 pool workers (the
    /// link fate is a pure hash of the endpoints, not an RNG stream).
    pub lossy_parallel_match: bool,
    /// The lossy run billed at least one real [`MsgKind::Timeout`].
    pub timeouts_fired: bool,
    /// Replay fingerprint over the baseline, perfect, and lossy runs.
    pub fingerprint: u128,
}

impl SimAudit {
    /// True when every clause of the delivery-layer contract holds.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.zero_loss_match
            && self.lossy_replay_match
            && self.lossy_parallel_match
            && self.timeouts_fired
    }
}

/// Audit the event-driven delivery layer: build and evaluate one
/// deployment per network model — the default (no model), an explicit
/// perfect model, and a lossy latency/jitter/asymmetry model — and check
/// the two halves of the tentpole contract: a perfect model changes
/// *nothing* (bit-identity with the default lockstep run), and a lossy
/// model changes things *deterministically* (same seed ⇒ same drops, same
/// retries, same partial results, at any worker count) while billing real
/// timeouts.
#[must_use]
pub fn audit_sim(seed: u64) -> SimAudit {
    let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(seed));
    let queries: Vec<Query> = sc
        .seed_queries()
        .iter()
        .take(8)
        .map(|s| s.query.clone())
        .collect();
    let run = |sim: SimConfig, threads: usize| -> (u128, u64) {
        let cfg = SpriteConfig {
            replication: 2,
            ..SpriteConfig::default()
        };
        let mut sys = SpriteSystem::build(sc.corpus().clone(), 24, cfg, seed);
        sys.net_mut().set_sim(sim);
        sys.publish_all();
        sys.replicate_indexes();
        let mut h = Md5::new();
        feed_u128(&mut h, fingerprint_index(&sys));
        feed_u128(
            &mut h,
            parallel_results_fingerprint(&mut sys, &queries, threads),
        );
        feed_u128(&mut h, fingerprint_stats(sys.net().stats()));
        (
            h.finalize().as_u128(),
            sys.net().stats().count(MsgKind::Timeout),
        )
    };
    let baseline = run(SimConfig::default(), 4);
    let perfect = run(
        SimConfig {
            seed: seed ^ 0xab5e,
            max_retries: 7,
            ..SimConfig::default()
        },
        4,
    );
    let lossy_cfg = SimConfig {
        seed,
        latency: 2,
        jitter: 3,
        asymmetry: 1,
        loss: 0.05,
        max_retries: 3,
    };
    let lossy_seq = run(lossy_cfg, 1);
    let lossy_a = run(lossy_cfg, 4);
    let lossy_b = run(lossy_cfg, 4);
    let mut h = Md5::new();
    for fp in [baseline.0, perfect.0, lossy_a.0] {
        feed_u128(&mut h, fp);
    }
    SimAudit {
        zero_loss_match: baseline.0 == perfect.0,
        lossy_replay_match: lossy_a.0 == lossy_b.0,
        lossy_parallel_match: lossy_seq.0 == lossy_a.0,
        timeouts_fired: lossy_a.1 > 0,
        fingerprint: h.finalize().as_u128(),
    }
}

/// Outcome of the storage-representation audit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageAudit {
    /// The map and arena node stores produced bit-identical rings through
    /// an identical build + churn + repair schedule.
    pub ring_backends_match: bool,
    /// Packed (delta-gap-compressed) and plain posting lists produced
    /// bit-identical index fingerprints through publish, replication,
    /// learning, and hand-over.
    pub index_packing_match: bool,
    /// Ranked lists and billed stats are bit-identical across the two
    /// posting representations.
    pub results_match: bool,
    /// Two scale-tier runs (arena + packed, the defaults) from the same
    /// seed replayed bit for bit.
    pub replay_match: bool,
    /// Replay fingerprint over the scale-tier run.
    pub fingerprint: u128,
}

impl StorageAudit {
    /// True when every clause of the representation contract holds.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.ring_backends_match
            && self.index_packing_match
            && self.results_match
            && self.replay_match
    }
}

/// Audit the scale-tier storage representations: the arena node store
/// against the historical map, and delta-gap-compressed posting lists
/// against the plain layout. Both swaps must be *invisible* — same ring
/// fingerprints through an identical churn schedule, same index and
/// ranked-list fingerprints through publish/replicate/learn/hand-over —
/// and the scale-tier defaults must replay bit for bit from the same
/// seed. The ≥100k-peer tier itself is exercised by the `scale` smoke
/// runner; this audit proves the representations it relies on are exact
/// at a speed a unit test can afford.
#[must_use]
pub fn audit_storage(seed: u64) -> StorageAudit {
    // Ring side: identical build + churn + repair schedule on both
    // backends, fingerprinted after every mutation batch.
    let ring_fp = |backend: StorageBackend| {
        let cfg = ChordConfig {
            backend,
            ..ChordConfig::default()
        };
        let mut net = ChordNet::with_random_nodes(cfg, 96, seed);
        let ids = net.node_ids();
        let mut h = Md5::new();
        feed_u128(&mut h, fingerprint_ring(&net));
        for id in ids.iter().step_by(11) {
            net.fail(*id).expect("listed node is alive");
        }
        net.converge(64);
        feed_u128(&mut h, fingerprint_ring(&net));
        for i in 0..8u64 {
            let id =
                sprite_util::RingId::hash_bytes(format!("storage-audit-{seed}-{i}").as_bytes());
            let bootstrap = net.node_ids()[0];
            net.join(id, bootstrap).expect("bootstrap is alive");
        }
        net.converge(64);
        feed_u128(&mut h, fingerprint_ring(&net));
        h.finalize().as_u128()
    };
    let ring_map = ring_fp(StorageBackend::Map);
    let ring_arena = ring_fp(StorageBackend::Arena);

    // Index side: one full deployment per posting representation, through
    // every path that touches a posting list — publish, replication,
    // learning, abrupt failure with hand-over/repair — then queries.
    let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(seed));
    let queries: Vec<Query> = sc
        .seed_queries()
        .iter()
        .take(8)
        .map(|s| s.query.clone())
        .collect();
    let run = |packed: bool| -> (u128, u128) {
        let cfg = SpriteConfig {
            replication: 2,
            packed_postings: packed,
            ..SpriteConfig::default()
        };
        let mut sys = SpriteSystem::build(sc.corpus().clone(), 24, cfg, seed);
        sys.publish_all();
        sys.replicate_indexes();
        sys.learning_iteration();
        sys.fail_random_peers(2, seed.wrapping_add(1));
        (
            fingerprint_index(&sys),
            parallel_results_fingerprint(&mut sys, &queries, 4),
        )
    };
    let packed_a = run(true);
    let plain = run(false);
    let packed_b = run(true);

    let mut h = Md5::new();
    for fp in [ring_map, ring_arena, packed_a.0, packed_a.1] {
        feed_u128(&mut h, fp);
    }
    StorageAudit {
        ring_backends_match: ring_map == ring_arena,
        index_packing_match: packed_a.0 == plain.0,
        results_match: packed_a.1 == plain.1,
        replay_match: packed_a == packed_b,
        fingerprint: h.finalize().as_u128(),
    }
}

/// Outcome of the live-corpus lifecycle audit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LifecycleAudit {
    /// Two full document-churn runs from the same seed replayed bit for
    /// bit (index, owner state, ranked lists, stats).
    pub replay_match: bool,
    /// The post-churn evaluation is bit-identical at 1 vs 4 pool workers.
    pub parallel_match: bool,
    /// The map node store reproduced the arena default through the full
    /// insert/update/delete lifecycle.
    pub backends_match: bool,
    /// No query — issued mid-churn with tombstones still pending, or
    /// after the closing maintenance round — surfaced a deleted document.
    pub no_resurrection: bool,
    /// The closing maintenance round reclaimed every pending tombstone.
    pub tombstones_cleared: bool,
    /// Replay fingerprint over the default run.
    pub fingerprint: u128,
}

impl LifecycleAudit {
    /// True when every clause of the lifecycle contract holds.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.replay_match
            && self.parallel_match
            && self.backends_match
            && self.no_resurrection
            && self.tombstones_cleared
    }
}

/// Audit the live-corpus lifecycle: a seeded document-churn run
/// (topic-shaped inserts, incremental updates, lazy deletions) over a
/// replicated deployment, with maintenance rounds interleaved and queries
/// issued between mutations. The contract has two halves: the mutation
/// stream is *deterministic* (same seed ⇒ same mutated index, ranked
/// lists, and stats, at any worker count and on either node-store
/// backend), and deletion is *airtight* (no query ever surfaces a deleted
/// document — not while its tombstones are pending, not after replica
/// repair — and the closing maintenance round clears every tombstone).
#[must_use]
pub fn audit_lifecycle(seed: u64) -> LifecycleAudit {
    let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(seed));
    let queries: Vec<Query> = sc
        .seed_queries()
        .iter()
        .take(8)
        .map(|s| s.query.clone())
        .collect();
    let run = |backend: StorageBackend, threads: usize| -> (u128, u64, u64) {
        let cfg = SpriteConfig {
            replication: 2,
            ..SpriteConfig::default()
        };
        let mut sys = SpriteSystem::build_with_backend(sc.corpus().clone(), 24, cfg, seed, backend);
        sys.publish_all();
        sys.replicate_indexes();
        let mut engine = DocChurnEngine::new(
            DocChurnConfig {
                insert_rate: 1.0,
                update_rate: 2.0,
                delete_rate: 1.0,
                min_docs: 8,
            },
            seed.wrapping_add(3),
            &sc,
        );
        let mut deleted_hits = 0u64;
        for tick in 0..4 {
            let live = sys.live_docs();
            let events = engine.plan(&live, sys.corpus().len());
            sys.apply_doc_events(&events);
            if tick % 2 == 1 {
                sys.maintenance_round();
            }
            // Query between mutations: even with tombstones still
            // pending, no deleted document may surface.
            for q in &queries {
                for hit in sys.issue_query(q, 10) {
                    deleted_hits += u64::from(sys.is_deleted(hit.doc));
                }
            }
        }
        sys.maintenance_round();
        let pending = sys.pending_tombstones() as u64;
        let mut h = Md5::new();
        feed_u128(&mut h, fingerprint_index(&sys));
        feed_u128(&mut h, fingerprint_owners(&sys));
        feed_u128(
            &mut h,
            parallel_results_fingerprint(&mut sys, &queries, threads),
        );
        feed_u128(&mut h, fingerprint_stats(sys.net().stats()));
        (h.finalize().as_u128(), deleted_hits, pending)
    };
    let default_a = run(StorageBackend::default(), 4);
    let default_b = run(StorageBackend::default(), 4);
    let sequential = run(StorageBackend::default(), 1);
    let map = run(StorageBackend::Map, 4);
    LifecycleAudit {
        replay_match: default_a == default_b,
        parallel_match: sequential.0 == default_a.0,
        backends_match: map.0 == default_a.0,
        no_resurrection: default_a.1 == 0 && map.1 == 0,
        tombstones_cleared: default_a.2 == 0 && map.2 == 0,
        fingerprint: default_a.0,
    }
}

/// Run the reference experiment once, fingerprinting after every stage.
///
/// The experiment is deliberately small (a tiny corpus on 24 peers) but
/// crosses every subsystem whose determinism matters: ring construction,
/// initial publishing, distributed ranking, a learning iteration, abrupt
/// peer failure with repair, and post-churn ranking.
#[must_use]
pub fn run_trace(seed: u64) -> Trace {
    let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(seed));
    let mut sys = SpriteSystem::build(sc.corpus().clone(), 24, SpriteConfig::default(), seed);
    let mut stages = Vec::new();
    stages.push(("ring/built", fingerprint_ring(sys.net())));

    sys.publish_all();
    stages.push(("index/published", fingerprint_index(&sys)));

    let queries: Vec<Query> = sc
        .seed_queries()
        .iter()
        .take(8)
        .map(|s| s.query.clone())
        .collect();
    let run_queries = |sys: &mut SpriteSystem| {
        let mut h = Md5::new();
        for q in &queries {
            feed_u128(&mut h, fingerprint_hits(&sys.issue_query(q, 10)));
        }
        h.finalize().as_u128()
    };
    stages.push(("results/initial", run_queries(&mut sys)));

    sys.learning_iteration();
    stages.push(("owners/learned", fingerprint_owners(&sys)));
    stages.push(("index/learned", fingerprint_index(&sys)));
    stages.push(("results/learned", run_queries(&mut sys)));

    sys.fail_random_peers(2, seed.wrapping_add(1));
    stages.push(("ring/churned", fingerprint_ring(sys.net())));
    stages.push(("results/churned", run_queries(&mut sys)));

    // Ninth stage: the parallel experiment engine. Four pool workers rank
    // the same queries against a frozen view; any scheduling leak into
    // results or merged stats diverges here.
    stages.push((
        "results/parallel",
        parallel_results_fingerprint(&mut sys, &queries, 4),
    ));

    // Tenth stage: the batched query pipeline. The same queries fan out
    // over four workers, but lookup destinations are resolved once for
    // the whole batch through a shared route memo and replayed into each
    // query's private stats delta. The throughput path earns its speedup
    // only if this fingerprint equals `results/parallel` exactly — the
    // auditor enforces that within-run, below.
    stages.push((
        "query/batched",
        batched_results_fingerprint(&mut sys, &queries, 4),
    ));

    // Eleventh and twelfth stages: the same parallel evaluation with the
    // observability layer switched on. Tracing is observation only, so
    // `results/traced` must equal `results/parallel` exactly — a
    // divergence means a traced helper charged differently from its
    // untraced twin. `trace/histograms` fingerprints the merged recorder
    // itself (phase/kind counts and all three cost histograms) at four
    // workers; the companion tests pin it against a one-thread run.
    let (traced_fp, recorder_fp) = traced_parallel_fingerprints(&mut sys, &queries, 4);
    stages.push(("results/traced", traced_fp));
    stages.push(("trace/histograms", recorder_fp));

    // Thirteenth stage: continuous churn with bounded stabilization and routed
    // failover. Three engine ticks interleaved with maintenance rounds
    // leave the ring deliberately unconverged; a parallel evaluation over
    // that damaged state must still be bit-reproducible.
    let mut engine = ChurnEngine::new(ChurnConfig::default(), seed.wrapping_add(2));
    for _ in 0..3 {
        sys.churn_tick(&mut engine);
        sys.maintenance_round();
    }
    stages.push((
        "results/churn-routed",
        parallel_results_fingerprint(&mut sys, &queries, 4),
    ));

    // Fourteenth stage: the wire/batching contract. Two fresh deployments
    // publish the same corpus with batching on and off; the fingerprint
    // covers both modes' index contents and full stats (message counts
    // *and* payload bytes), so any nondeterminism in the batch flush order
    // or a byte-accounting drift between the modes diverges here.
    stages.push(("wire/batching", audit_batching(seed).fingerprint));

    // Fifteenth stage: the event-driven delivery layer. Three fresh
    // deployments — default, explicit perfect model, lossy model — whose
    // fingerprint covers all three runs' indexes, ranked lists, and stats.
    // Nondeterministic drop sampling, a retry that consumes shared RNG
    // state, or a perfect model that perturbs the lockstep run all
    // diverge here.
    stages.push(("sim/loss", audit_sim(seed).fingerprint));

    // Sixteenth stage: the scale-tier storage representations. The arena
    // node store must mirror the map through churn, compressed postings
    // must fingerprint identically to plain through every index-mutating
    // path, and the scale-tier defaults must replay bit for bit.
    stages.push(("storage/packed", audit_storage(seed).fingerprint));

    // Seventeenth stage: live corpus dynamics. A seeded document-churn
    // run — topic-shaped inserts, incremental updates, lazy deletions
    // with interleaved maintenance — whose fingerprint covers the mutated
    // index, owner state, ranked lists, and stats. A victim pool drawn in
    // hash order, a tombstone that survives reclamation, or an update
    // diff that publishes differently across runs all diverge here.
    stages.push(("corpus/lifecycle", audit_lifecycle(seed).fingerprint));

    Trace { stages }
}

/// Run [`run_trace`] twice from the same seed and compare stage by stage.
///
/// Besides the replay check, the auditor enforces the observability
/// contract *within* each trace: the `results/traced` fingerprint must
/// equal `results/parallel` (tracing on vs off changes nothing), else the
/// report fails with `results/traced` as the divergent stage.
#[must_use]
pub fn audit_determinism(seed: u64) -> DeterminismReport {
    let a = run_trace(seed);
    let b = run_trace(seed);
    debug_assert_eq!(a.stages.len(), b.stages.len(), "traces have fixed shape");
    let replay_divergence = a
        .stages
        .iter()
        .zip(&b.stages)
        .find(|((_, ha), (_, hb))| ha != hb)
        .map(|(&(name, _), _)| name);
    let stage = |name: &str| {
        a.stages
            .iter()
            .find(|&&(n, _)| n == name)
            .map(|&(_, fp)| fp)
    };
    let tracing_divergence = match (stage("results/parallel"), stage("results/traced")) {
        (Some(plain), Some(traced)) if plain != traced => Some("results/traced"),
        _ => None,
    };
    // The batched-pipeline contract is also within-run: serving a query
    // through the shared route memo must reproduce the unbatched ranked
    // lists and stats exactly, else the throughput path is buying speed
    // with changed answers.
    let batched_divergence = match (stage("results/parallel"), stage("query/batched")) {
        (Some(plain), Some(batched)) if plain != batched => Some("query/batched"),
        _ => None,
    };
    // The batching contract is enforced *within* a run, like the tracing
    // contract: a batched deployment that drifts from its unbatched twin
    // (contents, bytes, or a failure to actually coalesce) fails the audit
    // even though both replays agree with each other.
    let batching_divergence = (!audit_batching(seed).passed()).then_some("wire/batching");
    // The delivery-layer contract too: perfect ⇒ bit-identical to the
    // default run, lossy ⇒ deterministic drops billed as real timeouts.
    let sim_divergence = (!audit_sim(seed).passed()).then_some("sim/loss");
    // The storage contract likewise: a backend or posting-representation
    // swap that is visible anywhere fails the audit even when both
    // replays agree with each other.
    let storage_divergence = (!audit_storage(seed).passed()).then_some("storage/packed");
    // And the lifecycle contract: a document-churn run whose replays
    // agree but that resurrects a deleted document, strands a tombstone,
    // or drifts across worker counts or backends fails the audit.
    let lifecycle_divergence = (!audit_lifecycle(seed).passed()).then_some("corpus/lifecycle");
    let first_divergence = replay_divergence
        .or(batched_divergence)
        .or(tracing_divergence)
        .or(batching_divergence)
        .or(sim_divergence)
        .or(storage_divergence)
        .or(lifecycle_divergence);
    DeterminismReport {
        passed: first_divergence.is_none(),
        first_divergence,
        stages: a.stages.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_runs_from_one_seed_agree() {
        let report = audit_determinism(2026);
        assert!(
            report.passed,
            "first divergent stage: {:?}",
            report.first_divergence
        );
        assert_eq!(report.stages, 17);
    }

    #[test]
    fn lifecycle_audit_upholds_the_lifecycle_contract() {
        let audit = audit_lifecycle(2026);
        assert!(audit.replay_match, "document-churn replay diverged");
        assert!(
            audit.parallel_match,
            "the post-churn evaluation depends on the worker count"
        );
        assert!(
            audit.backends_match,
            "the node-store backend leaked into the lifecycle run"
        );
        assert!(audit.no_resurrection, "a query surfaced a deleted document");
        assert!(
            audit.tombstones_cleared,
            "tombstones survived the closing maintenance round"
        );
    }

    #[test]
    fn storage_audit_upholds_the_representation_contract() {
        let audit = audit_storage(2026);
        assert!(
            audit.ring_backends_match,
            "the arena node store diverged from the map through churn"
        );
        assert!(
            audit.index_packing_match,
            "compressed postings fingerprint differently from plain"
        );
        assert!(
            audit.results_match,
            "the posting representation leaked into ranked lists or stats"
        );
        assert!(audit.replay_match, "scale-tier replay diverged");
    }

    #[test]
    fn sim_audit_upholds_the_delivery_contract() {
        let audit = audit_sim(2026);
        assert!(
            audit.zero_loss_match,
            "an explicit perfect model perturbed the lockstep run"
        );
        assert!(audit.lossy_replay_match, "lossy replay diverged");
        assert!(
            audit.lossy_parallel_match,
            "lossy evaluation depends on the worker count"
        );
        assert!(audit.timeouts_fired, "the lossy run billed no timeouts");
    }

    #[test]
    fn batched_publication_is_equivalent_and_cheaper() {
        let audit = audit_batching(2026);
        assert!(audit.index_match, "batching changed published contents");
        assert!(audit.bytes_match, "batching changed per-kind payload bytes");
        assert!(
            audit.fewer_messages,
            "batching failed to reduce the publish message count"
        );
    }

    #[test]
    fn tracing_on_matches_tracing_off_fingerprints() {
        // The observability contract, stated directly: within one trace,
        // the traced parallel evaluation fingerprints exactly like the
        // untraced one — same ranked lists, same merged stats.
        let trace = run_trace(2026);
        let get = |name: &str| {
            trace
                .stages
                .iter()
                .find(|&&(n, _)| n == name)
                .map(|&(_, fp)| fp)
                .expect("stage present")
        };
        assert_eq!(
            get("results/parallel"),
            get("results/traced"),
            "enabling tracing changed results or stats"
        );
    }

    #[test]
    fn tracing_histograms_are_thread_count_invariant() {
        // One pool worker vs four: the merged recorder (phase/kind counts
        // and every histogram bucket) must be bit-identical, and so must
        // the traced results fingerprint.
        let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(55));
        let mut sys = SpriteSystem::build(sc.corpus().clone(), 24, SpriteConfig::default(), 55);
        sys.publish_all();
        let queries: Vec<Query> = sc
            .seed_queries()
            .iter()
            .take(12)
            .map(|s| s.query.clone())
            .collect();
        let (res1, rec1) = traced_parallel_fingerprints(&mut sys, &queries, 1);
        let (res4, rec4) = traced_parallel_fingerprints(&mut sys, &queries, 4);
        assert_eq!(res1, res4, "worker count leaked into traced results");
        assert_eq!(rec1, rec4, "worker count leaked into the recorder");
    }

    #[test]
    fn parallel_evaluation_matches_sequential_bit_for_bit() {
        // threads = 1 is the plain sequential loop (no threads spawned);
        // threads = 4 must reproduce its results and merged stats exactly.
        let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(77));
        let mut sys = SpriteSystem::build(sc.corpus().clone(), 24, SpriteConfig::default(), 77);
        sys.publish_all();
        let queries: Vec<Query> = sc
            .seed_queries()
            .iter()
            .take(12)
            .map(|s| s.query.clone())
            .collect();
        let seq = parallel_results_fingerprint(&mut sys, &queries, 1);
        let par = parallel_results_fingerprint(&mut sys, &queries, 4);
        assert_eq!(seq, par, "worker count leaked into results or stats");
    }

    #[test]
    fn churned_parallel_evaluation_matches_sequential_bit_for_bit() {
        // The churn acceptance bar: after continuous churn with bounded
        // stabilization (stale fingers, dead successor entries) and routed
        // failover, evaluation is still bit-identical at 1 vs 4 workers.
        let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(91));
        let cfg = SpriteConfig {
            replication: 3,
            ..SpriteConfig::default()
        };
        let mut sys = SpriteSystem::build(sc.corpus().clone(), 24, cfg, 91);
        sys.publish_all();
        sys.replicate_indexes();
        let mut engine = ChurnEngine::new(ChurnConfig::default(), 92);
        for _ in 0..4 {
            sys.churn_tick(&mut engine);
            sys.maintenance_round();
        }
        let queries: Vec<Query> = sc
            .seed_queries()
            .iter()
            .take(12)
            .map(|s| s.query.clone())
            .collect();
        let seq = parallel_results_fingerprint(&mut sys, &queries, 1);
        let par = parallel_results_fingerprint(&mut sys, &queries, 4);
        assert_eq!(seq, par, "churned evaluation depends on worker count");
    }

    #[test]
    fn batched_pipeline_matches_unbatched_bit_for_bit() {
        // The fourteenth-stage contract, stated directly: serving every
        // query through one shared route memo reproduces the unbatched
        // fan-out exactly — ranked lists and merged stats — at any worker
        // count, including over a churned ring where some walks fail.
        let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(83));
        let cfg = SpriteConfig {
            replication: 2,
            ..SpriteConfig::default()
        };
        let mut sys = SpriteSystem::build(sc.corpus().clone(), 24, cfg, 83);
        sys.publish_all();
        sys.replicate_indexes();
        let queries: Vec<Query> = sc
            .seed_queries()
            .iter()
            .take(12)
            .map(|s| s.query.clone())
            .collect();
        let plain = parallel_results_fingerprint(&mut sys, &queries, 4);
        assert_eq!(
            batched_results_fingerprint(&mut sys, &queries, 1),
            plain,
            "batched pipeline diverged at one worker"
        );
        assert_eq!(
            batched_results_fingerprint(&mut sys, &queries, 4),
            plain,
            "batched pipeline diverged at four workers"
        );
        sys.fail_random_peers(3, 84);
        let churned_plain = parallel_results_fingerprint(&mut sys, &queries, 4);
        assert_eq!(
            batched_results_fingerprint(&mut sys, &queries, 4),
            churned_plain,
            "batched pipeline diverged over a churned ring"
        );
    }

    #[test]
    fn batched_stage_is_present_and_agrees_within_a_run() {
        let trace = run_trace(2026);
        let get = |name: &str| {
            trace
                .stages
                .iter()
                .find(|&&(n, _)| n == name)
                .map(|&(_, fp)| fp)
                .expect("stage present")
        };
        assert_eq!(
            get("query/batched"),
            get("results/parallel"),
            "batched pipeline changed results or stats"
        );
    }

    #[test]
    fn different_seeds_diverge_at_the_start() {
        let a = run_trace(1);
        let b = run_trace(2);
        assert_ne!(a.stages[0].1, b.stages[0].1, "ring should differ by seed");
    }
}
