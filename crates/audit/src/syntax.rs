//! A lightweight item and call-site extractor over [`crate::lex`] tokens.
//!
//! This is *not* a Rust parser: it recovers exactly the shape the audit
//! rules in [`crate::rules`] need — functions (with their impl owner and
//! body extent), struct fields and their types, enum variants, `use`
//! declarations, and every call site inside a function body classified by
//! how its receiver is spelled. Resolution is name-keyed and best-effort
//! by design: the workspace's conventions (one impl per file-local type,
//! unambiguous method names on the hot path) make that precise enough for
//! taint analysis, and the rules treat unresolvable receivers
//! conservatively.
//!
//! The repository convention that test code lives in a `#[cfg(test)]`
//! module at the bottom of each file is load-bearing here, exactly as it
//! was for the old line scanner: everything from the first `#[cfg(test)]`
//! attribute to the end of the file is marked as test code and excluded
//! from content rules and from the call graph.

use crate::lex::{lex, Token, TokenKind};

/// How a call site's receiver is spelled at the call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Recv {
    /// `self.name(…)` — a method on the enclosing impl type.
    SelfCall,
    /// `x.name(…)` or `….x.name(…)` — a method on a named binding or
    /// field; the string is the identifier immediately left of the dot.
    Named(String),
    /// `expr.name(…)` where the receiver is not a plain identifier
    /// (a call result, an index expression, a parenthesized chain …).
    Method,
    /// `Qual::name(…)` — a path call; the string is the path segment
    /// immediately left of the `::`.
    Path(String),
    /// `name(…)` with no receiver — a free-function call.
    Free,
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Callee name as written.
    pub name: String,
    /// Receiver classification.
    pub recv: Recv,
    /// 1-based source line.
    pub line: u32,
}

/// A `Path::Segment` pair that is *not* a call (no `(` follows), e.g. an
/// enum variant construction or an associated constant.
#[derive(Clone, Debug)]
pub struct PathPair {
    /// The qualifier (`MsgKind` in `MsgKind::Timeout`).
    pub qual: String,
    /// The segment (`Timeout`).
    pub name: String,
    /// 1-based source line.
    pub line: u32,
}

/// A function (free or associated) with everything the rules inspect.
#[derive(Clone, Debug)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// Enclosing impl/trait type, when directly inside one.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True when the function sits inside the file's `#[cfg(test)]` tail.
    pub in_test: bool,
    /// Body extent as a `[start, end)` range of significant-token indices.
    pub body: (usize, usize),
    /// Every call site in the body.
    pub calls: Vec<CallSite>,
    /// Every non-call `Qual::Name` pair in the body.
    pub path_pairs: Vec<PathPair>,
    /// Every `.field` read (dot followed by an identifier that is not a
    /// call) in the body, with lines.
    pub field_reads: Vec<(String, u32)>,
    /// Identifiers bound to `HashMap`s in this function's parameters or
    /// `let` bindings.
    pub hashmap_locals: Vec<String>,
    /// `for … in <ident>`-style iteration sites over a plain identifier or
    /// `self.field`, which have no method call to classify.
    pub for_iterations: Vec<(String, u32)>,
}

/// One struct field.
#[derive(Clone, Debug)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// 1-based line of the field.
    pub line: u32,
    /// Identifier tokens of the field's type, in order (`Vec`, `RingId` …).
    pub type_idents: Vec<String>,
}

/// A struct definition (only brace-form structs carry fields).
#[derive(Clone, Debug)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// True when the definition sits in the `#[cfg(test)]` tail.
    pub in_test: bool,
    /// Named fields.
    pub fields: Vec<FieldDef>,
}

/// An enum definition with its variant names.
#[derive(Clone, Debug)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// True when the definition sits in the `#[cfg(test)]` tail.
    pub in_test: bool,
    /// Variant names with their lines.
    pub variants: Vec<(String, u32)>,
}

/// The extracted model of one source file.
#[derive(Clone, Debug)]
pub struct FileModel {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Raw source text.
    pub src: String,
    /// All tokens, including trivia.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the significant (non-trivia) tokens.
    pub sig: Vec<usize>,
    /// Significant-token index where the `#[cfg(test)]` tail begins
    /// (`sig.len()` when the file has none).
    pub test_from: usize,
    /// Functions, in source order.
    pub fns: Vec<FnInfo>,
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Enum definitions.
    pub enums: Vec<EnumDef>,
}

impl FileModel {
    /// Text of significant token `i` (indices as used in [`FnInfo::body`]).
    #[must_use]
    pub fn sig_text(&self, i: usize) -> &str {
        self.tokens[self.sig[i]].text(&self.src)
    }

    /// Kind of significant token `i`.
    #[must_use]
    pub fn sig_kind(&self, i: usize) -> TokenKind {
        self.tokens[self.sig[i]].kind
    }

    /// Line of significant token `i`.
    #[must_use]
    pub fn sig_line(&self, i: usize) -> u32 {
        self.tokens[self.sig[i]].line
    }

    /// Parse `src` into a model. Never fails: unparseable regions simply
    /// contribute no items.
    #[must_use]
    pub fn parse(rel: &str, src: &str) -> FileModel {
        let tokens = lex(src);
        let sig: Vec<usize> = (0..tokens.len())
            .filter(|&i| !tokens[i].is_trivia())
            .collect();
        let mut model = FileModel {
            rel: rel.to_string(),
            src: src.to_string(),
            tokens,
            sig,
            test_from: 0,
            fns: Vec::new(),
            structs: Vec::new(),
            enums: Vec::new(),
        };
        model.test_from = model.find_test_cutoff();
        Parser::new(&mut model).run();
        model
    }

    /// First significant index of a `#[cfg(test)]` attribute, or
    /// `sig.len()`.
    fn find_test_cutoff(&self) -> usize {
        let n = self.sig.len();
        for i in 0..n {
            let seq = ["#", "[", "cfg", "(", "test", ")", "]"];
            if i + seq.len() <= n
                && seq
                    .iter()
                    .enumerate()
                    .all(|(k, s)| self.sig_text(i + k) == *s)
            {
                return i;
            }
        }
        n
    }
}

/// Does the token text list `types` look HashMap-typed?
#[must_use]
pub fn is_hashmap_type(types: &[String]) -> bool {
    types.first().is_some_and(|t| t == "HashMap")
        || (types
            .first()
            .is_some_and(|t| t == "std" || t == "collections")
            && types.iter().any(|t| t == "HashMap"))
}

struct Parser<'m> {
    m: &'m mut FileModel,
    /// (type name, brace depth of the impl/trait body).
    owners: Vec<(String, usize)>,
    depth: usize,
    i: usize,
}

impl<'m> Parser<'m> {
    fn new(m: &'m mut FileModel) -> Self {
        Parser {
            m,
            owners: Vec::new(),
            depth: 0,
            i: 0,
        }
    }

    fn len(&self) -> usize {
        self.m.sig.len()
    }

    fn text(&self, i: usize) -> &str {
        self.m.sig_text(i)
    }

    fn kind(&self, i: usize) -> TokenKind {
        self.m.sig_kind(i)
    }

    fn line(&self, i: usize) -> u32 {
        self.m.sig_line(i)
    }

    fn is_ident(&self, i: usize) -> bool {
        i < self.len() && self.kind(i) == TokenKind::Ident
    }

    /// Index of the matching close brace for the open brace at `open`
    /// (returns `len()` when unbalanced).
    fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < self.len() {
            match self.text(i) {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.len()
    }

    fn run(&mut self) {
        while self.i < self.len() {
            let t = self.text(self.i).to_string();
            match t.as_str() {
                "{" => {
                    self.depth += 1;
                    self.i += 1;
                }
                "}" => {
                    self.depth = self.depth.saturating_sub(1);
                    while let Some(&(_, d)) = self.owners.last() {
                        if d > self.depth {
                            self.owners.pop();
                        } else {
                            break;
                        }
                    }
                    self.i += 1;
                }
                "impl" | "trait" => self.enter_owner(),
                "struct" => self.parse_struct(),
                "enum" => self.parse_enum(),
                "fn" => self.parse_fn(),
                "macro_rules" => self.skip_macro_rules(),
                _ => self.i += 1,
            }
        }
    }

    /// `impl … {` / `trait Name {`: record the implemented/declared type
    /// and step into the body so member fns pick up their owner.
    fn enter_owner(&mut self) {
        let start = self.i;
        let mut j = self.i + 1;
        let mut after_for: Option<usize> = None;
        while j < self.len() && self.text(j) != "{" && self.text(j) != ";" {
            if self.text(j) == "for" {
                after_for = Some(j + 1);
            }
            j += 1;
        }
        if j >= self.len() || self.text(j) != "{" {
            self.i = j.min(self.len());
            return;
        }
        // The type path starts after `for` when present, else after the
        // generics that follow the keyword.
        let mut k = after_for.unwrap_or_else(|| {
            let mut k = start + 1;
            if k < self.len() && self.text(k) == "<" {
                let mut angle = 0i32;
                while k < j {
                    match self.text(k) {
                        "<" => angle += 1,
                        ">" => {
                            angle -= 1;
                            if angle == 0 {
                                k += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            k
        });
        // Skip `&`, `mut`, `dyn`, lifetimes; take the last path segment
        // before generic arguments open.
        let mut name = String::new();
        while k < j {
            match self.text(k) {
                "&" | "mut" | "dyn" => k += 1,
                "<" | "where" => break,
                "::" | ":" => k += 1,
                _ if self.kind(k) == TokenKind::Lifetime => k += 1,
                _ if self.is_ident(k) => {
                    name = self.text(k).to_string();
                    k += 1;
                }
                _ => break,
            }
        }
        self.depth += 1;
        if !name.is_empty() {
            self.owners.push((name, self.depth));
        }
        self.i = j + 1;
    }

    fn parse_struct(&mut self) {
        let kw = self.i;
        if !self.is_ident(kw + 1) {
            self.i += 1;
            return;
        }
        let name = self.text(kw + 1).to_string();
        let line = self.line(kw);
        let in_test = kw >= self.m.test_from;
        // Find what follows the name (skipping generics): `{`, `(`, or `;`.
        let mut j = kw + 2;
        let mut angle = 0i32;
        while j < self.len() {
            match self.text(j) {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" | "(" | ";" if angle <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= self.len() || self.text(j) != "{" {
            // Tuple or unit struct: no named fields to record.
            self.m.structs.push(StructDef {
                name,
                line,
                in_test,
                fields: Vec::new(),
            });
            self.i = kw + 2;
            return;
        }
        let close = self.matching_brace(j);
        let mut fields = Vec::new();
        let mut k = j + 1;
        while k < close {
            // Skip attributes and visibility before a field name.
            if self.text(k) == "#" {
                // `#[…]` — skip to the matching `]`.
                let mut bracket = 0i32;
                while k < close {
                    match self.text(k) {
                        "[" => bracket += 1,
                        "]" => {
                            bracket -= 1;
                            if bracket == 0 {
                                k += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                continue;
            }
            if self.text(k) == "pub" {
                k += 1;
                if k < close && self.text(k) == "(" {
                    while k < close && self.text(k) != ")" {
                        k += 1;
                    }
                    k += 1;
                }
                continue;
            }
            if self.is_ident(k) && k + 1 < close && self.text(k + 1) == ":" {
                let fname = self.text(k).to_string();
                let fline = self.line(k);
                let mut type_idents = Vec::new();
                let mut t = k + 2;
                let mut nest = 0i32;
                while t < close {
                    match self.text(t) {
                        "<" | "(" | "[" => nest += 1,
                        ">" | ")" | "]" => nest -= 1,
                        "," if nest <= 0 => break,
                        "mut" | "dyn" | "impl" => {}
                        _ if self.is_ident(t) => type_idents.push(self.text(t).to_string()),
                        _ => {}
                    }
                    t += 1;
                }
                fields.push(FieldDef {
                    name: fname,
                    line: fline,
                    type_idents,
                });
                k = t + 1;
            } else {
                k += 1;
            }
        }
        self.m.structs.push(StructDef {
            name,
            line,
            in_test,
            fields,
        });
        self.i = close + 1;
    }

    fn parse_enum(&mut self) {
        let kw = self.i;
        if !self.is_ident(kw + 1) {
            self.i += 1;
            return;
        }
        let name = self.text(kw + 1).to_string();
        let in_test = kw >= self.m.test_from;
        let mut j = kw + 2;
        while j < self.len() && self.text(j) != "{" && self.text(j) != ";" {
            j += 1;
        }
        if j >= self.len() || self.text(j) != "{" {
            self.i = j.min(self.len());
            return;
        }
        let close = self.matching_brace(j);
        let mut variants = Vec::new();
        let mut k = j + 1;
        let mut expect_name = true;
        let mut nest = 0i32;
        while k < close {
            match self.text(k) {
                "#" => {
                    // Skip `#[…]` attribute.
                    let mut bracket = 0i32;
                    while k < close {
                        match self.text(k) {
                            "[" => bracket += 1,
                            "]" => {
                                bracket -= 1;
                                if bracket == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                "(" | "{" | "<" | "[" => {
                    nest += 1;
                    expect_name = false;
                }
                ")" | "}" | ">" | "]" => nest -= 1,
                "," if nest <= 0 => expect_name = true,
                _ if expect_name && self.is_ident(k) => {
                    variants.push((self.text(k).to_string(), self.line(k)));
                    expect_name = false;
                }
                _ => {}
            }
            k += 1;
        }
        self.m.enums.push(EnumDef {
            name,
            in_test,
            variants,
        });
        self.i = close + 1;
    }

    /// `macro_rules! name { … }` — skip the definition body entirely so
    /// macro match arms don't masquerade as items.
    fn skip_macro_rules(&mut self) {
        let mut j = self.i + 1;
        while j < self.len() && self.text(j) != "{" {
            j += 1;
        }
        if j >= self.len() {
            self.i = self.len();
            return;
        }
        self.i = self.matching_brace(j) + 1;
    }

    fn parse_fn(&mut self) {
        let kw = self.i;
        if !self.is_ident(kw + 1) {
            self.i += 1;
            return;
        }
        let name = self.text(kw + 1).to_string();
        let line = self.line(kw);
        let in_test = kw >= self.m.test_from;
        let owner = self
            .owners
            .last()
            .filter(|&&(_, d)| d == self.depth)
            .map(|(n, _)| n.clone());

        // Find the parameter list, skipping generics after the name.
        let mut j = kw + 2;
        if j < self.len() && self.text(j) == "<" {
            let mut angle = 0i32;
            while j < self.len() {
                match self.text(j) {
                    "<" => angle += 1,
                    ">" => {
                        angle -= 1;
                        if angle == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if j >= self.len() || self.text(j) != "(" {
            self.i = kw + 2;
            return;
        }
        // Parameters: collect `name: Type` pairs at paren depth 1.
        let mut hashmap_locals = Vec::new();
        let mut paren = 0i32;
        let params_start = j;
        while j < self.len() {
            match self.text(j) {
                "(" | "[" => paren += 1,
                ")" | "]" => {
                    paren -= 1;
                    if paren == 0 {
                        break;
                    }
                }
                ":" if paren == 1 && j > params_start && self.is_ident(j - 1) => {
                    let pname = self.text(j - 1).to_string();
                    let mut type_idents = Vec::new();
                    let mut t = j + 1;
                    let mut nest = 0i32;
                    while t < self.len() {
                        match self.text(t) {
                            "<" | "(" | "[" => nest += 1,
                            ">" | ")" | "]" => {
                                if nest == 0 {
                                    break;
                                }
                                nest -= 1;
                            }
                            "," if nest <= 0 => break,
                            "mut" | "dyn" | "impl" => {}
                            _ if self.is_ident(t) => type_idents.push(self.text(t).to_string()),
                            _ => {}
                        }
                        t += 1;
                    }
                    if is_hashmap_type(&type_idents) {
                        hashmap_locals.push(pname);
                    }
                }
                _ => {}
            }
            j += 1;
        }
        // Walk to the body `{` (or `;` for a bodyless declaration). Track
        // angle and bracket/paren nesting so `-> [u8; 4]` and generic
        // return types don't end the signature early.
        let mut b = j + 1;
        let mut angle = 0i32;
        let mut nest = 0i32;
        while b < self.len() {
            match self.text(b) {
                "<" => angle += 1,
                ">" => angle = (angle - 1).max(0),
                "(" | "[" => nest += 1,
                ")" | "]" => nest -= 1,
                "{" if angle == 0 && nest <= 0 => break,
                ";" if angle == 0 && nest <= 0 => {
                    // Declaration only (trait method without a default body).
                    self.m.fns.push(FnInfo {
                        name,
                        owner,
                        line,
                        in_test,
                        body: (b, b),
                        calls: Vec::new(),
                        path_pairs: Vec::new(),
                        field_reads: Vec::new(),
                        hashmap_locals,
                        for_iterations: Vec::new(),
                    });
                    self.i = b + 1;
                    return;
                }
                _ => {}
            }
            b += 1;
        }
        if b >= self.len() {
            self.i = b;
            return;
        }
        let close = self.matching_brace(b);
        let mut info = FnInfo {
            name,
            owner,
            line,
            in_test,
            body: (b, close),
            calls: Vec::new(),
            path_pairs: Vec::new(),
            field_reads: Vec::new(),
            hashmap_locals,
            for_iterations: Vec::new(),
        };
        self.scan_body(&mut info, b, close);
        self.m.fns.push(info);
        self.i = close + 1;
    }

    /// Scan a body for calls, path pairs, field reads, `let` HashMap
    /// bindings, and bare `for … in` iteration sites.
    fn scan_body(&mut self, info: &mut FnInfo, from: usize, to: usize) {
        let mut k = from;
        while k < to {
            let txt = self.text(k);
            if self.is_ident(k) && k + 1 < to {
                let next = self.text(k + 1);
                if next == "(" && txt != "fn" {
                    let prev = if k > 0 { self.text(k - 1) } else { "" };
                    let recv = if prev == "." {
                        let r2 = if k >= 2 { self.text(k - 2) } else { "" };
                        if r2 == "self" {
                            Recv::SelfCall
                        } else if k >= 2 && self.is_ident(k - 2) {
                            Recv::Named(r2.to_string())
                        } else {
                            Recv::Method
                        }
                    } else if prev == "::" {
                        if k >= 2 && self.is_ident(k - 2) {
                            Recv::Path(self.text(k - 2).to_string())
                        } else {
                            Recv::Method
                        }
                    } else if KEYWORDS.contains(&txt) {
                        k += 1;
                        continue;
                    } else {
                        Recv::Free
                    };
                    info.calls.push(CallSite {
                        name: txt.to_string(),
                        recv,
                        line: self.line(k),
                    });
                    k += 1;
                    continue;
                }
                // `Qual::Name` pair that is not a call.
                if next == "::" && k + 2 < to && self.is_ident(k + 2) {
                    let is_call = k + 3 < to && self.text(k + 3) == "(";
                    let continues = k + 3 < to && self.text(k + 3) == "::";
                    if !is_call && !continues {
                        info.path_pairs.push(PathPair {
                            qual: txt.to_string(),
                            name: self.text(k + 2).to_string(),
                            line: self.line(k + 2),
                        });
                    }
                }
                // `let [mut] name : Type` / `let [mut] name = HashMap::…`.
                if txt == "let" {
                    let mut n = k + 1;
                    if n < to && self.text(n) == "mut" {
                        n += 1;
                    }
                    if n + 1 < to && self.is_ident(n) {
                        let bind = self.text(n).to_string();
                        if self.text(n + 1) == ":" {
                            let mut type_idents = Vec::new();
                            let mut t = n + 2;
                            let mut nest = 0i32;
                            while t < to {
                                match self.text(t) {
                                    "<" | "(" | "[" => nest += 1,
                                    ">" | ")" | "]" => nest -= 1,
                                    "=" | ";" if nest <= 0 => break,
                                    "mut" | "dyn" | "impl" => {}
                                    _ if self.is_ident(t) => {
                                        type_idents.push(self.text(t).to_string());
                                    }
                                    _ => {}
                                }
                                t += 1;
                            }
                            if is_hashmap_type(&type_idents) {
                                info.hashmap_locals.push(bind);
                            }
                        } else if self.text(n + 1) == "="
                            && n + 2 < to
                            && self.text(n + 2) == "HashMap"
                        {
                            info.hashmap_locals.push(bind);
                        }
                    }
                }
                // `for pat in [&][mut] (self.field | ident) {` — an
                // iteration with no method call to hang a rule on.
                if txt == "in" {
                    let mut n = k + 1;
                    while n < to && (self.text(n) == "&" || self.text(n) == "mut") {
                        n += 1;
                    }
                    if n < to && self.text(n) == "self" && n + 2 < to && self.text(n + 1) == "." {
                        if self.is_ident(n + 2) && n + 3 < to && self.text(n + 3) == "{" {
                            info.for_iterations
                                .push((self.text(n + 2).to_string(), self.line(n + 2)));
                        }
                    } else if n + 1 < to
                        && self.is_ident(n)
                        && self.text(n + 1) == "{"
                        && !KEYWORDS.contains(&self.text(n))
                    {
                        info.for_iterations
                            .push((self.text(n).to_string(), self.line(n)));
                    }
                }
            } else if txt == "." && k + 1 < to && self.is_ident(k + 1) {
                let is_call = k + 2 < to && self.text(k + 2) == "(";
                if !is_call {
                    info.field_reads
                        .push((self.text(k + 1).to_string(), self.line(k + 1)));
                }
            }
            k += 1;
        }
    }
}

/// Identifier-shaped keywords that look like calls when followed by `(`.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "let", "else", "move", "unsafe",
    "box", "await", "yield",
];

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::parse("crates/demo/src/lib.rs", src)
    }

    #[test]
    fn functions_get_their_impl_owner() {
        let m = model(
            "struct Foo { n: u32 }\n\
             impl Foo {\n    fn get(&self) -> u32 { self.n }\n}\n\
             impl std::fmt::Display for Foo {\n    fn fmt(&self) -> u32 { helper() }\n}\n\
             fn helper() -> u32 { 0 }\n",
        );
        let owners: Vec<(String, Option<String>)> = m
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.owner.clone()))
            .collect();
        assert_eq!(
            owners,
            [
                ("get".to_string(), Some("Foo".to_string())),
                ("fmt".to_string(), Some("Foo".to_string())),
                ("helper".to_string(), None),
            ]
        );
    }

    #[test]
    fn generic_impl_resolves_base_type() {
        let m = model("impl<V: Clone> Dht<V> {\n    fn put(&mut self) { self.store() }\n}\n");
        assert_eq!(m.fns[0].owner.as_deref(), Some("Dht"));
    }

    #[test]
    fn call_receivers_are_classified() {
        let m = model(
            "impl Sys {\n  fn go(&mut self) {\n    self.step();\n    self.net.lookup(k);\n    x.poll();\n    trace::charge(s);\n    helper();\n    self.a().b();\n  }\n}\n",
        );
        let calls: Vec<(String, Recv)> = m.fns[0]
            .calls
            .iter()
            .map(|c| (c.name.clone(), c.recv.clone()))
            .collect();
        assert_eq!(
            calls,
            [
                ("step".to_string(), Recv::SelfCall),
                ("lookup".to_string(), Recv::Named("net".to_string())),
                ("poll".to_string(), Recv::Named("x".to_string())),
                ("charge".to_string(), Recv::Path("trace".to_string())),
                ("helper".to_string(), Recv::Free),
                ("a".to_string(), Recv::SelfCall),
                ("b".to_string(), Recv::Method),
            ]
        );
    }

    #[test]
    fn path_pairs_capture_variant_mentions_not_calls() {
        let m = model("fn f() { let k = MsgKind::Timeout; let a = MsgKind::all(); }\n");
        let pairs: Vec<(String, String)> = m.fns[0]
            .path_pairs
            .iter()
            .map(|p| (p.qual.clone(), p.name.clone()))
            .collect();
        assert_eq!(pairs, [("MsgKind".to_string(), "Timeout".to_string())]);
    }

    #[test]
    fn test_tail_marks_functions() {
        let m = model("fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n");
        assert!(!m.fns[0].in_test);
        assert!(m.fns[1].in_test);
    }

    #[test]
    fn struct_fields_and_types() {
        let m = model(
            "pub struct S {\n    pub store: HashMap<u128, V>,\n    net: ChordNet,\n    #[allow(dead_code)]\n    n: usize,\n}\n",
        );
        let s = &m.structs[0];
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["store", "net", "n"]);
        assert!(is_hashmap_type(&s.fields[0].type_idents));
        assert_eq!(s.fields[1].type_idents, ["ChordNet"]);
    }

    #[test]
    fn enum_variants() {
        let m = model(
            "pub enum MsgKind {\n    #[default]\n    LookupHop,\n    Failed,\n    Timeout,\n}\n",
        );
        let e = &m.enums[0];
        assert_eq!(e.name, "MsgKind");
        let names: Vec<&str> = e.variants.iter().map(|(v, _)| v.as_str()).collect();
        assert_eq!(names, ["LookupHop", "Failed", "Timeout"]);
    }

    #[test]
    fn hashmap_locals_from_params_and_lets() {
        let m = model(
            "fn f(stats: &mut HashMap<u32, u64>, k: u32) {\n    let mut acc: HashMap<u32, f64> = HashMap::new();\n    let other = HashMap::new();\n    let plain = 3;\n}\n",
        );
        assert_eq!(m.fns[0].hashmap_locals, ["stats", "acc", "other"]);
    }

    #[test]
    fn bare_for_iterations_are_recorded() {
        let m = model(
            "impl S { fn f(&self, m: HashMap<u32, u32>) { for (k, v) in &self.store { } for x in m { } } }\n",
        );
        assert_eq!(
            m.fns[0].for_iterations,
            [("store".to_string(), 1), ("m".to_string(), 1)]
        );
    }

    #[test]
    fn macro_rules_bodies_are_skipped() {
        let m = model("macro_rules! t { ($x:expr) => { fn phantom() {} }; }\nfn real() {}\n");
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["real"]);
    }
}
