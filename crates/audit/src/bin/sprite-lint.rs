//! `sprite-lint` — the workspace source audit.
//!
//! A deliberately small, dependency-free scanner (no parser crates, plain
//! line heuristics) that enforces the conventions this workspace's
//! determinism and safety story depends on:
//!
//! * **no-unwrap** — `unwrap()` is banned in non-test library code; recover
//!   or use `expect` with a message documenting the invariant.
//! * **expect-message** — `expect(...)` must carry a non-empty string
//!   literal explaining why the value cannot be absent.
//! * **no-ambient-time** — simulation crates must not read wall-clock time
//!   (`SystemTime`, `Instant::now`) or ambient randomness (`thread_rng`,
//!   the `rand` crate): all randomness flows from seeded `DetRng`s. The
//!   `sprite-bench` crate is exempt (benchmarks measure wall time by
//!   definition).
//! * **forbid-unsafe** — every crate root must carry
//!   `#![forbid(unsafe_code)]`.
//! * **hashmap-order** — in ranked-output modules, iterating a `HashMap`
//!   is flagged unless a sort/top-k appears nearby or the line reduces
//!   commutatively (`sum`/`count`/`max`/`min`): iteration order is
//!   per-process random and must never leak into ranked results.
//! * **no-raw-spawn** — `thread::spawn` / `thread::scope` are banned
//!   everywhere except `sprite-util`'s pool module: every parallel
//!   construct must go through the deterministic order-preserving
//!   `par_map`, or the bit-identical-replay guarantee dies quietly.
//! * **no-oracle-hot-path** — the query/failover files (`kv.rs`,
//!   `system.rs`, `view.rs`, `resilience.rs`) must not call the ring's
//!   global-knowledge oracle helpers: every replica set and owner on the
//!   retrieval path is resolved by routed lookups and successor-chain
//!   walks, with the message bill charged honestly. The oracle is for
//!   setup, audits, and tests only.
//! * **no-untraced-record** — in the query-path files (`kv.rs`,
//!   `system.rs`, `view.rs`) the raw `NetStats` mutators (`record`,
//!   `record_n`, `charge`, `charge_n`, `record_bytes`, `charge_bytes`) are
//!   banned: every message and payload byte must be billed through
//!   `charge_route` or the traced `charge*` helpers, or the observability
//!   layer silently under-counts while the stats stay right.
//!
//! Test modules (everything from the first `#[cfg(test)]` down), `tests/`,
//! `benches/`, and `examples/` directories are exempt from content rules.
//! A line can opt out with a trailing comment containing the allow marker
//! (see [`allow_marker`]), e.g. `// sprite-lint: allow(no-unwrap): <why>`.
//!
//! Exit status: 0 when clean, 1 when violations were found, 2 on usage or
//! I/O errors. Diagnostics are `file:line: [rule] message`, one per line.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose sources are simulation code: deterministic by contract.
const SIM_PREFIXES: &[&str] = &[
    "crates/util/",
    "crates/text/",
    "crates/ir/",
    "crates/chord/",
    "crates/corpus/",
    "crates/core/",
    "crates/audit/",
    "src/",
];

/// Files whose output is ranked and must not inherit `HashMap` order.
const RANKED_MODULES: &[&str] = &["rank.rs", "topk.rs", "learn.rs", "system.rs"];

/// The one module allowed to touch raw threading primitives.
const POOL_MODULE: &str = "crates/util/src/pool.rs";

/// Query- and failover-path files where the ring's global-knowledge oracle
/// helpers are banned (routed resolution only).
const ORACLE_FREE_FILES: &[&str] = &[
    "crates/chord/src/kv.rs",
    "crates/core/src/system.rs",
    "crates/core/src/view.rs",
    "crates/core/src/resilience.rs",
];

/// Query-path files where the raw stats mutators are banned: every message
/// must be billed through `charge_route` or the traced `charge*` helpers so
/// the observability layer sees exactly what the accounting sees.
/// (`resilience.rs` is deliberately absent: its repair spans are traced
/// coarsely via stats-snapshot diffs, so direct charging stays legal.)
const TRACED_CHARGE_FILES: &[&str] = &[
    "crates/chord/src/kv.rs",
    "crates/core/src/system.rs",
    "crates/core/src/view.rs",
];

/// How many lines around a `HashMap` iteration to search for a sort.
const SORT_WINDOW: usize = 15;

// The banned patterns are assembled from split literals so that this file —
// which the lint scans like any other — never contains them verbatim.

fn pat_unwrap() -> String {
    [".unw", "rap()"].concat()
}

fn pat_expect() -> String {
    [".exp", "ect("].concat()
}

fn pat_system_time() -> String {
    ["System", "Time"].concat()
}

fn pat_instant_now() -> String {
    ["Instant::", "now"].concat()
}

fn pat_ambient_rng() -> String {
    ["thread_", "rng"].concat()
}

fn pat_rand_crate() -> String {
    ["rand", "::"].concat()
}

fn pat_thread_spawn() -> String {
    ["thread::", "spawn"].concat()
}

fn pat_thread_scope() -> String {
    ["thread::", "scope"].concat()
}

fn pat_cfg_test() -> String {
    ["#[cfg(", "test)]"].concat()
}

fn pat_oracle() -> String {
    ["oracle", "_"].concat()
}

// The raw stats mutators. The trailing `(` keeps the traced/routed
// spellings (`…_traced(`, `…_route(`) from matching.

fn pat_raw_record() -> String {
    [".rec", "ord("].concat()
}

fn pat_raw_record_n() -> String {
    [".rec", "ord_n("].concat()
}

fn pat_raw_charge() -> String {
    [".cha", "rge("].concat()
}

fn pat_raw_charge_n() -> String {
    [".cha", "rge_n("].concat()
}

fn pat_raw_record_bytes() -> String {
    [".rec", "ord_bytes("].concat()
}

fn pat_raw_charge_bytes() -> String {
    [".cha", "rge_bytes("].concat()
}

/// The opt-out marker looked for in a line's trailing comment.
fn allow_marker() -> String {
    ["sprite-lint: ", "allow"].concat()
}

/// One finding, rendered as `file:line: [rule] message`.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Diagnostic {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The portion of a line before any `//` comment.
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

fn is_sim_crate(rel: &str) -> bool {
    SIM_PREFIXES.iter().any(|p| rel.starts_with(p))
}

fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs" || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"))
}

fn is_exempt_dir(rel: &str) -> bool {
    rel.contains("/tests/") || rel.contains("/benches/") || rel.contains("/examples/")
}

fn is_ranked_module(rel: &str) -> bool {
    let name = rel.rsplit('/').next().unwrap_or(rel);
    RANKED_MODULES.contains(&name)
}

/// Does `.expect(` at byte offset `at` carry a non-empty string literal?
fn expect_has_message(stripped: &str, at: usize) -> bool {
    let rest = stripped[at + pat_expect().len()..].trim_start();
    rest.starts_with('"') && !rest.starts_with("\"\"")
}

/// Identifiers bound to `HashMap`s anywhere in the file (declarations,
/// struct fields, and function parameters — a line heuristic, not a parse).
fn hashmap_idents(lines: &[&str]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for line in lines {
        let s = strip_comment(line);
        for marker in [": HashMap", ": &HashMap", ": &mut HashMap", " = HashMap::"] {
            let mut from = 0;
            while let Some(i) = s[from..].find(marker) {
                let end = from + i;
                let ident: String = s[..end]
                    .chars()
                    .rev()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                if !ident.is_empty()
                    && !ident.chars().next().is_some_and(|c| c.is_ascii_digit())
                    && !out.contains(&ident)
                {
                    out.push(ident);
                }
                from = end + marker.len();
            }
        }
    }
    out
}

/// Is this `HashMap` iteration self-evidently order-free or ordered nearby?
fn iteration_is_ordered(lines: &[&str], idx: usize) -> bool {
    let line = strip_comment(lines[idx]);
    for reducer in [".sum()", ".count()", ".max()", ".min()", ".all(", ".any("] {
        if line.contains(reducer) {
            return true;
        }
    }
    let lo = idx.saturating_sub(SORT_WINDOW);
    let hi = (idx + SORT_WINDOW + 1).min(lines.len());
    lines[lo..hi].iter().any(|l| {
        let s = strip_comment(l);
        s.contains("sort") || s.contains("top_k") || s.contains("TopK") || s.contains("BinaryHeap")
    })
}

/// Scan one source file (already classified by its workspace-relative
/// path). Pure: used directly by the tests to check planted violations.
fn scan_source(rel: &str, content: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let diag = |line: usize, rule: &'static str, message: String| Diagnostic {
        file: rel.to_string(),
        line,
        rule,
        message,
    };

    if is_crate_root(rel) && !content.contains("#![forbid(unsafe_code)]") {
        out.push(diag(
            1,
            "forbid-unsafe",
            "crate root lacks #![forbid(unsafe_code)]".to_string(),
        ));
    }
    if is_exempt_dir(rel) {
        return out;
    }

    let lines: Vec<&str> = content.lines().collect();
    let cfg_test = pat_cfg_test();
    let test_cutoff = lines
        .iter()
        .position(|l| strip_comment(l).contains(&cfg_test))
        .unwrap_or(lines.len());
    let sim = is_sim_crate(rel);
    let ranked = sim && is_ranked_module(rel);
    let idents = if ranked {
        hashmap_idents(&lines)
    } else {
        Vec::new()
    };
    let marker = allow_marker();

    for (idx, line) in lines.iter().take(test_cutoff).enumerate() {
        if line.contains(&marker) {
            continue;
        }
        let n = idx + 1;
        let s = strip_comment(line);

        if s.contains(&pat_unwrap()) {
            out.push(diag(
                n,
                "no-unwrap",
                "unwrap() in library code; handle the None/Err or expect with a message"
                    .to_string(),
            ));
        }
        let expect = pat_expect();
        let mut from = 0;
        while let Some(i) = s[from..].find(&expect) {
            let at = from + i;
            if !expect_has_message(s, at) {
                out.push(diag(
                    n,
                    "expect-message",
                    "expect() without a non-empty string-literal message".to_string(),
                ));
            }
            from = at + expect.len();
        }

        if rel != POOL_MODULE {
            for pat in [pat_thread_spawn(), pat_thread_scope()] {
                if s.contains(&pat) {
                    out.push(diag(
                        n,
                        "no-raw-spawn",
                        format!(
                            "{pat} outside {POOL_MODULE}; use sprite_util's \
                             order-preserving par_map"
                        ),
                    ));
                }
            }
        }

        if ORACLE_FREE_FILES.contains(&rel) && s.contains(&pat_oracle()) {
            out.push(diag(
                n,
                "no-oracle-hot-path",
                "global-knowledge oracle helper on the query/failover path; \
                 resolve owners and replicas with routed lookups"
                    .to_string(),
            ));
        }

        if TRACED_CHARGE_FILES.contains(&rel) {
            for pat in [
                pat_raw_record(),
                pat_raw_record_n(),
                pat_raw_charge(),
                pat_raw_charge_n(),
                pat_raw_record_bytes(),
                pat_raw_charge_bytes(),
            ] {
                if s.contains(&pat) {
                    out.push(diag(
                        n,
                        "no-untraced-record",
                        format!(
                            "raw stats mutator (`{pat}..)`) on the query path; bill \
                             through charge_route or the traced charge helpers"
                        ),
                    ));
                }
            }
        }

        if sim && !rel.starts_with("crates/bench/") {
            for (pat, what) in [
                (pat_system_time(), "wall-clock time"),
                (pat_instant_now(), "wall-clock time"),
                (pat_ambient_rng(), "ambient randomness"),
                (pat_rand_crate(), "the rand crate"),
            ] {
                if s.contains(&pat) {
                    out.push(diag(
                        n,
                        "no-ambient-time",
                        format!("{what} ({pat}) in a simulation crate; use seeded DetRng"),
                    ));
                }
            }
        }

        if ranked {
            for ident in &idents {
                let hit = [".iter()", ".values()", ".keys()", ".into_iter()"]
                    .iter()
                    .any(|m| s.contains(&format!("{ident}{m}")))
                    || s.contains(&format!("in &{ident} "))
                    || s.ends_with(&format!("in &{ident}"));
                if hit && !iteration_is_ordered(&lines, idx) {
                    out.push(diag(
                        n,
                        "hashmap-order",
                        format!("HashMap `{ident}` iterated in a ranked-output module with no sort nearby"),
                    ));
                    break;
                }
            }
        }
    }
    out
}

/// Recursively collect `.rs` files, sorted for deterministic output.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn run(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let mut files = Vec::new();
    for top in ["src", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files).map_err(|e| format!("walking {}: {e}", dir.display()))?;
        }
    }
    if files.is_empty() {
        return Err(format!(
            "no Rust sources under {} (expected src/ and crates/)",
            root.display()
        ));
    }
    let mut diags = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let content =
            fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        diags.extend(scan_source(&rel, &content));
    }
    Ok(diags)
}

fn main() -> ExitCode {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    match run(Path::new(&root)) {
        Ok(diags) if diags.is_empty() => {
            println!("sprite-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("sprite-lint: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("sprite-lint: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn clean_file_passes() {
        let src =
            "#![forbid(unsafe_code)]\npub fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0)\n}\n";
        assert!(scan_source("crates/util/src/lib.rs", src).is_empty());
    }

    #[test]
    fn planted_unwrap_is_flagged() {
        let src = format!(
            "fn f(x: Option<u32>) -> u32 {{\n    x{}\n}}\n",
            pat_unwrap()
        );
        let diags = scan_source("crates/chord/src/ring.rs", &src);
        assert_eq!(rules(&diags), ["no-unwrap"]);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn unwrap_in_test_module_is_exempt() {
        let src = format!(
            "pub fn f() {{}}\n{}\nmod tests {{\n    fn g(x: Option<u32>) {{ x{}; }}\n}}\n",
            pat_cfg_test(),
            pat_unwrap()
        );
        assert!(scan_source("crates/chord/src/ring.rs", &src).is_empty());
    }

    #[test]
    fn unwrap_in_tests_dir_is_exempt() {
        let src = format!("fn f(x: Option<u32>) {{ x{}; }}\n", pat_unwrap());
        assert!(scan_source("crates/chord/tests/proptests.rs", &src).is_empty());
    }

    #[test]
    fn expect_requires_literal_message() {
        let bad1 = format!("fn f(x: Option<u32>) {{ x{});\n}}\n", pat_expect());
        let bad2 = format!("fn f(x: Option<u32>) {{ x{}\"\");\n}}\n", pat_expect());
        let good = format!("fn f(x: Option<u32>) {{ x{}\"why\");\n}}\n", pat_expect());
        assert_eq!(
            rules(&scan_source("crates/ir/src/doc.rs", &bad1)),
            ["expect-message"]
        );
        assert_eq!(
            rules(&scan_source("crates/ir/src/doc.rs", &bad2)),
            ["expect-message"]
        );
        assert!(scan_source("crates/ir/src/doc.rs", &good).is_empty());
    }

    #[test]
    fn ambient_time_banned_in_sim_crates_only() {
        let src = format!("fn f() {{ let _ = {}(); }}\n", pat_instant_now());
        assert_eq!(
            rules(&scan_source("crates/chord/src/ring.rs", &src)),
            ["no-ambient-time"]
        );
        // The bench crate measures wall time by definition.
        assert!(scan_source("crates/bench/src/bin/fig4a.rs", &src).is_empty());
    }

    #[test]
    fn rand_crate_banned_in_sim_crates() {
        let src = format!("use {}Rng;\n", pat_rand_crate());
        assert_eq!(
            rules(&scan_source("crates/core/src/system.rs", &src)),
            ["no-ambient-time"]
        );
    }

    #[test]
    fn missing_forbid_unsafe_flagged_on_crate_roots_only() {
        let src = "pub fn f() {}\n";
        assert_eq!(
            rules(&scan_source("crates/text/src/lib.rs", src)),
            ["forbid-unsafe"]
        );
        assert!(scan_source("crates/text/src/stemmer.rs", src).is_empty());
    }

    #[test]
    fn hashmap_iteration_flagged_without_sort() {
        let src = "use std::collections::HashMap;\n\
                   fn rank(scores: &HashMap<u32, f64>) -> Vec<u32> {\n\
                       scores.keys().copied().collect()\n\
                   }\n";
        let diags = scan_source("crates/ir/src/rank.rs", src);
        assert_eq!(rules(&diags), ["hashmap-order"]);
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn hashmap_iteration_with_sort_nearby_passes() {
        let src = "use std::collections::HashMap;\n\
                   fn rank(scores: &HashMap<u32, f64>) -> Vec<u32> {\n\
                       let mut v: Vec<u32> = scores.keys().copied().collect();\n\
                       v.sort_unstable();\n\
                       v\n\
                   }\n";
        assert!(scan_source("crates/ir/src/rank.rs", src).is_empty());
    }

    #[test]
    fn commutative_reduction_passes() {
        let src = "use std::collections::HashMap;\n\
                   fn total(scores: &HashMap<u32, u64>) -> u64 {\n\
                       scores.values().sum()\n\
                   }\n";
        assert!(scan_source("crates/core/src/system.rs", src).is_empty());
    }

    #[test]
    fn allow_marker_suppresses() {
        let src = format!(
            "fn f(x: Option<u32>) {{ x{}; }} // {}(no-unwrap): demo\n",
            pat_unwrap(),
            allow_marker()
        );
        assert!(scan_source("crates/chord/src/ring.rs", &src).is_empty());
    }

    #[test]
    fn raw_spawn_flagged_outside_pool_module() {
        let spawn = format!("fn f() {{ std::{}(|| {{}}); }}\n", pat_thread_spawn());
        let diags = scan_source("crates/core/src/experiment.rs", &spawn);
        assert_eq!(rules(&diags), ["no-raw-spawn"]);
        let scope = format!("fn f() {{ std::{}(|_| {{}}); }}\n", pat_thread_scope());
        let diags = scan_source("crates/bench/src/bin/fig4b.rs", &scope);
        assert_eq!(rules(&diags), ["no-raw-spawn"], "bench crate is not exempt");
    }

    #[test]
    fn pool_module_may_spawn() {
        let src = format!(
            "fn go() {{ std::{}(|scope| {{ scope.{}(|| {{}}); }}); }}\n",
            pat_thread_scope(),
            ["spa", "wn"].concat()
        );
        assert!(scan_source(POOL_MODULE, &src).is_empty());
    }

    #[test]
    fn oracle_banned_on_the_query_path() {
        let src = format!(
            "fn f(net: &ChordNet, k: RingId) {{ let _ = net.{}owner(k); }}\n",
            pat_oracle()
        );
        assert_eq!(
            rules(&scan_source("crates/core/src/view.rs", &src)),
            ["no-oracle-hot-path"]
        );
        assert_eq!(
            rules(&scan_source("crates/chord/src/kv.rs", &src)),
            ["no-oracle-hot-path"]
        );
        // Setup/audit code may use the oracle freely.
        assert!(scan_source("crates/chord/src/ring.rs", &src).is_empty());
        assert!(scan_source("crates/audit/src/invariants.rs", &src).is_empty());
        // Test modules inside a listed file are exempt like everywhere else.
        let in_tests = format!(
            "pub fn f() {{}}\n{}\nmod tests {{\n    {src}}}\n",
            pat_cfg_test()
        );
        assert!(scan_source("crates/core/src/system.rs", &in_tests).is_empty());
    }

    #[test]
    fn raw_stats_mutators_banned_on_the_query_path() {
        let record = format!(
            "fn f(stats: &mut NetStats) {{ stats{}kind); }}\n",
            pat_raw_record()
        );
        let charge = format!(
            "fn f(net: &mut ChordNet) {{ net{}MsgKind::QueryFetch); }}\n",
            pat_raw_charge()
        );
        let charge_n = format!(
            "fn f(net: &mut ChordNet) {{ net{}MsgKind::LearnReturn, 3); }}\n",
            pat_raw_charge_n()
        );
        let record_bytes = format!(
            "fn f(stats: &mut NetStats) {{ stats{}kind, 21); }}\n",
            pat_raw_record_bytes()
        );
        let charge_bytes = format!(
            "fn f(net: &mut ChordNet) {{ net{}MsgKind::QueryFetch, 21); }}\n",
            pat_raw_charge_bytes()
        );
        for src in [&record, &charge, &charge_n, &record_bytes, &charge_bytes] {
            for file in TRACED_CHARGE_FILES {
                assert_eq!(
                    rules(&scan_source(file, src)),
                    ["no-untraced-record"],
                    "{file} must flag {src:?}"
                );
            }
        }
        // The traced and routed spellings never match (the paren differs).
        let traced = "fn f(net: &mut ChordNet) { net.charge_traced(kind, phase, 0, p, sink); }\n";
        let routed = "fn f(stats: &mut NetStats) { stats.charge_route(kind, 2, 0, true); }\n";
        let bytes_traced =
            "fn f(net: &mut ChordNet) { net.charge_bytes_traced(kind, 21, sink); }\n";
        assert!(scan_source("crates/chord/src/kv.rs", traced).is_empty());
        assert!(scan_source("crates/core/src/view.rs", routed).is_empty());
        assert!(scan_source("crates/core/src/system.rs", bytes_traced).is_empty());
        // Outside the query-path files the raw mutators stay legal:
        // resilience.rs repair spans are traced via snapshot diffs.
        assert!(scan_source("crates/core/src/resilience.rs", &charge).is_empty());
        assert!(scan_source("crates/core/src/resilience.rs", &charge_bytes).is_empty());
        assert!(scan_source("crates/chord/src/stats.rs", &record).is_empty());
    }

    #[test]
    fn whole_workspace_is_clean() {
        // The repository root, two levels up from this crate.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crates/audit sits two levels under the workspace root")
            .to_path_buf();
        let diags = run(&root).expect("workspace sources are readable");
        assert!(
            diags.is_empty(),
            "workspace must lint clean, got:\n{}",
            diags
                .iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
