//! `sprite-lint` — the workspace source audit, as a thin driver over
//! [`sprite_audit::rules`].
//!
//! The scanning itself lives in the `sprite-audit` library (lexer in
//! `lex.rs`, item/call extraction in `syntax.rs`, the rule engine in
//! `rules.rs`) so the CI gate and the tests run the same engine
//! in-process. See `rules.rs` and DESIGN.md §11 for the rule catalog:
//! token rules (`no-unwrap`, `expect-message`, `no-ambient-time`,
//! `forbid-unsafe`, `no-raw-spawn`) plus the call-graph rules
//! (`oracle-taint`, `charge-coverage`, `hashmap-order`, `config-drift`)
//! that replaced the old hard-coded file allowlists with reachability from
//! the retrieval roots.
//!
//! Usage: `sprite-lint [--json] [root]` (root defaults to `.`).
//!
//! Exit status: 0 when clean, 1 when violations were found, 2 on usage or
//! I/O errors. Text diagnostics are `file:line: [rule] message`, one per
//! line; `--json` emits one JSON object per line on stdout (consumed by
//! the GitHub problem matcher in `.github/sprite-lint-matcher.json`) with
//! the summary on stderr.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root = String::from(".");
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: sprite-lint [--json] [root]");
                return ExitCode::SUCCESS;
            }
            a if a.starts_with('-') => {
                eprintln!("sprite-lint: unknown flag {a} (usage: sprite-lint [--json] [root])");
                return ExitCode::from(2);
            }
            a => root = a.to_string(),
        }
    }
    match sprite_audit::analyze(Path::new(&root)) {
        Ok(diags) if diags.is_empty() => {
            if json {
                eprintln!("sprite-lint: clean");
            } else {
                println!("sprite-lint: clean");
            }
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                if json {
                    println!("{}", d.to_json());
                } else {
                    println!("{d}");
                }
            }
            if json {
                eprintln!("sprite-lint: {} violation(s)", diags.len());
            } else {
                println!("sprite-lint: {} violation(s)", diags.len());
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("sprite-lint: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use std::path::Path;

    #[test]
    fn whole_workspace_is_clean() {
        // The repository root, two levels up from this crate.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crates/audit sits two levels under the workspace root")
            .to_path_buf();
        let diags = sprite_audit::analyze(&root).expect("workspace sources are readable");
        assert!(
            diags.is_empty(),
            "workspace must lint clean, got:\n{}",
            diags
                .iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn json_rendering_matches_the_problem_matcher_shape() {
        let d = sprite_audit::Diagnostic {
            file: "crates/x/src/lib.rs".to_string(),
            line: 7,
            rule: "no-unwrap",
            message: "a \"quoted\" message".to_string(),
        };
        assert_eq!(
            d.to_json(),
            "{\"file\":\"crates/x/src/lib.rs\",\"line\":7,\"rule\":\"no-unwrap\",\
             \"message\":\"a \\\"quoted\\\" message\"}"
        );
    }
}
