//! A dependency-free Rust lexer for the workspace source audit.
//!
//! `sprite-lint` began life as a line scanner, which meant every rule had to
//! fight the same two enemies: `//` inside a string literal (the old
//! `strip_comment` truncated the line there and silently skipped real
//! violations after it) and banned patterns inside strings or comments
//! (which forced the split-literal hacks in the old binary). Tokenizing
//! first makes both problems vanish: rules only ever look at identifier and
//! punctuation tokens, so text inside strings and comments is invisible by
//! construction.
//!
//! The lexer is deliberately small — it is not a Rust parser and does not
//! validate the input. It guarantees exactly one property, checked by the
//! seeded proptests in `crates/audit/tests/lexer_proptests.rs`:
//! concatenating the text of every token reproduces the input byte for
//! byte (`lex` never drops, reorders, or rewrites a character). Everything
//! it cannot classify is emitted as a single-character [`TokenKind::Punct`].
//!
//! Handled forms: line comments, nested block comments, normal / raw /
//! byte / raw-byte strings with any number of `#` guards, char and byte
//! literals (including escapes), lifetimes (disambiguated from char
//! literals), raw identifiers (`r#fn`), and numeric literals including
//! floats with exponents (`1.0e6`, `1e-12`), radix prefixes (`0xC0FF`),
//! digit separators, and type suffixes.

/// Classification of a lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace (spaces, tabs, newlines).
    Whitespace,
    /// A `//` comment, up to but not including the newline.
    LineComment,
    /// A `/* ... */` comment, nesting respected.
    BlockComment,
    /// An identifier or keyword (including raw identifiers like `r#fn`).
    Ident,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// A char or byte literal: `'x'`, `'\n'`, `b'\0'`.
    CharLit,
    /// Any string form: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    StrLit,
    /// A numeric literal: `42`, `1.0e6`, `0xFF_u8`.
    NumLit,
    /// A single character of punctuation, except `::` which is one token.
    Punct,
}

/// One token: a byte range into the source plus the 1-based line where it
/// starts. Token text is recovered by slicing, so tokens stay cheap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based source line of the first character.
    pub line: u32,
}

impl Token {
    /// The token's text, sliced from the source it was lexed from.
    #[must_use]
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// True for whitespace and comments — tokens the syntax layer skips.
    #[must_use]
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn byte(&self, at: usize) -> u8 {
        self.bytes.get(at).copied().unwrap_or(0)
    }

    /// Advance one full character (UTF-8 aware) from `at`.
    fn next_boundary(&self, at: usize) -> usize {
        let mut n = at + 1;
        while n < self.src.len() && !self.src.is_char_boundary(n) {
            n += 1;
        }
        n.min(self.src.len())
    }

    fn char_at(&self, at: usize) -> Option<char> {
        self.src.get(at..).and_then(|s| s.chars().next())
    }

    fn is_ident_start(c: char) -> bool {
        c == '_' || c.is_alphabetic()
    }

    fn is_ident_continue(c: char) -> bool {
        c == '_' || c.is_alphanumeric()
    }

    /// Consume ident chars starting at `at`, returning the end offset.
    fn ident_end(&self, mut at: usize) -> usize {
        while let Some(c) = self.char_at(at) {
            if Self::is_ident_continue(c) {
                at = self.next_boundary(at);
            } else {
                break;
            }
        }
        at
    }

    /// End of a normal (escaped) string/char body opened at `at` with
    /// `quote`; handles `\` escapes, runs to EOF when unterminated.
    fn quoted_end(&self, mut at: usize, quote: u8) -> usize {
        while at < self.bytes.len() {
            match self.byte(at) {
                b'\\' => {
                    at = self.next_boundary(at + 1);
                }
                b if b == quote => return at + 1,
                _ => at = self.next_boundary(at),
            }
        }
        at
    }

    /// End of a raw string opened at `at` (just past the opening `"`)
    /// guarded by `hashes` `#` characters.
    fn raw_end(&self, mut at: usize, hashes: usize) -> usize {
        while at < self.bytes.len() {
            if self.byte(at) == b'"' {
                let mut k = 0;
                while k < hashes && self.byte(at + 1 + k) == b'#' {
                    k += 1;
                }
                if k == hashes {
                    return at + 1 + hashes;
                }
            }
            at = self.next_boundary(at);
        }
        at
    }

    /// If the bytes at `at` open a raw-string guard (`#`* then `"`),
    /// return (hash count, offset just past the opening quote).
    fn raw_open(&self, at: usize) -> Option<(usize, usize)> {
        let mut h = 0;
        while self.byte(at + h) == b'#' {
            h += 1;
        }
        if self.byte(at + h) == b'"' {
            Some((h, at + h + 1))
        } else {
            None
        }
    }

    /// End offset of a `'…'` char literal or a lifetime, starting at the
    /// opening `'` (at `at`), plus which of the two it is.
    fn char_or_lifetime(&self, at: usize) -> (usize, TokenKind) {
        let after_quote = at + 1;
        if self.byte(after_quote) == b'\\' {
            return (self.quoted_end(after_quote, b'\''), TokenKind::CharLit);
        }
        match self.char_at(after_quote) {
            // `'x'` — a one-char literal: the char after the payload closes.
            Some(c) if self.byte(self.next_boundary(after_quote)) == b'\'' && c != '\'' => {
                (self.next_boundary(after_quote) + 1, TokenKind::CharLit)
            }
            Some(c) if Self::is_ident_start(c) => {
                (self.ident_end(after_quote), TokenKind::Lifetime)
            }
            _ => (self.next_boundary(after_quote), TokenKind::Punct),
        }
    }

    /// End of a numeric literal starting at a digit at `at`. Accepts radix
    /// prefixes, `_` separators, one `.` followed by a digit, exponents
    /// with an optional sign, and alphanumeric type suffixes.
    fn number_end(&self, at: usize) -> usize {
        let mut i = at;
        let radix_prefixed =
            self.byte(at) == b'0' && matches!(self.byte(at + 1), b'x' | b'o' | b'b');
        if radix_prefixed {
            i = at + 2;
        }
        let mut seen_dot = false;
        let mut prev_was_exp = false;
        while i < self.bytes.len() {
            let b = self.byte(i);
            let exp_start = !radix_prefixed && matches!(b, b'e' | b'E');
            if b.is_ascii_alphanumeric() || b == b'_' {
                prev_was_exp = exp_start;
                i += 1;
            } else if b == b'.' && !seen_dot && !radix_prefixed && self.byte(i + 1).is_ascii_digit()
            {
                seen_dot = true;
                prev_was_exp = false;
                i += 1;
            } else if matches!(b, b'+' | b'-') && prev_was_exp {
                prev_was_exp = false;
                i += 1;
            } else {
                break;
            }
        }
        i
    }

    /// Lex one token starting at `self.pos` (which must be in bounds).
    fn next_token(&mut self) -> Token {
        let start = self.pos;
        let line = self.line;
        let b = self.byte(start);
        let (end, kind) = match b {
            _ if self.char_at(start).is_some_and(char::is_whitespace) => {
                let mut i = start;
                while self.char_at(i).is_some_and(char::is_whitespace) {
                    i = self.next_boundary(i);
                }
                (i, TokenKind::Whitespace)
            }
            b'/' if self.byte(start + 1) == b'/' => {
                let mut i = start;
                while i < self.bytes.len() && self.byte(i) != b'\n' {
                    i = self.next_boundary(i);
                }
                (i, TokenKind::LineComment)
            }
            b'/' if self.byte(start + 1) == b'*' => {
                let mut depth = 1usize;
                let mut i = start + 2;
                while i < self.bytes.len() && depth > 0 {
                    if self.byte(i) == b'/' && self.byte(i + 1) == b'*' {
                        depth += 1;
                        i += 2;
                    } else if self.byte(i) == b'*' && self.byte(i + 1) == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i = self.next_boundary(i);
                    }
                }
                (i, TokenKind::BlockComment)
            }
            b'"' => (self.quoted_end(start + 1, b'"'), TokenKind::StrLit),
            b'r' => {
                if let Some((h, body)) = self.raw_open(start + 1) {
                    (self.raw_end(body, h), TokenKind::StrLit)
                } else if self.byte(start + 1) == b'#'
                    && self.char_at(start + 2).is_some_and(Lexer::is_ident_start)
                {
                    // Raw identifier `r#fn`.
                    (self.ident_end(start + 2), TokenKind::Ident)
                } else {
                    (self.ident_end(start), TokenKind::Ident)
                }
            }
            b'b' => {
                if self.byte(start + 1) == b'"' {
                    (self.quoted_end(start + 2, b'"'), TokenKind::StrLit)
                } else if self.byte(start + 1) == b'\'' {
                    let (end, _) = self.char_or_lifetime(start + 1);
                    (end, TokenKind::CharLit)
                } else if self.byte(start + 1) == b'r' {
                    match self.raw_open(start + 2) {
                        Some((h, body)) => (self.raw_end(body, h), TokenKind::StrLit),
                        None => (self.ident_end(start), TokenKind::Ident),
                    }
                } else {
                    (self.ident_end(start), TokenKind::Ident)
                }
            }
            b'\'' => {
                let (end, kind) = self.char_or_lifetime(start);
                (end, kind)
            }
            // `::` is glued into one token: the syntax layer distinguishes
            // path separators from type ascription by token text.
            b':' if self.byte(start + 1) == b':' => (start + 2, TokenKind::Punct),
            _ if b.is_ascii_digit() => (self.number_end(start), TokenKind::NumLit),
            _ if self.char_at(start).is_some_and(Lexer::is_ident_start) => {
                (self.ident_end(start), TokenKind::Ident)
            }
            _ => (self.next_boundary(start), TokenKind::Punct),
        };
        // Every arm consumes at least one character, so the loop advances.
        let end = end.max(self.next_boundary(start));
        self.line += self.src[start..end].bytes().filter(|&c| c == b'\n').count() as u32;
        self.pos = end;
        Token {
            kind,
            start,
            end,
            line,
        }
    }
}

/// Tokenize `src`. Concatenating every token's text reproduces `src`
/// exactly; malformed input never panics (unterminated literals run to the
/// end of the file).
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while lx.pos < src.len() {
        out.push(lx.next_token());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    fn roundtrip(src: &str) {
        let joined: String = lex(src).iter().map(|t| t.text(src)).collect();
        assert_eq!(joined, src, "lexing must reproduce the source exactly");
    }

    #[test]
    fn slash_slash_inside_string_is_not_a_comment() {
        // Regression for the old line scanner's `strip_comment`, which cut
        // the line at the first `//` even inside a string literal and
        // silently skipped everything after it.
        let src = r#"let url = "http://example.com"; x.unwrap();"#;
        let toks = kinds(src);
        assert!(
            toks.iter()
                .any(|(k, t)| *k == TokenKind::StrLit && t.contains("//")),
            "the URL stays one string token"
        );
        assert!(
            !toks.iter().any(|(k, _)| *k == TokenKind::LineComment),
            "no comment token on this line"
        );
        assert!(
            toks.iter()
                .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"),
            "code after the string is still tokenized"
        );
        roundtrip(src);
    }

    #[test]
    fn line_and_block_comments() {
        let src = "a // trailing\nb /* inline */ c /* nested /* deep */ still */ d";
        let toks = kinds(src);
        let comments: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| matches!(k, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(
            comments,
            [
                "// trailing",
                "/* inline */",
                "/* nested /* deep */ still */"
            ]
        );
        roundtrip(src);
    }

    #[test]
    fn raw_and_byte_strings() {
        let src =
            r###"let a = r#"has "quotes" and // slashes"#; let b = br"bytes"; let c = b"x";"###;
        let strs: Vec<String> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k == TokenKind::StrLit)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(strs.len(), 3);
        assert!(strs[0].starts_with("r#\""));
        roundtrip(src);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = r"fn f<'a>(x: &'a str) { let c = 'y'; let n = '\n'; let q = '\''; let s: &'static str = x; }";
        let toks = kinds(src);
        let lifetimes: Vec<String> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a", "'static"]);
        let chars: Vec<String> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::CharLit)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(chars, ["'y'", r"'\n'", r"'\''"]);
        roundtrip(src);
    }

    #[test]
    fn numbers_with_exponents_radix_and_suffixes() {
        let src = "let a = 1.0e6; let b = 1e-12; let c = 0xC0FF_EE00; let d = 42u64; let e = 1..9; let f = t.0;";
        let nums: Vec<String> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k == TokenKind::NumLit)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(
            nums,
            ["1.0e6", "1e-12", "0xC0FF_EE00", "42u64", "1", "9", "0"]
        );
        roundtrip(src);
    }

    #[test]
    fn raw_identifiers_and_plain_idents() {
        let src = "let r#fn = rope; br0ken b r";
        let idents: Vec<String> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(idents, ["let", "r#fn", "rope", "br0ken", "b", "r"]);
        roundtrip(src);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let src = "a\nbb /* two\nlines */ c\nd";
        let at = |name: &str| {
            lex(src)
                .into_iter()
                .find(|t| t.text(src) == name)
                .map(|t| t.line)
        };
        assert_eq!(at("a"), Some(1));
        assert_eq!(at("bb"), Some(2));
        assert_eq!(at("c"), Some(3));
        assert_eq!(at("d"), Some(4));
    }

    #[test]
    fn unterminated_literals_run_to_eof_without_panic() {
        for src in ["\"open", "r#\"open", "/* open", "'", "b'"] {
            roundtrip(src);
        }
    }
}
