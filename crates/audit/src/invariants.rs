//! Structural invariant checkers.
//!
//! Each checker is a pure function from live simulation state to a list of
//! typed [`Violation`]s — empty means the invariant class holds. They are
//! meant for *quiescent* states (a converged ring, a churn-free index):
//! mid-churn a Chord ring legitimately carries stale pointers, and the
//! checkers would report that staleness faithfully rather than hide it.
//!
//! The invariants checked are the ones the source papers' correctness
//! arguments rest on:
//!
//! * Chord (Stoica et al.): every node's successor is its ring-order
//!   neighbor, predecessors mirror successors, `finger[k] =
//!   successor(n + 2^k)`, and the successor list is a prefix of the ring
//!   order — the properties `stabilize`/`fix_fingers` are proven to
//!   restore.
//! * SPRITE §7: a key's copies live only on the owner and its
//!   `replication − 1` successors, and the owner always holds the primary
//!   copy.
//! * SPRITE §3–§5: posting lists hold one entry per document in document
//!   order, entry metadata matches the corpus, a document never publishes
//!   more than `max_terms` global terms (and never an advisory-excluded
//!   one), and every §4 ranking weight derived from an entry is finite and
//!   non-negative.

use std::collections::{BTreeMap, HashSet};
use std::fmt;

use sprite_chord::{ChordNet, Dht};
use sprite_core::SpriteSystem;
use sprite_ir::{DocId, TermId};
use sprite_util::{RingId, ID_BITS};

/// One broken invariant, with enough context to locate the damage.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// A node's successor pointer is not its ring-order neighbor.
    WrongSuccessor {
        /// The node holding the bad pointer.
        node: RingId,
        /// What it points to.
        found: RingId,
        /// The ring-order successor it should point to.
        expected: RingId,
    },
    /// A node's predecessor pointer is not its ring-order neighbor.
    WrongPredecessor {
        /// The node holding the bad pointer.
        node: RingId,
        /// What it points to (possibly nothing).
        found: Option<RingId>,
        /// The ring-order predecessor it should point to.
        expected: RingId,
    },
    /// `finger[k]` is not the successor of `n + 2^k`.
    WrongFinger {
        /// The node holding the bad finger.
        node: RingId,
        /// The finger index `k`.
        k: usize,
        /// The current entry.
        found: RingId,
        /// The owner of `finger_start(k)` on the live ring.
        expected: RingId,
    },
    /// A successor-list entry disagrees with the ring order at its position.
    BrokenSuccessorList {
        /// The node holding the list.
        node: RingId,
        /// The list position (0 = immediate successor).
        position: usize,
        /// The current entry.
        found: RingId,
        /// The ring-order node for that position.
        expected: RingId,
    },
    /// A stored copy sits on a peer outside the key's replica set.
    MisplacedKey {
        /// The peer holding the stray copy.
        peer: RingId,
        /// The key.
        key: RingId,
    },
    /// No copy of a stored key lives on its owner (the first replica).
    MissingPrimaryCopy {
        /// The key.
        key: RingId,
        /// The peer that should hold the primary copy.
        owner: RingId,
    },
    /// A posting list holds two entries for the same document.
    DuplicatePosting {
        /// The indexing peer.
        peer: RingId,
        /// The term.
        term: TermId,
        /// The duplicated document.
        doc: DocId,
    },
    /// A posting list is not sorted by document id.
    UnsortedPostingList {
        /// The indexing peer.
        peer: RingId,
        /// The term.
        term: TermId,
    },
    /// An index entry's metadata disagrees with the corpus.
    StaleEntryMetadata {
        /// The indexing peer.
        peer: RingId,
        /// The term.
        term: TermId,
        /// The document.
        doc: DocId,
    },
    /// A §4 ranking weight derived from an entry is not finite/non-negative.
    BadWeight {
        /// The indexing peer.
        peer: RingId,
        /// The term.
        term: TermId,
        /// The document.
        doc: DocId,
        /// The offending weight.
        weight: f64,
    },
    /// A document publishes more global terms than `max_terms` allows.
    TermCapExceeded {
        /// The document.
        doc: DocId,
        /// How many terms it publishes.
        published: usize,
        /// The configured cap.
        cap: usize,
    },
    /// A document's published list contains a term twice.
    DuplicatePublished {
        /// The document.
        doc: DocId,
        /// The repeated term.
        term: TermId,
    },
    /// A document publishes a term its owner was advised to exclude.
    ExcludedTermPublished {
        /// The document.
        doc: DocId,
        /// The excluded-but-published term.
        term: TermId,
    },
    /// A published term has no entry at its responsible indexing peer.
    PublishedButUnindexed {
        /// The document.
        doc: DocId,
        /// The term.
        term: TermId,
        /// The peer that should index it.
        peer: RingId,
    },
    /// An index entry exists for a term its document no longer publishes.
    IndexedButUnpublished {
        /// The indexing peer.
        peer: RingId,
        /// The term.
        term: TermId,
        /// The document.
        doc: DocId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::WrongSuccessor { node, found, expected } => write!(
                f,
                "node {node:?}: successor is {found:?}, ring order says {expected:?}"
            ),
            Violation::WrongPredecessor { node, found, expected } => write!(
                f,
                "node {node:?}: predecessor is {found:?}, ring order says {expected:?}"
            ),
            Violation::WrongFinger { node, k, found, expected } => write!(
                f,
                "node {node:?}: finger[{k}] is {found:?}, live ring says {expected:?}"
            ),
            Violation::BrokenSuccessorList { node, position, found, expected } => write!(
                f,
                "node {node:?}: successor list[{position}] is {found:?}, ring order says {expected:?}"
            ),
            Violation::MisplacedKey { peer, key } => {
                write!(f, "peer {peer:?} holds key {key:?} outside its replica set")
            }
            Violation::MissingPrimaryCopy { key, owner } => {
                write!(f, "key {key:?} has no copy at its owner {owner:?}")
            }
            Violation::DuplicatePosting { peer, term, doc } => write!(
                f,
                "peer {peer:?}: posting list of {term:?} lists {doc:?} twice"
            ),
            Violation::UnsortedPostingList { peer, term } => {
                write!(f, "peer {peer:?}: posting list of {term:?} is unsorted")
            }
            Violation::StaleEntryMetadata { peer, term, doc } => write!(
                f,
                "peer {peer:?}: entry ({term:?}, {doc:?}) disagrees with the corpus"
            ),
            Violation::BadWeight { peer, term, doc, weight } => write!(
                f,
                "peer {peer:?}: entry ({term:?}, {doc:?}) yields weight {weight}"
            ),
            Violation::TermCapExceeded { doc, published, cap } => {
                write!(f, "{doc:?} publishes {published} terms, cap is {cap}")
            }
            Violation::DuplicatePublished { doc, term } => {
                write!(f, "{doc:?} publishes {term:?} twice")
            }
            Violation::ExcludedTermPublished { doc, term } => {
                write!(f, "{doc:?} publishes excluded term {term:?}")
            }
            Violation::PublishedButUnindexed { doc, term, peer } => write!(
                f,
                "{doc:?} publishes {term:?} but peer {peer:?} has no entry"
            ),
            Violation::IndexedButUnpublished { peer, term, doc } => write!(
                f,
                "peer {peer:?} indexes ({term:?}, {doc:?}) but the document does not publish it"
            ),
        }
    }
}

/// Check the Chord ring invariants on a (quiescent) network: successor and
/// predecessor pointers against ring order, successor lists as ring-order
/// prefixes, and every finger against the live ring. Returns violations in
/// ring order.
#[must_use]
pub fn check_ring(net: &ChordNet) -> Vec<Violation> {
    let mut out = Vec::new();
    let ids = net.node_ids();
    let n = ids.len();
    for (i, &id) in ids.iter().enumerate() {
        let node = net.node(id).expect("listed node is alive");
        let expected_succ = ids[(i + 1) % n];
        if node.successor() != expected_succ {
            out.push(Violation::WrongSuccessor {
                node: id,
                found: node.successor(),
                expected: expected_succ,
            });
        }
        let expected_pred = ids[(i + n - 1) % n];
        if node.predecessor() != Some(expected_pred) {
            out.push(Violation::WrongPredecessor {
                node: id,
                found: node.predecessor(),
                expected: expected_pred,
            });
        }
        for (j, &s) in node.successor_list().iter().enumerate() {
            let expected = ids[(i + 1 + j) % n];
            if s != expected {
                out.push(Violation::BrokenSuccessorList {
                    node: id,
                    position: j,
                    found: s,
                    expected,
                });
            }
        }
        for k in 0..ID_BITS as usize {
            let expected = net
                .oracle_owner(id.finger_start(k as u32))
                .expect("ring is non-empty here");
            let found = node.finger_table()[k];
            if found != expected {
                out.push(Violation::WrongFinger {
                    node: id,
                    k,
                    found,
                    expected,
                });
            }
        }
    }
    out
}

/// Check key placement in a replicated [`Dht`]: every stored copy must live
/// inside its key's replica set (the owner plus `replication − 1`
/// successors, §7), and the owner must hold the primary copy.
#[must_use]
pub fn check_kv<V: Clone>(dht: &Dht<V>) -> Vec<Violation> {
    let mut out = Vec::new();
    let net = dht.net();
    let degree = dht.replication();
    // key → holders, in deterministic order.
    let mut holders: BTreeMap<RingId, Vec<RingId>> = BTreeMap::new();
    for (peer, key) in dht.copies() {
        holders.entry(key).or_default().push(peer);
    }
    for (key, mut peers) in holders {
        peers.sort_unstable();
        let replicas = net.oracle_replicas(key, degree);
        for &peer in &peers {
            if !replicas.contains(&peer) {
                out.push(Violation::MisplacedKey { peer, key });
            }
        }
        if let Some(&owner) = replicas.first() {
            if !peers.contains(&owner) {
                out.push(Violation::MissingPrimaryCopy { key, owner });
            }
        }
    }
    out
}

/// Check the SPRITE index invariants on a (churn-free) deployment: posting
/// lists sorted and duplicate-free with corpus-consistent metadata and
/// finite non-negative §4 weights; every document within its global-term
/// cap, duplicate-free, honoring advisory exclusions; and publish/index
/// agreement in both directions.
#[must_use]
pub fn check_index(sys: &SpriteSystem) -> Vec<Violation> {
    let mut out = Vec::new();
    let assumed_n = sys.config().assumed_n;

    // Indexing-peer side, in deterministic (peer, term) order.
    for peer in sys.indexing_peers() {
        let Some(st) = sys.indexing_state(peer) else {
            continue;
        };
        let mut terms: Vec<TermId> = st.terms().map(|(t, _)| t).collect();
        terms.sort_unstable();
        for term in terms {
            let list = st.entries(term);
            for pair in list.windows(2) {
                if pair[1].doc == pair[0].doc {
                    out.push(Violation::DuplicatePosting {
                        peer,
                        term,
                        doc: pair[1].doc,
                    });
                } else if pair[1].doc < pair[0].doc {
                    out.push(Violation::UnsortedPostingList { peer, term });
                    break;
                }
            }
            let df = list.len();
            for e in &list {
                let d = sys.corpus().doc(e.doc);
                if e.tf != d.freq(term)
                    || e.doc_len != d.len()
                    || e.distinct != d.distinct_terms() as u32
                    || e.owner != sys.owner_peer(e.doc)
                {
                    out.push(Violation::StaleEntryMetadata {
                        peer,
                        term,
                        doc: e.doc,
                    });
                }
                // The §4 document-side weight this entry produces at ranking
                // time: (tf / |D|) · ln(N / n′_k).
                let weight =
                    (f64::from(e.tf) / f64::from(e.doc_len)) * (assumed_n / df as f64).ln();
                if !weight.is_finite() || weight < 0.0 {
                    out.push(Violation::BadWeight {
                        peer,
                        term,
                        doc: e.doc,
                        weight,
                    });
                }
                if !sys.published_terms(e.doc).contains(&term) {
                    out.push(Violation::IndexedButUnpublished {
                        peer,
                        term,
                        doc: e.doc,
                    });
                }
            }
        }
    }

    // Owner side, per document.
    for i in 0..sys.corpus().len() {
        let doc = DocId(i as u32);
        let owner = sys.owner_state(doc);
        let cap = sys.config().max_terms;
        if owner.published.len() > cap {
            out.push(Violation::TermCapExceeded {
                doc,
                published: owner.published.len(),
                cap,
            });
        }
        let mut seen: HashSet<TermId> = HashSet::new();
        for &t in &owner.published {
            if !seen.insert(t) {
                out.push(Violation::DuplicatePublished { doc, term: t });
            }
            if owner.excluded.contains(&t) {
                out.push(Violation::ExcludedTermPublished { doc, term: t });
            }
            let key = RingId::hash_term(sys.corpus().vocab().term(t));
            let Some(peer) = sys.net().oracle_owner(key) else {
                continue;
            };
            let indexed = sys
                .indexing_state(peer)
                .is_some_and(|st| st.postings(t).into_iter().flatten().any(|e| e.doc == doc));
            if !indexed {
                out.push(Violation::PublishedButUnindexed { doc, term: t, peer });
            }
        }
    }
    out
}

/// Run every checker that applies to a full deployment: the ring plus the
/// index (the KV layer is a separate substrate with its own storage).
#[must_use]
pub fn check_system(sys: &SpriteSystem) -> Vec<Violation> {
    let mut out = check_ring(sys.net());
    out.extend(check_index(sys));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprite_chord::{ChordConfig, ChordNet};

    fn ring(n: usize) -> ChordNet {
        ChordNet::with_random_nodes(ChordConfig::default(), n, 17)
    }

    #[test]
    fn healthy_ring_has_no_violations() {
        for n in [1usize, 2, 3, 16] {
            let net = ring(n);
            assert!(net.is_converged());
            assert_eq!(check_ring(&net), Vec::new(), "ring of {n}");
        }
    }

    #[test]
    fn empty_ring_has_no_violations() {
        let net = ChordNet::new(ChordConfig::default());
        assert!(check_ring(&net).is_empty());
    }

    #[test]
    fn healthy_kv_has_no_violations() {
        let net = ring(16);
        let mut d: Dht<u32> = Dht::new(net, 3);
        let from = d.net().node_ids()[0];
        for i in 0..20u32 {
            d.put(from, RingId::hash_term(&format!("key-{i}")), i)
                .expect("converged ring routes");
        }
        assert!(check_kv(&d).is_empty());
    }
}
