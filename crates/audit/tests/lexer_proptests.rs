//! Seeded property tests for the audit lexer.
//!
//! Same convention as `crates/util/tests/proptests.rs`: each property is a
//! deterministic loop over `DetRng`-generated inputs rather than a
//! shrinking framework. The generator assembles Rust-ish sources from
//! fragments whose token kind is known in advance, with string and comment
//! fragments deliberately stuffed with trap text (`//`, `/*`, quotes, a
//! marker identifier) that a line-based scanner would trip over.
//!
//! Two invariants are checked:
//! 1. Round trip — concatenating every token's text reproduces the source
//!    byte for byte, tokens are contiguous, and line numbers agree with
//!    the newlines actually emitted.
//! 2. Containment — each string/comment fragment lexes to exactly one
//!    token of the right kind spanning the fragment exactly, so trap text
//!    inside it can never leak out as identifier or comment tokens.

use sprite_audit::lex::{lex, TokenKind};
use sprite_util::{derive_rng, DetRng};

fn rng(label: &str) -> DetRng {
    derive_rng(0xC0FF_EE00, label)
}

/// Marker planted only inside strings and comments; it must never surface
/// as an `Ident` token.
const TRAP: &str = "LEAKME";

/// One generated fragment: its text and the single token kind it must lex
/// to when surrounded by whitespace.
fn gen_fragment(r: &mut DetRng) -> (String, TokenKind) {
    match r.gen_range(0..12) {
        0 => (format!("x{}", r.gen_range(0..100)), TokenKind::Ident),
        1 => ("r#fn".to_string(), TokenKind::Ident),
        2 => (format!("{}", r.gen_u32()), TokenKind::NumLit),
        3 => ("1.5e-3".to_string(), TokenKind::NumLit),
        4 => ("0xC0FF_EE00u64".to_string(), TokenKind::NumLit),
        5 => (
            // Escaped string carrying both comment openers, an escaped
            // quote, and the trap marker.
            format!("\"{TRAP} // /* \\\" \\\\ {TRAP}\""),
            TokenKind::StrLit,
        ),
        6 => {
            // Raw string; with at least one `#` guard the body may even
            // contain a bare quote.
            let hashes = "#".repeat(r.gen_range(1..4));
            (
                format!("r{hashes}\"{TRAP} \" // */ {TRAP}\"{hashes}"),
                TokenKind::StrLit,
            )
        }
        7 => (format!("b\"{TRAP} // bytes\""), TokenKind::StrLit),
        8 => {
            let c = ["'a'", "'\\n'", "'\\''", "b'\\0'", "'/'"][r.gen_range(0..5)];
            (c.to_string(), TokenKind::CharLit)
        }
        9 => (
            ["'a", "'static", "'_"][r.gen_range(0..3)].to_string(),
            TokenKind::Lifetime,
        ),
        10 => (
            // Line comment with trap text; must be terminated by a newline
            // in the separator that follows.
            format!("// {TRAP} \"not a string\" /* {TRAP}"),
            TokenKind::LineComment,
        ),
        _ => (
            format!("/* {TRAP} // \" /* nested {TRAP} */ still */"),
            TokenKind::BlockComment,
        ),
    }
}

/// Random whitespace run; starts with a newline when `force_newline`
/// (required after a line comment, which otherwise absorbs any leading
/// spaces of the separator into the comment token).
fn gen_ws(r: &mut DetRng, force_newline: bool) -> String {
    let base = [" ", "\n", "\t", " \n ", "  "][r.gen_range(0..5)];
    if force_newline && !base.starts_with('\n') {
        format!("\n{base}")
    } else {
        base.to_string()
    }
}

/// Generated source plus the byte range and expected kind of each
/// fragment.
fn gen_source(r: &mut DetRng) -> (String, Vec<(usize, usize, TokenKind)>) {
    let n = r.gen_range(1..40);
    let mut src = String::new();
    let mut spans = Vec::new();
    let mut need_newline = false;
    for _ in 0..n {
        src.push_str(&gen_ws(r, need_newline));
        let (text, kind) = gen_fragment(r);
        spans.push((src.len(), src.len() + text.len(), kind));
        src.push_str(&text);
        need_newline = kind == TokenKind::LineComment;
    }
    src.push_str(&gen_ws(r, need_newline));
    (src, spans)
}

/// Concatenating every token's text reproduces the source byte for byte;
/// tokens tile the input with no gaps or overlaps; line numbers are
/// consistent with the newlines in the preceding text.
#[test]
fn lexed_tokens_round_trip_byte_for_byte() {
    let mut r = rng("lex-roundtrip");
    for _ in 0..300 {
        let (src, _) = gen_source(&mut r);
        let tokens = lex(&src);
        let rebuilt: String = tokens.iter().map(|t| t.text(&src)).collect();
        assert_eq!(rebuilt, src, "token concatenation must reproduce source");
        let mut at = 0;
        for t in &tokens {
            assert_eq!(t.start, at, "tokens must be contiguous");
            assert!(t.end > t.start, "tokens must be non-empty");
            let line = 1 + src[..t.start].bytes().filter(|&b| b == b'\n').count() as u32;
            assert_eq!(t.line, line, "line number must match newline count");
            at = t.end;
        }
        assert_eq!(at, src.len(), "tokens must cover the whole source");
    }
}

/// Each fragment lexes to exactly one token of the expected kind covering
/// the fragment's exact byte range, and the trap marker planted inside
/// strings and comments never appears as an identifier token.
#[test]
fn strings_and_comments_never_leak_tokens() {
    let mut r = rng("lex-containment");
    for _ in 0..300 {
        let (src, spans) = gen_source(&mut r);
        let tokens = lex(&src);
        for &(start, end, kind) in &spans {
            let covering: Vec<_> = tokens
                .iter()
                .filter(|t| t.start < end && t.end > start)
                .collect();
            assert_eq!(
                covering.len(),
                1,
                "fragment {:?} must be one token, got {covering:?}",
                &src[start..end]
            );
            assert_eq!(covering[0].kind, kind);
            assert_eq!((covering[0].start, covering[0].end), (start, end));
        }
        assert!(
            tokens
                .iter()
                .all(|t| t.kind != TokenKind::Ident || t.text(&src) != TRAP),
            "marker inside strings/comments must never lex as an identifier"
        );
    }
}

/// The regression that motivated the lexer (satellite of the same issue):
/// `//` inside a string literal is not a comment, so tokens after the
/// string — here an `.unwrap()` — remain visible to every rule.
#[test]
fn url_in_string_does_not_hide_the_rest_of_the_line() {
    let src = "let u = \"http://example.com\"; x.unwrap();\n";
    let tokens = lex(src);
    assert!(
        tokens.iter().all(|t| t.kind != TokenKind::LineComment),
        "no comment token may appear"
    );
    assert!(
        tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text(src) == "unwrap"),
        "the unwrap after the string must still be lexed"
    );
}
