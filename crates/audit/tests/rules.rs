//! Fixture tests for the lint rule engine.
//!
//! Each test feeds `analyze_sources` an in-memory workspace with planted
//! violations next to structurally similar near-misses, and asserts the
//! engine flags exactly the planted lines — nothing more. Fixture paths
//! live under `crates/core/src/` (a simulation crate) so every rule is
//! armed unless a test deliberately picks an exempt path.

use sprite_audit::{analyze_sources, Diagnostic};

fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|&(rel, src)| (rel.to_string(), src.to_string()))
        .collect();
    analyze_sources(&owned)
}

/// The `(line, rule)` pairs of every diagnostic, for exact-match asserts.
fn lines(diags: &[Diagnostic]) -> Vec<(u32, &'static str)> {
    diags.iter().map(|d| (d.line, d.rule)).collect()
}

// ---------------------------------------------------------------------
// Ported token rules
// ---------------------------------------------------------------------

/// The regression that killed the line scanner: `//` inside a string is
/// not a comment, so the `.unwrap()` after the URL is still flagged —
/// while `unwrap` spelled inside strings and comments never is.
#[test]
fn no_unwrap_sees_through_string_literals() {
    let src = "\
pub fn fetch() -> u32 {
    let u = \"http://example.com\"; Some(1).unwrap()
}
pub fn doc() -> &'static str {
    // calling .unwrap() here would be bad
    \".unwrap()\"
}
";
    let diags = run(&[("crates/core/src/fx.rs", src)]);
    assert_eq!(lines(&diags), [(2, "no-unwrap")]);
}

#[test]
fn expect_requires_a_nonempty_message() {
    let src = "\
pub fn a() -> u32 { Some(1).expect(\"\") }
pub fn b() -> u32 { Some(1).expect(\"one is some\") }
";
    let diags = run(&[("crates/core/src/fx.rs", src)]);
    assert_eq!(lines(&diags), [(1, "expect-message")]);
}

/// Opt-out markers must name the rule and carry a justification; the old
/// bare marker and a marker for a different rule both keep the finding.
#[test]
fn allow_marker_requires_rule_name_and_justification() {
    let src = "\
pub fn a() -> u32 { Some(1).unwrap() } // sprite-lint: allow(no-unwrap): fixture demo
pub fn b() -> u32 { Some(2).unwrap() } // sprite-lint: allow
pub fn c() -> u32 { Some(3).unwrap() } // sprite-lint: allow(expect-message): wrong rule
";
    let diags = run(&[("crates/core/src/fx.rs", src)]);
    assert_eq!(lines(&diags), [(2, "no-unwrap"), (3, "no-unwrap")]);
}

#[test]
fn exempt_dirs_and_test_tails_are_skipped() {
    let lib = "\
pub fn a() -> u32 { Some(1).unwrap() }
#[cfg(test)]
mod tests {
    fn t() -> u32 { Some(2).unwrap() }
}
";
    let diags = run(&[
        ("crates/core/src/fx.rs", lib),
        (
            "crates/core/tests/it.rs",
            "fn x() -> u32 { Some(1).unwrap() }\n",
        ),
        ("tests/e2e.rs", "fn x() -> u32 { Some(1).unwrap() }\n"),
        ("examples/demo.rs", "fn x() -> u32 { Some(1).unwrap() }\n"),
        (
            "crates/core/benches/b.rs",
            "fn x() -> u32 { Some(1).unwrap() }\n",
        ),
    ]);
    // Only the non-test part of the library file is linted.
    assert_eq!(lines(&diags), [(1, "no-unwrap")]);
    assert_eq!(diags[0].file, "crates/core/src/fx.rs");
}

#[test]
fn crate_roots_must_forbid_unsafe() {
    let diags = run(&[
        ("crates/core/src/lib.rs", "pub fn a() {}\n"),
        (
            "crates/ir/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn a() {}\n",
        ),
        // Not a crate root: no requirement.
        ("crates/core/src/other.rs", "pub fn b() {}\n"),
    ]);
    assert_eq!(lines(&diags), [(1, "forbid-unsafe")]);
    assert_eq!(diags[0].file, "crates/core/src/lib.rs");
}

#[test]
fn raw_spawns_are_confined_to_the_pool_module() {
    let spawny = "pub fn go() { std::thread::spawn(|| {}); }\n";
    let diags = run(&[
        ("crates/core/src/fx.rs", spawny),
        ("crates/util/src/pool.rs", spawny),
    ]);
    assert_eq!(lines(&diags), [(1, "no-raw-spawn")]);
    assert_eq!(diags[0].file, "crates/core/src/fx.rs");
}

#[test]
fn direct_delivery_sampling_is_confined_to_the_delivery_layer() {
    let sampley = "pub fn f(m: &LinkModel) { m.link_delivery(a, b, 0); }\n";
    let diags = run(&[
        ("crates/core/src/fx.rs", sampley),
        ("crates/chord/src/sim.rs", sampley),
        ("crates/chord/src/ring.rs", sampley),
    ]);
    assert_eq!(lines(&diags), [(1, "no-direct-delivery")]);
    assert_eq!(diags[0].file, "crates/core/src/fx.rs");
}

#[test]
fn ambient_time_is_banned_in_sim_crates_only() {
    let timey = "pub fn t() -> std::time::Instant { std::time::Instant::now() }\n";
    let diags = run(&[
        ("crates/core/src/fx.rs", timey),
        ("crates/bench/src/fx.rs", timey),
    ]);
    assert_eq!(lines(&diags), [(1, "no-ambient-time")]);
    assert_eq!(diags[0].file, "crates/core/src/fx.rs");
}

// ---------------------------------------------------------------------
// oracle-taint
// ---------------------------------------------------------------------

/// A function transitively reachable from a retrieval root may not call a
/// global-knowledge `oracle_*` helper — but an unreachable maintenance
/// path may.
#[test]
fn oracle_taint_follows_the_call_graph_from_the_roots() {
    let src = "\
pub struct QueryView { seed: u64 }
impl QueryView {
    pub fn query(&mut self) -> u64 { self.helper() }
    fn helper(&mut self) -> u64 { oracle_owner(self.seed) }
}
fn oracle_owner(x: u64) -> u64 { x }
fn cold_rebuild() -> u64 { oracle_owner(9) }
";
    let diags = run(&[("crates/core/src/fx.rs", src)]);
    assert_eq!(lines(&diags), [(4, "oracle-taint")]);
    assert!(diags[0].message.contains("oracle_owner"));
}

// ---------------------------------------------------------------------
// charge-coverage
// ---------------------------------------------------------------------

/// Raw stats mutators on the reachable path are flagged only when the
/// receiver is (or may be) the accounting state; a `Histogram::record_n`
/// on the same path is innocent, and an unreachable raw mutator is out of
/// scope.
#[test]
fn charge_coverage_refines_raw_mutators_by_receiver_type() {
    let src = "\
pub struct NetStats { pub n: u64 }
impl NetStats { pub fn record_n(&mut self, _v: u64, _n: u64) {} }
pub struct Histogram { pub n: u64 }
impl Histogram { pub fn record_n(&mut self, _v: u64, _n: u64) {} }
pub struct SpriteSystem { net: NetStats, hist: Histogram }
impl SpriteSystem {
    pub fn issue_query(&mut self) {
        self.net.record_n(1, 1);
        self.hist.record_n(1, 1);
    }
    fn cold(&mut self) { self.net.record_n(2, 2); }
}
";
    let diags = run(&[("crates/core/src/fx.rs", src)]);
    assert_eq!(lines(&diags), [(8, "charge-coverage")]);
    assert!(diags[0].message.contains("record_n"));
}

/// Constructing a `MsgKind` on the reachable path without any billing
/// call in the same function is drift; a sibling that bills through a
/// traced helper passes.
#[test]
fn charge_coverage_flags_unbilled_msgkind_mentions() {
    let src = "\
pub enum MsgKind { Billed, Mentioned }
pub struct NetStats { pub n: u64 }
impl NetStats { pub fn charge_traced(&mut self, _k: MsgKind) { self.n += 1; } }
pub struct SpriteSystem { net: NetStats }
impl SpriteSystem {
    pub fn issue_query(&mut self) { self.good(); self.bad(); }
    fn good(&mut self) { self.net.charge_traced(MsgKind::Billed); }
    fn bad(&mut self) { let _k = MsgKind::Mentioned; }
    fn cover(&mut self) { self.net.charge_traced(MsgKind::Mentioned); }
}
";
    let diags = run(&[("crates/core/src/fx.rs", src)]);
    assert_eq!(lines(&diags), [(8, "charge-coverage")]);
    assert!(diags[0].message.contains("MsgKind::Mentioned"));
}

/// Every `MsgKind` variant needs at least one billing site somewhere in
/// the workspace, whether or not the biller is reachable.
#[test]
fn variant_coverage_requires_a_billing_site_per_variant() {
    let src = "\
pub enum MsgKind {
    Covered,
    Orphan,
}
pub struct NetStats { pub n: u64 }
impl NetStats { pub fn charge_traced(&mut self, _k: MsgKind) { self.n += 1; } }
pub struct Gate { net: NetStats }
impl Gate {
    pub fn bill(&mut self) { self.net.charge_traced(MsgKind::Covered); }
}
";
    let diags = run(&[("crates/core/src/fx.rs", src)]);
    assert_eq!(lines(&diags), [(3, "charge-coverage")]);
    assert!(diags[0].message.contains("MsgKind::Orphan"));
}

// ---------------------------------------------------------------------
// hashmap-order
// ---------------------------------------------------------------------

/// Iterating a `HashMap` leaks storage order unless the function sorts
/// (or builds an ordered structure) or the statement reduces
/// commutatively. Scope-aware: locals, params, and same-file struct
/// fields are map-typed; a `Vec` iterated the same way is not.
#[test]
fn hashmap_order_is_scope_aware() {
    let src = "\
use std::collections::HashMap;
pub fn leak(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut v = Vec::new();
    for k in m.keys() { v.push(*k); }
    v
}
pub fn sorted(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut v: Vec<u32> = m.keys().copied().collect();
    v.sort_unstable();
    v
}
pub fn reduced(m: &HashMap<u32, u32>) -> usize { m.keys().count() }
pub fn vecs_are_fine(v: &[u32]) -> u32 { let mut s = 0; for x in v.iter() { s += x; } s }
pub struct Index { posting: HashMap<u32, u32> }
impl Index {
    pub fn drain_order(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for k in self.posting.keys() { out.push(*k); }
        out
    }
}
";
    let diags = run(&[("crates/core/src/fx.rs", src)]);
    assert_eq!(lines(&diags), [(4, "hashmap-order"), (18, "hashmap-order")]);
    assert!(diags[0].message.contains('m'));
    assert!(diags[1].message.contains("posting"));
}

// ---------------------------------------------------------------------
// config-drift
// ---------------------------------------------------------------------

/// Every `SpriteConfig` field must be read outside its defining file; a
/// knob nothing reads is dead configuration. Test-only reads don't count.
#[test]
fn config_drift_flags_fields_no_other_file_reads() {
    let config = "\
pub struct SpriteConfig {
    pub used: u32,
    pub orphan: u32,
    pub test_only: u32,
}
";
    let consumer = "\
pub fn apply(cfg: &super::SpriteConfig) -> u32 { cfg.used }
#[cfg(test)]
mod tests {
    fn t(cfg: &super::super::SpriteConfig) -> u32 { cfg.test_only }
}
";
    let diags = run(&[
        ("crates/core/src/config.rs", config),
        ("crates/core/src/consumer.rs", consumer),
    ]);
    assert_eq!(lines(&diags), [(3, "config-drift"), (4, "config-drift")]);
    assert!(diags[0].message.contains("orphan"));
    assert!(diags[1].message.contains("test_only"));
}

// ---------------------------------------------------------------------
// postings-codec
// ---------------------------------------------------------------------

/// Variant construction is the codec module's privilege: `Plain`/`Packed`
/// built anywhere else is flagged, while the same spellings inside
/// `crates/core/src/postings.rs`, in test tails, and in exempt dirs pass —
/// as do calls to the sanctioned constructors.
#[test]
fn postings_codec_confines_variant_construction_to_the_module() {
    let offender = "\
pub fn sneak() -> PostingList { PostingList::Plain(Vec::new()) }
pub fn sneak_packed() -> PostingList {
    PostingList::Packed { bytes: Vec::new(), count: 0, last_doc: 0 }
}
pub fn sanctioned() -> PostingList { PostingList::from_entries(Vec::new(), true) }
#[cfg(test)]
mod tests {
    fn t() -> PostingList { PostingList::Plain(Vec::new()) }
}
";
    let module = "\
pub fn build() -> PostingList { PostingList::Plain(Vec::new()) }
";
    let diags = run(&[
        ("crates/core/src/elsewhere.rs", offender),
        ("crates/core/src/postings.rs", module),
        ("crates/audit/tests/fixture.rs", offender),
    ]);
    assert_eq!(
        lines(&diags),
        [(1, "postings-codec"), (3, "postings-codec")]
    );
    assert!(diags[0].message.contains("from_entries"));
}

/// Storing an inverted index as raw `TermId → IndexEntry` containers (the
/// pre-codec layout) is flagged at the field; `PostingList`-typed storage
/// and transient `Vec<IndexEntry>` snapshots (locals, returns) pass.
#[test]
fn postings_codec_bans_raw_index_storage_fields() {
    let src = "\
pub struct OldLayout {
    inverted: HashMap<TermId, Vec<IndexEntry>>,
}
pub struct NewLayout {
    inverted: HashMap<TermId, PostingList>,
}
pub fn snapshot(term: TermId) -> Vec<IndexEntry> { Vec::new() }
";
    let diags = run(&[("crates/core/src/storage.rs", src)]);
    assert_eq!(lines(&diags), [(2, "postings-codec")]);
    assert!(diags[0].message.contains("OldLayout"));
    // The same field inside the codec module itself is fine.
    let diags = run(&[("crates/core/src/postings.rs", src)]);
    assert_eq!(lines(&diags), []);
}

/// The per-rule allow marker works for postings-codec like any other rule.
#[test]
fn postings_codec_respects_allow_markers() {
    let src = "\
pub fn a() -> PostingList { PostingList::Plain(Vec::new()) } // sprite-lint: allow(postings-codec): fixture demo
pub fn b() -> PostingList { PostingList::Plain(Vec::new()) }
";
    let diags = run(&[("crates/core/src/fx.rs", src)]);
    assert_eq!(lines(&diags), [(2, "postings-codec")]);
}

// ---------------------------------------------------------------------
// Output shape
// ---------------------------------------------------------------------

/// Diagnostics render in the `file:line: [rule] message` text shape and
/// as the one-line JSON objects the CI problem matcher consumes.
#[test]
fn diagnostics_render_text_and_json() {
    let diags = run(&[(
        "crates/core/src/fx.rs",
        "pub fn a() -> u32 { Some(1).unwrap() }\n",
    )]);
    assert_eq!(diags.len(), 1);
    let text = diags[0].to_string();
    assert!(text.starts_with("crates/core/src/fx.rs:1: [no-unwrap] "));
    let json = diags[0].to_json();
    assert!(
        json.starts_with("{\"file\":\"crates/core/src/fx.rs\",\"line\":1,\"rule\":\"no-unwrap\",")
    );
    assert!(json.ends_with("\"}"));
}
