//! Dual-backend equivalence: the arena node store and the historical map
//! must be indistinguishable from above the ring. Every test here runs
//! the same schedule against both backends and holds them to identical
//! ring-invariant verdicts and bit-identical fingerprints — the swap is
//! a memory-layout change, never a behavior change.

use sprite_audit::determinism::{fingerprint_index, fingerprint_ring, fingerprint_stats};
use sprite_audit::invariants::check_ring;
use sprite_chord::{ChordConfig, ChordNet, ChurnConfig, ChurnEngine, StorageBackend};
use sprite_core::{SpriteConfig, SpriteSystem};
use sprite_corpus::{CorpusConfig, SyntheticCorpus};
use sprite_util::RingId;

const BACKENDS: [StorageBackend; 2] = [StorageBackend::Map, StorageBackend::Arena];

fn net_with(backend: StorageBackend, n: usize, seed: u64) -> ChordNet {
    let cfg = ChordConfig {
        backend,
        ..ChordConfig::default()
    };
    ChordNet::with_random_nodes(cfg, n, seed)
}

#[test]
fn ring_invariants_hold_on_both_backends() {
    for backend in BACKENDS {
        for n in [1usize, 2, 8, 64] {
            let net = net_with(backend, n, 9);
            assert_eq!(
                check_ring(&net),
                Vec::new(),
                "healthy {backend:?} ring of {n} must satisfy every invariant"
            );
        }
    }
}

#[test]
fn churn_schedule_is_bit_identical_across_backends() {
    // The same join/fail/leave/repair schedule on both backends, with the
    // invariant checker run and the ring fingerprinted after every batch.
    let run = |backend: StorageBackend| -> Vec<u128> {
        let mut net = net_with(backend, 48, 17);
        let mut fps = vec![fingerprint_ring(&net)];
        let ids = net.node_ids();
        for id in ids.iter().step_by(7) {
            net.fail(*id).expect("listed node is alive");
        }
        net.converge(64);
        assert_eq!(check_ring(&net), Vec::new(), "{backend:?} after failures");
        fps.push(fingerprint_ring(&net));
        for i in 0..6u64 {
            let id = RingId::hash_bytes(format!("dual-backend-join-{i}").as_bytes());
            let bootstrap = net.node_ids()[0];
            net.join(id, bootstrap).expect("bootstrap is alive");
        }
        net.converge(64);
        assert_eq!(check_ring(&net), Vec::new(), "{backend:?} after joins");
        fps.push(fingerprint_ring(&net));
        let victim = net.node_ids()[3];
        net.leave(victim).expect("listed node is alive");
        net.converge(64);
        assert_eq!(check_ring(&net), Vec::new(), "{backend:?} after a leave");
        fps.push(fingerprint_ring(&net));
        fps
    };
    assert_eq!(
        run(StorageBackend::Map),
        run(StorageBackend::Arena),
        "the storage backend leaked into ring state"
    );
}

#[test]
fn engine_driven_churn_is_bit_identical_across_backends() {
    // Continuous engine-driven churn (the e2e churn path): same seed, same
    // tick count, both backends — identical fingerprints after every tick
    // even while the ring is deliberately unconverged.
    let run = |backend: StorageBackend| -> Vec<u128> {
        let mut net = net_with(backend, 32, 23);
        let mut engine = ChurnEngine::new(ChurnConfig::default(), 24);
        let mut fps = Vec::new();
        for _ in 0..4 {
            engine.tick(&mut net);
            net.stabilize_round();
            net.fix_fingers_round();
            fps.push(fingerprint_ring(&net));
        }
        net.converge(64);
        assert_eq!(
            check_ring(&net),
            Vec::new(),
            "{backend:?} must repair after churn stops"
        );
        fps.push(fingerprint_ring(&net));
        fps
    };
    assert_eq!(
        run(StorageBackend::Map),
        run(StorageBackend::Arena),
        "engine-driven churn diverged across backends"
    );
}

#[test]
fn full_deployment_churn_e2e_is_bit_identical_across_backends() {
    // The whole stack generically over the backend: build, publish,
    // replicate, learn, fail peers (hand-over + repair), query — index,
    // ring, and billed stats must fingerprint identically.
    let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(31));
    let queries: Vec<sprite_ir::Query> = sc
        .seed_queries()
        .iter()
        .take(6)
        .map(|s| s.query.clone())
        .collect();
    let run = |backend: StorageBackend| -> (u128, u128, u128, Vec<Vec<u32>>) {
        let cfg = SpriteConfig {
            replication: 3,
            ..SpriteConfig::default()
        };
        let mut sys = SpriteSystem::build_with_backend(sc.corpus().clone(), 32, cfg, 31, backend);
        sys.publish_all();
        sys.replicate_indexes();
        sys.learning_iteration();
        sys.fail_random_peers(6, 2);
        sys.maintenance_round();
        let answers: Vec<Vec<u32>> = queries
            .iter()
            .map(|q| sys.issue_query(q, 20).iter().map(|h| h.doc.0).collect())
            .collect();
        (
            fingerprint_ring(sys.net()),
            fingerprint_index(&sys),
            fingerprint_stats(sys.net().stats()),
            answers,
        )
    };
    let map = run(StorageBackend::Map);
    let arena = run(StorageBackend::Arena);
    assert_eq!(map.0, arena.0, "ring fingerprints diverged");
    assert_eq!(map.1, arena.1, "index fingerprints diverged");
    assert_eq!(map.2, arena.2, "billed stats diverged");
    assert_eq!(map.3, arena.3, "ranked answers diverged");
}
