//! Corruption-injection tests: deliberately break each invariant class the
//! checkers cover and assert the damage is detected — and that the healthy
//! state is reported clean. The injection points (`node_mut`, `inject_copy`,
//! `inject_published`, `inject_raw`) exist for exactly this purpose; the
//! simulation itself never calls them.
//!
//! The final section hardens the wire codec the byte accounting is built
//! on: truncated, bit-flipped, and non-canonical inputs must all decode to
//! a typed [`sprite_util::CodecError`] — never a panic, never a hang,
//! never an unbounded allocation.

use sprite_audit::{check_index, check_kv, check_ring, check_system, Violation};
use sprite_chord::{ChordConfig, ChordNet, Dht};
use sprite_core::{IndexEntry, SpriteConfig, SpriteSystem};
use sprite_corpus::{CorpusConfig, SyntheticCorpus};
use sprite_ir::TermId;
use sprite_util::{
    decode_gap_list, decode_varint, derive_rng, encode_gap_list, encode_varint, CodecError, RingId,
};

fn ring(n: usize) -> ChordNet {
    let net = ChordNet::with_random_nodes(ChordConfig::default(), n, 99);
    assert!(net.is_converged(), "test precondition: converged ring");
    net
}

/// A small published deployment shared by the index-corruption tests.
fn deployment() -> SpriteSystem {
    let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(7));
    let mut sys = SpriteSystem::build(sc.corpus().clone(), 16, SpriteConfig::default(), 7);
    sys.publish_all();
    assert_eq!(check_system(&sys), Vec::new(), "test precondition: healthy");
    sys
}

/// Some (peer, term) whose posting list has at least `min_len` entries.
fn populated_list(sys: &SpriteSystem, min_len: usize) -> (RingId, TermId, Vec<IndexEntry>) {
    for peer in sys.indexing_peers() {
        let st = sys.indexing_state(peer).expect("listed peer indexes");
        for (term, list) in st.terms() {
            if list.len() >= min_len {
                return (peer, term, list.to_entries());
            }
        }
    }
    panic!("no posting list with >= {min_len} entries in the tiny deployment");
}

#[test]
fn healthy_deployment_is_clean() {
    let mut sys = deployment();
    sys.learning_iteration();
    assert_eq!(check_system(&sys), Vec::new(), "post-learning state");
}

#[test]
fn mutated_finger_is_detected() {
    let mut net = ring(16);
    let ids = net.node_ids();
    let victim = ids[3];
    // Point a mid-table finger at the node itself — with 16 random nodes in
    // a 128-bit space, finger[64]'s true owner is essentially never the
    // node, and the check compares against the live-ring oracle anyway.
    net.node_mut(victim)
        .expect("victim is alive")
        .set_finger(64, victim);
    let found = check_ring(&net);
    assert!(
        found
            .iter()
            .any(|v| matches!(v, Violation::WrongFinger { node, k: 64, .. } if *node == victim)),
        "expected WrongFinger on {victim:?}, got {found:?}"
    );
}

#[test]
fn dropped_successor_is_detected() {
    let mut net = ring(16);
    let ids = net.node_ids();
    let victim = ids[0];
    // Drop the real successor: shift the list left by one, as if the node
    // had (wrongly) given up on a live neighbor.
    let mut list = net
        .node(victim)
        .expect("victim is alive")
        .successor_list()
        .to_vec();
    assert!(list.len() >= 2, "test needs a successor list of >= 2");
    list.remove(0);
    net.node_mut(victim)
        .expect("victim is alive")
        .set_successor_list(list);
    let found = check_ring(&net);
    assert!(
        found
            .iter()
            .any(|v| matches!(v, Violation::WrongSuccessor { node, .. } if *node == victim)),
        "expected WrongSuccessor on {victim:?}, got {found:?}"
    );
    assert!(
        found.iter().any(
            |v| matches!(v, Violation::BrokenSuccessorList { node, position: 0, .. } if *node == victim)
        ),
        "expected BrokenSuccessorList at position 0, got {found:?}"
    );
}

#[test]
fn corrupt_predecessor_is_detected() {
    let mut net = ring(8);
    let victim = net.node_ids()[5];
    net.node_mut(victim)
        .expect("victim is alive")
        .set_predecessor(None);
    let found = check_ring(&net);
    assert!(
        found
            .iter()
            .any(|v| matches!(v, Violation::WrongPredecessor { node, found: None, .. } if *node == victim)),
        "expected WrongPredecessor on {victim:?}, got {found:?}"
    );
}

#[test]
fn misplaced_kv_key_is_detected() {
    let mut dht: Dht<u32> = Dht::new(ring(16), 3);
    let from = dht.net().node_ids()[0];
    let key = RingId::hash_term("misplaced-key");
    dht.put(from, key, 1).expect("converged ring routes");
    assert!(check_kv(&dht).is_empty(), "test precondition: healthy KV");

    // Plant a stray copy on a peer outside the key's replica set.
    let replicas = dht.net().oracle_replicas(key, 3);
    let outsider = dht
        .net()
        .node_ids()
        .into_iter()
        .find(|id| !replicas.contains(id))
        .expect("16 nodes, 3 replicas: an outsider exists");
    dht.inject_copy(outsider, key, 2);
    let found = check_kv(&dht);
    assert_eq!(
        found,
        vec![Violation::MisplacedKey {
            peer: outsider,
            key
        }]
    );
}

#[test]
fn missing_primary_copy_is_detected() {
    let mut dht: Dht<u32> = Dht::new(ring(16), 3);
    let key = RingId::hash_term("orphan-key");
    let replicas = dht.net().oracle_replicas(key, 3);
    // A copy on a secondary replica only: placement is legal, but the owner
    // never stored the primary copy.
    dht.inject_copy(replicas[1], key, 1);
    let found = check_kv(&dht);
    assert_eq!(
        found,
        vec![Violation::MissingPrimaryCopy {
            key,
            owner: replicas[0]
        }]
    );
}

#[test]
fn over_published_terms_are_detected() {
    let mut sys = deployment();
    let doc = sprite_ir::DocId(0);
    let cap = sys.config().max_terms;
    // Publish cap + 3 distinct vocabulary terms behind the owner's back.
    let terms: Vec<TermId> = (0..cap as u32 + 3).map(TermId).collect();
    let published = terms.len();
    sys.inject_published(doc, terms);
    let found = check_index(&sys);
    assert!(
        found.contains(&Violation::TermCapExceeded {
            doc,
            published,
            cap
        }),
        "expected TermCapExceeded, got {found:?}"
    );
    // The injected terms were never routed to indexing peers, so the
    // publish/index agreement check fires too.
    assert!(
        found
            .iter()
            .any(|v| matches!(v, Violation::PublishedButUnindexed { doc: d, .. } if *d == doc)),
        "expected PublishedButUnindexed, got {found:?}"
    );
}

#[test]
fn duplicate_published_term_is_detected() {
    let mut sys = deployment();
    let doc = sprite_ir::DocId(1);
    let first = *sys
        .published_terms(doc)
        .first()
        .expect("published documents have terms");
    let mut terms = sys.published_terms(doc).to_vec();
    terms.push(first);
    sys.inject_published(doc, terms);
    let found = check_index(&sys);
    assert!(
        found.contains(&Violation::DuplicatePublished { doc, term: first }),
        "expected DuplicatePublished, got {found:?}"
    );
}

#[test]
fn unsorted_posting_list_is_detected() {
    let mut sys = deployment();
    let (peer, term, mut list) = populated_list(&sys, 2);
    // Reverse a real list: same valid entries, wrong document order.
    list.reverse();
    sys.indexing_state_mut(peer)
        .expect("peer indexes")
        .inject_raw(term, list);
    let found = check_index(&sys);
    assert!(
        found.contains(&Violation::UnsortedPostingList { peer, term }),
        "expected UnsortedPostingList, got {found:?}"
    );
}

#[test]
fn duplicate_posting_is_detected() {
    let mut sys = deployment();
    let (peer, term, mut list) = populated_list(&sys, 1);
    let doc = list[0].doc;
    let dup = list[0];
    list.insert(1, dup);
    sys.indexing_state_mut(peer)
        .expect("peer indexes")
        .inject_raw(term, list);
    let found = check_index(&sys);
    assert!(
        found.contains(&Violation::DuplicatePosting { peer, term, doc }),
        "expected DuplicatePosting, got {found:?}"
    );
}

#[test]
fn stale_entry_metadata_is_detected() {
    let mut sys = deployment();
    let (peer, term, mut list) = populated_list(&sys, 1);
    let doc = list[0].doc;
    // Corrupt the replicated term frequency: the corpus disagrees now.
    list[0].tf += 1;
    sys.indexing_state_mut(peer)
        .expect("peer indexes")
        .inject_raw(term, list);
    let found = check_index(&sys);
    assert!(
        found.contains(&Violation::StaleEntryMetadata { peer, term, doc }),
        "expected StaleEntryMetadata, got {found:?}"
    );
}

#[test]
fn bad_weight_is_detected() {
    let mut sys = deployment();
    let (peer, term, mut list) = populated_list(&sys, 1);
    let doc = list[0].doc;
    // A zero document length makes the §4 weight tf/|D| · ln(N/n′) infinite.
    list[0].doc_len = 0;
    sys.indexing_state_mut(peer)
        .expect("peer indexes")
        .inject_raw(term, list);
    let found = check_index(&sys);
    assert!(
        found.iter().any(
            |v| matches!(v, Violation::BadWeight { peer: p, term: t, doc: d, .. }
                if *p == peer && *t == term && *d == doc)
        ),
        "expected BadWeight, got {found:?}"
    );
}

#[test]
fn indexed_but_unpublished_is_detected() {
    let mut sys = deployment();
    let (_, _, donor) = populated_list(&sys, 1);
    let doc = donor[0].doc;
    // Retract the document's publications; its index entries are now orphans.
    sys.inject_published(doc, Vec::new());
    let found = check_index(&sys);
    assert!(
        found
            .iter()
            .any(|v| matches!(v, Violation::IndexedButUnpublished { doc: d, .. } if *d == doc)),
        "expected IndexedButUnpublished, got {found:?}"
    );
}

#[test]
fn determinism_audit_passes_on_the_real_system() {
    let report = sprite_audit::audit_determinism(41);
    assert!(report.passed, "diverged at {:?}", report.first_divergence);
}

// ---------------------------------------------------------------------
// Wire-codec corruption injection.
// ---------------------------------------------------------------------

/// A seeded pool of valid encoded gap lists (with their source lists).
fn encoded_lists(seed_label: &str, cases: usize) -> Vec<(Vec<u64>, Vec<u8>)> {
    let mut rng = derive_rng(0xBAD_C0DE, seed_label);
    let mut out = Vec::with_capacity(cases);
    for _ in 0..cases {
        let len = rng.gen_range(0..40);
        let mut v = 0u64;
        let list: Vec<u64> = (0..len)
            .map(|_| {
                v += rng.gen_range(1..10_000) as u64;
                v
            })
            .collect();
        let mut buf = Vec::new();
        encode_gap_list(&list, &mut buf).expect("ascending list encodes");
        out.push((list, buf));
    }
    out
}

#[test]
fn truncated_codec_input_is_a_typed_error() {
    // Every proper prefix of a valid encoding must decode to an error (or,
    // for gap lists, a shorter valid stream boundary is impossible since
    // the count byte pins the element count) — and must never panic.
    for (list, buf) in encoded_lists("truncation", 60) {
        for cut in 0..buf.len() {
            match decode_gap_list(&buf[..cut], 0) {
                Ok((got, _)) => panic!("prefix of len {cut} decoded to {got:?} for {list:?}"),
                Err(
                    CodecError::Truncated { .. }
                    | CodecError::Overflow { .. }
                    | CodecError::NonCanonical { .. },
                ) => {}
                Err(e) => panic!("unexpected error class {e:?}"),
            }
        }
    }
    // Varints likewise: chopping the final byte always truncates.
    let mut buf = Vec::new();
    encode_varint(u64::MAX, &mut buf);
    for cut in 0..buf.len() {
        assert_eq!(
            decode_varint(&buf[..cut], 0),
            Err(CodecError::Truncated { offset: cut })
        );
    }
}

#[test]
fn bit_flipped_codec_input_never_panics() {
    // Flip every bit of every byte of valid encodings. The decoder may
    // legitimately succeed (the flip may yield another valid stream) but
    // must never panic, hang, or return through anything but the typed
    // error path.
    for (_, buf) in encoded_lists("bit-flips", 40) {
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut corrupt = buf.clone();
                corrupt[byte] ^= 1 << bit;
                if let Ok((got, end)) = decode_gap_list(&corrupt, 0) {
                    // If it decodes, the result must still be strictly
                    // ascending and the consumed length in bounds.
                    assert!(end <= corrupt.len());
                    assert!(got.windows(2).all(|w| w[0] < w[1]));
                }
            }
        }
    }
}

#[test]
fn random_garbage_codec_input_never_panics() {
    let mut rng = derive_rng(0xBAD_C0DE, "garbage");
    for _ in 0..300 {
        let len = rng.gen_range(0..64);
        let buf: Vec<u8> = (0..len).map(|_| rng.gen_u32() as u8).collect();
        // Both decoders must return, not panic — any Ok must be in bounds.
        if let Ok((_, end)) = decode_varint(&buf, 0) {
            assert!(end <= buf.len());
        }
        if let Ok((got, end)) = decode_gap_list(&buf, 0) {
            assert!(end <= buf.len());
            assert!(got.windows(2).all(|w| w[0] < w[1]));
        }
    }
}

#[test]
fn non_canonical_varints_are_rejected_everywhere() {
    // Padding any varint with a redundant continuation byte must be
    // refused — otherwise equal payloads could bill different byte sizes.
    let mut rng = derive_rng(0xBAD_C0DE, "non-canonical");
    for _ in 0..200 {
        let v = rng.gen_u64() >> rng.gen_range(0..64) as u32;
        let mut buf = Vec::new();
        encode_varint(v, &mut buf);
        if buf.len() >= sprite_util::MAX_VARINT_LEN {
            continue; // no room to pad a 10-byte encoding
        }
        // Re-encode with one redundant group: set the continuation bit on
        // the final byte and append a zero byte.
        let last = buf.len() - 1;
        buf[last] |= 0x80;
        buf.push(0x00);
        assert_eq!(
            decode_varint(&buf, 0),
            Err(CodecError::NonCanonical { offset: last + 1 }),
            "padded encoding of {v} must be rejected"
        );
    }
}

#[test]
fn corrupt_gap_list_count_cannot_overallocate() {
    // A count field claiming 2^50 elements with only a handful of payload
    // bytes must fail fast (bounded by the buffer, not the claim).
    let mut buf = Vec::new();
    encode_varint(1 << 50, &mut buf);
    encode_varint(7, &mut buf);
    encode_varint(3, &mut buf);
    assert!(matches!(
        decode_gap_list(&buf, 0),
        Err(CodecError::Truncated { .. })
    ));
}
