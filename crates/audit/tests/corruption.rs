//! Corruption-injection tests: deliberately break each invariant class the
//! checkers cover and assert the damage is detected — and that the healthy
//! state is reported clean. The injection points (`node_mut`, `inject_copy`,
//! `inject_published`, `inject_raw`) exist for exactly this purpose; the
//! simulation itself never calls them.

use sprite_audit::{check_index, check_kv, check_ring, check_system, Violation};
use sprite_chord::{ChordConfig, ChordNet, Dht};
use sprite_core::{IndexEntry, SpriteConfig, SpriteSystem};
use sprite_corpus::{CorpusConfig, SyntheticCorpus};
use sprite_ir::TermId;
use sprite_util::RingId;

fn ring(n: usize) -> ChordNet {
    let net = ChordNet::with_random_nodes(ChordConfig::default(), n, 99);
    assert!(net.is_converged(), "test precondition: converged ring");
    net
}

/// A small published deployment shared by the index-corruption tests.
fn deployment() -> SpriteSystem {
    let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(7));
    let mut sys = SpriteSystem::build(sc.corpus().clone(), 16, SpriteConfig::default(), 7);
    sys.publish_all();
    assert_eq!(check_system(&sys), Vec::new(), "test precondition: healthy");
    sys
}

/// Some (peer, term) whose posting list has at least `min_len` entries.
fn populated_list(sys: &SpriteSystem, min_len: usize) -> (RingId, TermId, Vec<IndexEntry>) {
    for peer in sys.indexing_peers() {
        let st = sys.indexing_state(peer).expect("listed peer indexes");
        for (term, list) in st.terms() {
            if list.len() >= min_len {
                return (peer, term, list.to_vec());
            }
        }
    }
    panic!("no posting list with >= {min_len} entries in the tiny deployment");
}

#[test]
fn healthy_deployment_is_clean() {
    let mut sys = deployment();
    sys.learning_iteration();
    assert_eq!(check_system(&sys), Vec::new(), "post-learning state");
}

#[test]
fn mutated_finger_is_detected() {
    let mut net = ring(16);
    let ids = net.node_ids();
    let victim = ids[3];
    // Point a mid-table finger at the node itself — with 16 random nodes in
    // a 128-bit space, finger[64]'s true owner is essentially never the
    // node, and the check compares against the live-ring oracle anyway.
    net.node_mut(victim)
        .expect("victim is alive")
        .set_finger(64, victim);
    let found = check_ring(&net);
    assert!(
        found
            .iter()
            .any(|v| matches!(v, Violation::WrongFinger { node, k: 64, .. } if *node == victim)),
        "expected WrongFinger on {victim:?}, got {found:?}"
    );
}

#[test]
fn dropped_successor_is_detected() {
    let mut net = ring(16);
    let ids = net.node_ids();
    let victim = ids[0];
    // Drop the real successor: shift the list left by one, as if the node
    // had (wrongly) given up on a live neighbor.
    let mut list = net
        .node(victim)
        .expect("victim is alive")
        .successor_list()
        .to_vec();
    assert!(list.len() >= 2, "test needs a successor list of >= 2");
    list.remove(0);
    net.node_mut(victim)
        .expect("victim is alive")
        .set_successor_list(list);
    let found = check_ring(&net);
    assert!(
        found
            .iter()
            .any(|v| matches!(v, Violation::WrongSuccessor { node, .. } if *node == victim)),
        "expected WrongSuccessor on {victim:?}, got {found:?}"
    );
    assert!(
        found.iter().any(
            |v| matches!(v, Violation::BrokenSuccessorList { node, position: 0, .. } if *node == victim)
        ),
        "expected BrokenSuccessorList at position 0, got {found:?}"
    );
}

#[test]
fn corrupt_predecessor_is_detected() {
    let mut net = ring(8);
    let victim = net.node_ids()[5];
    net.node_mut(victim)
        .expect("victim is alive")
        .set_predecessor(None);
    let found = check_ring(&net);
    assert!(
        found
            .iter()
            .any(|v| matches!(v, Violation::WrongPredecessor { node, found: None, .. } if *node == victim)),
        "expected WrongPredecessor on {victim:?}, got {found:?}"
    );
}

#[test]
fn misplaced_kv_key_is_detected() {
    let mut dht: Dht<u32> = Dht::new(ring(16), 3);
    let from = dht.net().node_ids()[0];
    let key = RingId::hash_term("misplaced-key");
    dht.put(from, key, 1).expect("converged ring routes");
    assert!(check_kv(&dht).is_empty(), "test precondition: healthy KV");

    // Plant a stray copy on a peer outside the key's replica set.
    let replicas = dht.net().oracle_replicas(key, 3);
    let outsider = dht
        .net()
        .node_ids()
        .into_iter()
        .find(|id| !replicas.contains(id))
        .expect("16 nodes, 3 replicas: an outsider exists");
    dht.inject_copy(outsider, key, 2);
    let found = check_kv(&dht);
    assert_eq!(
        found,
        vec![Violation::MisplacedKey {
            peer: outsider,
            key
        }]
    );
}

#[test]
fn missing_primary_copy_is_detected() {
    let mut dht: Dht<u32> = Dht::new(ring(16), 3);
    let key = RingId::hash_term("orphan-key");
    let replicas = dht.net().oracle_replicas(key, 3);
    // A copy on a secondary replica only: placement is legal, but the owner
    // never stored the primary copy.
    dht.inject_copy(replicas[1], key, 1);
    let found = check_kv(&dht);
    assert_eq!(
        found,
        vec![Violation::MissingPrimaryCopy {
            key,
            owner: replicas[0]
        }]
    );
}

#[test]
fn over_published_terms_are_detected() {
    let mut sys = deployment();
    let doc = sprite_ir::DocId(0);
    let cap = sys.config().max_terms;
    // Publish cap + 3 distinct vocabulary terms behind the owner's back.
    let terms: Vec<TermId> = (0..cap as u32 + 3).map(TermId).collect();
    let published = terms.len();
    sys.inject_published(doc, terms);
    let found = check_index(&sys);
    assert!(
        found.contains(&Violation::TermCapExceeded {
            doc,
            published,
            cap
        }),
        "expected TermCapExceeded, got {found:?}"
    );
    // The injected terms were never routed to indexing peers, so the
    // publish/index agreement check fires too.
    assert!(
        found
            .iter()
            .any(|v| matches!(v, Violation::PublishedButUnindexed { doc: d, .. } if *d == doc)),
        "expected PublishedButUnindexed, got {found:?}"
    );
}

#[test]
fn duplicate_published_term_is_detected() {
    let mut sys = deployment();
    let doc = sprite_ir::DocId(1);
    let first = *sys
        .published_terms(doc)
        .first()
        .expect("published documents have terms");
    let mut terms = sys.published_terms(doc).to_vec();
    terms.push(first);
    sys.inject_published(doc, terms);
    let found = check_index(&sys);
    assert!(
        found.contains(&Violation::DuplicatePublished { doc, term: first }),
        "expected DuplicatePublished, got {found:?}"
    );
}

#[test]
fn unsorted_posting_list_is_detected() {
    let mut sys = deployment();
    let (peer, term, mut list) = populated_list(&sys, 2);
    // Reverse a real list: same valid entries, wrong document order.
    list.reverse();
    sys.indexing_state_mut(peer)
        .expect("peer indexes")
        .inject_raw(term, list);
    let found = check_index(&sys);
    assert!(
        found.contains(&Violation::UnsortedPostingList { peer, term }),
        "expected UnsortedPostingList, got {found:?}"
    );
}

#[test]
fn duplicate_posting_is_detected() {
    let mut sys = deployment();
    let (peer, term, mut list) = populated_list(&sys, 1);
    let doc = list[0].doc;
    let dup = list[0];
    list.insert(1, dup);
    sys.indexing_state_mut(peer)
        .expect("peer indexes")
        .inject_raw(term, list);
    let found = check_index(&sys);
    assert!(
        found.contains(&Violation::DuplicatePosting { peer, term, doc }),
        "expected DuplicatePosting, got {found:?}"
    );
}

#[test]
fn stale_entry_metadata_is_detected() {
    let mut sys = deployment();
    let (peer, term, mut list) = populated_list(&sys, 1);
    let doc = list[0].doc;
    // Corrupt the replicated term frequency: the corpus disagrees now.
    list[0].tf += 1;
    sys.indexing_state_mut(peer)
        .expect("peer indexes")
        .inject_raw(term, list);
    let found = check_index(&sys);
    assert!(
        found.contains(&Violation::StaleEntryMetadata { peer, term, doc }),
        "expected StaleEntryMetadata, got {found:?}"
    );
}

#[test]
fn bad_weight_is_detected() {
    let mut sys = deployment();
    let (peer, term, mut list) = populated_list(&sys, 1);
    let doc = list[0].doc;
    // A zero document length makes the §4 weight tf/|D| · ln(N/n′) infinite.
    list[0].doc_len = 0;
    sys.indexing_state_mut(peer)
        .expect("peer indexes")
        .inject_raw(term, list);
    let found = check_index(&sys);
    assert!(
        found.iter().any(
            |v| matches!(v, Violation::BadWeight { peer: p, term: t, doc: d, .. }
                if *p == peer && *t == term && *d == doc)
        ),
        "expected BadWeight, got {found:?}"
    );
}

#[test]
fn indexed_but_unpublished_is_detected() {
    let mut sys = deployment();
    let (_, _, donor) = populated_list(&sys, 1);
    let doc = donor[0].doc;
    // Retract the document's publications; its index entries are now orphans.
    sys.inject_published(doc, Vec::new());
    let found = check_index(&sys);
    assert!(
        found
            .iter()
            .any(|v| matches!(v, Violation::IndexedButUnpublished { doc: d, .. } if *d == doc)),
        "expected IndexedButUnpublished, got {found:?}"
    );
}

#[test]
fn determinism_audit_passes_on_the_real_system() {
    let report = sprite_audit::audit_determinism(41);
    assert!(report.passed, "diverged at {:?}", report.first_divergence);
}
