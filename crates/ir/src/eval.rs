//! Retrieval-effectiveness evaluation: precision, recall, and the
//! paper's *ratio over the centralized system* reporting.
//!
//! §6 of the paper: "If the top K documents are returned for a query, K′ of
//! them are relevant to the query and there are R relevant documents in the
//! entire corpus, then the precision is defined as K′/K and the recall as
//! K′/R. All precision and recall results presented later are in terms of
//! the ratio of a specific system over the centralized system."

use std::collections::HashSet;

use crate::doc::DocId;
use crate::rank::Hit;

/// Precision and recall of one result list against a relevance set.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PrEval {
    /// K′/K — fraction of returned documents that are relevant.
    pub precision: f64,
    /// K′/R — fraction of relevant documents that were returned.
    pub recall: f64,
    /// K′ — number of relevant documents returned.
    pub hits: usize,
}

/// Evaluate the top `k` of `results` against `relevant`.
///
/// `results` longer than `k` are truncated; shorter lists are evaluated as
/// returned (precision denominator is `k`, matching the paper's fixed-K
/// definition — an empty tail counts against precision).
#[must_use]
pub fn evaluate_at_k(results: &[DocId], relevant: &HashSet<DocId>, k: usize) -> PrEval {
    if k == 0 || relevant.is_empty() {
        return PrEval::default();
    }
    let hits = results
        .iter()
        .take(k)
        .filter(|d| relevant.contains(d))
        .count();
    PrEval {
        precision: hits as f64 / k as f64,
        recall: hits as f64 / relevant.len() as f64,
        hits,
    }
}

/// Convenience: evaluate ranked [`Hit`]s. Allocation-free — this sits on
/// the per-query evaluation hot path.
#[must_use]
pub fn evaluate_hits_at_k(results: &[Hit], relevant: &HashSet<DocId>, k: usize) -> PrEval {
    if k == 0 || relevant.is_empty() {
        return PrEval::default();
    }
    let hits = results
        .iter()
        .take(k)
        .filter(|h| relevant.contains(&h.doc))
        .count();
    PrEval {
        precision: hits as f64 / k as f64,
        recall: hits as f64 / relevant.len() as f64,
        hits,
    }
}

/// Ratio of a system's precision/recall over the centralized reference,
/// averaged over a query set.
///
/// The paper reports `system / centralized` per metric; queries where the
/// centralized system itself scores zero are skipped (the ratio is
/// undefined — neither system can be distinguished on them).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RatioEval {
    /// Mean precision ratio over queries with a defined ratio.
    pub precision_ratio: f64,
    /// Mean recall ratio over queries with a defined ratio.
    pub recall_ratio: f64,
    /// Number of queries contributing to the averages.
    pub queries: usize,
}

/// Accumulator for [`RatioEval`] across a query set.
#[derive(Clone, Debug, Default)]
pub struct RatioAccumulator {
    p_sum: f64,
    r_sum: f64,
    p_n: usize,
    r_n: usize,
}

impl RatioAccumulator {
    /// Fresh accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one query's evaluation for the system under test and the
    /// centralized reference.
    pub fn add(&mut self, system: PrEval, centralized: PrEval) {
        if centralized.precision > 0.0 {
            self.p_sum += system.precision / centralized.precision;
            self.p_n += 1;
        }
        if centralized.recall > 0.0 {
            self.r_sum += system.recall / centralized.recall;
            self.r_n += 1;
        }
    }

    /// Finish, producing mean ratios.
    #[must_use]
    pub fn finish(&self) -> RatioEval {
        RatioEval {
            precision_ratio: if self.p_n == 0 {
                0.0
            } else {
                self.p_sum / self.p_n as f64
            },
            recall_ratio: if self.r_n == 0 {
                0.0
            } else {
                self.r_sum / self.r_n as f64
            },
            queries: self.p_n.max(self.r_n),
        }
    }
}

/// Average precision of a ranked list: the mean of precision@r over the
/// ranks r holding relevant documents, with unretrieved relevant documents
/// contributing zero. Averaging this over queries gives MAP.
#[must_use]
pub fn average_precision(results: &[DocId], relevant: &HashSet<DocId>) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (rank, d) in results.iter().enumerate() {
        if relevant.contains(d) {
            hits += 1;
            sum += hits as f64 / (rank + 1) as f64;
        }
    }
    sum / relevant.len() as f64
}

/// Normalized discounted cumulative gain at `k` with binary relevance:
/// `DCG = Σ rel_i / log₂(i+1)` over the top k, normalized by the ideal
/// ordering's DCG.
#[must_use]
pub fn ndcg_at_k(results: &[DocId], relevant: &HashSet<DocId>, k: usize) -> f64 {
    if k == 0 || relevant.is_empty() {
        return 0.0;
    }
    let dcg: f64 = results
        .iter()
        .take(k)
        .enumerate()
        .filter(|(_, d)| relevant.contains(d))
        .map(|(i, _)| 1.0 / ((i + 2) as f64).log2())
        .sum();
    let ideal: f64 = (0..relevant.len().min(k))
        .map(|i| 1.0 / ((i + 2) as f64).log2())
        .sum();
    dcg / ideal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(ids: &[u32]) -> HashSet<DocId> {
        ids.iter().map(|&i| DocId(i)).collect()
    }

    fn docs(ids: &[u32]) -> Vec<DocId> {
        ids.iter().map(|&i| DocId(i)).collect()
    }

    #[test]
    fn precision_and_recall_basic() {
        // Top-4: two relevant out of 5 total relevant.
        let e = evaluate_at_k(&docs(&[1, 2, 3, 4]), &rel(&[2, 4, 10, 11, 12]), 4);
        assert!((e.precision - 0.5).abs() < 1e-12);
        assert!((e.recall - 0.4).abs() < 1e-12);
        assert_eq!(e.hits, 2);
    }

    #[test]
    fn truncates_to_k() {
        // Relevant doc sits at rank 5; evaluating at k=3 misses it.
        let e = evaluate_at_k(&docs(&[1, 2, 3, 4, 9]), &rel(&[9]), 3);
        assert_eq!(e.hits, 0);
        assert_eq!(e.precision, 0.0);
    }

    #[test]
    fn short_result_list_penalizes_precision() {
        // Only 2 results returned but K = 10: precision denominator is K.
        let e = evaluate_at_k(&docs(&[1, 2]), &rel(&[1, 2]), 10);
        assert!((e.precision - 0.2).abs() < 1e-12);
        assert!((e.recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_retrieval() {
        let e = evaluate_at_k(&docs(&[5, 6]), &rel(&[5, 6]), 2);
        assert_eq!(e.precision, 1.0);
        assert_eq!(e.recall, 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(evaluate_at_k(&docs(&[1]), &rel(&[1]), 0), PrEval::default());
        assert_eq!(evaluate_at_k(&docs(&[1]), &rel(&[]), 5), PrEval::default());
        let e = evaluate_at_k(&[], &rel(&[1]), 5);
        assert_eq!(e.precision, 0.0);
        assert_eq!(e.recall, 0.0);
    }

    #[test]
    fn ratio_accumulator_averages() {
        let mut acc = RatioAccumulator::new();
        // Query 1: system has half the centralized precision, equal recall.
        acc.add(
            PrEval {
                precision: 0.25,
                recall: 0.5,
                hits: 1,
            },
            PrEval {
                precision: 0.5,
                recall: 0.5,
                hits: 2,
            },
        );
        // Query 2: equal precision, half recall.
        acc.add(
            PrEval {
                precision: 0.4,
                recall: 0.2,
                hits: 2,
            },
            PrEval {
                precision: 0.4,
                recall: 0.4,
                hits: 2,
            },
        );
        let r = acc.finish();
        assert!((r.precision_ratio - 0.75).abs() < 1e-12);
        assert!((r.recall_ratio - 0.75).abs() < 1e-12);
        assert_eq!(r.queries, 2);
    }

    #[test]
    fn ratio_skips_undefined_queries() {
        let mut acc = RatioAccumulator::new();
        // Centralized finds nothing: ratio undefined, skipped entirely.
        acc.add(
            PrEval {
                precision: 0.5,
                recall: 0.5,
                hits: 1,
            },
            PrEval::default(),
        );
        let r = acc.finish();
        assert_eq!(r.queries, 0);
        assert_eq!(r.precision_ratio, 0.0);
    }

    #[test]
    fn average_precision_classic_example() {
        // Relevant at ranks 1, 3, 5 (1-based) of 3 relevant total:
        // AP = (1/1 + 2/3 + 3/5) / 3.
        let ap = average_precision(&docs(&[9, 1, 8, 2, 7]), &rel(&[9, 8, 7]));
        assert!((ap - (1.0 + 2.0 / 3.0 + 3.0 / 5.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn average_precision_penalizes_unretrieved() {
        // Only 1 of 4 relevant retrieved, at rank 1: AP = 1/4.
        let ap = average_precision(&docs(&[5]), &rel(&[5, 6, 7, 8]));
        assert!((ap - 0.25).abs() < 1e-12);
        assert_eq!(average_precision(&docs(&[1]), &rel(&[])), 0.0);
    }

    #[test]
    fn ndcg_perfect_ranking_is_one() {
        let n = ndcg_at_k(&docs(&[1, 2, 3]), &rel(&[1, 2, 3]), 3);
        assert!((n - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_prefers_early_hits() {
        let early = ndcg_at_k(&docs(&[1, 9, 8]), &rel(&[1]), 3);
        let late = ndcg_at_k(&docs(&[9, 8, 1]), &rel(&[1]), 3);
        assert!(early > late);
        assert!((early - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_degenerate_inputs() {
        assert_eq!(ndcg_at_k(&docs(&[1]), &rel(&[1]), 0), 0.0);
        assert_eq!(ndcg_at_k(&docs(&[1]), &rel(&[]), 5), 0.0);
        assert_eq!(ndcg_at_k(&[], &rel(&[1]), 5), 0.0);
    }

    #[test]
    fn system_better_than_reference_exceeds_one() {
        let mut acc = RatioAccumulator::new();
        acc.add(
            PrEval {
                precision: 0.8,
                recall: 0.8,
                hits: 4,
            },
            PrEval {
                precision: 0.4,
                recall: 0.4,
                hits: 2,
            },
        );
        let r = acc.finish();
        assert!((r.precision_ratio - 2.0).abs() < 1e-12);
    }
}
