//! Information-retrieval substrate for SPRITE.
//!
//! Provides the pieces the paper's evaluation takes for granted:
//!
//! * [`doc`] — interned terms, analyzed documents, the corpus container;
//! * [`index`] — a full centralized inverted index with exact global
//!   statistics (`N`, `n_k`);
//! * [`rank`] — TF·IDF weighting, cosine and Lee-"second method"
//!   similarities, and the ideal [`rank::CentralizedEngine`] every figure
//!   normalizes against;
//! * [`eval`] — precision/recall at K and the ratio-over-centralized
//!   reporting of §6.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod doc;
pub mod eval;
pub mod index;
pub mod rank;

pub use doc::{Corpus, DocId, Document, TermId, Vocab};
pub use eval::{
    average_precision, evaluate_at_k, evaluate_hits_at_k, ndcg_at_k, PrEval, RatioAccumulator,
    RatioEval,
};
pub use index::{InvertedIndex, Posting};
pub use rank::{idf, tfidf_weight, CentralizedEngine, Hit, Query, SearchScratch, Similarity};
