//! Documents, term identifiers, and the corpus container.
//!
//! Terms are interned into a [`Vocab`] so that postings, learning state, and
//! the DHT simulation all work with compact `u32` ids; the string form is
//! recovered only at protocol boundaries (hashing a term onto the Chord ring
//! uses its string bytes, exactly as a real deployment would).

use std::collections::HashMap;

use sprite_text::Analyzer;

/// Identifier of a document within a corpus.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DocId(pub u32);

impl DocId {
    /// The id as a usize index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of an interned term.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TermId(pub u32);

impl TermId {
    /// The id as a usize index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional term interner.
#[derive(Clone, Debug, Default)]
pub struct Vocab {
    map: HashMap<String, TermId>,
    terms: Vec<String>,
}

impl Vocab {
    /// Empty vocabulary.
    #[must_use]
    pub fn new() -> Self {
        Vocab::default()
    }

    /// Intern `term`, returning its id (existing or fresh).
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.map.get(term) {
            return id;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("vocabulary exceeds u32"));
        self.terms.push(term.to_string());
        self.map.insert(term.to_string(), id);
        id
    }

    /// Look up an already-interned term.
    #[must_use]
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.map.get(term).copied()
    }

    /// The string form of `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this vocabulary.
    #[must_use]
    pub fn term(&self, id: TermId) -> &str {
        &self.terms[id.index()]
    }

    /// Number of distinct terms.
    #[must_use]
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if no terms are interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate `(TermId, &str)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t.as_str()))
    }
}

/// An analyzed document: distinct terms with frequencies, plus the length.
///
/// The paper's inverted-list metadata (§5.1) is exactly this: term frequency
/// in the document and the document length (token count after stop-word
/// removal and stemming).
#[derive(Clone, Debug)]
pub struct Document {
    /// Corpus-local identifier.
    pub id: DocId,
    /// Distinct terms, sorted by `TermId`, with occurrence counts.
    terms: Vec<(TermId, u32)>,
    /// Total token count (the document length used for TF normalization).
    len: u32,
}

impl Document {
    /// Build from unordered `(term, count)` pairs.
    #[must_use]
    pub fn new(id: DocId, mut terms: Vec<(TermId, u32)>) -> Self {
        terms.sort_unstable_by_key(|&(t, _)| t);
        terms.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1 += a.1;
                true
            } else {
                false
            }
        });
        let len = terms.iter().map(|&(_, c)| c).sum();
        Document { id, terms, len }
    }

    /// Frequency of `term` in this document (0 if absent).
    #[must_use]
    pub fn freq(&self, term: TermId) -> u32 {
        match self.terms.binary_search_by_key(&term, |&(t, _)| t) {
            Ok(i) => self.terms[i].1,
            Err(_) => 0,
        }
    }

    /// Does the document contain `term`?
    #[must_use]
    pub fn contains(&self, term: TermId) -> bool {
        self.freq(term) > 0
    }

    /// Distinct `(term, count)` pairs, ascending by term id.
    #[must_use]
    pub fn terms(&self) -> &[(TermId, u32)] {
        &self.terms
    }

    /// Total token count.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True for a document with no tokens.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct terms (the denominator of the paper's simplified
    /// similarity normalization: "number of terms in D_i").
    #[must_use]
    pub fn distinct_terms(&self) -> usize {
        self.terms.len()
    }

    /// Normalized term frequency `t_ik` = freq / document length.
    #[must_use]
    pub fn norm_tf(&self, term: TermId) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            f64::from(self.freq(term)) / f64::from(self.len)
        }
    }

    /// The `k` most frequent terms, descending by frequency (ties broken by
    /// smaller term id, deterministically). This is both SPRITE's initial
    /// selection (§5.2) and eSearch's entire selection policy.
    #[must_use]
    pub fn top_frequent_terms(&self, k: usize) -> Vec<TermId> {
        sprite_util::top_k(k, self.terms.iter().map(|&(t, c)| (c, t)))
            .into_iter()
            .map(|s| s.item)
            .collect()
    }
}

/// A set of analyzed documents sharing one vocabulary.
#[derive(Clone, Debug, Default)]
pub struct Corpus {
    vocab: Vocab,
    docs: Vec<Document>,
}

impl Corpus {
    /// Empty corpus.
    #[must_use]
    pub fn new() -> Self {
        Corpus::default()
    }

    /// Analyze raw texts into a corpus using `analyzer`.
    #[must_use]
    pub fn from_texts<'a, I>(analyzer: &Analyzer, texts: I) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut corpus = Corpus::new();
        for text in texts {
            corpus.add_text(analyzer, text);
        }
        corpus
    }

    /// Analyze and append one text; returns its id.
    pub fn add_text(&mut self, analyzer: &Analyzer, text: &str) -> DocId {
        let counts = analyzer.term_counts(text);
        let terms: Vec<(TermId, u32)> = counts
            .counts
            .iter()
            .map(|(t, &c)| (self.vocab.intern(t), c))
            .collect();
        self.add_document(terms)
    }

    /// Append a pre-analyzed document; returns its id.
    pub fn add_document(&mut self, terms: Vec<(TermId, u32)>) -> DocId {
        let id = DocId(u32::try_from(self.docs.len()).expect("corpus exceeds u32"));
        self.docs.push(Document::new(id, terms));
        id
    }

    /// Replace the contents of an existing document in place (the live
    /// update path): the id is stable, only the term vector changes.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn replace_document(&mut self, id: DocId, terms: Vec<(TermId, u32)>) {
        self.docs[id.index()] = Document::new(id, terms);
    }

    /// The shared vocabulary.
    #[must_use]
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Mutable vocabulary access (for generators that intern ahead of time).
    pub fn vocab_mut(&mut self) -> &mut Vocab {
        &mut self.vocab
    }

    /// Number of documents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True if there are no documents.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The document with id `id`.
    #[must_use]
    pub fn doc(&self, id: DocId) -> &Document {
        &self.docs[id.index()]
    }

    /// All documents, in id order.
    #[must_use]
    pub fn docs(&self) -> &[Document] {
        &self.docs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocab_interning_roundtrip() {
        let mut v = Vocab::new();
        let a = v.intern("alpha");
        let b = v.intern("beta");
        assert_ne!(a, b);
        assert_eq!(v.intern("alpha"), a);
        assert_eq!(v.term(a), "alpha");
        assert_eq!(v.get("beta"), Some(b));
        assert_eq!(v.get("gamma"), None);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn document_freq_and_len() {
        let d = Document::new(DocId(0), vec![(TermId(3), 2), (TermId(1), 5)]);
        assert_eq!(d.len(), 7);
        assert_eq!(d.freq(TermId(1)), 5);
        assert_eq!(d.freq(TermId(3)), 2);
        assert_eq!(d.freq(TermId(9)), 0);
        assert!(d.contains(TermId(3)));
        assert!(!d.contains(TermId(0)));
        assert_eq!(d.distinct_terms(), 2);
    }

    #[test]
    fn document_merges_duplicate_terms() {
        let d = Document::new(DocId(0), vec![(TermId(1), 2), (TermId(1), 3)]);
        assert_eq!(d.freq(TermId(1)), 5);
        assert_eq!(d.distinct_terms(), 1);
    }

    #[test]
    fn norm_tf() {
        let d = Document::new(DocId(0), vec![(TermId(0), 3), (TermId(1), 1)]);
        assert!((d.norm_tf(TermId(0)) - 0.75).abs() < 1e-12);
        assert_eq!(d.norm_tf(TermId(7)), 0.0);
        let empty = Document::new(DocId(1), vec![]);
        assert_eq!(empty.norm_tf(TermId(0)), 0.0);
        assert!(empty.is_empty());
    }

    #[test]
    fn top_frequent_terms_ordered_and_deterministic() {
        let d = Document::new(
            DocId(0),
            vec![
                (TermId(5), 10),
                (TermId(2), 10),
                (TermId(9), 3),
                (TermId(1), 7),
            ],
        );
        // Frequency desc; tie at 10 broken by smaller TermId.
        assert_eq!(d.top_frequent_terms(3), [TermId(2), TermId(5), TermId(1)]);
        assert_eq!(d.top_frequent_terms(0), []);
        assert_eq!(d.top_frequent_terms(10).len(), 4);
    }

    #[test]
    fn corpus_from_texts_shares_vocab() {
        let analyzer = Analyzer::standard();
        let corpus = Corpus::from_texts(
            &analyzer,
            ["peers share documents", "documents about peers"],
        );
        assert_eq!(corpus.len(), 2);
        let peer = corpus.vocab().get("peer").expect("stemmed 'peers'");
        assert!(corpus.doc(DocId(0)).contains(peer));
        assert!(corpus.doc(DocId(1)).contains(peer));
    }
}
