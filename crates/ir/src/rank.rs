//! Term weighting, similarity, and the centralized retrieval engine.
//!
//! Two formulas from the paper live here:
//!
//! * **TF·IDF weighting** (§4): `w_ik = t_ik × log(N / n_k)` with `t_ik`
//!   the term frequency normalized by document length;
//! * **similarity**: either full cosine (the "classic TF·IDF scheme" the
//!   centralized reference uses, §6) or the Lee–Chuang–Seamons *second
//!   method* the paper adopts for SPRITE (§4):
//!   `sim(Q, D) = Σ w_Qj·w_ij / sqrt(#distinct terms in D)`.
//!
//! The [`CentralizedEngine`] is the ideal system of §6: full index, exact
//! `N` and `n_k`. Every experiment reports SPRITE/eSearch quality as a ratio
//! over this engine's results.

use sprite_util::{varint_len, WireSize};

use crate::doc::{Corpus, DocId, TermId};
use crate::index::InvertedIndex;

/// TF·IDF weight of a term in a document (§4 of the paper).
///
/// `tf` is the raw occurrence count, `doc_len` the document token count,
/// `n` the corpus size `N`, and `df` the document frequency `n_k`.
/// Returns 0 for degenerate inputs (absent term, unseen term, empty corpus).
#[must_use]
pub fn tfidf_weight(tf: u32, doc_len: u32, n: f64, df: usize) -> f64 {
    if tf == 0 || doc_len == 0 || df == 0 || n <= 0.0 {
        return 0.0;
    }
    let norm_tf = f64::from(tf) / f64::from(doc_len);
    norm_tf * (n / df as f64).ln()
}

/// Inverse document frequency `log(N / n_k)`; 0 when undefined.
#[must_use]
pub fn idf(n: f64, df: usize) -> f64 {
    if df == 0 || n <= 0.0 {
        0.0
    } else {
        (n / df as f64).ln()
    }
}

/// Similarity formula selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Similarity {
    /// Full cosine over TF·IDF vectors (document-side normalization by the
    /// vector norm). The centralized reference configuration.
    #[default]
    CosineTfIdf,
    /// The paper's simplified "second method" of Lee et al.:
    /// dot product normalized by `sqrt(#distinct terms in D)`.
    LeeSecond,
}

/// One ranked result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hit {
    /// The matching document.
    pub doc: DocId,
    /// Its similarity score (higher is better).
    pub score: f64,
}

/// A keyword query: a bag of term ids.
///
/// Duplicates are allowed and act as term weights (`w_Qj` scales with the
/// query-side term frequency).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Query {
    terms: Vec<TermId>,
}

impl Query {
    /// Build from term ids; sorts for canonical form.
    #[must_use]
    pub fn new(mut terms: Vec<TermId>) -> Self {
        terms.sort_unstable();
        Query { terms }
    }

    /// The term ids (sorted, duplicates preserved).
    #[must_use]
    pub fn terms(&self) -> &[TermId] {
        &self.terms
    }

    /// Distinct term ids with their in-query counts.
    #[must_use]
    pub fn term_counts(&self) -> Vec<(TermId, u32)> {
        let mut out: Vec<(TermId, u32)> = Vec::new();
        for &t in &self.terms {
            match out.last_mut() {
                Some(last) if last.0 == t => last.1 += 1,
                _ => out.push((t, 1)),
            }
        }
        out
    }

    /// Distinct term count `|Q|` (used by `qScore`, §5.3).
    #[must_use]
    pub fn distinct_len(&self) -> usize {
        self.term_counts().len()
    }

    /// Number of terms including duplicates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True for the empty query.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Does the query mention `term`?
    #[must_use]
    pub fn contains(&self, term: TermId) -> bool {
        self.terms.binary_search(&term).is_ok()
    }
}

impl From<Vec<TermId>> for Query {
    fn from(terms: Vec<TermId>) -> Self {
        Query::new(terms)
    }
}

impl WireSize for Query {
    /// Canonical wire form: a distinct-term count, the sorted term ids
    /// delta-encoded as ascending gaps, and each term's in-query count —
    /// the payload an indexing peer ships back during learning returns.
    fn wire_size(&self) -> usize {
        let counts = self.term_counts();
        let mut n = varint_len(counts.len() as u64);
        let mut prev = 0u64;
        for (i, &(t, c)) in counts.iter().enumerate() {
            let tid = t.index() as u64;
            n += if i == 0 {
                varint_len(tid)
            } else {
                varint_len(tid.wrapping_sub(prev))
            };
            prev = tid;
            n += varint_len(u64::from(c));
        }
        n
    }
}

/// Reusable dense accumulation buffers for [`CentralizedEngine`] ranking:
/// one dot-product slot per document with an epoch stamp, so repeated
/// searches (the evaluation hot loop runs one per test query) stop paying
/// a fresh hash map each call. Purely an allocation cache — results are
/// bit-identical to a search with fresh buffers, because per-document
/// sums accumulate in the same posting order and the final sort is a
/// total order over `(score, doc)`.
#[derive(Clone, Debug, Default)]
pub struct SearchScratch {
    dot: Vec<f64>,
    epoch: Vec<u32>,
    current: u32,
    touched: Vec<DocId>,
}

impl SearchScratch {
    /// Fresh buffers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a new query over `docs` documents.
    fn begin(&mut self, docs: usize) {
        self.touched.clear();
        if self.epoch.len() < docs {
            self.dot.resize(docs, 0.0);
            self.epoch.resize(docs, 0);
        }
        if self.current == u32::MAX {
            self.epoch.fill(0);
            self.current = 0;
        }
        self.current += 1;
    }

    /// The dense slot of `doc`, zeroed on its first touch this query.
    #[inline]
    fn slot(&mut self, doc: DocId) -> usize {
        let i = doc.index();
        if self.epoch[i] != self.current {
            self.epoch[i] = self.current;
            self.dot[i] = 0.0;
            self.touched.push(doc);
        }
        i
    }
}

/// The ideal centralized engine of §6: full inverted index, exact global
/// statistics, configurable similarity.
#[derive(Clone, Debug)]
pub struct CentralizedEngine {
    index: InvertedIndex,
    similarity: Similarity,
    /// Cosine norm per document: `sqrt(Σ_k w_ik²)` over all its terms.
    doc_norms: Vec<f64>,
}

impl CentralizedEngine {
    /// Build over `corpus` with the classic cosine TF·IDF configuration.
    #[must_use]
    pub fn build(corpus: &Corpus) -> Self {
        Self::with_similarity(corpus, Similarity::CosineTfIdf)
    }

    /// Build with an explicit similarity formula.
    #[must_use]
    pub fn with_similarity(corpus: &Corpus, similarity: Similarity) -> Self {
        let index = InvertedIndex::build(corpus);
        let n = index.n_docs() as f64;
        let mut norms = vec![0.0f64; corpus.len()];
        for doc in corpus.docs() {
            let mut sum = 0.0;
            for &(term, tf) in doc.terms() {
                let w = tfidf_weight(tf, doc.len(), n, index.df(term));
                sum += w * w;
            }
            norms[doc.id.index()] = sum.sqrt();
        }
        CentralizedEngine {
            index,
            similarity,
            doc_norms: norms,
        }
    }

    /// The underlying full index (exact `df`, `N`).
    #[must_use]
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Rank all matching documents for `query`, returning the top `k`.
    #[must_use]
    pub fn search(&self, query: &Query, k: usize) -> Vec<Hit> {
        self.search_with(query, k, &mut SearchScratch::default())
    }

    /// [`Self::search`] with caller-owned scratch buffers — the evaluation
    /// hot loop runs one search per test query per repetition and reuses
    /// one scratch per pool worker. Bit-identical to [`Self::search`].
    #[must_use]
    pub fn search_with(&self, query: &Query, k: usize, scratch: &mut SearchScratch) -> Vec<Hit> {
        let mut hits = self.rank_with(query, scratch);
        hits.truncate(k);
        hits
    }

    /// Rank *all* matching documents, best first. Used by the query
    /// generator, which needs deep ranked lists (E = 1000).
    #[must_use]
    pub fn rank_all(&self, query: &Query) -> Vec<Hit> {
        self.rank_with(query, &mut SearchScratch::default())
    }

    /// The ranking core behind [`Self::search`] and [`Self::rank_all`]:
    /// dense term-at-a-time accumulation over `scratch`, then one sort by
    /// descending score with ties broken by ascending doc id — a total
    /// order, so the result is independent of accumulation order.
    fn rank_with(&self, query: &Query, scratch: &mut SearchScratch) -> Vec<Hit> {
        let n = self.index.n_docs() as f64;
        scratch.begin(self.index.n_docs());
        for (term, qtf) in query.term_counts() {
            let df = self.index.df(term);
            let term_idf = idf(n, df);
            if term_idf == 0.0 {
                continue;
            }
            let w_q = f64::from(qtf) * term_idf;
            for p in self.index.postings(term) {
                let w_d = tfidf_weight(p.tf, self.index.doc_len(p.doc), n, df);
                let s = scratch.slot(p.doc);
                scratch.dot[s] += w_q * w_d;
            }
        }
        let mut hits: Vec<Hit> = scratch
            .touched
            .iter()
            .map(|&doc| {
                let dot = scratch.dot[doc.index()];
                let denom = match self.similarity {
                    Similarity::CosineTfIdf => self.doc_norms[doc.index()],
                    Similarity::LeeSecond => f64::from(self.index.doc_distinct(doc)).sqrt(),
                };
                let score = if denom > 0.0 { dot / denom } else { 0.0 };
                Hit { doc, score }
            })
            .collect();
        // Descending score; ties broken by ascending doc id for determinism.
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.doc.cmp(&b.doc))
        });
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprite_text::Analyzer;

    fn corpus() -> Corpus {
        let analyzer = Analyzer::standard();
        Corpus::from_texts(
            &analyzer,
            [
                "chord ring lookup protocol with finger tables", // 0
                "peer ring maintenance and peer churn in the ring", // 1
                "text retrieval quality metrics precision recall", // 2
                "retrieval with learning from past queries",     // 3
            ],
        )
    }

    fn q(corpus: &Corpus, words: &[&str]) -> Query {
        Query::new(
            words
                .iter()
                .filter_map(|w| corpus.vocab().get(&sprite_text::stem(w)))
                .collect(),
        )
    }

    #[test]
    fn tfidf_weight_basics() {
        // tf=2, len=10, N=100, df=10 → 0.2 * ln(10)
        let w = tfidf_weight(2, 10, 100.0, 10);
        assert!((w - 0.2 * 10f64.ln()).abs() < 1e-12);
        assert_eq!(tfidf_weight(0, 10, 100.0, 10), 0.0);
        assert_eq!(tfidf_weight(2, 0, 100.0, 10), 0.0);
        assert_eq!(tfidf_weight(2, 10, 100.0, 0), 0.0);
    }

    #[test]
    fn rarer_terms_weigh_more() {
        let n = 1000.0;
        assert!(tfidf_weight(1, 10, n, 5) > tfidf_weight(1, 10, n, 50));
    }

    #[test]
    fn query_term_counts() {
        let query = Query::new(vec![TermId(2), TermId(1), TermId(2)]);
        assert_eq!(query.term_counts(), vec![(TermId(1), 1), (TermId(2), 2)]);
        assert_eq!(query.distinct_len(), 2);
        assert_eq!(query.len(), 3);
        assert!(query.contains(TermId(2)));
        assert!(!query.contains(TermId(3)));
    }

    #[test]
    fn search_finds_matching_docs() {
        let c = corpus();
        let engine = CentralizedEngine::build(&c);
        let hits = engine.search(&q(&c, &["retrieval"]), 10);
        let docs: Vec<u32> = hits.iter().map(|h| h.doc.0).collect();
        assert_eq!(docs.len(), 2);
        assert!(docs.contains(&2) && docs.contains(&3));
    }

    #[test]
    fn scores_descend_and_k_truncates() {
        let c = corpus();
        let engine = CentralizedEngine::build(&c);
        let hits = engine.search(&q(&c, &["ring", "retrieval", "peer"]), 10);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        assert_eq!(
            engine
                .search(&q(&c, &["ring", "retrieval", "peer"]), 1)
                .len(),
            1
        );
    }

    #[test]
    fn repeated_ring_ranks_doc1_first() {
        let c = corpus();
        let engine = CentralizedEngine::build(&c);
        // Doc 1 mentions "ring" three times; doc 0 once (and is longer on
        // other dimensions). The top hit for "ring" must be doc 1.
        let hits = engine.search(&q(&c, &["ring"]), 10);
        assert_eq!(hits[0].doc, DocId(1));
    }

    #[test]
    fn empty_and_unknown_queries() {
        let c = corpus();
        let engine = CentralizedEngine::build(&c);
        assert!(engine.search(&Query::default(), 10).is_empty());
        assert!(engine
            .search(&Query::new(vec![TermId(99_999)]), 10)
            .is_empty());
    }

    #[test]
    fn lee_similarity_normalizes_by_distinct_terms() {
        let c = corpus();
        let lee = CentralizedEngine::with_similarity(&c, Similarity::LeeSecond);
        let query = q(&c, &["retrieval"]);
        let hits = lee.rank_all(&query);
        assert_eq!(hits.len(), 2);
        // Manually recompute for the top hit.
        let idx = lee.index();
        let n = idx.n_docs() as f64;
        let term = query.terms()[0];
        let df = idx.df(term);
        let h = hits[0];
        let tf = c.doc(h.doc).freq(term);
        let expect = idf(n, df) * tfidf_weight(tf, idx.doc_len(h.doc), n, df)
            / f64::from(idx.doc_distinct(h.doc)).sqrt();
        assert!((h.score - expect).abs() < 1e-12);
    }

    #[test]
    fn reused_scratch_matches_fresh_search_bit_for_bit() {
        let c = corpus();
        for sim in [Similarity::CosineTfIdf, Similarity::LeeSecond] {
            let engine = CentralizedEngine::with_similarity(&c, sim);
            let queries = [
                q(&c, &["ring"]),
                q(&c, &["retrieval", "ring", "peer"]),
                q(&c, &["peer", "peer", "churn"]),
                Query::default(),
                q(&c, &["lookup"]),
            ];
            let mut scratch = SearchScratch::new();
            for (i, query) in queries.iter().enumerate() {
                let reused = engine.search_with(query, 3, &mut scratch);
                let fresh = engine.search(query, 3);
                assert_eq!(reused.len(), fresh.len(), "query {i} ({sim:?})");
                for (a, b) in reused.iter().zip(&fresh) {
                    assert_eq!(a.doc, b.doc, "query {i} ({sim:?})");
                    assert_eq!(a.score.to_bits(), b.score.to_bits(), "query {i} ({sim:?})");
                }
            }
        }
    }

    #[test]
    fn ties_break_by_doc_id() {
        let analyzer = Analyzer::standard();
        // Two identical documents: identical scores; doc 0 must sort first.
        // (A third distinct document keeps df < N so idf > 0.)
        let c = Corpus::from_texts(
            &analyzer,
            [
                "same words here",
                "same words here",
                "unrelated filler text",
            ],
        );
        let engine = CentralizedEngine::build(&c);
        let query = q(&c, &["words"]);
        let hits = engine.rank_all(&query);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].doc, DocId(0));
    }
}
