//! The centralized inverted index.
//!
//! This is the "ideal distributed system with perfect global knowledge"
//! of §6: it indexes **every** term of every document and knows the exact
//! document frequency `n_k` and corpus size `N`. SPRITE and eSearch are
//! always evaluated as ratios over the ranked lists this index produces.

use crate::doc::{Corpus, DocId, TermId};

/// One inverted-list entry: a document and the term's raw frequency in it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Posting {
    /// The containing document.
    pub doc: DocId,
    /// Raw occurrence count of the term in `doc`.
    pub tf: u32,
}

/// Full inverted index over a corpus.
#[derive(Clone, Debug)]
pub struct InvertedIndex {
    /// Postings per term id, each sorted by `DocId`.
    postings: Vec<Vec<Posting>>,
    /// Document length (token count) per doc id.
    doc_len: Vec<u32>,
    /// Distinct-term count per doc id.
    doc_distinct: Vec<u32>,
    /// Number of documents.
    n_docs: usize,
}

impl InvertedIndex {
    /// Build the index over every term of every document in `corpus`.
    #[must_use]
    pub fn build(corpus: &Corpus) -> Self {
        let mut postings: Vec<Vec<Posting>> = vec![Vec::new(); corpus.vocab().len()];
        let mut doc_len = Vec::with_capacity(corpus.len());
        let mut doc_distinct = Vec::with_capacity(corpus.len());
        for doc in corpus.docs() {
            doc_len.push(doc.len());
            doc_distinct.push(doc.distinct_terms() as u32);
            for &(term, tf) in doc.terms() {
                postings[term.index()].push(Posting { doc: doc.id, tf });
            }
        }
        InvertedIndex {
            postings,
            doc_len,
            doc_distinct,
            n_docs: corpus.len(),
        }
    }

    /// Number of documents indexed (`N`).
    #[must_use]
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Exact document frequency of `term` (`n_k`).
    #[must_use]
    pub fn df(&self, term: TermId) -> usize {
        self.postings
            .get(term.index())
            .map_or(0, std::vec::Vec::len)
    }

    /// The posting list of `term` (empty slice if the term is unknown).
    #[must_use]
    pub fn postings(&self, term: TermId) -> &[Posting] {
        self.postings
            .get(term.index())
            .map_or(&[], std::vec::Vec::as_slice)
    }

    /// Token count of `doc`.
    #[must_use]
    pub fn doc_len(&self, doc: DocId) -> u32 {
        self.doc_len[doc.index()]
    }

    /// Distinct-term count of `doc`.
    #[must_use]
    pub fn doc_distinct(&self, doc: DocId) -> u32 {
        self.doc_distinct[doc.index()]
    }

    /// Total number of postings (index size).
    #[must_use]
    pub fn total_postings(&self) -> usize {
        self.postings.iter().map(std::vec::Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprite_text::Analyzer;

    fn small_corpus() -> Corpus {
        let analyzer = Analyzer::standard();
        Corpus::from_texts(
            &analyzer,
            [
                "peer networks share files",        // doc 0
                "peer learning improves retrieval", // doc 1
                "files and files of documents",     // doc 2
            ],
        )
    }

    #[test]
    fn df_counts_documents_not_occurrences() {
        let corpus = small_corpus();
        let idx = InvertedIndex::build(&corpus);
        let file = corpus.vocab().get("file").expect("stem of files");
        // "file" occurs twice in doc 2 but df counts documents: docs 0 and 2.
        assert_eq!(idx.df(file), 2);
        let peer = corpus.vocab().get("peer").unwrap();
        assert_eq!(idx.df(peer), 2);
    }

    #[test]
    fn postings_sorted_by_doc_with_tf() {
        let corpus = small_corpus();
        let idx = InvertedIndex::build(&corpus);
        let file = corpus.vocab().get("file").unwrap();
        let p = idx.postings(file);
        assert_eq!(p.len(), 2);
        assert!(p[0].doc < p[1].doc);
        assert_eq!(p[1].tf, 2); // "files ... files" in doc 2
    }

    #[test]
    fn doc_len_matches_corpus() {
        let corpus = small_corpus();
        let idx = InvertedIndex::build(&corpus);
        for doc in corpus.docs() {
            assert_eq!(idx.doc_len(doc.id), doc.len());
            assert_eq!(idx.doc_distinct(doc.id), doc.distinct_terms() as u32);
        }
        assert_eq!(idx.n_docs(), 3);
    }

    #[test]
    fn unknown_term_is_empty() {
        let corpus = small_corpus();
        let idx = InvertedIndex::build(&corpus);
        assert_eq!(idx.df(TermId(9999)), 0);
        assert!(idx.postings(TermId(9999)).is_empty());
    }

    #[test]
    fn total_postings_is_sum_of_distinct_terms() {
        let corpus = small_corpus();
        let idx = InvertedIndex::build(&corpus);
        let expect: usize = corpus.docs().iter().map(|d| d.distinct_terms()).sum();
        assert_eq!(idx.total_postings(), expect);
    }

    #[test]
    fn empty_corpus() {
        let idx = InvertedIndex::build(&Corpus::new());
        assert_eq!(idx.n_docs(), 0);
        assert_eq!(idx.total_postings(), 0);
    }
}
