//! Integration fixtures for the IR substrate: vocabulary round-trips
//! through the analyzer, and hand-computed ranking-order fixtures for the
//! centralized reference engine — small enough to verify by hand, exact
//! enough to pin the ordering contract every distributed figure
//! normalizes against.

use sprite_ir::{
    evaluate_hits_at_k, CentralizedEngine, Corpus, DocId, Query, SearchScratch, Similarity, TermId,
    Vocab,
};
use sprite_text::Analyzer;

/// The fixture corpus, built from raw term-count vectors so every weight
/// is hand-checkable:
///
/// | doc | alpha | beta | gamma | len |
/// |-----|-------|------|-------|-----|
/// | d0  | 4     |      |       | 4   |
/// | d1  | 1     | 3    |       | 4   |
/// | d2  |       | 2    | 2     | 4   |
/// | d3  |       |      | 4     | 4   |
///
/// df(alpha) = df(beta) = df(gamma) = 2 over N = 4 documents.
fn fixture() -> (Corpus, [TermId; 3]) {
    let mut corpus = Corpus::new();
    let alpha = corpus.vocab_mut().intern("alpha");
    let beta = corpus.vocab_mut().intern("beta");
    let gamma = corpus.vocab_mut().intern("gamma");
    corpus.add_document(vec![(alpha, 4)]);
    corpus.add_document(vec![(alpha, 1), (beta, 3)]);
    corpus.add_document(vec![(beta, 2), (gamma, 2)]);
    corpus.add_document(vec![(gamma, 4)]);
    (corpus, [alpha, beta, gamma])
}

#[test]
fn vocabulary_round_trips_through_the_analyzer() {
    let analyzer = Analyzer::standard();
    let mut vocab = Vocab::new();
    // Intern the analyzed forms of a realistic passage (stemming folds
    // inflections together) and demand a perfect bidirectional map.
    let text = "Peers publish documents; published documents reach querying peers.";
    let counts = analyzer.term_counts(text);
    let ids: Vec<TermId> = counts.counts.keys().map(|t| vocab.intern(t)).collect();
    // Idempotent: re-interning the same strings mints no new ids.
    let before = vocab.len();
    for t in counts.counts.keys() {
        assert_eq!(vocab.intern(t), vocab.get(t).expect("already interned"));
    }
    assert_eq!(vocab.len(), before);
    // Inverse maps agree: id -> string -> id is the identity, and the
    // iterator enumerates exactly the interned set in id order.
    for &id in &ids {
        assert_eq!(vocab.get(vocab.term(id)), Some(id));
    }
    let enumerated: Vec<(TermId, &str)> = vocab.iter().collect();
    assert_eq!(enumerated.len(), vocab.len());
    for (i, &(id, term)) in enumerated.iter().enumerate() {
        assert_eq!(id, TermId(i as u32));
        assert_eq!(vocab.term(id), term);
    }
    // Stemming folded the plural: one shared id serves both surface forms.
    assert!(vocab.get("peer").is_some());
    assert!(vocab.get("peers").is_none());
}

#[test]
fn single_term_query_ranks_by_normalized_tf() {
    let (corpus, [alpha, _, _]) = fixture();
    let engine = CentralizedEngine::build(&corpus);
    // Both alpha documents share df and doc length, so cosine order is
    // decided by tf alone: d0 (tf 4) strictly above d1 (tf 1). The other
    // two documents must not appear at all.
    let hits = engine.search(&Query::new(vec![alpha]), 10);
    let order: Vec<DocId> = hits.iter().map(|h| h.doc).collect();
    assert_eq!(order, [DocId(0), DocId(1)]);
    assert!(hits[0].score > hits[1].score);
    assert!(hits.iter().all(|h| h.score > 0.0));
}

#[test]
fn multi_term_query_prefers_the_document_covering_both_terms() {
    let (corpus, [alpha, beta, _]) = fixture();
    let engine = CentralizedEngine::build(&corpus);
    // d1 is the only document containing both query terms; with equal
    // document frequencies everywhere it must outrank the single-term
    // matches d0 and d2.
    let hits = engine.search(&Query::new(vec![alpha, beta]), 10);
    assert_eq!(hits[0].doc, DocId(1));
    let docs: Vec<DocId> = hits.iter().map(|h| h.doc).collect();
    assert!(docs.contains(&DocId(0)) && docs.contains(&DocId(2)));
    assert!(!docs.contains(&DocId(3)), "d3 shares no query term");
}

#[test]
fn ubiquitous_terms_carry_no_signal() {
    // A term present in every document has idf log(N/N) = 0: querying it
    // alone matches nothing, and adding it to a query must not disturb
    // the ranking the discriminative terms produce.
    let (mut corpus, [alpha, _, _]) = fixture();
    let common = corpus.vocab_mut().intern("common");
    for d in 0..corpus.len() {
        let mut terms = corpus.doc(DocId(d as u32)).terms().to_vec();
        terms.push((common, 1));
        corpus.replace_document(DocId(d as u32), terms);
    }
    let engine = CentralizedEngine::build(&corpus);
    assert!(engine.search(&Query::new(vec![common]), 10).is_empty());
    let with: Vec<DocId> = engine
        .search(&Query::new(vec![alpha, common]), 10)
        .iter()
        .map(|h| h.doc)
        .collect();
    let without: Vec<DocId> = engine
        .search(&Query::new(vec![alpha]), 10)
        .iter()
        .map(|h| h.doc)
        .collect();
    assert_eq!(with, without);
}

#[test]
fn score_ties_break_by_ascending_doc_id() {
    // Two bit-identical documents tie exactly; the engine promises a
    // total order, so the smaller id always comes first.
    let mut corpus = Corpus::new();
    let t = corpus.vocab_mut().intern("twin");
    let u = corpus.vocab_mut().intern("unique");
    corpus.add_document(vec![(t, 2)]);
    corpus.add_document(vec![(t, 2)]);
    corpus.add_document(vec![(u, 1)]);
    let engine = CentralizedEngine::build(&corpus);
    let hits = engine.search(&Query::new(vec![t]), 10);
    assert_eq!(hits.len(), 2);
    assert_eq!(hits[0].doc, DocId(0));
    assert_eq!(hits[1].doc, DocId(1));
    assert_eq!(hits[0].score, hits[1].score);
}

#[test]
fn lee_second_normalizes_by_distinct_terms_not_vector_norm() {
    // Under the paper's simplified similarity a focused document (one
    // distinct term) divides by √1 while cosine divides by its full
    // norm — so against a topically diluted document the orders differ
    // in a hand-checkable way: Lee keeps the raw dot product dominant.
    let mut corpus = Corpus::new();
    let q = corpus.vocab_mut().intern("query-term");
    let noise = corpus.vocab_mut().intern("noise");
    // d0: the query term once, amid heavy off-query mass.
    corpus.add_document(vec![(q, 1), (noise, 1)]);
    // d1: the query term once, nothing else.
    corpus.add_document(vec![(q, 1)]);
    // Padding so neither term is ubiquitous.
    corpus.add_document(vec![(noise, 3)]);
    let cosine = CentralizedEngine::build(&corpus);
    let lee = CentralizedEngine::with_similarity(&corpus, Similarity::LeeSecond);
    let probe = Query::new(vec![q]);
    let top_lee = lee.search(&probe, 1)[0].doc;
    assert_eq!(top_lee, DocId(1), "√distinct favors the focused document");
    // Both engines agree on *who matches*; only the order may differ.
    let match_set = |e: &CentralizedEngine| {
        let mut d: Vec<DocId> = e.search(&probe, 10).iter().map(|h| h.doc).collect();
        d.sort_unstable();
        d
    };
    assert_eq!(match_set(&cosine), match_set(&lee));
}

#[test]
fn scratch_reuse_is_bit_identical_to_fresh_buffers() {
    let (corpus, [alpha, beta, gamma]) = fixture();
    let engine = CentralizedEngine::build(&corpus);
    let queries = [
        Query::new(vec![alpha]),
        Query::new(vec![beta, gamma]),
        Query::new(vec![alpha, beta, gamma]),
        Query::new(vec![gamma, gamma, alpha]),
    ];
    let mut scratch = SearchScratch::new();
    for q in &queries {
        let fresh = engine.search(q, 10);
        let reused = engine.search_with(q, 10, &mut scratch);
        assert_eq!(fresh, reused, "scratch reuse changed a ranking");
    }
}

#[test]
fn precision_recall_fixture_is_exact() {
    let (corpus, [alpha, beta, _]) = fixture();
    let engine = CentralizedEngine::build(&corpus);
    let hits = engine.search(&Query::new(vec![alpha, beta]), 2);
    // Declare d1 and d3 relevant: of the top 2 ranked (d1 first), exactly
    // one is relevant — precision 1/2, recall 1/2.
    let relevant = [DocId(1), DocId(3)].into_iter().collect();
    let pr = evaluate_hits_at_k(&hits, &relevant, 2);
    assert!((pr.precision - 0.5).abs() < 1e-12);
    assert!((pr.recall - 0.5).abs() < 1e-12);
}
