//! The paper's two-phase query generator (§6.1), re-implemented verbatim.
//!
//! Benchmarks rarely contain *similar* queries, so the authors generate
//! them: for every original (seed) query, `k` new queries are derived.
//!
//! **Phase 1 — term selection.** A new query keeps a fraction `O` of the
//! original's terms (`Q'₁ ⊂ Q`, `O = |Q'₁|/|Q|`), and replaces each dropped
//! term with one of its `S` nearest neighbors under the corpus-distribution
//! metric `Distribution(t) = Freq(t) × Num(t)` — terms that are "equally
//! important" in the corpus, injecting realistic noise.
//!
//! **Phase 2 — relevant documents.** Using the centralized engine's deep
//! ranked lists (`RL` for the original, `RL'` for the new query, both cut at
//! `E`): every document of `RL'` that is relevant to the original becomes
//! relevant to the new query, consuming the original relevant document with
//! the most similar rank; every remaining (unmatched) relevant document of
//! `RL` at rank `r` donates relevance to the document at the same rank `r`
//! of `RL'`. The new relevance judgments thus mirror the rank distribution
//! of the originals.

use std::collections::HashSet;

use sprite_util::SliceRng;

use sprite_ir::{CentralizedEngine, Corpus, DocId, Query, TermId};
use sprite_util::derive_rng;

use crate::synthetic::SeedQuery;

/// Query-generator parameters (paper defaults).
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// New queries derived per seed query (`k = 9`, so 63 seeds → 630
    /// queries including the originals).
    pub k_per_seed: usize,
    /// Overlap ratio `O = |Q'₁| / |Q|` (default 0.7).
    pub overlap: f64,
    /// Number of nearest-distribution candidates per replaced term
    /// (`S = 5`).
    pub s_similar: usize,
    /// Ranked-list depth used when defining relevance (`E = 1000`).
    pub top_e: usize,
    /// RNG seed for the generator's choices.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            k_per_seed: 9,
            overlap: 0.7,
            s_similar: 5,
            top_e: 1000,
            seed: 17,
        }
    }
}

/// One query of the generated workload, with its relevance judgments.
#[derive(Clone, Debug)]
pub struct GeneratedQuery {
    /// The keyword query.
    pub query: Query,
    /// Documents relevant to it.
    pub relevant: HashSet<DocId>,
    /// Index of the seed query it derives from.
    pub seed_idx: usize,
    /// True for the seed query itself (not derived).
    pub is_original: bool,
}

/// The corpus-wide term importance metric of phase 1:
/// `Distribution(t) = Freq(t) × Num(t)` — total occurrences times document
/// frequency. Precomputed once per corpus.
#[derive(Clone, Debug)]
pub struct TermDistribution {
    /// `Distribution` value per term id.
    by_term: Vec<f64>,
    /// Term ids sorted by ascending distribution value (nearest-neighbor
    /// search runs on this).
    sorted: Vec<TermId>,
}

impl TermDistribution {
    /// Compute the metric over `corpus`.
    #[must_use]
    pub fn compute(corpus: &Corpus) -> Self {
        let n_terms = corpus.vocab().len();
        let mut freq = vec![0u64; n_terms];
        let mut num = vec![0u64; n_terms];
        for doc in corpus.docs() {
            for &(t, c) in doc.terms() {
                freq[t.index()] += u64::from(c);
                num[t.index()] += 1;
            }
        }
        let by_term: Vec<f64> = freq
            .iter()
            .zip(&num)
            .map(|(&f, &n)| (f as f64) * (n as f64))
            .collect();
        let mut sorted: Vec<TermId> = (0..n_terms as u32).map(TermId).collect();
        sorted.sort_by(|a, b| {
            by_term[a.index()]
                .partial_cmp(&by_term[b.index()])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(b))
        });
        TermDistribution { by_term, sorted }
    }

    /// `Distribution(t)`.
    #[must_use]
    pub fn value(&self, t: TermId) -> f64 {
        self.by_term[t.index()]
    }

    /// The `s` terms whose distribution value is closest to `t`'s
    /// (`|Distribution(tᵢ) − Distribution(tⱼ)|` minimal), excluding `t`
    /// itself and anything in `exclude`.
    #[must_use]
    pub fn nearest(&self, t: TermId, s: usize, exclude: &HashSet<TermId>) -> Vec<TermId> {
        let target = self.value(t);
        // Position of t's value in the sorted order.
        let pos = self
            .sorted
            .partition_point(|&x| {
                self.by_term[x.index()] < target || (self.by_term[x.index()] == target && x < t)
            })
            .min(self.sorted.len().saturating_sub(1));
        // Expand a window around pos, always taking the closer side next.
        let mut out = Vec::with_capacity(s);
        let (mut lo, mut hi) = (pos as isize - 1, pos as isize + 1);
        // `pos` itself should be t; include it as a candidate guard anyway.
        let consider = |idx: isize, out: &mut Vec<TermId>| {
            if idx < 0 || idx as usize >= self.sorted.len() {
                return false;
            }
            let cand = self.sorted[idx as usize];
            if cand != t && !exclude.contains(&cand) {
                out.push(cand);
            }
            true
        };
        consider(pos as isize, &mut out);
        while out.len() < s && (lo >= 0 || (hi as usize) < self.sorted.len()) {
            let d_lo = if lo >= 0 {
                (self.by_term[self.sorted[lo as usize].index()] - target).abs()
            } else {
                f64::INFINITY
            };
            let d_hi = if (hi as usize) < self.sorted.len() {
                (self.by_term[self.sorted[hi as usize].index()] - target).abs()
            } else {
                f64::INFINITY
            };
            if d_lo <= d_hi {
                consider(lo, &mut out);
                lo -= 1;
            } else {
                consider(hi, &mut out);
                hi += 1;
            }
        }
        out.truncate(s);
        out
    }
}

/// Generate the full workload: every seed query followed by its `k` derived
/// queries, in seed order (deterministic in `cfg.seed`).
#[must_use]
pub fn generate_workload(
    corpus: &Corpus,
    engine: &CentralizedEngine,
    seeds: &[SeedQuery],
    cfg: &GenConfig,
) -> Vec<GeneratedQuery> {
    let dist = TermDistribution::compute(corpus);
    let mut rng = derive_rng(cfg.seed, "query-gen");
    let mut out = Vec::with_capacity(seeds.len() * (cfg.k_per_seed + 1));
    for (seed_idx, seed) in seeds.iter().enumerate() {
        // Cache the original's pruned ranked list once.
        let rl: Vec<DocId> = engine
            .rank_all(&seed.query)
            .into_iter()
            .take(cfg.top_e)
            .map(|h| h.doc)
            .collect();
        out.push(GeneratedQuery {
            query: seed.query.clone(),
            relevant: seed.relevant.clone(),
            seed_idx,
            is_original: true,
        });
        for _ in 0..cfg.k_per_seed {
            let query = phase1_terms(&seed.query, &dist, cfg, &mut rng);
            let relevant = phase2_relevance(engine, &rl, &seed.relevant, &query, cfg);
            out.push(GeneratedQuery {
                query,
                relevant,
                seed_idx,
                is_original: false,
            });
        }
    }
    out
}

/// Phase 1: keep `O·|Q|` original terms, replace the rest with
/// distribution-nearest substitutes.
fn phase1_terms(
    original: &Query,
    dist: &TermDistribution,
    cfg: &GenConfig,
    rng: &mut sprite_util::DetRng,
) -> Query {
    let orig: Vec<TermId> = original.term_counts().iter().map(|&(t, _)| t).collect();
    let keep_n = ((cfg.overlap * orig.len() as f64).round() as usize).min(orig.len());
    let mut shuffled = orig.clone();
    shuffled.shuffle(rng);
    let (kept, dropped) = shuffled.split_at(keep_n);
    let mut terms: Vec<TermId> = kept.to_vec();
    let exclude: HashSet<TermId> = orig.iter().copied().collect();
    for &d in dropped {
        let cands = dist.nearest(d, cfg.s_similar, &exclude);
        if let Some(&pick) = cands.choose(rng) {
            if !terms.contains(&pick) {
                terms.push(pick);
            }
        }
    }
    Query::new(terms)
}

/// Phase 2: transfer the original's relevance judgments onto the new
/// query's ranked list, preserving the rank distribution (Figure 3).
fn phase2_relevance(
    engine: &CentralizedEngine,
    rl: &[DocId],
    relevant: &HashSet<DocId>,
    new_query: &Query,
    cfg: &GenConfig,
) -> HashSet<DocId> {
    let rl2: Vec<DocId> = engine
        .rank_all(new_query)
        .into_iter()
        .take(cfg.top_e)
        .map(|h| h.doc)
        .collect();
    // Ranks of the original's relevant documents inside its own top-E list.
    let rel_ranks: Vec<usize> = rl
        .iter()
        .enumerate()
        .filter(|(_, d)| relevant.contains(d))
        .map(|(r, _)| r)
        .collect();
    let mut matched = vec![false; rel_ranks.len()];
    let mut out: HashSet<DocId> = HashSet::new();
    // Step 1: shared documents stay relevant, consuming the original
    // relevant document with the most similar rank.
    for (rank2, d) in rl2.iter().enumerate() {
        if relevant.contains(d) {
            out.insert(*d);
            // Nearest unmatched original rank.
            let mut best: Option<(usize, usize)> = None; // (distance, idx)
            for (i, &r) in rel_ranks.iter().enumerate() {
                if matched[i] {
                    continue;
                }
                let dd = r.abs_diff(rank2);
                if best.is_none_or(|(bd, _)| dd < bd) {
                    best = Some((dd, i));
                }
            }
            if let Some((_, i)) = best {
                matched[i] = true;
            }
        }
    }
    // Step 2: every unmatched original relevant rank donates relevance to
    // the same rank of the new list.
    for (i, &r) in rel_ranks.iter().enumerate() {
        if !matched[i] {
            if let Some(&d) = rl2.get(r) {
                out.insert(d);
            }
        }
    }
    out
}

/// A 50/50 random split of workload indices into (training, testing),
/// as §6.2 prescribes ("queries are randomly assigned to the groups").
#[must_use]
pub fn split_train_test(n_queries: usize, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut idx: Vec<usize> = (0..n_queries).collect();
    let mut rng = derive_rng(seed, "train-test-split");
    idx.shuffle(&mut rng);
    let mid = n_queries / 2;
    let (train, test) = idx.split_at(mid);
    let (mut train, mut test) = (train.to_vec(), test.to_vec());
    train.sort_unstable();
    test.sort_unstable();
    (train, test)
}

/// Query issue schedules for Figure 4(b).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Schedule {
    /// `w/o-r`: every query appears exactly once.
    WithoutRepeats,
    /// `w-zipf`: queries are issued `total` times, drawn with Zipfian
    /// popularity of the given slope (paper: 0.5).
    Zipf {
        /// Zipf slope.
        slope: f64,
        /// Total number of issues.
        total: usize,
    },
}

/// Materialize an issue order over `n` available queries.
#[must_use]
pub fn issue_order(n: usize, schedule: Schedule, seed: u64) -> Vec<usize> {
    match schedule {
        Schedule::WithoutRepeats => {
            let mut idx: Vec<usize> = (0..n).collect();
            idx.shuffle(&mut derive_rng(seed, "schedule-wor"));
            idx
        }
        Schedule::Zipf { slope, total } => {
            // Popularity rank r ↦ query: a random permutation decides which
            // query gets which popularity rank.
            let mut perm: Vec<usize> = (0..n).collect();
            let mut rng = derive_rng(seed, "schedule-zipf");
            perm.shuffle(&mut rng);
            let z = sprite_util::Zipf::new(n, slope);
            (0..total).map(|_| perm[z.sample(&mut rng)]).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{CorpusConfig, SyntheticCorpus};

    fn setup() -> (SyntheticCorpus, CentralizedEngine, Vec<SeedQuery>) {
        let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(5));
        let engine = CentralizedEngine::build(sc.corpus());
        let seeds = sc.seed_queries();
        (sc, engine, seeds)
    }

    #[test]
    fn distribution_metric_matches_hand_count() {
        let mut corpus = Corpus::new();
        let a = corpus.vocab_mut().intern("a");
        let b = corpus.vocab_mut().intern("b");
        corpus.add_document(vec![(a, 3), (b, 1)]);
        corpus.add_document(vec![(a, 2)]);
        let dist = TermDistribution::compute(&corpus);
        // a: freq 5, num 2 → 10. b: freq 1, num 1 → 1.
        assert_eq!(dist.value(a), 10.0);
        assert_eq!(dist.value(b), 1.0);
    }

    #[test]
    fn nearest_returns_closest_values() {
        let mut corpus = Corpus::new();
        // Terms with distribution values 1,4,9,16,25 (freq=v, num=1).
        let ids: Vec<TermId> = (1u32..=5)
            .map(|i| {
                let t = corpus.vocab_mut().intern(&format!("t{i}"));
                corpus.add_document(vec![(t, i * i)]);
                t
            })
            .collect();
        let dist = TermDistribution::compute(&corpus);
        let near = dist.nearest(ids[2], 2, &HashSet::new()); // value 9
                                                             // Closest to 9 are 4 and 16.
        assert_eq!(near.len(), 2);
        assert!(near.contains(&ids[1]) && near.contains(&ids[3]));
    }

    #[test]
    fn nearest_respects_exclusions() {
        let mut corpus = Corpus::new();
        let ids: Vec<TermId> = (1u32..=5)
            .map(|i| {
                let t = corpus.vocab_mut().intern(&format!("t{i}"));
                corpus.add_document(vec![(t, i)]);
                t
            })
            .collect();
        let dist = TermDistribution::compute(&corpus);
        let exclude: HashSet<TermId> = [ids[1], ids[3]].into_iter().collect();
        let near = dist.nearest(ids[2], 3, &exclude);
        assert!(!near.contains(&ids[1]) && !near.contains(&ids[3]));
        assert!(!near.contains(&ids[2]), "never returns the term itself");
    }

    #[test]
    fn workload_size_and_structure() {
        let (sc, engine, seeds) = setup();
        let cfg = GenConfig {
            k_per_seed: 9,
            top_e: 100,
            ..GenConfig::default()
        };
        let w = generate_workload(sc.corpus(), &engine, &seeds[..4], &cfg);
        assert_eq!(w.len(), 4 * 10);
        for (i, q) in w.iter().enumerate() {
            assert_eq!(q.seed_idx, i / 10);
            assert_eq!(q.is_original, i % 10 == 0);
            assert!(!q.query.is_empty());
        }
    }

    #[test]
    fn generated_queries_overlap_with_original() {
        let (sc, engine, seeds) = setup();
        let cfg = GenConfig {
            top_e: 100,
            ..GenConfig::default()
        };
        let w = generate_workload(sc.corpus(), &engine, &seeds[..3], &cfg);
        for q in w.iter().filter(|q| !q.is_original) {
            let orig = &seeds[q.seed_idx].query;
            let shared = q
                .query
                .term_counts()
                .iter()
                .filter(|(t, _)| orig.contains(*t))
                .count();
            let keep_n = (cfg.overlap * orig.distinct_len() as f64).round() as usize;
            assert!(
                shared >= keep_n.saturating_sub(0).min(orig.distinct_len()),
                "expected ≥{keep_n} shared terms, got {shared}"
            );
        }
    }

    #[test]
    fn generated_relevance_shares_documents_with_original() {
        let (sc, engine, seeds) = setup();
        let cfg = GenConfig {
            top_e: 200,
            ..GenConfig::default()
        };
        let w = generate_workload(sc.corpus(), &engine, &seeds[..3], &cfg);
        let mut any_shared = false;
        for q in w.iter().filter(|q| !q.is_original) {
            assert!(!q.relevant.is_empty(), "derived query with no relevance");
            if q.relevant
                .intersection(&seeds[q.seed_idx].relevant)
                .next()
                .is_some()
            {
                any_shared = true;
            }
        }
        assert!(
            any_shared,
            "derived queries should share relevant docs with seeds"
        );
    }

    #[test]
    fn split_is_even_and_disjoint() {
        let (train, test) = split_train_test(630, 1);
        assert_eq!(train.len(), 315);
        assert_eq!(test.len(), 315);
        let t: HashSet<usize> = train.iter().copied().collect();
        assert!(test.iter().all(|i| !t.contains(i)));
        let all: HashSet<usize> = train.iter().chain(&test).copied().collect();
        assert_eq!(all.len(), 630);
    }

    #[test]
    fn schedules() {
        let order = issue_order(10, Schedule::WithoutRepeats, 3);
        let set: HashSet<usize> = order.iter().copied().collect();
        assert_eq!(order.len(), 10);
        assert_eq!(set.len(), 10);

        let z = issue_order(
            10,
            Schedule::Zipf {
                slope: 0.5,
                total: 500,
            },
            3,
        );
        assert_eq!(z.len(), 500);
        assert!(z.iter().all(|&i| i < 10));
        // Zipf: the most popular query must repeat far more than the least.
        let mut counts = [0usize; 10];
        for &i in &z {
            counts[i] += 1;
        }
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max > min, "zipf schedule should be skewed");
    }
}
