//! Workload generation for the SPRITE evaluation.
//!
//! The paper evaluates on TREC9 plus a purpose-built query generator
//! (§6.1). This crate provides both halves:
//!
//! * [`synthetic`] — a topic-model corpus substituting the licensed TREC9
//!   collection (the substitution argument is in DESIGN.md §2), with one
//!   expert-judged seed query per topic standing in for TREC9's 63 judged
//!   queries;
//! * [`querygen`] — the paper's two-phase query generator re-implemented
//!   verbatim: overlap-ratio term selection with `Distribution(t)`
//!   nearest-neighbor replacement, and rank-aligned relevance transfer.
//!
//! Beyond the paper's frozen-corpus setup, [`lifecycle`] adds a seeded
//! document-churn engine (insert/update/delete streams) for the live
//! corpus dynamics study.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod lifecycle;
pub mod querygen;
pub mod synthetic;
pub mod trec;

pub use lifecycle::{DocChurnConfig, DocChurnEngine, DocEvent};
pub use querygen::{
    generate_workload, issue_order, split_train_test, GenConfig, GeneratedQuery, Schedule,
    TermDistribution,
};
pub use synthetic::{CorpusConfig, SeedQuery, SyntheticCorpus};
pub use trec::{parse_qrels, parse_topics, seed_queries_from_trec, ParseError, Qrels, Topic};
