//! TREC-format interchange.
//!
//! The paper evaluates on the TREC9 filtering collection (OHSUMED). That
//! data is licensed and not shipped here, but users who have it can plug it
//! in: this module parses the two standard interchange formats —
//!
//! * **qrels** (`qid  0  docno  rel`) — relevance judgments;
//! * **topics** (`<top> <num> ... <title> ...`) — query statements;
//!
//! and converts judged topics into the same [`SeedQuery`] representation
//! the synthetic generator produces, so the entire experiment pipeline
//! (query generation, SPRITE, the figures) runs unchanged on real data.

use std::collections::{HashMap, HashSet};
use std::io::BufRead;

use sprite_ir::{Corpus, DocId, Query};
use sprite_text::Analyzer;

use crate::synthetic::SeedQuery;

/// A parse failure, with the offending line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line where parsing failed.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Relevance judgments: topic id → set of relevant document numbers.
pub type Qrels = HashMap<String, HashSet<String>>;

/// Parse a qrels stream (`topic  iter  docno  relevance`, whitespace
/// separated). Documents with relevance > 0 are judged relevant; 0 lines
/// (judged irrelevant) are skipped. Blank lines and `#` comments allowed.
pub fn parse_qrels<R: BufRead>(reader: R) -> Result<Qrels, ParseError> {
    let mut out: Qrels = HashMap::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| ParseError {
            line: i + 1,
            message: format!("read error: {e}"),
        })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(topic), Some(_iter), Some(docno), Some(rel)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(ParseError {
                line: i + 1,
                message: format!("expected 4 fields, got {line:?}"),
            });
        };
        let rel: i32 = rel.parse().map_err(|_| ParseError {
            line: i + 1,
            message: format!("relevance {rel:?} is not an integer"),
        })?;
        if rel > 0 {
            out.entry(topic.to_string())
                .or_default()
                .insert(docno.to_string());
        }
    }
    Ok(out)
}

/// One parsed topic: identifier plus title text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topic {
    /// Topic number (as written, e.g. `"OHSU1"` or `"401"`).
    pub num: String,
    /// Title — the short query statement.
    pub title: String,
}

/// Parse a TREC topics stream: `<top>` blocks containing `<num>` and
/// `<title>` tags (values either on the tag line or the following lines,
/// as both conventions appear in TREC data).
pub fn parse_topics<R: BufRead>(reader: R) -> Result<Vec<Topic>, ParseError> {
    let mut out = Vec::new();
    let mut num: Option<String> = None;
    let mut title: Option<String> = None;
    let mut collecting_title = false;
    for (i, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| ParseError {
            line: i + 1,
            message: format!("read error: {e}"),
        })?;
        let t = line.trim();
        let lower = t.to_ascii_lowercase();
        if lower.starts_with("<num>") {
            let v = t[5..].trim().trim_start_matches("Number:").trim();
            num = Some(v.to_string());
            collecting_title = false;
        } else if lower.starts_with("<title>") {
            let v = t[7..].trim();
            if v.is_empty() {
                collecting_title = true;
                title = Some(String::new());
            } else {
                title = Some(v.to_string());
                collecting_title = false;
            }
        } else if lower.starts_with("</top>") {
            match (num.take(), title.take()) {
                (Some(n), Some(tt)) if !tt.trim().is_empty() => out.push(Topic {
                    num: n,
                    title: tt.trim().to_string(),
                }),
                _ => {
                    return Err(ParseError {
                        line: i + 1,
                        message: "topic block without <num> and <title>".into(),
                    })
                }
            }
            collecting_title = false;
        } else if lower.starts_with('<') {
            collecting_title = false;
        } else if collecting_title && !t.is_empty() {
            let buf = title.as_mut().expect("collecting implies Some");
            if !buf.is_empty() {
                buf.push(' ');
            }
            buf.push_str(t);
        }
    }
    Ok(out)
}

/// Assemble [`SeedQuery`]s from parsed topics and qrels over an analyzed
/// corpus. `docnos` maps each corpus document to its TREC document number
/// (parallel to doc ids). Topics without judgments, or whose title
/// analyzes to nothing, are skipped.
#[must_use]
pub fn seed_queries_from_trec(
    corpus: &Corpus,
    docnos: &[String],
    topics: &[Topic],
    qrels: &Qrels,
    analyzer: &Analyzer,
) -> Vec<SeedQuery> {
    let by_docno: HashMap<&str, DocId> = docnos
        .iter()
        .enumerate()
        .map(|(i, d)| (d.as_str(), DocId(i as u32)))
        .collect();
    let mut out = Vec::new();
    for (idx, topic) in topics.iter().enumerate() {
        let Some(rel_docnos) = qrels.get(&topic.num) else {
            continue;
        };
        let relevant: HashSet<DocId> = rel_docnos
            .iter()
            .filter_map(|d| by_docno.get(d.as_str()).copied())
            .collect();
        if relevant.is_empty() {
            continue;
        }
        let terms: Vec<_> = analyzer
            .analyze(&topic.title)
            .iter()
            .filter_map(|w| corpus.vocab().get(w))
            .collect();
        if terms.is_empty() {
            continue;
        }
        out.push(SeedQuery {
            query: Query::new(terms),
            relevant,
            topic: idx,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const QRELS: &str = "\
# comment line
OHSU1 0 doc-a 1
OHSU1 0 doc-b 2
OHSU1 0 doc-c 0
OHSU2 0 doc-c 1

OHSU2 0 doc-a 1
";

    #[test]
    fn qrels_parse_and_filter() {
        let q = parse_qrels(Cursor::new(QRELS)).expect("parse");
        assert_eq!(q.len(), 2);
        let t1 = &q["OHSU1"];
        assert!(t1.contains("doc-a") && t1.contains("doc-b"));
        assert!(!t1.contains("doc-c"), "relevance 0 means judged irrelevant");
        assert!(q["OHSU2"].contains("doc-c"));
    }

    #[test]
    fn qrels_bad_line_is_reported() {
        let err = parse_qrels(Cursor::new("OHSU1 0 doc-a\n")).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("4 fields"));
        let err2 = parse_qrels(Cursor::new("t 0 d notanint\n")).unwrap_err();
        assert!(err2.message.contains("not an integer"));
    }

    const TOPICS: &str = "\
<top>
<num> Number: OHSU1
<title>
 60 year old menopausal woman without hormone replacement
<desc> Description:
unused here
</top>
<top>
<num> 402
<title> behavioral genetics
</top>
";

    #[test]
    fn topics_parse_both_conventions() {
        let t = parse_topics(Cursor::new(TOPICS)).expect("parse");
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].num, "OHSU1");
        assert_eq!(
            t[0].title,
            "60 year old menopausal woman without hormone replacement"
        );
        assert_eq!(t[1].num, "402");
        assert_eq!(t[1].title, "behavioral genetics");
    }

    #[test]
    fn topic_without_title_errors() {
        let err = parse_topics(Cursor::new("<top>\n<num> 1\n</top>\n")).unwrap_err();
        assert!(err.message.contains("without"));
    }

    #[test]
    fn end_to_end_trec_seed_queries() {
        let analyzer = Analyzer::standard();
        let texts = [
            "hormone replacement therapy for menopausal women",
            "behavioral genetics studies of twins",
            "distributed hash tables and routing",
        ];
        let corpus = Corpus::from_texts(&analyzer, texts);
        let docnos = vec![
            "doc-a".to_string(),
            "doc-b".to_string(),
            "doc-c".to_string(),
        ];
        let topics = parse_topics(Cursor::new(TOPICS)).unwrap();
        let qrels = parse_qrels(Cursor::new(
            "OHSU1 0 doc-a 1\n402 0 doc-b 1\n402 0 doc-x 1\n",
        ))
        .unwrap();
        let seeds = seed_queries_from_trec(&corpus, &docnos, &topics, &qrels, &analyzer);
        assert_eq!(seeds.len(), 2);
        // Topic OHSU1: "menopausal", "hormone", "replacement" etc. must map
        // into the corpus vocabulary after identical analysis.
        assert!(!seeds[0].query.is_empty());
        assert_eq!(seeds[0].relevant, [DocId(0)].into_iter().collect());
        // Unknown docno "doc-x" is ignored.
        assert_eq!(seeds[1].relevant, [DocId(1)].into_iter().collect());
    }

    #[test]
    fn unjudged_topics_are_skipped() {
        let analyzer = Analyzer::standard();
        let corpus = Corpus::from_texts(&analyzer, ["some text"]);
        let topics = vec![Topic {
            num: "77".into(),
            title: "text".into(),
        }];
        let seeds = seed_queries_from_trec(
            &corpus,
            &["d1".to_string()],
            &topics,
            &Qrels::new(),
            &analyzer,
        );
        assert!(seeds.is_empty());
    }
}
