//! The document-churn engine (live corpus dynamics).
//!
//! The paper evaluates on a frozen corpus; a production deployment serves
//! a *stream* of document inserts, content updates, and deletions while
//! peers churn underneath. [`DocChurnEngine`] produces that stream,
//! deterministically: a seeded schedule of [`DocEvent`]s per tick, planned
//! against the current live-document set exactly like
//! `ChurnEngine::plan` plans membership events against the current ring —
//! the same `(config, seed, history)` replays the same events
//! bit-identically.
//!
//! Generated content is **topic-shaped**: inserts mix latent topics the
//! same way [`crate::SyntheticCorpus`] does, and an update regenerates a
//! document from its *own* topic mixture — so most of its high-frequency
//! (indexed) terms survive the edit. That overlap is what the freshness
//! study measures: incremental re-publication should be much cheaper than
//! delete+republish precisely because real edits preserve most of a
//! document's vocabulary.

use std::collections::BTreeMap;

use sprite_ir::{DocId, TermId};
use sprite_util::{derive_rng, DetRng, SliceRng, Zipf};

use crate::synthetic::{CorpusConfig, SyntheticCorpus};

/// Expected document events per tick.
#[derive(Clone, Debug)]
pub struct DocChurnConfig {
    /// Expected fresh documents per tick (fractional rates are sampled).
    pub insert_rate: f64,
    /// Expected content updates per tick.
    pub update_rate: f64,
    /// Expected deletions per tick.
    pub delete_rate: f64,
    /// Deletions are suppressed once the live set would shrink below this.
    pub min_docs: usize,
}

impl Default for DocChurnConfig {
    fn default() -> Self {
        DocChurnConfig {
            insert_rate: 1.0,
            update_rate: 2.0,
            delete_rate: 0.5,
            min_docs: 8,
        }
    }
}

/// One planned document event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DocEvent {
    /// Share a brand-new document with the given analyzed content.
    Insert {
        /// Term counts of the fresh document.
        terms: Vec<(TermId, u32)>,
    },
    /// Replace the content of a live document.
    Update {
        /// The document being edited.
        doc: DocId,
        /// Its new term counts.
        terms: Vec<(TermId, u32)>,
    },
    /// Retire a live document permanently.
    Delete {
        /// The document being deleted.
        doc: DocId,
    },
}

/// Deterministic document-churn driver.
///
/// The engine snapshots the corpus generator's latent topics at
/// construction and tracks each document's topic mixture itself (extended
/// as it plans inserts), so planned content stays topic-shaped without
/// ever borrowing the evolving corpus.
#[derive(Clone, Debug)]
pub struct DocChurnEngine {
    cfg: DocChurnConfig,
    rng: DetRng,
    gen: CorpusConfig,
    /// Latent topic cores, snapshotted from the generator.
    topics: Vec<Vec<TermId>>,
    /// Topic mixture per document index (sorted map: planning walks it
    /// deterministically), extended as inserts are planned.
    doc_topics: BTreeMap<u32, Vec<u16>>,
    background: Zipf,
    within_topic: Zipf,
    topic_pop: Zipf,
}

impl DocChurnEngine {
    /// An engine with its own derived RNG stream, seeded with the topic
    /// model of `source`. The same `(cfg, seed, source, history)` replays
    /// the same event schedule.
    #[must_use]
    pub fn new(cfg: DocChurnConfig, seed: u64, source: &SyntheticCorpus) -> Self {
        let gen = source.config().clone();
        let topics: Vec<Vec<TermId>> = (0..gen.n_topics)
            .map(|t| source.topic_core(t).to_vec())
            .collect();
        let doc_topics: BTreeMap<u32, Vec<u16>> = (0..source.corpus().len())
            .map(|i| (i as u32, source.doc_topics(DocId(i as u32)).to_vec()))
            .collect();
        let background = Zipf::new(gen.vocab_size, gen.zipf_exponent);
        let within_topic = Zipf::new(gen.terms_per_topic, gen.topic_zipf_exponent);
        let topic_pop = Zipf::new(gen.n_topics, 0.5);
        DocChurnEngine {
            cfg,
            rng: derive_rng(seed, "doc-churn"),
            gen,
            topics,
            doc_topics,
            background,
            within_topic,
            topic_pop,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &DocChurnConfig {
        &self.cfg
    }

    /// Sample an event count with expectation `rate` (integer part plus a
    /// Bernoulli trial on the fraction).
    fn sample_count(&mut self, rate: f64) -> usize {
        if rate <= 0.0 {
            return 0;
        }
        let whole = rate.floor();
        let mut n = whole as usize;
        if self.rng.gen_bool(rate - whole) {
            n += 1;
        }
        n
    }

    /// Sample a fresh topic mixture (the generator's per-document draw).
    fn sample_topics(&mut self) -> Vec<u16> {
        let n = self
            .rng
            .gen_range(self.gen.topics_per_doc.0..=self.gen.topics_per_doc.1);
        let mut mine: Vec<u16> = Vec::with_capacity(n);
        while mine.len() < n {
            let t = self.topic_pop.sample(&mut self.rng) as u16;
            if !mine.contains(&t) {
                mine.push(t);
            }
        }
        mine
    }

    /// Generate analyzed content from a topic mixture, exactly like the
    /// corpus generator: per-document permuted cores, `topic_fraction` of
    /// tokens from the cores (Zipf-skewed within), the rest background.
    fn gen_terms(&mut self, mixture: &[u16]) -> Vec<(TermId, u32)> {
        let len = self.rng.gen_range(self.gen.doc_len.0..=self.gen.doc_len.1);
        let mut cores: Vec<Vec<TermId>> = mixture
            .iter()
            .map(|&t| self.topics[t as usize].clone())
            .collect();
        for core in &mut cores {
            core.shuffle(&mut self.rng);
        }
        let mut tokens: Vec<(TermId, u32)> = Vec::with_capacity(len);
        for _ in 0..len {
            let term = if self.rng.gen_bool(self.gen.topic_fraction) {
                let core = cores.choose(&mut self.rng).expect("mixture is non-empty");
                core[self.within_topic.sample(&mut self.rng)]
            } else {
                TermId(self.background.sample(&mut self.rng) as u32)
            };
            tokens.push((term, 1));
        }
        tokens
    }

    /// Plan one tick's events against the current live set: deletions
    /// first, then updates, then inserts (mirroring `ChurnEngine::plan`'s
    /// fail/leave/join order). Victims are distinct and drawn without
    /// replacement — a document is never updated and deleted in the same
    /// tick — and deletions are capped so the live set never shrinks below
    /// `min_docs`. `total_docs` is the corpus size (live + dead): since
    /// document ids are assigned sequentially and never reused, the engine
    /// uses it to pre-assign topic mixtures to the ids its planned inserts
    /// will receive. The plan does not mutate any corpus — apply it with
    /// `SpriteSystem::apply_doc_events`.
    pub fn plan(&mut self, live: &[DocId], total_docs: usize) -> Vec<DocEvent> {
        let n_deletes = self.sample_count(self.cfg.delete_rate);
        let n_updates = self.sample_count(self.cfg.update_rate);
        let n_inserts = self.sample_count(self.cfg.insert_rate);

        let mut events = Vec::new();
        let deletes_allowed = live.len().saturating_sub(self.cfg.min_docs);
        // Draw victims without replacement by swap-removing picks from a
        // shared pool: deletions and updates never collide.
        let mut pool: Vec<DocId> = live.to_vec();
        for _ in 0..n_deletes.min(deletes_allowed) {
            if pool.is_empty() {
                break;
            }
            let doc = pool.swap_remove(self.rng.gen_range(0..pool.len()));
            self.doc_topics.remove(&doc.0);
            events.push(DocEvent::Delete { doc });
        }
        for _ in 0..n_updates {
            if pool.is_empty() {
                break;
            }
            let doc = pool.swap_remove(self.rng.gen_range(0..pool.len()));
            // An edit keeps the document's own topic mixture — that is why
            // most of its indexed vocabulary survives. A document the
            // engine never saw (shared out-of-band) gets a fresh mixture.
            let mixture = match self.doc_topics.get(&doc.0) {
                Some(m) => m.clone(),
                None => {
                    let m = self.sample_topics();
                    self.doc_topics.insert(doc.0, m.clone());
                    m
                }
            };
            let terms = self.gen_terms(&mixture);
            events.push(DocEvent::Update { doc, terms });
        }
        for i in 0..n_inserts {
            let mixture = self.sample_topics();
            let terms = self.gen_terms(&mixture);
            self.doc_topics.insert((total_docs + i) as u32, mixture);
            events.push(DocEvent::Insert { terms });
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SyntheticCorpus {
        SyntheticCorpus::generate(&CorpusConfig::tiny(7))
    }

    fn all_docs(sc: &SyntheticCorpus) -> Vec<DocId> {
        (0..sc.corpus().len()).map(|i| DocId(i as u32)).collect()
    }

    #[test]
    fn same_seed_replays_the_same_schedule() {
        let sc = tiny();
        let run = || {
            let mut eng = DocChurnEngine::new(DocChurnConfig::default(), 5, &sc);
            let mut live = all_docs(&sc);
            let mut total = live.len();
            let mut history = Vec::new();
            for _ in 0..6 {
                let events = eng.plan(&live, total);
                for ev in &events {
                    match ev {
                        DocEvent::Delete { doc } => live.retain(|d| d != doc),
                        DocEvent::Insert { .. } => {
                            live.push(DocId(total as u32));
                            total += 1;
                        }
                        DocEvent::Update { .. } => {}
                    }
                }
                history.push(events);
            }
            history
        };
        assert_eq!(run(), run());
        let mut other = DocChurnEngine::new(DocChurnConfig::default(), 6, &sc);
        let first = other.plan(&all_docs(&sc), sc.corpus().len());
        assert_ne!(run()[0], first, "a different seed plans differently");
    }

    #[test]
    fn victims_are_distinct_within_a_tick() {
        let sc = tiny();
        let cfg = DocChurnConfig {
            insert_rate: 0.0,
            update_rate: 40.0,
            delete_rate: 40.0,
            min_docs: 100,
        };
        let mut eng = DocChurnEngine::new(cfg, 3, &sc);
        let events = eng.plan(&all_docs(&sc), sc.corpus().len());
        let mut touched: Vec<u32> = events
            .iter()
            .filter_map(|ev| match ev {
                DocEvent::Update { doc, .. } | DocEvent::Delete { doc } => Some(doc.0),
                DocEvent::Insert { .. } => None,
            })
            .collect();
        let n = touched.len();
        touched.sort_unstable();
        touched.dedup();
        assert_eq!(touched.len(), n, "a doc was updated and deleted together");
    }

    #[test]
    fn deletions_respect_the_floor() {
        let sc = tiny();
        let cfg = DocChurnConfig {
            insert_rate: 0.0,
            update_rate: 0.0,
            delete_rate: 1e6,
            min_docs: 12,
        };
        let mut eng = DocChurnEngine::new(cfg, 9, &sc);
        let mut live = all_docs(&sc);
        for _ in 0..4 {
            let events = eng.plan(&live, sc.corpus().len());
            for ev in &events {
                if let DocEvent::Delete { doc } = ev {
                    live.retain(|d| d != doc);
                }
            }
        }
        assert_eq!(live.len(), 12, "delete-everything stops at min_docs");
    }

    #[test]
    fn empty_live_set_still_plans_inserts() {
        let sc = tiny();
        let cfg = DocChurnConfig {
            insert_rate: 3.0,
            update_rate: 5.0,
            delete_rate: 5.0,
            min_docs: 0,
        };
        let mut eng = DocChurnEngine::new(cfg, 1, &sc);
        let events = eng.plan(&[], 0);
        assert!(!events.is_empty());
        assert!(events
            .iter()
            .all(|ev| matches!(ev, DocEvent::Insert { .. })));
    }

    #[test]
    fn updates_keep_the_victims_topical_shape() {
        let sc = tiny();
        let cfg = DocChurnConfig {
            insert_rate: 0.0,
            update_rate: 10.0,
            delete_rate: 0.0,
            min_docs: 0,
        };
        let mut eng = DocChurnEngine::new(cfg, 4, &sc);
        let events = eng.plan(&all_docs(&sc), sc.corpus().len());
        assert!(!events.is_empty());
        for ev in &events {
            let DocEvent::Update { doc, terms } = ev else {
                continue;
            };
            // A sizable share of the new tokens come from the victim's own
            // topic cores (topic_fraction is 0.5 in the tiny config).
            let cores: Vec<TermId> = sc
                .doc_topics(*doc)
                .iter()
                .flat_map(|&t| sc.topic_core(t as usize).iter().copied())
                .collect();
            let total: u32 = terms.iter().map(|&(_, c)| c).sum();
            let topical: u32 = terms
                .iter()
                .filter(|(t, _)| cores.contains(t))
                .map(|&(_, c)| c)
                .sum();
            assert!(
                f64::from(topical) / f64::from(total) > 0.3,
                "update lost the victim's topical shape"
            );
        }
    }

    #[test]
    fn fractional_rates_average_out() {
        let sc = tiny();
        let cfg = DocChurnConfig {
            insert_rate: 0.5,
            update_rate: 0.0,
            delete_rate: 0.0,
            min_docs: 0,
        };
        let mut eng = DocChurnEngine::new(cfg, 2, &sc);
        let mut inserts = 0;
        for _ in 0..200 {
            inserts += eng.plan(&[], 0).len();
        }
        assert!(
            (60..=140).contains(&inserts),
            "expected ≈100 inserts over 200 ticks at rate 0.5, got {inserts}"
        );
    }
}
