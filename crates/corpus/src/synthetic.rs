//! Synthetic TREC9-like corpus.
//!
//! The paper evaluates on the TREC9/OHSUMED collection (348,565 documents,
//! 63 expert-judged queries), which is licensed data we substitute with a
//! generative model that preserves the properties SPRITE's learning relies
//! on (see DESIGN.md §2):
//!
//! * a **Zipf-distributed vocabulary** (natural-language term statistics,
//!   which the `Distribution(t)` metric of the query generator needs);
//! * **latent topics**: each document mixes a few topics, each topic owns a
//!   core of characteristic terms — so queries about a topic share keywords
//!   and share relevant documents (the *query locality* of §1);
//! * **expert relevance**: a document is relevant to a topic's query iff it
//!   carries that topic — judgment independent of any retrieval system,
//!   like TREC assessors.
//!
//! Documents are generated directly as term-count vectors (the analyzed
//! form); [`SyntheticCorpus::doc_text`] can render a document back to a
//! plausible text for the examples.

use std::collections::HashSet;

use sprite_util::SliceRng;

use sprite_ir::{Corpus, DocId, Query, TermId};
use sprite_util::{derive_rng, Zipf};

/// Configuration of the synthetic corpus.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// Master seed; every stream below derives from it.
    pub seed: u64,
    /// Number of documents.
    pub n_docs: usize,
    /// Vocabulary size (distinct terms).
    pub vocab_size: usize,
    /// Number of latent topics. Most topics are *distractors*: only
    /// [`Self::n_seed_queries`] of them are ever queried, so the corpus is
    /// dominated by documents irrelevant to every query — the property that
    /// makes TREC-style ranking hard and keeps judged sets small.
    pub n_topics: usize,
    /// Number of judged seed queries (TREC9 ships 63). Seed topics are
    /// spread uniformly across the popularity spectrum.
    pub n_seed_queries: usize,
    /// Characteristic terms per topic.
    pub terms_per_topic: usize,
    /// Document length bounds (tokens), inclusive.
    pub doc_len: (usize, usize),
    /// Topics per document, inclusive bounds.
    pub topics_per_doc: (usize, usize),
    /// Fraction of a document's tokens drawn from its topics' cores
    /// (the rest is Zipf background noise).
    pub topic_fraction: f64,
    /// Zipf exponent of the background term distribution.
    pub zipf_exponent: f64,
    /// Zipf exponent *within* a topic core: a topic's characteristic terms
    /// are themselves skewed, so a document's most frequent topical terms
    /// cover only the head of the core while queries draw uniformly from
    /// all of it. This is what separates frequency-based indexing (eSearch)
    /// from query-based indexing (SPRITE) — the paper's Figure 1 scenario
    /// where term `c` is frequent but never queried.
    pub topic_zipf_exponent: f64,
    /// Seed-query length bounds (keywords), inclusive.
    pub query_len: (usize, usize),
}

impl Default for CorpusConfig {
    /// The default experiment scale: 8,000 documents, 63 topics (the paper's
    /// 63 seed queries), 20,000-term vocabulary.
    fn default() -> Self {
        CorpusConfig {
            seed: 42,
            n_docs: 8_000,
            vocab_size: 20_000,
            n_topics: 320,
            n_seed_queries: 63,
            terms_per_topic: 40,
            doc_len: (80, 300),
            topics_per_doc: (1, 3),
            topic_fraction: 0.4,
            zipf_exponent: 1.0,
            topic_zipf_exponent: 1.3,
            query_len: (2, 4),
        }
    }
}

impl CorpusConfig {
    /// A miniature configuration for unit tests and doc examples.
    #[must_use]
    pub fn tiny(seed: u64) -> Self {
        CorpusConfig {
            seed,
            n_docs: 200,
            vocab_size: 1_200,
            n_topics: 12,
            n_seed_queries: 8,
            terms_per_topic: 20,
            doc_len: (30, 80),
            topics_per_doc: (1, 2),
            topic_fraction: 0.5,
            zipf_exponent: 1.0,
            topic_zipf_exponent: 1.0,
            query_len: (2, 3),
        }
    }

    /// A mid-size configuration for integration tests (runs in seconds).
    #[must_use]
    pub fn small(seed: u64) -> Self {
        CorpusConfig {
            seed,
            n_docs: 1_500,
            vocab_size: 6_000,
            n_topics: 100,
            n_seed_queries: 24,
            terms_per_topic: 30,
            doc_len: (60, 180),
            topics_per_doc: (1, 3),
            topic_fraction: 0.4,
            zipf_exponent: 1.0,
            topic_zipf_exponent: 1.3,
            query_len: (2, 4),
        }
    }
}

/// A seed query with its expert relevance judgments — the stand-in for one
/// of TREC9's 63 judged queries.
#[derive(Clone, Debug)]
pub struct SeedQuery {
    /// The keyword query.
    pub query: Query,
    /// Documents judged relevant (topic membership).
    pub relevant: HashSet<DocId>,
    /// The latent topic behind this query.
    pub topic: usize,
}

/// The generated corpus: documents, latent topics, and per-document topic
/// assignments.
#[derive(Clone, Debug)]
pub struct SyntheticCorpus {
    corpus: Corpus,
    /// Topic cores: characteristic term ids per topic.
    topics: Vec<Vec<TermId>>,
    /// Topics mixed into each document (parallel to doc ids).
    doc_topics: Vec<Vec<u16>>,
    config: CorpusConfig,
}

impl SyntheticCorpus {
    /// Generate a corpus from `config`. Deterministic in `config.seed`.
    #[must_use]
    pub fn generate(config: &CorpusConfig) -> Self {
        assert!(config.n_docs > 0 && config.vocab_size > 0 && config.n_topics > 0);
        assert!(config.doc_len.0 >= 1 && config.doc_len.0 <= config.doc_len.1);
        assert!(
            config.topics_per_doc.0 >= 1
                && config.topics_per_doc.1 >= config.topics_per_doc.0
                && config.topics_per_doc.1 <= config.n_topics
        );
        let mut corpus = Corpus::new();
        // Vocabulary: term id == background-frequency rank (id 0 = most
        // frequent). Words are synthetic but pronounceable.
        let words = generate_words(config.vocab_size, config.seed);
        for w in &words {
            corpus.vocab_mut().intern(w);
        }

        // Topic cores drawn from the mid-band of the frequency ranks: common
        // enough to appear, rare enough to be characteristic.
        let mut topic_rng = derive_rng(config.seed, "topics");
        let band_lo = config.vocab_size / 10;
        let band_hi = (config.vocab_size * 4) / 5;
        let band: Vec<u32> = (band_lo as u32..band_hi as u32).collect();
        let topics: Vec<Vec<TermId>> = (0..config.n_topics)
            .map(|_| {
                band.choose_multiple(&mut topic_rng, config.terms_per_topic)
                    .map(|&r| TermId(r))
                    .collect()
            })
            .collect();

        // Documents.
        let mut doc_rng = derive_rng(config.seed, "docs");
        let background = Zipf::new(config.vocab_size, config.zipf_exponent);
        let within_topic = Zipf::new(config.terms_per_topic, config.topic_zipf_exponent);
        let topic_pop = Zipf::new(config.n_topics, 0.5);
        let mut doc_topics = Vec::with_capacity(config.n_docs);
        for _ in 0..config.n_docs {
            let n_topics = doc_rng.gen_range(config.topics_per_doc.0..=config.topics_per_doc.1);
            let mut mine: Vec<u16> = Vec::with_capacity(n_topics);
            while mine.len() < n_topics {
                let t = topic_pop.sample(&mut doc_rng) as u16;
                if !mine.contains(&t) {
                    mine.push(t);
                }
            }
            let len = doc_rng.gen_range(config.doc_len.0..=config.doc_len.1);
            // Each document emphasizes its topics' vocabulary differently:
            // the Zipf ranking over a core is permuted per document, so one
            // doc's most frequent topical terms are another doc's tail.
            // Without this, reachability of the learning loop would be
            // all-or-nothing per topic instead of per document.
            let my_cores: Vec<Vec<TermId>> = mine
                .iter()
                .map(|&t| {
                    let mut core = topics[t as usize].clone();
                    core.shuffle(&mut doc_rng);
                    core
                })
                .collect();
            let mut tokens: Vec<(TermId, u32)> = Vec::with_capacity(len);
            for _ in 0..len {
                let term = if doc_rng.gen_bool(config.topic_fraction) {
                    let core = my_cores.choose(&mut doc_rng).expect("n_topics >= 1");
                    // Zipf within the core: a doc's topical vocabulary is
                    // head-heavy, but queries sample the whole core.
                    core[within_topic.sample(&mut doc_rng)]
                } else {
                    TermId(background.sample(&mut doc_rng) as u32)
                };
                tokens.push((term, 1));
            }
            corpus.add_document(tokens);
            doc_topics.push(mine);
        }

        SyntheticCorpus {
            corpus,
            topics,
            doc_topics,
            config: config.clone(),
        }
    }

    /// The analyzed corpus.
    #[must_use]
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The documents (shorthand for `corpus().docs()`).
    #[must_use]
    pub fn docs(&self) -> &[sprite_ir::Document] {
        self.corpus.docs()
    }

    /// The generation configuration.
    #[must_use]
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// The topic core of topic `t`.
    #[must_use]
    pub fn topic_core(&self, t: usize) -> &[TermId] {
        &self.topics[t]
    }

    /// Topics mixed into document `doc`.
    #[must_use]
    pub fn doc_topics(&self, doc: DocId) -> &[u16] {
        &self.doc_topics[doc.index()]
    }

    /// Documents judged relevant to topic `t` (expert judgment =
    /// topic membership).
    #[must_use]
    pub fn topic_docs(&self, t: usize) -> HashSet<DocId> {
        self.doc_topics
            .iter()
            .enumerate()
            .filter(|(_, ts)| ts.contains(&(t as u16)))
            .map(|(i, _)| DocId(i as u32))
            .collect()
    }

    /// The seed query set, mirroring TREC9's 63 judged queries: one query
    /// per *seed topic*. Seed topics are spread uniformly across the
    /// popularity spectrum, so relevant-set sizes vary realistically; the
    /// remaining topics are unqueried distractors. Deterministic in the
    /// corpus seed.
    #[must_use]
    pub fn seed_queries(&self) -> Vec<SeedQuery> {
        let mut rng = derive_rng(self.config.seed, "seed-queries");
        let n = self.config.n_seed_queries.min(self.config.n_topics);
        (0..n)
            .map(|s| {
                let t = s * self.config.n_topics / n;
                let len = rng.gen_range(self.config.query_len.0..=self.config.query_len.1);
                let terms: Vec<TermId> = self.topics[t]
                    .choose_multiple(&mut rng, len)
                    .copied()
                    .collect();
                SeedQuery {
                    query: Query::new(terms),
                    relevant: self.topic_docs(t),
                    topic: t,
                }
            })
            .collect()
    }

    /// Render a document back into plausible text (for examples/demos):
    /// each term repeated by its count, shuffled deterministically.
    #[must_use]
    pub fn doc_text(&self, doc: DocId) -> String {
        let d = self.corpus.doc(doc);
        let mut words: Vec<&str> = Vec::with_capacity(d.len() as usize);
        for &(t, c) in d.terms() {
            for _ in 0..c {
                words.push(self.corpus.vocab().term(t));
            }
        }
        let mut rng = derive_rng(self.config.seed ^ u64::from(doc.0), "doc-text");
        words.shuffle(&mut rng);
        words.join(" ")
    }
}

/// Generate `n` distinct pronounceable lowercase words, deterministically.
fn generate_words(n: usize, seed: u64) -> Vec<String> {
    const CONSONANTS: &[u8] = b"bcdfghjklmnprstvwz";
    const VOWELS: &[u8] = b"aeiou";
    let mut rng = derive_rng(seed, "vocab-words");
    let mut seen: HashSet<String> = HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let syllables = rng.gen_range(2..=4);
        let mut w = String::with_capacity(syllables * 2 + 1);
        for _ in 0..syllables {
            w.push(CONSONANTS[rng.gen_range(0..CONSONANTS.len())] as char);
            w.push(VOWELS[rng.gen_range(0..VOWELS.len())] as char);
        }
        if rng.gen_bool(0.3) {
            w.push(CONSONANTS[rng.gen_range(0..CONSONANTS.len())] as char);
        }
        if seen.insert(w.clone()) {
            out.push(w);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SyntheticCorpus {
        SyntheticCorpus::generate(&CorpusConfig::tiny(7))
    }

    #[test]
    fn deterministic_generation() {
        let a = SyntheticCorpus::generate(&CorpusConfig::tiny(7));
        let b = SyntheticCorpus::generate(&CorpusConfig::tiny(7));
        assert_eq!(a.corpus().len(), b.corpus().len());
        for (da, db) in a.docs().iter().zip(b.docs()) {
            assert_eq!(da.terms(), db.terms());
        }
        let c = SyntheticCorpus::generate(&CorpusConfig::tiny(8));
        // Different seed ⇒ (overwhelmingly likely) different documents.
        assert!(a
            .docs()
            .iter()
            .zip(c.docs())
            .any(|(x, y)| x.terms() != y.terms()));
    }

    #[test]
    fn respects_config_shape() {
        let sc = tiny();
        let cfg = sc.config().clone();
        assert_eq!(sc.corpus().len(), cfg.n_docs);
        assert_eq!(sc.corpus().vocab().len(), cfg.vocab_size);
        for d in sc.docs() {
            let len = d.len() as usize;
            assert!(
                len >= cfg.doc_len.0 && len <= cfg.doc_len.1,
                "doc len {len}"
            );
        }
        for i in 0..cfg.n_docs {
            let nt = sc.doc_topics(DocId(i as u32)).len();
            assert!(nt >= cfg.topics_per_doc.0 && nt <= cfg.topics_per_doc.1);
        }
    }

    #[test]
    fn topic_docs_is_inverse_of_doc_topics() {
        let sc = tiny();
        let docs0 = sc.topic_docs(0);
        assert!(!docs0.is_empty(), "topic 0 should appear somewhere");
        for d in &docs0 {
            assert!(sc.doc_topics(*d).contains(&0));
        }
    }

    #[test]
    fn topical_docs_use_core_terms_heavily() {
        let sc = tiny();
        // For documents of topic 0, a large share of tokens should come
        // from the topic core(s).
        let core: HashSet<TermId> = sc.topic_core(0).iter().copied().collect();
        let docs = sc.topic_docs(0);
        let mut core_tokens = 0u32;
        let mut all_tokens = 0u32;
        for d in &docs {
            // Only single-topic docs for a clean measurement.
            if sc.doc_topics(*d).len() != 1 {
                continue;
            }
            let doc = sc.corpus().doc(*d);
            all_tokens += doc.len();
            for &(t, c) in doc.terms() {
                if core.contains(&t) {
                    core_tokens += c;
                }
            }
        }
        assert!(all_tokens > 0);
        let frac = f64::from(core_tokens) / f64::from(all_tokens);
        // Configured topic_fraction is 0.5; background draws can also hit
        // core terms, so expect roughly ≥ 0.4.
        assert!(frac > 0.4, "core fraction {frac} too low");
    }

    #[test]
    fn seed_queries_use_topic_terms_and_have_relevance() {
        let sc = tiny();
        let seeds = sc.seed_queries();
        assert_eq!(seeds.len(), sc.config().n_seed_queries);
        for s in &seeds {
            let core: HashSet<TermId> = sc.topic_core(s.topic).iter().copied().collect();
            assert!(!s.query.is_empty());
            for &t in s.query.terms() {
                assert!(core.contains(&t), "query term outside its topic core");
            }
            assert!(!s.relevant.is_empty());
            assert_eq!(s.relevant, sc.topic_docs(s.topic));
        }
    }

    #[test]
    fn background_terms_follow_rank_order() {
        // Term id 0 (rank 0) must occur much more often than a deep-rank id.
        let sc = SyntheticCorpus::generate(&CorpusConfig::small(3));
        let count =
            |term: TermId| -> u64 { sc.docs().iter().map(|d| u64::from(d.freq(term))).sum() };
        let head: u64 = (0..5u32).map(|i| count(TermId(i))).sum();
        let tail: u64 = (0..5u32)
            .map(|i| count(TermId(sc.config().vocab_size as u32 - 1 - i)))
            .sum();
        assert!(
            head > tail.saturating_mul(5),
            "head {head} should dwarf tail {tail}"
        );
    }

    #[test]
    fn doc_text_roundtrips_through_vocab() {
        let sc = tiny();
        let text = sc.doc_text(DocId(0));
        let words: Vec<&str> = text.split(' ').collect();
        assert_eq!(words.len(), sc.corpus().doc(DocId(0)).len() as usize);
        for w in words {
            assert!(sc.corpus().vocab().get(w).is_some());
        }
    }

    #[test]
    fn generated_words_distinct_and_wellformed() {
        let words = generate_words(500, 1);
        let set: HashSet<&String> = words.iter().collect();
        assert_eq!(set.len(), 500);
        for w in &words {
            assert!(w.len() >= 4 && w.len() <= 9, "odd word {w:?}");
            assert!(w.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }
}
