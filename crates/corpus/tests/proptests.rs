//! Property-style tests for the document-churn engine and the workload
//! generators.
//!
//! Deterministic seeded loops over `DetRng`-generated configurations (the
//! workspace builds with an empty registry, so no `proptest` crate): the
//! engine must replay bit-identically, honor its rates without drawing a
//! victim twice, and degrade gracefully at the empty-corpus and
//! delete-everything edges.

use std::collections::BTreeSet;

use sprite_corpus::{CorpusConfig, DocChurnConfig, DocChurnEngine, DocEvent, SyntheticCorpus};
use sprite_ir::DocId;
use sprite_util::{derive_rng, DetRng};

fn rng(label: &str) -> DetRng {
    derive_rng(0xC0DE, label)
}

fn source(seed: u64) -> SyntheticCorpus {
    SyntheticCorpus::generate(&CorpusConfig::tiny(seed))
}

fn gen_cfg(r: &mut DetRng) -> DocChurnConfig {
    DocChurnConfig {
        insert_rate: r.gen_range(0..5) as f64 / 2.0,
        update_rate: r.gen_range(0..7) as f64 / 2.0,
        delete_rate: r.gen_range(0..5) as f64 / 2.0,
        min_docs: r.gen_range(0..12),
    }
}

/// Apply one plan to a model of the live set, mirroring what
/// `SpriteSystem::apply_doc_events` does to the real deployment: deletes
/// drop ids, inserts append sequential ids, updates touch in place.
fn apply_model(live: &mut Vec<DocId>, total_docs: &mut usize, events: &[DocEvent]) {
    for ev in events {
        match ev {
            DocEvent::Insert { .. } => {
                live.push(DocId(*total_docs as u32));
                *total_docs += 1;
            }
            DocEvent::Update { .. } => {}
            DocEvent::Delete { doc } => live.retain(|d| d != doc),
        }
    }
}

/// Same seed, same source, same live-set trajectory: the planned event
/// stream replays bit for bit, tick after tick.
#[test]
fn same_seed_replays_bit_identically() {
    let mut r = rng("replay");
    for round in 0..64 {
        let cfg = gen_cfg(&mut r);
        let seed = r.gen_u64();
        let sc = source(7 + round % 3);
        let mut a = DocChurnEngine::new(cfg.clone(), seed, &sc);
        let mut b = DocChurnEngine::new(cfg, seed, &sc);
        let mut live: Vec<DocId> = (0..sc.corpus().len()).map(|i| DocId(i as u32)).collect();
        let mut total = sc.corpus().len();
        for _ in 0..4 {
            let ea = a.plan(&live, total);
            let eb = b.plan(&live, total);
            assert_eq!(ea, eb, "replay diverged");
            apply_model(&mut live, &mut total, &ea);
        }
    }
}

/// Within one tick, no document is drawn twice: every update and delete
/// victim is distinct and comes from the live set (rates are honored
/// without replacement).
#[test]
fn victims_are_distinct_and_live_within_a_tick() {
    let mut r = rng("victims");
    let sc = source(9);
    for _ in 0..64 {
        let cfg = gen_cfg(&mut r);
        let mut engine = DocChurnEngine::new(cfg, r.gen_u64(), &sc);
        let mut live: Vec<DocId> = (0..sc.corpus().len()).map(|i| DocId(i as u32)).collect();
        let mut total = sc.corpus().len();
        for _ in 0..4 {
            let events = engine.plan(&live, total);
            let alive: BTreeSet<DocId> = live.iter().copied().collect();
            let mut victims = BTreeSet::new();
            for ev in &events {
                let doc = match ev {
                    DocEvent::Update { doc, .. } | DocEvent::Delete { doc } => *doc,
                    DocEvent::Insert { .. } => continue,
                };
                assert!(alive.contains(&doc), "{doc:?} is not live");
                assert!(victims.insert(doc), "{doc:?} drawn twice in one tick");
            }
            apply_model(&mut live, &mut total, &events);
        }
    }
}

/// Deletions never cross the configured floor, no matter how aggressive
/// the delete rate.
#[test]
fn deletions_respect_the_min_docs_floor() {
    let mut r = rng("floor");
    let sc = source(11);
    for _ in 0..32 {
        let floor = r.gen_range(0..20);
        let cfg = DocChurnConfig {
            insert_rate: 0.0,
            update_rate: 0.0,
            delete_rate: 50.0,
            min_docs: floor,
        };
        let mut engine = DocChurnEngine::new(cfg, r.gen_u64(), &sc);
        let mut live: Vec<DocId> = (0..sc.corpus().len()).map(|i| DocId(i as u32)).collect();
        let mut total = sc.corpus().len();
        for _ in 0..8 {
            let events = engine.plan(&live, total);
            apply_model(&mut live, &mut total, &events);
            assert!(
                live.len() >= floor.min(sc.corpus().len()),
                "live set {} fell below the floor {floor}",
                live.len()
            );
        }
        // The delete-everything edge: with the floor at the bottom, the
        // stream drains the corpus exactly to it and then plans nothing
        // but (zero-rate) silence.
        assert_eq!(live.len(), floor.min(sc.corpus().len()));
        assert!(engine.plan(&live, total).is_empty());
    }
}

/// An empty live set still plans inserts — a deployment drained to
/// nothing can repopulate — but never an update or a delete.
#[test]
fn empty_live_set_plans_inserts_only() {
    let mut r = rng("empty");
    let sc = source(13);
    for _ in 0..32 {
        let cfg = DocChurnConfig {
            insert_rate: 1.0 + r.gen_range(0..4) as f64,
            update_rate: 3.0,
            delete_rate: 3.0,
            min_docs: 0,
        };
        let mut engine = DocChurnEngine::new(cfg, r.gen_u64(), &sc);
        let events = engine.plan(&[], sc.corpus().len());
        assert!(!events.is_empty(), "inserts must still flow");
        for ev in &events {
            assert!(
                matches!(ev, DocEvent::Insert { .. }),
                "planned {ev:?} against an empty live set"
            );
        }
    }
}

/// Planned content is well-formed: non-empty, in-vocabulary terms with
/// positive counts — whatever the rates, whatever the tick.
#[test]
fn planned_content_is_well_formed() {
    let mut r = rng("content");
    let sc = source(17);
    let vocab = sc.corpus().vocab().len();
    for _ in 0..32 {
        let cfg = gen_cfg(&mut r);
        let mut engine = DocChurnEngine::new(cfg, r.gen_u64(), &sc);
        let mut live: Vec<DocId> = (0..sc.corpus().len()).map(|i| DocId(i as u32)).collect();
        let mut total = sc.corpus().len();
        for _ in 0..3 {
            let events = engine.plan(&live, total);
            for ev in &events {
                let terms = match ev {
                    DocEvent::Insert { terms } | DocEvent::Update { terms, .. } => terms,
                    DocEvent::Delete { .. } => continue,
                };
                assert!(!terms.is_empty(), "planned an empty document");
                for &(t, n) in terms {
                    assert!((t.0 as usize) < vocab, "out-of-vocabulary term {t:?}");
                    assert!(n > 0, "zero-count term {t:?}");
                }
            }
            apply_model(&mut live, &mut total, &events);
        }
    }
}

/// Fractional rates average out across ticks: the realized event count
/// over many ticks lands near `rate × ticks` for every stream.
#[test]
fn rates_are_honored_in_expectation() {
    let mut r = rng("rates");
    let sc = source(19);
    for _ in 0..8 {
        let cfg = DocChurnConfig {
            insert_rate: 1.5,
            update_rate: 0.5,
            delete_rate: 0.0,
            min_docs: 0,
        };
        let mut engine = DocChurnEngine::new(cfg, r.gen_u64(), &sc);
        let mut live: Vec<DocId> = (0..sc.corpus().len()).map(|i| DocId(i as u32)).collect();
        let mut total = sc.corpus().len();
        let (mut inserts, mut updates) = (0usize, 0usize);
        let ticks = 120;
        for _ in 0..ticks {
            let events = engine.plan(&live, total);
            for ev in &events {
                match ev {
                    DocEvent::Insert { .. } => inserts += 1,
                    DocEvent::Update { .. } => updates += 1,
                    DocEvent::Delete { .. } => {}
                }
            }
            apply_model(&mut live, &mut total, &events);
        }
        let expect_i = (1.5 * ticks as f64) as usize;
        let expect_u = (0.5 * ticks as f64) as usize;
        assert!(
            inserts >= expect_i * 7 / 10 && inserts <= expect_i * 13 / 10,
            "{inserts} inserts over {ticks} ticks at rate 1.5"
        );
        assert!(
            updates >= expect_u * 6 / 10 && updates <= expect_u * 14 / 10,
            "{updates} updates over {ticks} ticks at rate 0.5"
        );
    }
}
