//! The full analysis pipeline: tokenize → stop-filter → stem.
//!
//! This is the "standard way" preprocessing of SPRITE §6 ("removing the
//! terms in the stop-word-list, and then stemming is applied"), packaged so
//! every subsystem — the centralized engine, the owner peers, and the query
//! generator — analyzes text identically. Retrieval quality comparisons are
//! meaningless unless documents and queries pass through the same analyzer.

use std::collections::HashMap;

use crate::porter;
use crate::stopwords::StopWords;
use crate::tokenizer::{Tokenizer, TokenizerConfig};

/// Configurable analysis pipeline.
#[derive(Clone, Debug, Default)]
pub struct Analyzer {
    tokenizer: Tokenizer,
    stop_words: StopWords,
    stemming: Stemming,
}

/// Whether the pipeline stems.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Stemming {
    /// Apply the Porter stemmer (the paper's configuration).
    #[default]
    Porter,
    /// Leave tokens unstemmed (for ablations and debugging).
    None,
}

impl Analyzer {
    /// The paper's pipeline: letter tokenizer, Lucene English stop words,
    /// Porter stemmer.
    #[must_use]
    pub fn standard() -> Self {
        Analyzer::default()
    }

    /// Fully custom pipeline.
    #[must_use]
    pub fn new(config: TokenizerConfig, stop_words: StopWords, stemming: Stemming) -> Self {
        Analyzer {
            tokenizer: Tokenizer::new(config),
            stop_words,
            stemming,
        }
    }

    /// Analyze `text` into the term sequence (with duplicates, in order).
    #[must_use]
    pub fn analyze(&self, text: &str) -> Vec<String> {
        self.tokenizer
            .iter(text)
            .filter(|t| !self.stop_words.contains(t))
            .map(|t| match self.stemming {
                Stemming::Porter => porter::stem(&t),
                Stemming::None => t,
            })
            .collect()
    }

    /// Analyze `text` into (term → frequency) counts plus the token total.
    ///
    /// The token total is the "document length" SPRITE stores in the inverted
    /// list metadata (§5.1) and uses to normalize term frequency (§4).
    #[must_use]
    pub fn term_counts(&self, text: &str) -> TermCounts {
        let terms = self.analyze(text);
        let len = terms.len();
        let mut counts: HashMap<String, u32> = HashMap::new();
        for t in terms {
            *counts.entry(t).or_insert(0) += 1;
        }
        TermCounts { counts, len }
    }
}

/// Term frequencies of one analyzed text.
#[derive(Clone, Debug, Default)]
pub struct TermCounts {
    /// term → number of occurrences.
    pub counts: HashMap<String, u32>,
    /// Total number of tokens after filtering (the document length).
    pub len: usize,
}

impl TermCounts {
    /// Number of distinct terms.
    #[must_use]
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Frequency of `term` (0 if absent).
    #[must_use]
    pub fn freq(&self, term: &str) -> u32 {
        self.counts.get(term).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_pipeline_end_to_end() {
        let a = Analyzer::standard();
        let terms = a.analyze("The cats are running in the networks!");
        // "the", "are", "in" are stop words; rest is stemmed.
        assert_eq!(terms, ["cat", "run", "network"]);
    }

    #[test]
    fn stop_words_removed_before_stemming() {
        let a = Analyzer::standard();
        // "this" is a stop word; "these" also.
        assert!(a.analyze("this these those").iter().all(|t| t != "this"));
    }

    #[test]
    fn no_stemming_variant() {
        let a = Analyzer::new(
            TokenizerConfig::default(),
            StopWords::none(),
            Stemming::None,
        );
        assert_eq!(a.analyze("running cats"), ["running", "cats"]);
    }

    #[test]
    fn term_counts_and_length() {
        let a = Analyzer::standard();
        let tc = a.term_counts("peer to peer networks connect peers");
        // "to" is a stop word → tokens: peer, peer, network, connect, peer
        assert_eq!(tc.len, 5);
        assert_eq!(tc.freq("peer"), 3);
        assert_eq!(tc.freq("network"), 1);
        assert_eq!(tc.freq("connect"), 1);
        assert_eq!(tc.freq("absent"), 0);
        assert_eq!(tc.distinct(), 3);
    }

    #[test]
    fn empty_text() {
        let a = Analyzer::standard();
        let tc = a.term_counts("");
        assert_eq!(tc.len, 0);
        assert_eq!(tc.distinct(), 0);
    }

    #[test]
    fn query_and_document_agree() {
        // The reason the analyzer exists: same surface word forms map to the
        // same term on both sides.
        let a = Analyzer::standard();
        let doc = a.analyze("He was querying the distributed indexes");
        let query = a.analyze("query distribution index");
        for t in &query {
            assert!(
                doc.contains(t),
                "query term {t} missing from doc terms {doc:?}"
            );
        }
    }
}
