//! Text analysis for SPRITE: tokenizer, stop words, Porter stemmer.
//!
//! Implements the preprocessing the paper describes in §5.2/§6: "we
//! summarize the terms in a document and filter them with a
//! stop-word-list … then we apply the stemming algorithm". The default
//! stop list is Lucene's English list (the paper's choice); the stemmer is
//! a from-scratch Porter (1980) implementation.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod analyzer;
pub mod porter;
pub mod stopwords;
pub mod tokenizer;

pub use analyzer::{Analyzer, Stemming, TermCounts};
pub use porter::stem;
pub use stopwords::{StopWords, LUCENE_ENGLISH};
pub use tokenizer::{Tokenizer, TokenizerConfig};
