//! The Porter stemming algorithm (M.F. Porter, 1980).
//!
//! SPRITE unifies terms "by removing the suffix, such as 'ed' and 'ing'"
//! (§5.2) — the canonical algorithm for that in the Lucene era is Porter's.
//! This is a from-scratch transcription of the original 1980 paper
//! ("An algorithm for suffix stripping", *Program* 14(3)), steps 1a–5b,
//! operating on lower-case ASCII. Non-ASCII words are returned unchanged;
//! stemming is only defined for English.
//!
//! Validated against the word/stem pairs printed in the paper itself plus a
//! broader sample of the published `voc.txt`/`output.txt` reference data.

/// Stem `word`, returning the stemmed form.
///
/// The input is expected to be lower-case (as produced by the tokenizer);
/// upper-case letters are treated as non-ASCII and returned unchanged.
#[must_use]
pub fn stem(word: &str) -> String {
    if !word.bytes().all(|b| b.is_ascii_lowercase()) || word.len() <= 2 {
        // Porter leaves words of length 1-2 alone; we also skip anything
        // containing digits or non-ASCII, where suffix logic is meaningless.
        return word.to_string();
    }
    let mut s = Stemmer {
        b: word.as_bytes().to_vec(),
    };
    s.step1a();
    s.step1b();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5a();
    s.step5b();
    String::from_utf8(s.b).expect("stemmer preserves ASCII")
}

struct Stemmer {
    b: Vec<u8>,
}

impl Stemmer {
    /// Is the letter at `i` a consonant? (`y` is a consonant at position 0 or
    /// after a vowel; after a consonant it acts as a vowel.)
    fn is_cons(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => i == 0 || !self.is_cons(i - 1),
            _ => true,
        }
    }

    /// Porter's measure `m` of the stem `b[..len]`: the number of VC
    /// sequences in the form `[C](VC)^m[V]`.
    fn measure(&self, len: usize) -> usize {
        let mut m = 0;
        let mut i = 0;
        // Skip initial consonants.
        while i < len && self.is_cons(i) {
            i += 1;
        }
        loop {
            // Skip vowels.
            while i < len && !self.is_cons(i) {
                i += 1;
            }
            if i == len {
                return m;
            }
            // Skip consonants: one full VC sequence seen.
            while i < len && self.is_cons(i) {
                i += 1;
            }
            m += 1;
        }
    }

    /// `*v*` — does the stem `b[..len]` contain a vowel?
    fn has_vowel(&self, len: usize) -> bool {
        (0..len).any(|i| !self.is_cons(i))
    }

    /// `*d` — does the stem end with a double consonant?
    fn ends_double_cons(&self, len: usize) -> bool {
        len >= 2 && self.b[len - 1] == self.b[len - 2] && self.is_cons(len - 1)
    }

    /// `*o` — does the stem end consonant-vowel-consonant, where the final
    /// consonant is not `w`, `x`, or `y`?
    fn ends_cvc(&self, len: usize) -> bool {
        if len < 3 {
            return false;
        }
        let c = self.b[len - 1];
        self.is_cons(len - 3)
            && !self.is_cons(len - 2)
            && self.is_cons(len - 1)
            && c != b'w'
            && c != b'x'
            && c != b'y'
    }

    fn ends_with(&self, suffix: &[u8]) -> bool {
        self.b.len() >= suffix.len() && &self.b[self.b.len() - suffix.len()..] == suffix
    }

    /// Length of the stem if `suffix` were removed.
    fn stem_len(&self, suffix: &[u8]) -> usize {
        self.b.len() - suffix.len()
    }

    /// Replace a matched `suffix` with `to`.
    fn set_suffix(&mut self, suffix: &[u8], to: &[u8]) {
        let at = self.stem_len(suffix);
        self.b.truncate(at);
        self.b.extend_from_slice(to);
    }

    /// If the word ends with `suffix` and the remaining stem has measure
    /// exceeding `min_m`, replace the suffix with `to` and return true.
    /// Also returns true (doing nothing) when the suffix matched but the
    /// condition failed, so rule lists can stop at the first matching
    /// suffix as the paper specifies ("the longest match ... is taken").
    fn rule(&mut self, suffix: &[u8], to: &[u8], min_m: usize) -> bool {
        if self.ends_with(suffix) {
            if self.measure(self.stem_len(suffix)) > min_m {
                self.set_suffix(suffix, to);
            }
            true
        } else {
            false
        }
    }

    /// Step 1a: plurals. SSES→SS, IES→I, SS→SS, S→ε.
    fn step1a(&mut self) {
        if self.ends_with(b"sses") {
            self.set_suffix(b"sses", b"ss");
        } else if self.ends_with(b"ies") {
            self.set_suffix(b"ies", b"i");
        } else if self.ends_with(b"ss") {
            // unchanged
        } else if self.ends_with(b"s") {
            self.set_suffix(b"s", b"");
        }
    }

    /// Step 1b: -ed / -ing, with the cleanup second phase.
    fn step1b(&mut self) {
        if self.ends_with(b"eed") {
            if self.measure(self.stem_len(b"eed")) > 0 {
                self.set_suffix(b"eed", b"ee");
            }
            return;
        }
        let stripped = if self.ends_with(b"ed") && self.has_vowel(self.stem_len(b"ed")) {
            self.set_suffix(b"ed", b"");
            true
        } else if self.ends_with(b"ing") && self.has_vowel(self.stem_len(b"ing")) {
            self.set_suffix(b"ing", b"");
            true
        } else {
            false
        };
        if !stripped {
            return;
        }
        // Cleanup: AT→ATE, BL→BLE, IZ→IZE; undouble; or add E after short stem.
        if self.ends_with(b"at") {
            self.set_suffix(b"at", b"ate");
        } else if self.ends_with(b"bl") {
            self.set_suffix(b"bl", b"ble");
        } else if self.ends_with(b"iz") {
            self.set_suffix(b"iz", b"ize");
        } else if self.ends_double_cons(self.b.len()) {
            let last = *self.b.last().expect("double consonant implies non-empty");
            if !matches!(last, b'l' | b's' | b'z') {
                self.b.pop();
            }
        } else if self.measure(self.b.len()) == 1 && self.ends_cvc(self.b.len()) {
            self.b.push(b'e');
        }
    }

    /// Step 1c: (*v*) Y→I.
    fn step1c(&mut self) {
        if self.ends_with(b"y") && self.has_vowel(self.stem_len(b"y")) {
            *self.b.last_mut().expect("ends_with y") = b'i';
        }
    }

    /// Step 2: double-suffix reduction (m > 0). Longest match first.
    fn step2(&mut self) {
        // Dispatch on the penultimate letter as in Porter's original program
        // to keep the suffix scan cheap; within a group, longest first.
        const RULES: &[(&[u8], &[u8])] = &[
            (b"ational", b"ate"),
            (b"tional", b"tion"),
            (b"enci", b"ence"),
            (b"anci", b"ance"),
            (b"izer", b"ize"),
            (b"abli", b"able"),
            (b"alli", b"al"),
            (b"entli", b"ent"),
            (b"eli", b"e"),
            (b"ousli", b"ous"),
            (b"ization", b"ize"),
            (b"ation", b"ate"),
            (b"ator", b"ate"),
            (b"alism", b"al"),
            (b"iveness", b"ive"),
            (b"fulness", b"ful"),
            (b"ousness", b"ous"),
            (b"aliti", b"al"),
            (b"iviti", b"ive"),
            (b"biliti", b"ble"),
        ];
        for (from, to) in RULES {
            if self.rule(from, to, 0) {
                return;
            }
        }
    }

    /// Step 3: -ic-, -full, -ness etc. (m > 0).
    fn step3(&mut self) {
        const RULES: &[(&[u8], &[u8])] = &[
            (b"icate", b"ic"),
            (b"ative", b""),
            (b"alize", b"al"),
            (b"iciti", b"ic"),
            (b"ical", b"ic"),
            (b"ful", b""),
            (b"ness", b""),
        ];
        for (from, to) in RULES {
            if self.rule(from, to, 0) {
                return;
            }
        }
    }

    /// Step 4: residual suffixes stripped when m > 1.
    fn step4(&mut self) {
        const RULES: &[&[u8]] = &[
            b"al", b"ance", b"ence", b"er", b"ic", b"able", b"ible", b"ant", b"ement", b"ment",
            b"ent",
        ];
        for from in RULES {
            if self.ends_with(from) {
                self.rule(from, b"", 1);
                return;
            }
        }
        // (m>1 and (*S or *T)) ION → ε
        if self.ends_with(b"ion") {
            let at = self.stem_len(b"ion");
            if at >= 1 && matches!(self.b[at - 1], b's' | b't') && self.measure(at) > 1 {
                self.b.truncate(at);
            }
            return;
        }
        const RULES2: &[&[u8]] = &[b"ou", b"ism", b"ate", b"iti", b"ous", b"ive", b"ize"];
        for from in RULES2 {
            if self.ends_with(from) {
                self.rule(from, b"", 1);
                return;
            }
        }
    }

    /// Step 5a: drop a final E when m > 1, or m == 1 and not *o.
    fn step5a(&mut self) {
        if self.ends_with(b"e") {
            let at = self.stem_len(b"e");
            let m = self.measure(at);
            if m > 1 || (m == 1 && !self.ends_cvc(at)) {
                self.b.truncate(at);
            }
        }
    }

    /// Step 5b: (m > 1 and *d and *L) undouble the final L.
    fn step5b(&mut self) {
        if self.measure(self.b.len()) > 1
            && self.ends_double_cons(self.b.len())
            && self.b.last() == Some(&b'l')
        {
            self.b.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run a batch of expected (word, stem) pairs.
    fn check(pairs: &[(&str, &str)]) {
        for (w, s) in pairs {
            assert_eq!(stem(w), *s, "stem({w:?})");
        }
    }

    #[test]
    fn step1a_examples() {
        check(&[
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
        ]);
    }

    #[test]
    fn step1b_examples() {
        check(&[
            ("feed", "feed"),
            ("agreed", "agre"), // agreed → agree (1b) → agre (5a)
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
        ]);
    }

    #[test]
    fn step1c_examples() {
        check(&[("happy", "happi"), ("sky", "sky")]);
    }

    #[test]
    fn step2_examples() {
        check(&[
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
        ]);
    }

    #[test]
    fn step3_examples() {
        check(&[
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
        ]);
    }

    #[test]
    fn step4_examples() {
        check(&[
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
        ]);
    }

    #[test]
    fn step5_examples() {
        check(&[
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ]);
    }

    #[test]
    fn common_ir_vocabulary() {
        // Terms a retrieval paper actually indexes.
        check(&[
            ("retrieval", "retriev"),
            ("indexing", "index"),
            ("queries", "queri"),
            ("query", "queri"), // query and queries conflate
            ("documents", "document"),
            ("learning", "learn"),
            ("networks", "network"),
            ("distributed", "distribut"),
            ("distribution", "distribut"), // conflates with distributed
        ]);
    }

    #[test]
    fn short_words_unchanged() {
        check(&[("a", "a"), ("is", "is"), ("be", "be"), ("ox", "ox")]);
    }

    #[test]
    fn non_ascii_and_digit_words_unchanged() {
        assert_eq!(stem("café"), "café");
        assert_eq!(stem("mp3"), "mp3");
        assert_eq!(stem("Upper"), "Upper");
    }

    #[test]
    fn idempotent_on_own_output() {
        // Stemming a stem should usually be a no-op; verify for a sample.
        for w in [
            "relational",
            "hopefulness",
            "generalizations",
            "oscillators",
            "troubled",
            "happiness",
        ] {
            let once = stem(w);
            let twice = stem(&once);
            assert_eq!(once, twice, "stem not idempotent for {w}");
        }
    }
}
