//! Stop-word filtering.
//!
//! The paper uses "the default stop-word-list in Lucene" (§6). That list —
//! Lucene's `EnglishAnalyzer.ENGLISH_STOP_WORDS_SET`, 33 words — is
//! transcribed in [`LUCENE_ENGLISH`]. A [`StopWords`] set can also be built
//! from any custom list.

use std::collections::HashSet;

/// Lucene's default English stop-word list (33 entries), verbatim.
pub const LUCENE_ENGLISH: [&str; 33] = [
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "if", "in", "into", "is", "it",
    "no", "not", "of", "on", "or", "such", "that", "the", "their", "then", "there", "these",
    "they", "this", "to", "was", "will", "with",
];

/// A stop-word set.
#[derive(Clone, Debug)]
pub struct StopWords {
    set: HashSet<String>,
}

impl Default for StopWords {
    /// The Lucene default English list.
    fn default() -> Self {
        Self::lucene_english()
    }
}

impl StopWords {
    /// Lucene's default English stop words.
    #[must_use]
    pub fn lucene_english() -> Self {
        Self::from_words(LUCENE_ENGLISH)
    }

    /// An empty set (no filtering).
    #[must_use]
    pub fn none() -> Self {
        StopWords {
            set: HashSet::new(),
        }
    }

    /// Build from any iterator of words; words are stored lower-cased.
    pub fn from_words<I, S>(words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        StopWords {
            set: words
                .into_iter()
                .map(|w| w.as_ref().to_lowercase())
                .collect(),
        }
    }

    /// Is `word` (assumed already lower-cased) a stop word?
    #[must_use]
    pub fn contains(&self, word: &str) -> bool {
        self.set.contains(word)
    }

    /// Number of stop words in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True if the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lucene_list_has_33_words() {
        let s = StopWords::lucene_english();
        assert_eq!(s.len(), 33);
    }

    #[test]
    fn classic_stop_words_match() {
        let s = StopWords::default();
        for w in ["the", "is", "a", "and", "with", "to"] {
            assert!(s.contains(w), "{w} should be a stop word");
        }
        for w in ["dog", "retrieval", "peer", "chord"] {
            assert!(!s.contains(w), "{w} should not be a stop word");
        }
    }

    #[test]
    fn custom_list_is_lowercased() {
        let s = StopWords::from_words(["FOO", "Bar"]);
        assert!(s.contains("foo"));
        assert!(s.contains("bar"));
        assert!(!s.contains("baz"));
    }

    #[test]
    fn none_filters_nothing() {
        let s = StopWords::none();
        assert!(s.is_empty());
        assert!(!s.contains("the"));
    }
}
