//! Tokenization.
//!
//! SPRITE preprocesses documents "in the standard way" (§6): split into
//! terms, lower-case, drop stop words, stem. This module is the first stage:
//! a letter-run tokenizer equivalent to Lucene's classic `LetterTokenizer` +
//! `LowerCaseFilter`, with configurable token length bounds so degenerate
//! inputs (single letters, base64 blobs) can be excluded.

/// Configuration for [`Tokenizer`].
#[derive(Clone, Debug)]
pub struct TokenizerConfig {
    /// Tokens shorter than this are dropped. Default 2.
    pub min_len: usize,
    /// Tokens longer than this are dropped (Lucene truncates at 255; we drop,
    /// since absurdly long "terms" are noise in every corpus). Default 64.
    pub max_len: usize,
    /// Whether digits extend a token (`"mp3"`, `"tcp2"`). Default true.
    pub keep_digits: bool,
}

impl Default for TokenizerConfig {
    fn default() -> Self {
        TokenizerConfig {
            min_len: 2,
            max_len: 64,
            keep_digits: true,
        }
    }
}

/// A lower-casing letter-run tokenizer.
#[derive(Clone, Debug, Default)]
pub struct Tokenizer {
    config: TokenizerConfig,
}

impl Tokenizer {
    /// Tokenizer with the given configuration.
    #[must_use]
    pub fn new(config: TokenizerConfig) -> Self {
        Tokenizer { config }
    }

    /// Split `text` into lower-cased tokens.
    #[must_use]
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        self.iter(text).collect()
    }

    /// Iterate tokens without collecting.
    pub fn iter<'t>(&'t self, text: &'t str) -> impl Iterator<Item = String> + 't {
        TokenIter {
            config: &self.config,
            chars: text.chars(),
            pending: None,
        }
    }
}

struct TokenIter<'t> {
    config: &'t TokenizerConfig,
    chars: std::str::Chars<'t>,
    pending: Option<char>,
}

impl Iterator for TokenIter<'_> {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        let is_tok = |c: char| c.is_alphabetic() || (self.config.keep_digits && c.is_ascii_digit());
        loop {
            let mut tok = String::new();
            // Resume from a char peeked on the previous round, or scan ahead.
            let mut c = match self.pending.take() {
                Some(c) => Some(c),
                None => self.chars.by_ref().find(|&c| is_tok(c)),
            };
            while let Some(ch) = c {
                if is_tok(ch) {
                    for lc in ch.to_lowercase() {
                        tok.push(lc);
                    }
                    c = self.chars.next();
                } else {
                    break;
                }
            }
            if tok.is_empty() {
                return None;
            }
            let len = tok.chars().count();
            if len >= self.config.min_len && len <= self.config.max_len {
                return Some(tok);
            }
            // Token filtered; keep scanning. `c` (the delimiter) is consumed.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        Tokenizer::default().tokenize(s)
    }

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(
            toks("Hello, world! Foo-bar baz."),
            ["hello", "world", "foo", "bar", "baz"]
        );
    }

    #[test]
    fn lowercases() {
        assert_eq!(toks("MiXeD CaSe"), ["mixed", "case"]);
    }

    #[test]
    fn keeps_digits_inside_tokens() {
        assert_eq!(toks("mp3 and tcp2ip"), ["mp3", "and", "tcp2ip"]);
    }

    #[test]
    fn drops_short_tokens() {
        // Default min_len = 2: "a" and "I" vanish.
        assert_eq!(toks("a I am ok"), ["am", "ok"]);
    }

    #[test]
    fn drops_over_long_tokens() {
        let long = "x".repeat(100);
        let text = format!("good {long} fine");
        assert_eq!(toks(&text), ["good", "fine"]);
    }

    #[test]
    fn empty_and_symbol_only_inputs() {
        assert!(toks("").is_empty());
        assert!(toks("!!! ··· 123---...").len() == 1); // "123" survives
        let no_digits = Tokenizer::new(TokenizerConfig {
            keep_digits: false,
            ..TokenizerConfig::default()
        });
        assert!(no_digits.tokenize("123 456").is_empty());
    }

    #[test]
    fn digits_disabled_split_tokens() {
        let t = Tokenizer::new(TokenizerConfig {
            keep_digits: false,
            ..TokenizerConfig::default()
        });
        assert_eq!(t.tokenize("tcp2ip"), ["tcp", "ip"]);
    }

    #[test]
    fn unicode_letters_pass_through() {
        assert_eq!(
            toks("Überraschung naïve café"),
            ["überraschung", "naïve", "café"]
        );
    }

    #[test]
    fn min_len_one_keeps_single_letters() {
        let t = Tokenizer::new(TokenizerConfig {
            min_len: 1,
            ..TokenizerConfig::default()
        });
        assert_eq!(t.tokenize("a b"), ["a", "b"]);
    }
}
