//! Property-based tests for the text pipeline.

use proptest::prelude::*;
use sprite_text::{stem, Analyzer, StopWords, Tokenizer, TokenizerConfig};

proptest! {
    /// The stemmer never panics, never produces a longer word, and its
    /// output is stable ASCII for ASCII input.
    #[test]
    fn stemmer_total_and_shrinking(word in "[a-z]{1,20}") {
        let out = stem(&word);
        prop_assert!(out.len() <= word.len() + 1, "step 1b can add at most one 'e'");
        prop_assert!(out.bytes().all(|b| b.is_ascii_lowercase()));
        prop_assert!(!out.is_empty());
    }

    /// Stemming is idempotent on its own output for the overwhelming
    /// majority of words; where it is not (known Porter quirk for a few
    /// suffix chains), a third application must be a fixpoint.
    #[test]
    fn stemmer_reaches_fixpoint(word in "[a-z]{1,20}") {
        let once = stem(&word);
        let twice = stem(&once);
        let thrice = stem(&twice);
        prop_assert_eq!(&thrice, &stem(&thrice), "no fixpoint after three passes");
        let _ = twice;
    }

    /// Arbitrary (including non-ASCII) input never panics and non-word
    /// input is returned unchanged.
    #[test]
    fn stemmer_handles_arbitrary_strings(word in ".{0,24}") {
        let out = stem(&word);
        if !word.bytes().all(|b| b.is_ascii_lowercase()) {
            prop_assert_eq!(out, word);
        }
    }

    /// Tokenizer output always respects the configured length bounds and
    /// contains only token characters.
    #[test]
    fn tokenizer_respects_bounds(text in ".{0,200}", min_len in 1usize..4, max_len in 4usize..20) {
        let t = Tokenizer::new(TokenizerConfig { min_len, max_len, keep_digits: true });
        for tok in t.tokenize(&text) {
            let n = tok.chars().count();
            prop_assert!(n >= min_len && n <= max_len, "token {tok:?} length {n}");
            prop_assert!(tok.chars().all(|c| c.is_alphabetic() || c.is_ascii_digit()));
            // Lower-casing is a fixpoint (some uppercase code points, e.g.
            // mathematical letters, simply have no lowercase mapping).
            prop_assert_eq!(tok.to_lowercase(), tok.clone(), "not lowercase-stable");
        }
    }

    /// Tokenization is insensitive to surrounding whitespace and
    /// concatenation with delimiters: tokens(a) ++ tokens(b) == tokens(a + " " + b).
    #[test]
    fn tokenizer_concatenation(a in "[a-z ]{0,40}", b in "[a-z ]{0,40}") {
        let t = Tokenizer::default();
        let mut combined = t.tokenize(&a);
        combined.extend(t.tokenize(&b));
        prop_assert_eq!(combined, t.tokenize(&format!("{a} {b}")));
    }

    /// The analyzer's term counts always sum to the token total, and every
    /// literal stop word is filtered before stemming (a *stemmed* form may
    /// coincide with a stop word — "tos" → "to" — which is Lucene's
    /// behavior too, since the stop filter runs first).
    #[test]
    fn analyzer_counts_consistent(text in "[a-zA-Z ,.]{0,200}") {
        let a = Analyzer::standard();
        let tc = a.term_counts(&text);
        let total: u32 = tc.counts.values().sum();
        prop_assert_eq!(total as usize, tc.len);
    }

    /// Feeding a stop word alone always yields nothing.
    #[test]
    fn stop_words_always_filtered(idx in 0usize..33) {
        let a = Analyzer::standard();
        let stops = StopWords::lucene_english();
        let word = sprite_text::LUCENE_ENGLISH[idx];
        prop_assert!(stops.contains(word));
        prop_assert!(a.analyze(word).is_empty(), "stop word {word:?} survived");
    }
}
