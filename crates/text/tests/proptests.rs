//! Property-style tests for the text pipeline.
//!
//! Formerly `proptest` suites; now deterministic seeded loops over
//! `DetRng`-generated inputs so the workspace builds with an empty registry.

use sprite_text::{stem, Analyzer, StopWords, Tokenizer, TokenizerConfig};
use sprite_util::{derive_rng, DetRng};

fn rng(label: &str) -> DetRng {
    derive_rng(0x7E47, label)
}

fn lowercase_word(rng: &mut DetRng, max_len: usize) -> String {
    let len = rng.gen_range(1..=max_len);
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26) as u8) as char)
        .collect()
}

fn string_from(rng: &mut DetRng, pool: &[char], max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| pool[rng.gen_range(0..pool.len())])
        .collect()
}

/// Character pool mixing ASCII, punctuation, digits, and multi-byte
/// letters — stands in for proptest's arbitrary `.{0,n}` strings.
const MIXED: &[char] = &[
    'a', 'b', 'z', 'Q', 'X', '0', '7', ' ', '\t', '\n', '-', '_', '.', ',', '!', '#', 'é', 'ß',
    'λ', '中', '💡', 'Ω', 'ñ', '\'', '"', '/',
];

/// The stemmer never panics, never produces a longer word (modulo the one
/// 'e' step 1b can add), and its output is stable ASCII for ASCII input.
#[test]
fn stemmer_total_and_shrinking() {
    let mut r = rng("stem-shrink");
    for _ in 0..2000 {
        let word = lowercase_word(&mut r, 20);
        let out = stem(&word);
        assert!(
            out.len() <= word.len() + 1,
            "step 1b can add at most one 'e'"
        );
        assert!(out.bytes().all(|b| b.is_ascii_lowercase()));
        assert!(!out.is_empty());
    }
}

/// Stemming reaches a fixpoint within three applications.
#[test]
fn stemmer_reaches_fixpoint() {
    let mut r = rng("stem-fixpoint");
    for _ in 0..2000 {
        let word = lowercase_word(&mut r, 20);
        let once = stem(&word);
        let twice = stem(&once);
        let thrice = stem(&twice);
        assert_eq!(&thrice, &stem(&thrice), "no fixpoint after three passes");
    }
}

/// Arbitrary (including non-ASCII) input never panics and non-word
/// input is returned unchanged.
#[test]
fn stemmer_handles_arbitrary_strings() {
    let mut r = rng("stem-arbitrary");
    for _ in 0..2000 {
        let word = string_from(&mut r, MIXED, 24);
        let out = stem(&word);
        if !word.bytes().all(|b| b.is_ascii_lowercase()) {
            assert_eq!(out, word);
        }
    }
}

/// Tokenizer output always respects the configured length bounds and
/// contains only token characters.
#[test]
fn tokenizer_respects_bounds() {
    let mut r = rng("tok-bounds");
    for _ in 0..500 {
        let text = string_from(&mut r, MIXED, 200);
        let min_len = r.gen_range(1..4);
        let max_len = r.gen_range(4..20);
        let t = Tokenizer::new(TokenizerConfig {
            min_len,
            max_len,
            keep_digits: true,
        });
        for tok in t.tokenize(&text) {
            let n = tok.chars().count();
            assert!(n >= min_len && n <= max_len, "token {tok:?} length {n}");
            assert!(tok.chars().all(|c| c.is_alphabetic() || c.is_ascii_digit()));
            // Lower-casing is a fixpoint (some uppercase code points, e.g.
            // mathematical letters, simply have no lowercase mapping).
            assert_eq!(tok.to_lowercase(), tok, "not lowercase-stable");
        }
    }
}

/// Tokenization is insensitive to surrounding whitespace and
/// concatenation with delimiters: tokens(a) ++ tokens(b) == tokens(a + " " + b).
#[test]
fn tokenizer_concatenation() {
    const POOL: &[char] = &[
        'a', 'b', 'c', 'm', 'q', 'x', 'z', ' ', ' ', ' ', // spaces weighted up
    ];
    let mut r = rng("tok-concat");
    let t = Tokenizer::default();
    for _ in 0..500 {
        let a = string_from(&mut r, POOL, 40);
        let b = string_from(&mut r, POOL, 40);
        let mut combined = t.tokenize(&a);
        combined.extend(t.tokenize(&b));
        assert_eq!(combined, t.tokenize(&format!("{a} {b}")));
    }
}

/// The analyzer's term counts always sum to the token total, and every
/// literal stop word is filtered before stemming (a *stemmed* form may
/// coincide with a stop word — "tos" → "to" — which is Lucene's
/// behavior too, since the stop filter runs first).
#[test]
fn analyzer_counts_consistent() {
    const POOL: &[char] = &[
        'a', 'e', 'i', 'n', 'r', 's', 't', 'B', 'T', 'W', ' ', ' ', ',', '.',
    ];
    let mut r = rng("analyzer-counts");
    let a = Analyzer::standard();
    for _ in 0..500 {
        let text = string_from(&mut r, POOL, 200);
        let tc = a.term_counts(&text);
        let total: u32 = tc.counts.values().sum();
        assert_eq!(total as usize, tc.len);
    }
}

/// Feeding a stop word alone always yields nothing.
#[test]
fn stop_words_always_filtered() {
    let a = Analyzer::standard();
    let stops = StopWords::lucene_english();
    for word in sprite_text::LUCENE_ENGLISH {
        assert!(stops.contains(word));
        assert!(a.analyze(word).is_empty(), "stop word {word:?} survived");
    }
}
