//! SPRITE system configuration.

use sprite_ir::Similarity;

/// Tunables of a SPRITE deployment. Defaults are the paper's §6.2 settings.
#[derive(Clone, Debug)]
pub struct SpriteConfig {
    /// Global index terms published when a document is first shared
    /// (`F = 5`, §6.2) — the top-F most frequent terms.
    pub initial_terms: usize,
    /// New terms admitted per learning iteration (5, §6.2). The term budget
    /// grows by this amount each iteration until [`Self::max_terms`]; after
    /// that, learning only *replaces* terms (§6.3's Figure 4(c) setup).
    pub terms_per_iteration: usize,
    /// Hard cap on global index terms per document (20 by default; 30 in
    /// the pattern-change experiment; "say, 30" in §5).
    pub max_terms: usize,
    /// Queries an indexing peer keeps in its history, most recent first
    /// ("each indexing peer maintains only the most recently issued
    /// queries", §3).
    pub query_cache_capacity: usize,
    /// The "sufficiently large N" of §4 used for IDF in the distributed
    /// setting, where the true corpus size is unknowable.
    pub assumed_n: f64,
    /// Index replication degree (§7): 1 = no replication; `r` stores each
    /// term's inverted list on the owner plus `r − 1` successors.
    pub replication: usize,
    /// Similarity formula for distributed ranking. The paper uses the
    /// simplified Lee et al. "second method".
    pub similarity: Similarity,
    /// Term-scoring variant for learning (ablation; default the paper's
    /// combined `qScore · log QF`).
    pub score_mode: crate::learn::ScoreMode,
    /// IDF source for distributed ranking (ablation; default the paper's
    /// indexed document frequency).
    pub idf_mode: IdfMode,
    /// Coalesce bulk publication and replication transfers bound for the
    /// same indexing peer into one batched message each (default on).
    /// Batching is pure message-count savings: routing lookups, index
    /// contents, retrieval results, and total payload bytes are
    /// bit-identical to the unbatched path (records are encoded
    /// independently, so a batch's payload is exactly the sum of its
    /// records' wire sizes).
    pub batched_publish: bool,
    /// Store inverted lists as delta-gap-compressed blocks (default on).
    /// Purely an in-memory representation change: readers decode on the
    /// fly, so ranking, replication, and hand-over are bit-identical to
    /// plain storage (enforced by the `storage/packed` determinism stage
    /// in `sprite-audit`). Required headroom for the huge scale tier.
    pub packed_postings: bool,
    /// Defer document deletion at indexing peers (default on): removal
    /// records mark entries dead instead of rewriting the stored list,
    /// and the next `maintenance_round` reclaims them lazily. Off, the
    /// delete path rewrites lists eagerly — same removal messages
    /// billed at delete time, no cleanup work later. Either way a
    /// deleted document is invisible to queries the moment the removal
    /// record lands.
    pub lazy_tombstones: bool,
}

/// Which document frequency feeds the IDF during distributed ranking.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IdfMode {
    /// The paper's surrogate: the *indexed* document frequency `n′_k`
    /// (length of the retrieved inverted list).
    #[default]
    Indexed,
    /// Oracle leak of the exact corpus document frequency `n_k` — an upper
    /// bound showing how much the surrogate costs (§3 argues: nothing).
    TrueDf,
}

impl Default for SpriteConfig {
    fn default() -> Self {
        SpriteConfig {
            initial_terms: 5,
            terms_per_iteration: 5,
            max_terms: 20,
            query_cache_capacity: 4096,
            assumed_n: 1.0e6,
            replication: 1,
            similarity: Similarity::LeeSecond,
            score_mode: crate::learn::ScoreMode::Full,
            idf_mode: IdfMode::Indexed,
            batched_publish: true,
            packed_postings: true,
            lazy_tombstones: true,
        }
    }
}

impl SpriteConfig {
    /// The basic-eSearch baseline (§6): a *static* index of the `k` most
    /// frequent terms — i.e. SPRITE with all terms published up front and no
    /// learning.
    #[must_use]
    pub fn esearch(k: usize) -> Self {
        SpriteConfig {
            initial_terms: k,
            terms_per_iteration: 0,
            max_terms: k,
            ..SpriteConfig::default()
        }
    }

    /// True when this configuration never learns (a static index).
    #[must_use]
    pub fn is_static(&self) -> bool {
        self.terms_per_iteration == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SpriteConfig::default();
        assert_eq!(c.initial_terms, 5);
        assert_eq!(c.terms_per_iteration, 5);
        assert_eq!(c.max_terms, 20);
        assert_eq!(c.replication, 1);
        assert!(!c.is_static());
        assert_eq!(c.similarity, Similarity::LeeSecond);
        assert!(c.batched_publish, "batched publication is the default");
        assert!(c.packed_postings, "compressed postings are the default");
        assert!(c.lazy_tombstones, "lazy deletion is the default");
    }

    #[test]
    fn esearch_is_static() {
        let c = SpriteConfig::esearch(20);
        assert!(c.is_static());
        assert_eq!(c.initial_terms, 20);
        assert_eq!(c.max_terms, 20);
    }
}
