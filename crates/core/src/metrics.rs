//! Deployment health metrics: load distribution across indexing peers.
//!
//! §7 of the paper discusses two imbalance scenarios — peers stuck with
//! popular terms and peers responsible for many terms. This module
//! measures both so operators (and the load-balance study) can see them:
//! per-peer index/load snapshots and a Gini coefficient summarizing how
//! unevenly the index is spread.

use sprite_util::RingId;

use crate::system::SpriteSystem;

/// One indexing peer's load snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct PeerLoad {
    /// The peer.
    pub peer: RingId,
    /// Distinct terms it indexes.
    pub terms: usize,
    /// Inverted-list entries it stores.
    pub entries: usize,
    /// Queries in its history cache.
    pub cached_queries: usize,
    /// Its hottest term's indexed document frequency.
    pub max_term_df: usize,
}

/// Aggregate load report.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Per-peer snapshots, ring order (peers with no state included).
    pub peers: Vec<PeerLoad>,
    /// Gini coefficient of entry counts (0 = perfectly even, →1 = all load
    /// on one peer).
    pub entry_gini: f64,
    /// Largest indexed document frequency anywhere (the §7 "hot term").
    pub hottest_df: usize,
}

/// Gini coefficient of a non-negative sample (0 for empty/all-zero input).
#[must_use]
pub fn gini(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let total: f64 = v.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    // Standard formula over sorted values: G = (2·Σ i·xᵢ)/(n·Σx) − (n+1)/n,
    // with i 1-based.
    let weighted: f64 = v
        .iter()
        .enumerate()
        .map(|(i, x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
}

impl SpriteSystem {
    /// Snapshot every alive peer's indexing load.
    #[must_use]
    pub fn load_report(&self) -> LoadReport {
        let mut peers = Vec::with_capacity(self.peers().len());
        let mut hottest = 0usize;
        for &p in self.peers() {
            let (terms, entries, cached, max_df) = match self.indexing_state(p) {
                Some(st) => {
                    let mut terms = 0;
                    let mut max_df = 0;
                    for (_, df) in st.term_dfs() {
                        terms += 1;
                        max_df = max_df.max(df);
                    }
                    (terms, st.total_entries(), st.cached_queries(), max_df)
                }
                None => (0, 0, 0, 0),
            };
            hottest = hottest.max(max_df);
            peers.push(PeerLoad {
                peer: p,
                terms,
                entries,
                cached_queries: cached,
                max_term_df: max_df,
            });
        }
        let entry_counts: Vec<f64> = peers.iter().map(|p| p.entries as f64).collect();
        LoadReport {
            entry_gini: gini(&entry_counts),
            hottest_df: hottest,
            peers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpriteConfig;
    use sprite_corpus::{CorpusConfig, SyntheticCorpus};

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
        assert!((gini(&[5.0, 5.0, 5.0, 5.0])).abs() < 1e-12, "even load");
        // All load on one of many peers → close to 1.
        let mut v = vec![0.0; 100];
        v[0] = 42.0;
        assert!(gini(&v) > 0.95);
    }

    #[test]
    fn gini_is_scale_invariant() {
        let a = gini(&[1.0, 2.0, 3.0, 4.0]);
        let b = gini(&[10.0, 20.0, 30.0, 40.0]);
        assert!((a - b).abs() < 1e-12);
        assert!(a > 0.0 && a < 1.0);
    }

    #[test]
    fn load_report_accounts_every_entry() {
        let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(3));
        let mut sys = SpriteSystem::build(sc.corpus().clone(), 16, SpriteConfig::default(), 3);
        sys.publish_all();
        let report = sys.load_report();
        assert_eq!(report.peers.len(), 16);
        let total: usize = report.peers.iter().map(|p| p.entries).sum();
        assert_eq!(total, sys.total_index_entries());
        assert!(report.hottest_df >= 1);
        assert!(
            report.entry_gini > 0.0,
            "hash placement is never perfectly even"
        );
        assert!(report.entry_gini < 1.0);
    }

    #[test]
    fn advisory_reduces_hottest_df() {
        let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(3));
        let mut sys = SpriteSystem::build(sc.corpus().clone(), 16, SpriteConfig::default(), 3);
        sys.publish_all();
        let before = sys.load_report().hottest_df;
        if before > 1 {
            sys.hot_term_advisory(before - 1);
            let after = sys.load_report().hottest_df;
            assert!(after < before, "advisory must cool the hottest term");
        }
    }
}
