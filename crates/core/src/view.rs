//! The read-only query fast path.
//!
//! [`QueryView`] is a frozen snapshot of a [`crate::SpriteSystem`]: it
//! borrows the ring, the indexing-peer states, and the precomputed
//! term→ring positions immutably, so any number of threads can rank
//! queries against it concurrently. It exists because evaluation is
//! logically read-only, yet `issue_query` takes `&mut self` for three
//! pieces of bookkeeping the *measurement* phase does not want anyway:
//!
//! * **query caching / `query_seq`** — evaluation queries are probes of
//!   current quality, not training examples; caching them would leak the
//!   test set into the next learning iteration (train/test hygiene);
//! * **the round-robin issue cursor** — the view takes an explicit `from`
//!   peer per query instead, so the issuing peer depends only on the
//!   query's position in the workload, not on global mutable state;
//! * **`NetStats` charging** — the view charges an identical message bill
//!   into a caller-owned [`NetStats`] delta; per-query deltas merged in
//!   input order reproduce the sequential totals bit-for-bit because every
//!   `NetStats` field is a sum or a max.
//!
//! Ranking matches [`crate::SpriteSystem::issue_query_from`] exactly —
//! same routing walk, same per-keyword fetch charges, same replica
//! failover, same floating-point accumulation order — so hit lists and
//! scores are bit-identical to the sequential path. [`RankScratch`] keeps
//! the per-thread accumulation maps alive across queries so the hot loop
//! stops reallocating them.

use std::collections::HashMap;

use sprite_chord::trace::{self, NullTrace, Phase, TraceSink};
use sprite_chord::{ChordNet, MsgKind, NetStats, RouteMemo};
use sprite_ir::{Corpus, DocId, Hit, Query, Similarity, TermId};
use sprite_util::RingId;

use crate::config::{IdfMode, SpriteConfig};
use crate::peer::IndexingState;
use crate::postings::PostingList;
use crate::trace::{KeywordTrace, QueryTrace};

/// Reusable per-thread ranking buffers (see module docs), dense over the
/// document space: one accumulator slot per [`DocId`] with an epoch stamp,
/// so starting a query is O(1), clearing is implicit, and the per-posting
/// hot loop is two array writes instead of two hash-map probes. The
/// `touched` list remembers which documents this query reached; the final
/// hit sort is a total order over `(score, doc)`, so ranked lists are
/// bit-identical to the historical hash-map accumulation (scores are
/// summed per document in the same posting order either way). The
/// contents never survive a query — only the allocations do.
#[derive(Debug, Default)]
pub struct RankScratch {
    dot: Vec<f64>,
    norm_sq: Vec<f64>,
    meta: Vec<u32>,
    epoch: Vec<u32>,
    current: u32,
    touched: Vec<DocId>,
    hits: Vec<Hit>,
}

impl RankScratch {
    /// Fresh buffers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a new query over a corpus of `docs` documents: bump the epoch
    /// (stale slots die wholesale) and size the dense arrays on first use.
    fn begin(&mut self, docs: usize) {
        self.touched.clear();
        self.hits.clear();
        if self.epoch.len() < docs {
            self.dot.resize(docs, 0.0);
            self.norm_sq.resize(docs, 0.0);
            self.meta.resize(docs, 0);
            self.epoch.resize(docs, 0);
        }
        if self.current == u32::MAX {
            // Epoch wrap: one O(docs) reset every u32::MAX queries.
            self.epoch.fill(0);
            self.current = 0;
        }
        self.current += 1;
    }

    /// The dense slot of `doc`, zeroed on its first touch this query.
    #[inline]
    fn slot(&mut self, doc: DocId) -> usize {
        let i = doc.index();
        if self.epoch[i] != self.current {
            self.epoch[i] = self.current;
            self.dot[i] = 0.0;
            self.norm_sq[i] = 0.0;
            self.meta[i] = 0;
            self.touched.push(doc);
        }
        i
    }
}

/// An immutable snapshot of a SPRITE deployment for concurrent querying.
/// Obtain one with [`crate::SpriteSystem::query_view`]; it freezes the
/// system for its lifetime (the borrow checker enforces that no learning
/// or churn interleaves with a fan-out).
#[derive(Clone, Copy, Debug)]
pub struct QueryView<'a> {
    cfg: &'a SpriteConfig,
    net: &'a ChordNet,
    indexing: &'a HashMap<u128, IndexingState>,
    corpus: &'a Corpus,
    peers: &'a [RingId],
    term_pos: &'a [Option<RingId>],
    true_dfs: Option<&'a [u32]>,
}

impl<'a> QueryView<'a> {
    pub(crate) fn new(
        cfg: &'a SpriteConfig,
        net: &'a ChordNet,
        indexing: &'a HashMap<u128, IndexingState>,
        corpus: &'a Corpus,
        peers: &'a [RingId],
        term_pos: &'a [Option<RingId>],
        true_dfs: Option<&'a [u32]>,
    ) -> Self {
        QueryView {
            cfg,
            net,
            indexing,
            corpus,
            peers,
            term_pos,
            true_dfs,
        }
    }

    /// Alive peers in ring order — the pool callers pick an explicit
    /// issuing peer per query from this list.
    #[must_use]
    pub fn peers(&self) -> &'a [RingId] {
        self.peers
    }

    /// Ring position of a term: the snapshot's precomputed position when
    /// warmed, else hashed on the fly (pure, so still deterministic).
    #[must_use]
    pub fn term_ring(&self, term: TermId) -> RingId {
        self.term_pos[term.index()]
            .unwrap_or_else(|| RingId::hash_term(self.corpus.vocab().term(term)))
    }

    /// Rank `query` issued from peer `from`, charging the message bill into
    /// `stats`. Identical results and charges to
    /// [`crate::SpriteSystem::issue_query_from`], minus the query-caching
    /// side effects (see the module docs for why those are dropped here).
    #[must_use]
    pub fn query(
        &self,
        from: RingId,
        query: &Query,
        k: usize,
        stats: &mut NetStats,
        scratch: &mut RankScratch,
    ) -> Vec<Hit> {
        self.query_impl(
            from,
            query,
            k,
            stats,
            scratch,
            0,
            &mut NullTrace,
            None,
            None,
        )
    }

    /// Resolve every keyword route of a query batch once, up front: the
    /// distinct `(issuing peer, keyword key)` pairs are each walked a
    /// single time in one sequential pass (routing a frozen ring is
    /// read-only). [`QueryView::query_batched`] then replays the recorded
    /// outcomes — and their exact message bills — instead of re-walking
    /// keywords shared across in-flight queries.
    #[must_use]
    pub fn resolve_routes<'q, I>(&self, jobs: I) -> RouteMemo
    where
        I: IntoIterator<Item = (RingId, &'q Query)>,
    {
        let mut pairs: Vec<(RingId, RingId)> = Vec::new();
        for (from, query) in jobs {
            if query.is_empty() || !self.net.contains(from) {
                continue; // the query path rejects these before routing
            }
            for (term, _) in query.term_counts() {
                pairs.push((from, self.term_ring(term)));
            }
        }
        RouteMemo::build(self.net, &pairs)
    }

    /// [`QueryView::query`] through a prebuilt [`RouteMemo`] — the batched
    /// pipeline's per-query entry point. Results and charges are
    /// bit-identical to the unmemoized call (enforced by the determinism
    /// audit's `query/batched` stage and the bench's `bit_identical`
    /// flag); pairs missing from the memo fall back to a fresh walk.
    #[must_use]
    pub fn query_batched(
        &self,
        from: RingId,
        query: &Query,
        k: usize,
        memo: &RouteMemo,
        stats: &mut NetStats,
        scratch: &mut RankScratch,
    ) -> Vec<Hit> {
        self.query_impl(
            from,
            query,
            k,
            stats,
            scratch,
            0,
            &mut NullTrace,
            None,
            Some(memo),
        )
    }

    /// [`QueryView::query`] with trace events emitted into `sink` under
    /// [`Phase::Query`]. Results and charges are bit-identical to the
    /// untraced call — tracing is observation only.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn query_traced<T: TraceSink>(
        &self,
        from: RingId,
        query: &Query,
        k: usize,
        stats: &mut NetStats,
        scratch: &mut RankScratch,
        tick: u64,
        sink: &mut T,
    ) -> Vec<Hit> {
        self.query_impl(from, query, k, stats, scratch, tick, sink, None, None)
    }

    /// [`QueryView::query`] that additionally builds the per-keyword
    /// [`QueryTrace`] report (routes, owner hits, failover paths, timeouts).
    /// Results and charges are bit-identical to the untraced call.
    #[must_use]
    pub fn query_trace(
        &self,
        from: RingId,
        query: &Query,
        k: usize,
        stats: &mut NetStats,
        scratch: &mut RankScratch,
    ) -> (Vec<Hit>, QueryTrace) {
        let mut qt = QueryTrace::default();
        let hits = self.query_impl(
            from,
            query,
            k,
            stats,
            scratch,
            0,
            &mut NullTrace,
            Some(&mut qt),
            None,
        );
        (hits, qt)
    }

    /// The single query implementation behind every public flavor. When the
    /// sink is [`NullTrace`] and no [`QueryTrace`] is requested, every
    /// tracing branch is compile-time dead or `qt.is_some()`-guarded, so
    /// the hot evaluation path pays nothing.
    #[allow(clippy::too_many_arguments)]
    fn query_impl<T: TraceSink>(
        &self,
        from: RingId,
        query: &Query,
        k: usize,
        stats: &mut NetStats,
        scratch: &mut RankScratch,
        tick: u64,
        sink: &mut T,
        mut qt: Option<&mut QueryTrace>,
        memo: Option<&RouteMemo>,
    ) -> Vec<Hit> {
        if query.is_empty() || !self.net.contains(from) {
            return Vec::new();
        }
        scratch.begin(self.corpus.len());
        let msgs_before = stats.total_messages();
        let mut replicas_probed: u64 = 0;
        let n = self.cfg.assumed_n;
        for (term, qtf) in query.term_counts() {
            let key = self.term_ring(term);
            let need_path = T::ENABLED || qt.is_some();
            let dead_before = stats.count(MsgKind::Failed) + stats.count(MsgKind::Timeout);
            // Resolve the keyword's indexing peer. The path-carrying probe
            // charges exactly like the lite one; only traced callers pay
            // the allocation.
            let resolved = if need_path {
                self.net
                    .probe_full(from, key, stats)
                    .map(|l| (l.owner, l.hops, l.path))
            } else if let Some(memo) = memo {
                self.net
                    .probe_via(memo, from, key, stats)
                    .map(|l| (l.owner, l.hops, Vec::new()))
            } else {
                self.net
                    .probe(from, key, stats)
                    .map(|l| (l.owner, l.hops, Vec::new()))
            };
            let (owner, hops, route) = match resolved {
                Ok(r) => r,
                Err(_) => {
                    // §7 degradation, mirroring `issue_query_from`: charge
                    // the abandoned retry and drop the keyword.
                    trace::charge(stats, sink, tick, from, MsgKind::Timeout, Phase::Query);
                    if let Some(q) = qt.as_deref_mut() {
                        let timeouts = stats.count(MsgKind::Failed) + stats.count(MsgKind::Timeout)
                            - dead_before;
                        q.keywords.push(KeywordTrace {
                            term,
                            key,
                            route: Vec::new(),
                            owner: None,
                            hops: 0,
                            owner_hit: false,
                            failover: Vec::new(),
                            served_by: None,
                            timeouts,
                            entries: 0,
                        });
                    }
                    continue;
                }
            };
            if T::ENABLED {
                for &peer in route.iter().skip(1) {
                    sink.emit(trace::Event {
                        tick,
                        peer,
                        kind: MsgKind::LookupHop,
                        phase: Phase::Query,
                    });
                }
                sink.lookup_done(hops);
            }
            trace::charge(stats, sink, tick, owner, MsgKind::QueryFetch, Phase::Query);
            let mut postings: Option<&PostingList> =
                self.indexing.get(&owner.0).and_then(|st| st.postings(term));
            // An absent list bills as the canonical empty response: one
            // zero-count byte.
            trace::charge_bytes(
                stats,
                sink,
                MsgKind::QueryFetch,
                postings.map_or(1, PostingList::wire_size) as u64,
            );
            let owner_hit = postings.is_some_and(|p| !p.is_empty());
            let mut failover: Vec<RingId> = Vec::new();
            let mut served_by = if owner_hit { Some(owner) } else { None };
            // Failover when the routed peer holds no list (it may have
            // taken over an arc after a failure, §7): same routed
            // successor-chain walk as the sequential path, charged into
            // the caller's delta.
            if !owner_hit && self.cfg.replication > 1 {
                let replicas = self.net.replicas_from_owner_traced(
                    owner,
                    self.cfg.replication,
                    stats,
                    Phase::Query,
                    tick,
                    sink,
                );
                for peer in replicas.into_iter().skip(1) {
                    trace::charge(stats, sink, tick, peer, MsgKind::QueryFetch, Phase::Query);
                    replicas_probed += 1;
                    if qt.is_some() {
                        failover.push(peer);
                    }
                    let list: Option<&PostingList> = self
                        .indexing
                        .get(&peer.0)
                        .and_then(|rep| rep.postings(term));
                    trace::charge_bytes(
                        stats,
                        sink,
                        MsgKind::QueryFetch,
                        list.map_or(1, PostingList::wire_size) as u64,
                    );
                    if list.is_some_and(|p| !p.is_empty()) {
                        postings = list;
                        served_by = Some(peer);
                        break;
                    }
                }
            }
            let n_entries = postings.map_or(0, PostingList::len);
            if let Some(q) = qt.as_deref_mut() {
                let timeouts =
                    stats.count(MsgKind::Failed) + stats.count(MsgKind::Timeout) - dead_before;
                q.keywords.push(KeywordTrace {
                    term,
                    key,
                    route,
                    owner: Some(owner),
                    hops,
                    owner_hit,
                    failover,
                    served_by,
                    timeouts,
                    entries: n_entries,
                });
            }
            // Accumulate immediately (§4 ranking). Terms arrive in the same
            // sorted order as the sequential path's fetch list, so the
            // floating-point addition order per document is identical.
            let df = match self.cfg.idf_mode {
                IdfMode::Indexed => n_entries,
                IdfMode::TrueDf => self.true_dfs.map_or(0, |d| d[term.index()] as usize),
            };
            if df == 0 || n_entries == 0 {
                continue;
            }
            let idf = (n / df as f64).ln();
            if idf <= 0.0 {
                continue;
            }
            let w_q = f64::from(qtf) * idf;
            for e in postings.expect("n_entries > 0").iter() {
                let w_d = if e.doc_len == 0 {
                    0.0
                } else {
                    (f64::from(e.tf) / f64::from(e.doc_len)) * idf
                };
                let s = scratch.slot(e.doc);
                scratch.dot[s] += w_q * w_d;
                scratch.norm_sq[s] += w_d * w_d;
                scratch.meta[s] = e.distinct;
            }
        }
        for ti in 0..scratch.touched.len() {
            let doc = scratch.touched[ti];
            let i = doc.index();
            let num = scratch.dot[i];
            let denom = match self.cfg.similarity {
                Similarity::LeeSecond => f64::from(scratch.meta[i]).sqrt(),
                Similarity::CosineTfIdf => scratch.norm_sq[i].sqrt(),
            };
            let score = if denom > 0.0 { num / denom } else { 0.0 };
            scratch.hits.push(Hit { doc, score });
        }
        // Rank by (score desc, doc asc) — a *strict* total order (scores
        // are finite and docs distinct), so selecting the top k first and
        // sorting only that prefix returns exactly what sorting everything
        // and truncating would: same set, same order, same bits.
        let cmp = |a: &Hit, b: &Hit| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.doc.cmp(&b.doc))
        };
        if k > 0 && scratch.hits.len() > k {
            scratch.hits.select_nth_unstable_by(k - 1, cmp);
            scratch.hits.truncate(k);
        }
        scratch.hits.sort_by(cmp);
        scratch.hits.truncate(k);
        let hits = scratch.hits.clone();
        if T::ENABLED {
            sink.query_done(
                stats.total_messages() - msgs_before,
                replicas_probed,
                hits.len(),
            );
        }
        if let Some(q) = qt {
            q.from = from;
            q.messages = stats.total_messages() - msgs_before;
            q.rank_size = hits.len();
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SpriteConfig;
    use crate::system::SpriteSystem;
    use sprite_corpus::{CorpusConfig, SyntheticCorpus};

    fn tiny_system(cfg: SpriteConfig) -> SpriteSystem {
        let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(17));
        let mut sys = SpriteSystem::build(sc.corpus().clone(), 16, cfg, 17);
        sys.publish_all();
        sys
    }

    fn probe_queries(sys: &SpriteSystem) -> Vec<Query> {
        // A mix of single-term, multi-term, and unknown-term queries over
        // published and unpublished vocabulary.
        let p0 = sys.published_terms(DocId(0)).to_vec();
        let p3 = sys.published_terms(DocId(3)).to_vec();
        vec![
            Query::new(vec![p0[0]]),
            Query::new(vec![p0[0], p0[1], p3[0]]),
            Query::new(vec![p3[1], p3[1], p0[2]]),
            Query::new(vec![TermId(0), TermId(1), TermId(2)]),
        ]
    }

    #[test]
    fn view_matches_issue_query_from_exactly() {
        for cfg in [
            SpriteConfig::default(),
            SpriteConfig {
                replication: 3,
                ..SpriteConfig::default()
            },
            SpriteConfig {
                similarity: Similarity::CosineTfIdf,
                idf_mode: IdfMode::TrueDf,
                ..SpriteConfig::default()
            },
        ] {
            let mut sys = tiny_system(cfg);
            let queries = probe_queries(&sys);
            let peers = sys.peers().to_vec();
            for (i, q) in queries.iter().enumerate() {
                let from = peers[(i * 3) % peers.len()];
                // View first (read-only), then the mutating reference path.
                let mut delta = NetStats::new();
                let mut scratch = RankScratch::new();
                let view_hits = {
                    let view = sys.query_view();
                    view.query(from, q, 20, &mut delta, &mut scratch)
                };
                sys.net_mut().reset_stats();
                let seq_hits = sys.issue_query_from(from, q, 20);
                assert_eq!(view_hits.len(), seq_hits.len(), "query {i}");
                for (a, b) in view_hits.iter().zip(&seq_hits) {
                    assert_eq!(a.doc, b.doc, "query {i}");
                    assert_eq!(a.score.to_bits(), b.score.to_bits(), "query {i}");
                }
                assert_eq!(&delta, sys.net().stats(), "charges differ, query {i}");
            }
        }
    }

    #[test]
    fn batched_query_matches_plain_query_bit_for_bit() {
        // Across configurations (incl. replication failover) and a peer
        // set with failures, the memoized batched path must reproduce the
        // plain per-query path exactly: same hits, same score bits, same
        // charged stats.
        for cfg in [
            SpriteConfig::default(),
            SpriteConfig {
                replication: 3,
                ..SpriteConfig::default()
            },
        ] {
            let mut sys = tiny_system(cfg);
            sys.fail_random_peers(2, 5);
            let queries = probe_queries(&sys);
            let peers = sys.peers().to_vec();
            let view = sys.query_view();
            let memo = view.resolve_routes(
                queries
                    .iter()
                    .enumerate()
                    .map(|(i, q)| (peers[(i * 3) % peers.len()], q)),
            );
            assert!(!memo.is_empty(), "probe queries must memoize routes");
            for (i, q) in queries.iter().enumerate() {
                let from = peers[(i * 3) % peers.len()];
                let mut d_plain = NetStats::new();
                let mut d_batched = NetStats::new();
                let mut s_plain = RankScratch::new();
                let mut s_batched = RankScratch::new();
                let plain = view.query(from, q, 20, &mut d_plain, &mut s_plain);
                let batched =
                    view.query_batched(from, q, 20, &memo, &mut d_batched, &mut s_batched);
                assert_eq!(plain.len(), batched.len(), "query {i}");
                for (a, b) in plain.iter().zip(&batched) {
                    assert_eq!(a.doc, b.doc, "query {i}");
                    assert_eq!(a.score.to_bits(), b.score.to_bits(), "query {i}");
                }
                assert_eq!(d_plain, d_batched, "charges differ, query {i}");
            }
        }
    }

    #[test]
    fn view_does_not_cache_queries() {
        let mut sys = tiny_system(SpriteConfig::default());
        let t = sys.published_terms(DocId(0))[0];
        let key = sys.term_ring(t);
        let peer = sys.net().oracle_owner(key).expect("non-empty ring");
        let from = sys.peers()[0];
        let before = sys
            .indexing_state(peer)
            .map_or(0, IndexingState::cached_queries);
        let mut delta = NetStats::new();
        let mut scratch = RankScratch::new();
        let view = sys.query_view();
        let hits = view.query(from, &Query::new(vec![t]), 10, &mut delta, &mut scratch);
        assert!(!hits.is_empty());
        let after = sys
            .indexing_state(peer)
            .map_or(0, IndexingState::cached_queries);
        assert_eq!(before, after, "evaluation must not pollute query caches");
    }

    #[test]
    fn unwarmed_terms_hash_to_the_same_position() {
        let mut sys = tiny_system(SpriteConfig::default());
        let t = sys.published_terms(DocId(2))[0];
        let fresh = {
            let view = sys.query_view();
            view.term_ring(t) // not warmed: computed via the pure fallback
        };
        assert_eq!(fresh, sys.term_ring(t));
    }
}
