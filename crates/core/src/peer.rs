//! Per-peer state: the two roles of §3.
//!
//! Every SPRITE peer is simultaneously an **indexing peer** (inverted lists
//! for the terms the overlay assigns to it, plus a bounded history of recent
//! queries) and an **owner peer** (per shared document: the published global
//! index terms and the per-term learning statistics of §5.1).

use std::collections::{HashMap, VecDeque};

use sprite_ir::{DocId, Query, TermId};
use sprite_util::{varint_len, RingId, WireSize};

use crate::postings::PostingList;

/// One inverted-list entry, carrying exactly the metadata §5.1 lists:
/// owner address, document id, term frequency, document length — plus the
/// distinct-term count the §4 similarity normalization needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexEntry {
    /// The document containing the term.
    pub doc: DocId,
    /// The owner peer's address (for retrieval and liveness checks).
    pub owner: RingId,
    /// Raw term frequency in the document.
    pub tf: u32,
    /// Document length (token count).
    pub doc_len: u32,
    /// Distinct-term count ("number of terms in Dᵢ", §4).
    pub distinct: u32,
}

impl WireSize for IndexEntry {
    /// Canonical §5.1 record: varint document id, the owner peer's raw
    /// 16-byte ring address, then varint term frequency, document length,
    /// and distinct-term count.
    fn wire_size(&self) -> usize {
        varint_len(self.doc.index() as u64)
            + 16
            + varint_len(u64::from(self.tf))
            + varint_len(u64::from(self.doc_len))
            + varint_len(u64::from(self.distinct))
    }
}

/// Exact wire size of one published `(term, entry)` record: the varint
/// term id followed by the entry. Records encode independently — no
/// cross-record compression — so a batched transfer's payload is exactly
/// the sum of its records' sizes, making byte totals invariant under
/// batching.
#[must_use]
pub fn term_record_wire_size(term: TermId, entry: &IndexEntry) -> usize {
    varint_len(term.index() as u64) + entry.wire_size()
}

/// Exact wire size of one `(term, doc)` removal record.
#[must_use]
pub fn removal_wire_size(term: TermId, doc: DocId) -> usize {
    varint_len(term.index() as u64) + varint_len(doc.index() as u64)
}

/// Exact wire size of an inverted-list response (a `QueryFetch` payload):
/// a varint entry count, document ids delta-encoded as ascending gaps
/// (lists are kept sorted by document id), and each entry's remaining
/// metadata. The empty list is a single zero-count byte.
#[must_use]
pub fn posting_list_wire_size(entries: &[IndexEntry]) -> usize {
    let mut n = varint_len(entries.len() as u64);
    let mut prev = 0u64;
    for (i, e) in entries.iter().enumerate() {
        let doc = e.doc.index() as u64;
        n += if i == 0 {
            varint_len(doc)
        } else {
            varint_len(doc.wrapping_sub(prev))
        };
        prev = doc;
        n += 16
            + varint_len(u64::from(e.tf))
            + varint_len(u64::from(e.doc_len))
            + varint_len(u64::from(e.distinct));
    }
    n
}

/// A query cached at an indexing peer, stamped with a global sequence
/// number so owners can poll incrementally ("Q′, the query set between the
/// current iteration and the last iteration", §5.3).
#[derive(Clone, Debug)]
pub struct CachedQuery {
    /// The query keywords.
    pub query: Query,
    /// MD5 of the query's canonical form — precomputed, used by the
    /// closest-hash deduplication of §3.
    pub qhash: RingId,
    /// Global issue sequence number.
    pub seq: u64,
}

/// Indexing-peer state.
#[derive(Clone, Debug, Default)]
pub struct IndexingState {
    /// Inverted lists for the terms this peer is responsible for.
    inverted: HashMap<TermId, PostingList>,
    /// Recent-query history, oldest first, bounded.
    cache: VecDeque<CachedQuery>,
    capacity: usize,
    /// Representation for freshly created lists (see
    /// [`crate::config::SpriteConfig::packed_postings`]).
    packed: bool,
}

impl IndexingState {
    /// Fresh state with the given query-history capacity, storing plain
    /// (uncompressed) posting lists.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_packing(capacity, false)
    }

    /// Fresh state with the given query-history capacity; `packed`
    /// selects the posting-list representation (plain vectors or
    /// delta-gap-compressed blocks — behaviorally identical).
    #[must_use]
    pub fn with_packing(capacity: usize, packed: bool) -> Self {
        IndexingState {
            inverted: HashMap::new(),
            cache: VecDeque::new(),
            capacity,
            packed,
        }
    }

    /// True when fresh lists use the compressed representation.
    #[must_use]
    pub fn packed(&self) -> bool {
        self.packed
    }

    /// Insert or update the entry for `(term, doc)`.
    ///
    /// Lists stay sorted by document id with one entry per document —
    /// the structural invariant `sprite-audit`'s `check_index` verifies —
    /// so scans and merges are deterministic regardless of publish order.
    pub fn publish(&mut self, term: TermId, entry: IndexEntry) {
        let packed = self.packed;
        self.inverted
            .entry(term)
            .or_insert_with(|| PostingList::new(packed))
            .publish(entry);
    }

    /// Remove the entry for `(term, doc)` eagerly; true if it existed.
    /// A list is dropped only when nothing — live or tombstoned — is
    /// left in it, so pending tombstones always survive to be billed by
    /// the cleanup pass.
    pub fn remove(&mut self, term: TermId, doc: DocId) -> bool {
        match self.inverted.get_mut(&term) {
            Some(list) => {
                let removed = list.remove(doc);
                if list.is_empty() && list.dead_count() == 0 {
                    self.inverted.remove(&term);
                }
                removed
            }
            None => false,
        }
    }

    /// Mark the entry for `(term, doc)` dead without rewriting the
    /// stored list; true if a live entry existed. The entry vanishes
    /// from queries, replication, and document frequencies immediately;
    /// the physical reclaim waits for [`Self::cleanup_tombstones`].
    pub fn tombstone(&mut self, term: TermId, doc: DocId) -> bool {
        self.inverted
            .get_mut(&term)
            .is_some_and(|list| list.tombstone(doc))
    }

    /// Tombstoned entries awaiting the lazy cleanup pass, across all
    /// lists.
    #[must_use]
    pub fn pending_tombstones(&self) -> usize {
        self.inverted.values().map(PostingList::dead_count).sum()
    }

    /// Physically reclaim every pending tombstone, dropping lists that
    /// end up empty. Returns the reclaimed `(term, entry)` records
    /// sorted by term then document so callers bill them in a
    /// deterministic order.
    pub fn cleanup_tombstones(&mut self) -> Vec<(TermId, IndexEntry)> {
        let mut dirty: Vec<TermId> = self
            .inverted
            .iter()
            .filter(|(_, l)| l.dead_count() > 0)
            .map(|(&t, _)| t)
            .collect();
        dirty.sort_unstable();
        let mut reclaimed = Vec::new();
        for t in dirty {
            if let Some(list) = self.inverted.get_mut(&t) {
                reclaimed.extend(list.cleanup().into_iter().map(|e| (t, e)));
                if list.is_empty() && list.dead_count() == 0 {
                    self.inverted.remove(&t);
                }
            }
        }
        reclaimed
    }

    /// The inverted list of `term`, if anything is indexed under it.
    /// The handle exposes length, exact wire size, and a decode-on-read
    /// iterator — the query hot path never materializes packed lists.
    #[must_use]
    pub fn postings(&self, term: TermId) -> Option<&PostingList> {
        self.inverted.get(&term)
    }

    /// The inverted list of `term`, decoded into a fresh vector (empty
    /// if nothing indexed).
    #[must_use]
    pub fn entries(&self, term: TermId) -> Vec<IndexEntry> {
        self.inverted
            .get(&term)
            .map_or_else(Vec::new, PostingList::to_entries)
    }

    /// Indexed document frequency `n′_k` (§3/§4): how many documents chose
    /// `term` as a global index term.
    #[must_use]
    pub fn indexed_df(&self, term: TermId) -> usize {
        self.inverted.get(&term).map_or(0, PostingList::len)
    }

    /// Terms this peer currently indexes, with their indexed df, sorted by
    /// term so iteration order never leaks `HashMap` randomness.
    pub fn term_dfs(&self) -> impl Iterator<Item = (TermId, usize)> {
        let mut v: Vec<(TermId, usize)> =
            self.inverted.iter().map(|(&t, l)| (t, l.len())).collect();
        v.sort_unstable_by_key(|&(t, _)| t);
        v.into_iter()
    }

    /// Every inverted list held by this peer, keyed by term, sorted by
    /// term so iteration order never leaks `HashMap` randomness.
    pub fn terms(&self) -> impl Iterator<Item = (TermId, &PostingList)> {
        let mut v: Vec<(TermId, &PostingList)> =
            self.inverted.iter().map(|(&t, l)| (t, l)).collect();
        v.sort_unstable_by_key(|&(t, _)| t);
        v.into_iter()
    }

    /// Replace the inverted list of `term` verbatim, skipping the
    /// sorted-insert of [`Self::publish`] — **corruption injection** for
    /// `sprite-audit` tests only. Injected lists are always stored plain:
    /// the packed encoder requires the very invariants these tests break.
    pub fn inject_raw(&mut self, term: TermId, entries: Vec<IndexEntry>) {
        if entries.is_empty() {
            self.inverted.remove(&term);
        } else {
            // Stored unpacked via the codec module's constructor: the
            // packed encoder requires the invariants these tests break.
            self.inverted
                .insert(term, PostingList::from_entries(entries, false));
        }
    }

    /// Total inverted-list entries held.
    #[must_use]
    pub fn total_entries(&self) -> usize {
        self.inverted.values().map(PostingList::len).sum()
    }

    /// Number of terms with a non-empty inverted list.
    #[must_use]
    pub fn indexed_terms(&self) -> usize {
        self.inverted.len()
    }

    /// Deterministic *logical* bytes of the inverted index: each list's
    /// stored size (encoded length when packed, a fixed per-entry cost
    /// when plain) plus a 4-byte term key per list. Length-based, never
    /// capacity, so the memory-per-peer metric gates on it exactly.
    #[must_use]
    pub fn logical_index_bytes(&self) -> u64 {
        self.inverted.values().map(|l| 4 + l.stored_bytes()).sum()
    }

    /// Record an issued query in the history (evicting the oldest beyond
    /// capacity).
    pub fn cache_query(&mut self, query: Query, qhash: RingId, seq: u64) {
        if self.capacity == 0 {
            return;
        }
        if self.cache.len() == self.capacity {
            self.cache.pop_front();
        }
        self.cache.push_back(CachedQuery { query, qhash, seq });
    }

    /// Cached queries issued after `since` (exclusive).
    pub fn queries_since(&self, since: u64) -> impl Iterator<Item = &CachedQuery> {
        // The deque is ordered by seq; skip the old prefix.
        let start = self.cache.partition_point(|c| c.seq <= since);
        self.cache.range(start..)
    }

    /// Number of cached queries.
    #[must_use]
    pub fn cached_queries(&self) -> usize {
        self.cache.len()
    }

    /// Copy all state from `other` into `self` (successor replication).
    /// Returns the number of entries copied.
    pub fn absorb_replica(&mut self, other: &IndexingState) -> usize {
        let mut copied = 0;
        for (&t, list) in &other.inverted {
            for e in list {
                self.publish(t, e);
                copied += 1;
            }
        }
        copied
    }
}

/// Per-term learning statistics an owner keeps for each shared document
/// (§5.1): the best historical `qScore` and the cumulative query frequency.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TermStat {
    /// Largest `qScore(Q, D)` over all past queries containing the term.
    pub qs: f64,
    /// Number of past queries containing the term (`QF`).
    pub qf: u64,
}

/// Owner-peer state for one shared document.
#[derive(Clone, Debug)]
pub struct OwnerDoc {
    /// The document.
    pub doc: DocId,
    /// Currently published global index terms, in rank order.
    pub published: Vec<TermId>,
    /// Learning statistics per document term ever seen in a query.
    pub stats: HashMap<TermId, TermStat>,
    /// Per-term high-water marks of the query sequence already polled
    /// (enables the incremental Algorithm 1). A term newly added to the
    /// index starts at 0 and fetches its full cached history on the next
    /// poll — §5.3: "for each indexing term, the indexing peer is polled
    /// to retrieve the query metadata of that term".
    pub term_watermarks: HashMap<TermId, u64>,
    /// Sequence numbers of queries already folded into `stats`, so a query
    /// reachable through several published terms is never double-counted
    /// across iterations (within one iteration the §3 closest-hash rule
    /// already deduplicates).
    pub seen: std::collections::HashSet<u64>,
    /// Terms this owner was advised to stop indexing (§7 hot-term
    /// advisory); learning never re-selects them.
    pub excluded: std::collections::HashSet<TermId>,
}

impl OwnerDoc {
    /// Fresh owner state for `doc` (nothing published yet).
    #[must_use]
    pub fn new(doc: DocId) -> Self {
        OwnerDoc {
            doc,
            published: Vec::new(),
            stats: HashMap::new(),
            term_watermarks: HashMap::new(),
            seen: std::collections::HashSet::new(),
            excluded: std::collections::HashSet::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(doc: u32, tf: u32) -> IndexEntry {
        IndexEntry {
            doc: DocId(doc),
            owner: RingId(0),
            tf,
            doc_len: 100,
            distinct: 50,
        }
    }

    #[test]
    fn publish_and_indexed_df() {
        let mut s = IndexingState::new(8);
        let t = TermId(1);
        s.publish(t, entry(0, 3));
        s.publish(t, entry(1, 5));
        assert_eq!(s.indexed_df(t), 2);
        assert_eq!(s.entries(t).len(), 2);
        assert_eq!(s.indexed_df(TermId(9)), 0);
        assert_eq!(s.total_entries(), 2);
    }

    #[test]
    fn publish_updates_in_place() {
        let mut s = IndexingState::new(8);
        let t = TermId(1);
        s.publish(t, entry(0, 3));
        s.publish(t, entry(0, 7));
        assert_eq!(s.indexed_df(t), 1);
        assert_eq!(s.entries(t)[0].tf, 7);
    }

    #[test]
    fn remove_entry() {
        let mut s = IndexingState::new(8);
        let t = TermId(1);
        s.publish(t, entry(0, 3));
        s.publish(t, entry(1, 5));
        assert!(s.remove(t, DocId(0)));
        assert_eq!(s.indexed_df(t), 1);
        assert!(!s.remove(t, DocId(0)));
        assert!(s.remove(t, DocId(1)));
        assert_eq!(s.indexed_df(t), 0);
        assert!(!s.remove(TermId(42), DocId(0)));
    }

    #[test]
    fn query_cache_bounded_and_ordered() {
        let mut s = IndexingState::new(3);
        for i in 0..5u64 {
            s.cache_query(Query::new(vec![TermId(i as u32)]), RingId(i as u128), i + 1);
        }
        // Capacity 3: seqs 3, 4, 5 remain.
        assert_eq!(s.cached_queries(), 3);
        let since2: Vec<u64> = s.queries_since(2).map(|c| c.seq).collect();
        assert_eq!(since2, [3, 4, 5]);
        let since4: Vec<u64> = s.queries_since(4).map(|c| c.seq).collect();
        assert_eq!(since4, [5]);
        assert_eq!(s.queries_since(5).count(), 0);
    }

    #[test]
    fn zero_capacity_cache_stores_nothing() {
        let mut s = IndexingState::new(0);
        s.cache_query(Query::default(), RingId(0), 1);
        assert_eq!(s.cached_queries(), 0);
    }

    #[test]
    fn absorb_replica_copies_entries() {
        let mut a = IndexingState::new(4);
        a.publish(TermId(1), entry(0, 2));
        let mut b = IndexingState::new(4);
        b.publish(TermId(1), entry(1, 3));
        b.publish(TermId(2), entry(2, 4));
        let copied = a.absorb_replica(&b);
        assert_eq!(copied, 2);
        assert_eq!(a.indexed_df(TermId(1)), 2);
        assert_eq!(a.indexed_df(TermId(2)), 1);
    }

    #[test]
    fn wire_sizes_are_exact_and_delta_compressed() {
        let e = entry(0, 3);
        // doc 0 (1B) + owner ring id (16B) + tf 3 (1B) + len 100 (1B) +
        // distinct 50 (1B).
        assert_eq!(e.wire_size(), 20);
        assert_eq!(term_record_wire_size(TermId(1), &e), 21);
        assert_eq!(term_record_wire_size(TermId(200), &e), 22);
        assert_eq!(removal_wire_size(TermId(1), DocId(0)), 2);
        assert_eq!(posting_list_wire_size(&[]), 1, "empty list is one byte");
        // Adjacent doc ids: each gap is one byte even when the absolute
        // ids would need two.
        let list: Vec<IndexEntry> = (0..4).map(|i| entry(300 + i, 2)).collect();
        let sized = posting_list_wire_size(&list);
        // count (1) + first doc 300 (2) + three 1-byte gaps + 4 × 19B of
        // per-entry metadata.
        assert_eq!(sized, 1 + 2 + 3 + 4 * 19);
        let naive: usize = 1 + list.iter().map(WireSize::wire_size).sum::<usize>();
        assert!(sized < naive, "gap encoding beats absolute ids");
    }

    #[test]
    fn tombstones_hide_entries_and_cleanup_reclaims_them() {
        let mut s = IndexingState::new(8);
        s.publish(TermId(1), entry(0, 3));
        s.publish(TermId(1), entry(1, 5));
        s.publish(TermId(2), entry(0, 2));
        assert!(s.tombstone(TermId(1), DocId(0)));
        assert!(!s.tombstone(TermId(1), DocId(0)), "already dead");
        assert!(!s.tombstone(TermId(9), DocId(0)), "unknown term");
        assert_eq!(s.indexed_df(TermId(1)), 1, "dead entries leave the df");
        assert_eq!(s.pending_tombstones(), 1);
        // A fully-tombstoned list survives until cleanup so its
        // reclaim can be billed.
        assert!(s.tombstone(TermId(2), DocId(0)));
        assert_eq!(s.indexed_df(TermId(2)), 0);
        assert_eq!(s.indexed_terms(), 2);
        let reclaimed = s.cleanup_tombstones();
        assert_eq!(
            reclaimed
                .iter()
                .map(|&(t, e)| (t, e.doc))
                .collect::<Vec<_>>(),
            vec![(TermId(1), DocId(0)), (TermId(2), DocId(0))]
        );
        assert_eq!(s.pending_tombstones(), 0);
        assert_eq!(s.indexed_terms(), 1, "the emptied list is dropped");
        assert!(s.cleanup_tombstones().is_empty());
    }

    #[test]
    fn replication_never_copies_tombstoned_entries() {
        let mut src = IndexingState::new(4);
        src.publish(TermId(1), entry(0, 2));
        src.publish(TermId(1), entry(1, 3));
        assert!(src.tombstone(TermId(1), DocId(0)));
        let mut dst = IndexingState::new(4);
        let copied = dst.absorb_replica(&src);
        assert_eq!(copied, 1, "only the live entry replicates");
        assert_eq!(dst.indexed_df(TermId(1)), 1);
        assert_eq!(dst.entries(TermId(1))[0].doc, DocId(1));
    }

    #[test]
    fn owner_doc_starts_empty() {
        let o = OwnerDoc::new(DocId(3));
        assert!(o.published.is_empty());
        assert!(o.stats.is_empty());
        assert!(o.term_watermarks.is_empty());
        assert!(o.seen.is_empty());
    }
}
