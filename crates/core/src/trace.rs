//! Per-query trace reports.
//!
//! The chord-level recorder ([`sprite_chord::TraceRecorder`]) aggregates;
//! this module explains a *single* query: where each keyword routed, whether
//! the routed owner actually held the inverted list or the §7 failover had
//! to walk replicas, how many timeouts were burned, and what the query cost
//! in messages. [`QueryTrace`] is produced by
//! [`crate::QueryView::query_trace`] and rendered by `--bin diag`.

use sprite_ir::{Corpus, TermId};
use sprite_util::RingId;

/// How one query keyword was resolved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeywordTrace {
    /// The keyword.
    pub term: TermId,
    /// Its ring position (`md5(term)`).
    pub key: RingId,
    /// The routing walk: origin first, then every intermediate node
    /// contacted. Empty when the walk dead-ended before the first hop.
    pub route: Vec<RingId>,
    /// The resolved indexing peer, `None` when routing dead-ended.
    pub owner: Option<RingId>,
    /// Routing steps taken.
    pub hops: u32,
    /// Whether the routed owner held a non-empty inverted list.
    pub owner_hit: bool,
    /// Failover replicas probed (in probe order) when the owner missed.
    pub failover: Vec<RingId>,
    /// The peer whose list was finally used, `None` when every replica
    /// missed (the keyword contributes nothing to the rank).
    pub served_by: Option<RingId>,
    /// Dead-peer probes burned on this keyword (walk timeouts, dead
    /// successor-list entries, and the abandoned-retry charge).
    pub timeouts: u64,
    /// Inverted-list entries fetched for the keyword.
    pub entries: usize,
}

/// A complete per-query report: one [`KeywordTrace`] per distinct keyword
/// plus the query-level totals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryTrace {
    /// The issuing peer.
    pub from: RingId,
    /// Per-keyword resolution, in the query's sorted term order.
    pub keywords: Vec<KeywordTrace>,
    /// Total messages billed to the query (all kinds).
    pub messages: u64,
    /// Size of the final rank returned to the user.
    pub rank_size: usize,
}

fn short(id: RingId) -> String {
    format!("{:08x}", (id.0 >> 96) as u32)
}

impl QueryTrace {
    /// Human-readable rendering, resolving term ids against `corpus`.
    #[must_use]
    pub fn render(&self, corpus: &Corpus) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "query from {}: {} keywords, {} msgs, rank {}",
            short(self.from),
            self.keywords.len(),
            self.messages,
            self.rank_size
        );
        for kw in &self.keywords {
            let word = corpus.vocab().term(kw.term);
            match kw.owner {
                None => {
                    let _ = writeln!(
                        out,
                        "  kw {word:?} -> unroutable after {} dead probes (keyword dropped)",
                        kw.timeouts
                    );
                }
                Some(owner) => {
                    let _ = write!(
                        out,
                        "  kw {word:?} -> owner {} ({} hop{})",
                        short(owner),
                        kw.hops,
                        if kw.hops == 1 { "" } else { "s" }
                    );
                    if kw.owner_hit {
                        let _ = write!(out, " hit, {} entries", kw.entries);
                    } else if kw.failover.is_empty() {
                        let _ = write!(out, " miss, no replicas to probe");
                    } else {
                        let probed: Vec<String> = kw.failover.iter().map(|&p| short(p)).collect();
                        match kw.served_by {
                            Some(p) => {
                                let _ = write!(
                                    out,
                                    " miss -> failover [{}] served by {}, {} entries",
                                    probed.join(", "),
                                    short(p),
                                    kw.entries
                                );
                            }
                            None => {
                                let _ = write!(
                                    out,
                                    " miss -> failover [{}] all missed",
                                    probed.join(", ")
                                );
                            }
                        }
                    }
                    if kw.timeouts > 0 {
                        let _ = write!(out, ", {} timeouts", kw.timeouts);
                    }
                    let _ = writeln!(out);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprite_corpus::{CorpusConfig, SyntheticCorpus};

    #[test]
    fn render_covers_hit_miss_and_unroutable() {
        let sc = SyntheticCorpus::generate(&CorpusConfig::tiny(3));
        let corpus = sc.corpus();
        let t = TermId(0);
        let trace = QueryTrace {
            from: RingId(1 << 100),
            keywords: vec![
                KeywordTrace {
                    term: t,
                    key: RingId(7),
                    route: vec![RingId(1 << 100), RingId(2 << 100)],
                    owner: Some(RingId(2 << 100)),
                    hops: 1,
                    owner_hit: true,
                    failover: vec![],
                    served_by: Some(RingId(2 << 100)),
                    timeouts: 0,
                    entries: 4,
                },
                KeywordTrace {
                    term: t,
                    key: RingId(8),
                    route: vec![],
                    owner: Some(RingId(3 << 100)),
                    hops: 2,
                    owner_hit: false,
                    failover: vec![RingId(4 << 100)],
                    served_by: None,
                    timeouts: 1,
                    entries: 0,
                },
                KeywordTrace {
                    term: t,
                    key: RingId(9),
                    route: vec![],
                    owner: None,
                    hops: 0,
                    owner_hit: false,
                    failover: vec![],
                    served_by: None,
                    timeouts: 3,
                    entries: 0,
                },
            ],
            messages: 42,
            rank_size: 10,
        };
        let text = trace.render(corpus);
        assert!(text.contains("42 msgs"));
        assert!(text.contains("hit, 4 entries"));
        assert!(text.contains("all missed"));
        assert!(text.contains("unroutable after 3 dead probes"));
    }
}
