//! The experiment driver behind every figure of §6.
//!
//! A [`World`] packages the full §6.1/§6.2 setup: synthetic corpus,
//! centralized reference engine, the generated 630-query workload, and the
//! 50/50 train/test split. The `fig4*` functions reproduce the three panels
//! of Figure 4; the bench binaries are thin printers over these.

use sprite_chord::{MsgKind, NetStats, SimConfig, TraceRecorder};
use sprite_corpus::{
    generate_workload, issue_order, split_train_test, CorpusConfig, DocChurnConfig, DocChurnEngine,
    DocEvent, GenConfig, GeneratedQuery, Schedule, SyntheticCorpus,
};
use sprite_ir::{
    evaluate_hits_at_k, CentralizedEngine, DocId, PrEval, RatioAccumulator, RatioEval,
    SearchScratch,
};
use sprite_util::{par_map, par_map_init};

use crate::config::SpriteConfig;
use crate::system::SpriteSystem;
use crate::view::RankScratch;

/// Per-worker scratch for the evaluation fan-out: the distributed ranking
/// buffers plus the centralized reference engine's accumulator, both
/// reused across every query the worker claims instead of being allocated
/// per query.
#[derive(Default)]
struct EvalScratch {
    rank: RankScratch,
    engine: SearchScratch,
}

/// Full experiment configuration.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Corpus generation parameters.
    pub corpus: CorpusConfig,
    /// Query-generator parameters (§6.1).
    pub gen: GenConfig,
    /// Network size.
    pub n_peers: usize,
    /// Seed for splits, schedules, and system construction.
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            corpus: CorpusConfig::default(),
            gen: GenConfig::default(),
            n_peers: 64,
            seed: 42,
        }
    }
}

impl WorldConfig {
    /// Integration-test scale (seconds, not minutes).
    #[must_use]
    pub fn small(seed: u64) -> Self {
        WorldConfig {
            corpus: CorpusConfig::small(seed),
            gen: GenConfig {
                top_e: 400,
                ..GenConfig::default()
            },
            n_peers: 32,
            seed,
        }
    }

    /// DHT-realistic population scale: 100,000 peers over the small
    /// corpus. The point is the *ring* — per-peer memory, build time,
    /// and routing at log₂(100k) ≈ 17 hops — so the retrieval workload
    /// stays at integration size while the peer count does not. Needs
    /// the arena-backed node store and compressed postings to fit a CI
    /// runner; the nightly `huge` smoke job runs it under a wall-clock
    /// budget.
    #[must_use]
    pub fn huge(seed: u64) -> Self {
        WorldConfig {
            n_peers: 100_000,
            ..WorldConfig::small(seed)
        }
    }

    /// Unit-test scale (sub-second).
    #[must_use]
    pub fn tiny(seed: u64) -> Self {
        WorldConfig {
            corpus: CorpusConfig::tiny(seed),
            gen: GenConfig {
                top_e: 150,
                ..GenConfig::default()
            },
            n_peers: 16,
            seed,
        }
    }
}

/// The answer-list depth to which [`World::build`] precomputes the
/// centralized reference ranking of every workload query. The workload and
/// the engine are both fixed at build time, so these rankings are pure
/// data; [`World::evaluate`] slices the cached prefix instead of
/// re-searching the corpus on every evaluation pass, for any `k` up to
/// this depth (deeper requests fall back to a live search).
pub const CENTRAL_CACHE_K: usize = 50;

/// Everything an experiment needs, built once and shared across systems.
pub struct World {
    /// The corpus with its latent topics.
    pub synthetic: SyntheticCorpus,
    /// The ideal centralized reference (§6: classic TF·IDF).
    pub engine: CentralizedEngine,
    /// The generated workload (originals + derived queries).
    pub workload: Vec<GeneratedQuery>,
    /// Workload indices used for training (inserted into the system).
    pub train: Vec<usize>,
    /// Workload indices used for testing (evaluated).
    pub test: Vec<usize>,
    /// Per-workload-query centralized reference rankings, top
    /// [`CENTRAL_CACHE_K`], in workload order. Precomputed once — the
    /// exact prefix any `engine.search(query, k ≤ CENTRAL_CACHE_K)` would
    /// return.
    pub central: Vec<Vec<sprite_ir::Hit>>,
    /// The configuration that built this world.
    pub config: WorldConfig,
}

impl World {
    /// Build the §6.2 setup: generate the corpus, derive the workload,
    /// split it 50/50 into train and test, and precompute the centralized
    /// reference rankings the evaluation pipeline scores against.
    #[must_use]
    pub fn build(config: WorldConfig) -> Self {
        let synthetic = SyntheticCorpus::generate(&config.corpus);
        let engine = CentralizedEngine::build(synthetic.corpus());
        let seeds = synthetic.seed_queries();
        let workload = generate_workload(synthetic.corpus(), &engine, &seeds, &config.gen);
        let (train, test) = split_train_test(workload.len(), config.seed);
        let central = par_map_init(&workload, SearchScratch::new, |scratch, _, gq| {
            engine.search_with(&gq.query, CENTRAL_CACHE_K, scratch)
        });
        World {
            synthetic,
            engine,
            workload,
            train,
            test,
            central,
            config,
        }
    }

    /// The centralized reference's [`PrEval`] for workload query `qi` at
    /// answer-list size `k`: served from the build-time cache when `k` fits
    /// [`CENTRAL_CACHE_K`], recomputed (into `scratch`) otherwise. Either
    /// way the evaluated prefix is bit-identical to a live
    /// `engine.search(query, k)`.
    fn central_pr(&self, qi: usize, k: usize, scratch: &mut SearchScratch) -> PrEval {
        let gq = &self.workload[qi];
        if k <= CENTRAL_CACHE_K {
            evaluate_hits_at_k(&self.central[qi], &gq.relevant, k)
        } else {
            let cen_hits = self.engine.search_with(&gq.query, k, scratch);
            evaluate_hits_at_k(&cen_hits, &gq.relevant, k)
        }
    }

    /// A fresh, empty SPRITE deployment over this world's corpus.
    #[must_use]
    pub fn new_system(&self, cfg: SpriteConfig) -> SpriteSystem {
        SpriteSystem::build(
            self.synthetic.corpus().clone(),
            self.config.n_peers,
            cfg,
            self.config.seed,
        )
    }

    /// Issue workload queries into `sys` following `schedule` (restricted
    /// to the given workload indices).
    ///
    /// Deliberately **sequential**: training queries mutate learning state
    /// (the bounded query caches at indexing peers, the global query
    /// sequence) and those side effects are order-dependent by design —
    /// SPRITE learns from the *stream* of queries, so the stream must
    /// replay in schedule order. Only evaluation parallelizes.
    pub fn issue(&self, sys: &mut SpriteSystem, indices: &[usize], schedule: Schedule) {
        let order = issue_order(indices.len(), schedule, self.config.seed);
        for oi in order {
            let q = &self.workload[indices[oi]].query;
            // Issue for its side effects (caching at indexing peers); the
            // answers are irrelevant during training.
            let _ = sys.issue_query(q, 20);
        }
    }

    /// Evaluate `sys` on the given workload indices at answer-list size
    /// `k`, reporting precision/recall **ratios over the centralized
    /// reference** (§6's metric).
    ///
    /// Evaluation is a *measurement*, not training: it runs on a frozen
    /// [`crate::QueryView`] snapshot, fanned out over the `sprite-util`
    /// pool (worker count from `SPRITE_THREADS`). Each query is issued
    /// from the peer its position selects (`peers[i % peers.len()]`),
    /// charges its message bill into a private [`NetStats`] delta, and the
    /// deltas are merged into the network **in input order**, so ratios
    /// and stats are bit-identical at any thread count. Evaluation queries
    /// are *not* cached at indexing peers — caching them would leak the
    /// test set into the next learning iteration.
    ///
    /// This is the **batched** pipeline: every distinct `(issuing peer,
    /// keyword)` route of the batch is resolved once up front
    /// ([`crate::QueryView::resolve_routes`]) and replayed per query with
    /// its exact message bill, each pool worker reuses one set of ranking
    /// buffers across every query it claims, and the centralized reference
    /// score comes from the build-time [`World::central`] cache instead of
    /// a per-query corpus search. Results and absorbed stats are
    /// bit-identical to [`World::evaluate_reference`] — the determinism
    /// audit's `query/batched` stage and the bench's `bit_identical` flag
    /// both enforce that.
    pub fn evaluate(&self, sys: &mut SpriteSystem, indices: &[usize], k: usize) -> RatioEval {
        sys.warm_query_terms(indices.iter().map(|&qi| &self.workload[qi].query));
        let per_query: Vec<(PrEval, PrEval, NetStats)> = {
            let view = sys.query_view();
            let peers = view.peers();
            let memo = view.resolve_routes(
                indices
                    .iter()
                    .enumerate()
                    .map(|(i, &qi)| (peers[i % peers.len()], &self.workload[qi].query)),
            );
            par_map_init(indices, EvalScratch::default, |scratch, i, &qi| {
                let gq = &self.workload[qi];
                let from = peers[i % peers.len()];
                let mut delta = NetStats::new();
                let sys_hits =
                    view.query_batched(from, &gq.query, k, &memo, &mut delta, &mut scratch.rank);
                (
                    evaluate_hits_at_k(&sys_hits, &gq.relevant, k),
                    self.central_pr(qi, k, &mut scratch.engine),
                    delta,
                )
            })
        };
        Self::absorb_evaluation(sys, &per_query)
    }

    /// The pre-batching per-query reference for [`World::evaluate`]:
    /// identical answers and charges, produced the way the original
    /// pipeline produced them — one query at a time, each walking its own
    /// keyword routes live (no [`crate::QueryView::resolve_routes`] memo),
    /// allocating fresh ranking buffers per query, and re-searching the
    /// centralized reference from scratch. The benchmark times this path
    /// as the throughput baseline, and the determinism audit compares the
    /// batched pipeline against it bit for bit.
    pub fn evaluate_reference(
        &self,
        sys: &mut SpriteSystem,
        indices: &[usize],
        k: usize,
    ) -> RatioEval {
        sys.warm_query_terms(indices.iter().map(|&qi| &self.workload[qi].query));
        let per_query: Vec<(PrEval, PrEval, NetStats)> = {
            let view = sys.query_view();
            let peers = view.peers();
            indices
                .iter()
                .enumerate()
                .map(|(i, &qi)| {
                    let gq = &self.workload[qi];
                    let from = peers[i % peers.len()];
                    let mut delta = NetStats::new();
                    let mut rank = RankScratch::new();
                    let sys_hits = view.query(from, &gq.query, k, &mut delta, &mut rank);
                    let cen_hits = self.engine.search(&gq.query, k);
                    (
                        evaluate_hits_at_k(&sys_hits, &gq.relevant, k),
                        evaluate_hits_at_k(&cen_hits, &gq.relevant, k),
                        delta,
                    )
                })
                .collect()
        };
        Self::absorb_evaluation(sys, &per_query)
    }

    /// Fold per-query evaluations in input order (the merge that makes
    /// parallel evaluation bit-identical) and absorb the message bill.
    fn absorb_evaluation(
        sys: &mut SpriteSystem,
        per_query: &[(PrEval, PrEval, NetStats)],
    ) -> RatioEval {
        let mut acc = RatioAccumulator::new();
        let mut total = NetStats::new();
        for (sys_pr, cen_pr, delta) in per_query {
            acc.add(*sys_pr, *cen_pr);
            total.merge(delta);
        }
        sys.net_mut().absorb_stats(&total);
        acc.finish()
    }

    /// [`World::evaluate`] with the observability layer switched on: every
    /// query runs through the traced ranking path with a **private**
    /// [`TraceRecorder`], and the per-query recorders are merged in input
    /// order alongside the [`NetStats`] deltas. Because the recorder's
    /// merge is commutative and the fold order is fixed, the returned
    /// histograms are bit-identical at any `SPRITE_THREADS` worker count —
    /// and because tracing only *observes* (every traced helper charges
    /// through the same code path as its untraced twin), the
    /// [`RatioEval`] and the absorbed stats are bit-identical to an
    /// untraced [`World::evaluate`] run.
    pub fn evaluate_traced(
        &self,
        sys: &mut SpriteSystem,
        indices: &[usize],
        k: usize,
    ) -> (RatioEval, TraceRecorder) {
        sys.warm_query_terms(indices.iter().map(|&qi| &self.workload[qi].query));
        let per_query: Vec<(PrEval, PrEval, NetStats, TraceRecorder)> = {
            let view = sys.query_view();
            let peers = view.peers();
            par_map_init(indices, EvalScratch::default, |scratch, i, &qi| {
                let gq = &self.workload[qi];
                let from = peers[i % peers.len()];
                let mut delta = NetStats::new();
                let mut recorder = TraceRecorder::new();
                let sys_hits = view.query_traced(
                    from,
                    &gq.query,
                    k,
                    &mut delta,
                    &mut scratch.rank,
                    i as u64,
                    &mut recorder,
                );
                (
                    evaluate_hits_at_k(&sys_hits, &gq.relevant, k),
                    self.central_pr(qi, k, &mut scratch.engine),
                    delta,
                    recorder,
                )
            })
        };
        let mut acc = RatioAccumulator::new();
        let mut total = NetStats::new();
        let mut trace = TraceRecorder::new();
        for (sys_pr, cen_pr, delta, recorder) in &per_query {
            acc.add(*sys_pr, *cen_pr);
            total.merge(delta);
            trace.merge(recorder);
        }
        sys.net_mut().absorb_stats(&total);
        (acc.finish(), trace)
    }

    /// The §6.2 standard pipeline: insert the training queries, publish all
    /// documents, then run enough learning iterations to reach
    /// `cfg.max_terms` (e.g. 5 initial + 3 × 5 = 20). Static (eSearch)
    /// configurations skip training and learning entirely.
    #[must_use]
    pub fn standard_system(&self, cfg: SpriteConfig, schedule: Schedule) -> SpriteSystem {
        self.standard_system_with_sim(cfg, schedule, SimConfig::default())
    }

    /// [`World::standard_system`] with a network model installed *before*
    /// any message flows: training, publication, learning, and every later
    /// message all traverse the configured delivery layer. A lossy model
    /// therefore punches real holes in the published indexes — holes only
    /// replication and the per-keyword retry/failover machinery can paper
    /// over, which is exactly what the loss sweep measures.
    #[must_use]
    pub fn standard_system_with_sim(
        &self,
        cfg: SpriteConfig,
        schedule: Schedule,
        sim: SimConfig,
    ) -> SpriteSystem {
        let iterations = if cfg.is_static() {
            0
        } else {
            cfg.max_terms
                .saturating_sub(cfg.initial_terms)
                .div_ceil(cfg.terms_per_iteration)
        };
        let mut sys = self.new_system(cfg);
        sys.net_mut().set_sim(sim);
        if iterations > 0 {
            self.issue(&mut sys, &self.train, schedule);
        }
        sys.publish_all();
        sys.learn(iterations);
        sys
    }
}

/// One point of a figure series.
#[derive(Clone, Copy, Debug)]
pub struct SeriesPoint {
    /// The x-axis value (answers K, indexed terms, or iteration).
    pub x: f64,
    /// Precision ratio over the centralized system.
    pub precision: f64,
    /// Recall ratio over the centralized system.
    pub recall: f64,
}

/// Figure 4(a): precision & recall ratio vs number of answers, SPRITE
/// (20 learned terms) vs eSearch (20 static terms).
#[derive(Clone, Debug)]
pub struct Fig4a {
    /// SPRITE series, one point per K.
    pub sprite: Vec<SeriesPoint>,
    /// eSearch series, one point per K.
    pub esearch: Vec<SeriesPoint>,
}

/// Run Figure 4(a): `answers` is the x-axis (paper: 5..30 step 5).
///
/// The two deployments (SPRITE learned, eSearch static) are independent
/// worlds, so they build in parallel; each evaluation then fans out over
/// the pool internally (nested maps run inline, so the machine is never
/// oversubscribed).
#[must_use]
pub fn fig4a(world: &World, answers: &[usize]) -> Fig4a {
    let configs = [SpriteConfig::default(), SpriteConfig::esearch(20)];
    let mut systems = par_map(&configs, |_, cfg| {
        world.standard_system(cfg.clone(), Schedule::WithoutRepeats)
    });
    let mut eval = |i: usize| -> Vec<SeriesPoint> {
        answers
            .iter()
            .map(|&k| {
                let r = world.evaluate(&mut systems[i], &world.test, k);
                SeriesPoint {
                    x: k as f64,
                    precision: r.precision_ratio,
                    recall: r.recall_ratio,
                }
            })
            .collect()
    };
    Fig4a {
        sprite: eval(0),
        esearch: eval(1),
    }
}

/// One point of the churn study (§7): a deployment evaluated after a run
/// of continuous churn at a given rate and replication degree.
#[derive(Clone, Copy, Debug)]
pub struct ChurnPoint {
    /// Per-tick churn intensity as a fraction of the network size.
    pub churn_rate: f64,
    /// Replication degree of the deployment.
    pub replication: usize,
    /// Precision ratio over the centralized reference, post-churn.
    pub precision: f64,
    /// Recall ratio over the centralized reference, post-churn.
    pub recall: f64,
    /// Precision relative to the same-replication zero-churn baseline.
    pub retention: f64,
    /// Mean messages per evaluation query (the §6 cost axis).
    pub messages_per_query: f64,
    /// Network size after the churn run.
    pub peers_after: usize,
}

/// The churn figure: one [`ChurnPoint`] per (replication, rate) pair,
/// replication-major in the order the inputs were given.
#[derive(Clone, Debug)]
pub struct ChurnFigure {
    /// All sweep points.
    pub points: Vec<ChurnPoint>,
}

/// Run the churn study: for every replication degree × churn rate, build a
/// standard deployment, replicate its indexes, subject it to `ticks` ticks
/// of continuous churn (bounded stabilization only — no `converge`, no
/// oracle repair) with a maintenance round every second tick, then evaluate
/// on the test split at K = 20.
///
/// `rates` are per-tick event volumes as a fraction of the network size: a
/// rate `c` yields an expected `c·n/2` joins, `c·n/4` graceful leaves, and
/// `c·n/4` abrupt failures per tick, so the expected membership is stable.
/// Include 0.0 to anchor each replication's retention baseline.
#[must_use]
pub fn churn_figure(
    world: &World,
    rates: &[f64],
    replications: &[usize],
    ticks: usize,
) -> ChurnFigure {
    use sprite_chord::{ChurnConfig, ChurnEngine};
    let jobs: Vec<(usize, f64)> = replications
        .iter()
        .flat_map(|&r| rates.iter().map(move |&c| (r, c)))
        .collect();
    let mut points: Vec<ChurnPoint> = par_map(&jobs, |j, &(replication, rate)| {
        let cfg = SpriteConfig {
            replication,
            ..SpriteConfig::default()
        };
        let mut sys = world.standard_system(cfg, Schedule::WithoutRepeats);
        if replication > 1 {
            sys.replicate_indexes();
        }
        let n = world.config.n_peers as f64;
        let mut engine = ChurnEngine::new(
            ChurnConfig {
                join_rate: rate * n / 2.0,
                leave_rate: rate * n / 4.0,
                fail_rate: rate * n / 4.0,
                ..ChurnConfig::default()
            },
            world.config.seed.wrapping_add(j as u64 + 1),
        );
        for tick in 0..ticks {
            sys.churn_tick(&mut engine);
            if tick % 2 == 1 {
                sys.maintenance_round();
            }
        }
        sys.net_mut().reset_stats();
        let r = world.evaluate(&mut sys, &world.test, 20);
        let msgs = sys.net().stats().total_messages() as f64 / world.test.len().max(1) as f64;
        ChurnPoint {
            churn_rate: rate,
            replication,
            precision: r.precision_ratio,
            recall: r.recall_ratio,
            retention: 1.0, // filled below against the zero-churn baseline
            messages_per_query: msgs,
            peers_after: sys.peers().len(),
        }
    });
    // Retention: precision relative to the same-replication point with the
    // lowest churn rate (the sweep's baseline, normally 0.0).
    for &replication in replications {
        let base = points
            .iter()
            .filter(|p| p.replication == replication)
            .fold(None::<(f64, f64)>, |acc, p| match acc {
                Some(b) if b.0 <= p.churn_rate => Some(b),
                _ => Some((p.churn_rate, p.precision)),
            })
            .map_or(0.0, |(_, prec)| prec);
        for p in points.iter_mut().filter(|p| p.replication == replication) {
            p.retention = if base > 0.0 { p.precision / base } else { 0.0 };
        }
    }
    ChurnFigure { points }
}

/// One point of the loss study: a deployment built and queried over a
/// lossy network model, at a given Bernoulli loss rate and replication
/// degree.
#[derive(Clone, Copy, Debug)]
pub struct LossPoint {
    /// Per-transmission Bernoulli loss probability.
    pub loss: f64,
    /// Replication degree of the deployment.
    pub replication: usize,
    /// Precision ratio over the centralized reference.
    pub precision: f64,
    /// Recall ratio over the centralized reference.
    pub recall: f64,
    /// Mean messages per evaluation query (the §6 cost axis).
    pub messages_per_query: f64,
    /// Timeout charges billed during evaluation — dropped in-flight
    /// transmissions, each one a retry the sender had to wait out.
    pub timeouts: u64,
}

/// The loss figure: one [`LossPoint`] per (replication, loss) pair,
/// replication-major in the order the inputs were given.
#[derive(Clone, Debug)]
pub struct LossFigure {
    /// All sweep points.
    pub points: Vec<LossPoint>,
}

/// Run the loss study: for every replication degree × loss rate, build a
/// standard deployment over a lossy network model (loss applies to
/// publication too, so the indexes themselves carry real holes), then
/// evaluate on the test split at K = 20.
///
/// Dropped transmissions surface as [`MsgKind::Timeout`] charges: during
/// routing each drop costs a retransmission, and an exhausted retry budget
/// fails the hop, driving the per-keyword failover that replication
/// exists to absorb. Include 0.0 to anchor the lossless baseline.
#[must_use]
pub fn loss_figure(world: &World, losses: &[f64], replications: &[usize]) -> LossFigure {
    let jobs: Vec<(usize, f64)> = replications
        .iter()
        .flat_map(|&r| losses.iter().map(move |&l| (r, l)))
        .collect();
    let points = par_map(&jobs, |j, &(replication, loss)| {
        let cfg = SpriteConfig {
            replication,
            ..SpriteConfig::default()
        };
        let sim = SimConfig {
            seed: world.config.seed.wrapping_add(j as u64 + 1),
            loss,
            ..SimConfig::default()
        };
        let mut sys = world.standard_system_with_sim(cfg, Schedule::WithoutRepeats, sim);
        if replication > 1 {
            sys.replicate_indexes();
        }
        sys.net_mut().reset_stats();
        let r = world.evaluate(&mut sys, &world.test, 20);
        let stats = sys.net().stats();
        let msgs = stats.total_messages() as f64 / world.test.len().max(1) as f64;
        LossPoint {
            loss,
            replication,
            precision: r.precision_ratio,
            recall: r.recall_ratio,
            messages_per_query: msgs,
            timeouts: stats.count(MsgKind::Timeout),
        }
    });
    LossFigure { points }
}

/// One point of the freshness study: a deployment evaluated after a run
/// of continuous *document* churn (inserts, incremental updates, lazy
/// deletions) at a given event rate and replication degree.
#[derive(Clone, Copy, Debug)]
pub struct FreshnessPoint {
    /// Expected document events per tick (inserts = deletes = this rate,
    /// updates = twice it, so the live set stays roughly stable).
    pub doc_churn: f64,
    /// Replication degree of the deployment.
    pub replication: usize,
    /// Precision ratio over a centralized reference **rebuilt over the
    /// mutated corpus** — the reference always sees fresh content, so the
    /// ratio prices exactly the staleness the distributed index carries.
    pub precision: f64,
    /// Recall ratio over the rebuilt centralized reference.
    pub recall: f64,
    /// Documents inserted over the run.
    pub inserted: u64,
    /// Documents updated over the run.
    pub updated: u64,
    /// Documents deleted over the run.
    pub deleted: u64,
    /// Tombstoned entries reclaimed by the maintenance rounds.
    pub tombstones_reclaimed: u64,
    /// Tombstones still pending after the closing maintenance round —
    /// the lifecycle invariant requires **zero**.
    pub pending_tombstones: u64,
    /// Evaluation hits pointing at deleted documents — the lifecycle
    /// invariant requires **zero** (a live query must never surface a
    /// deleted document, tombstoned or reclaimed).
    pub deleted_doc_hits: u64,
    /// Live index entries whose stored metadata no longer matches the
    /// document's current content (the staleness window, §
    /// [`crate::system::UpdateReport::terms_kept`]).
    pub stale_entries: u64,
    /// Total live index entries at evaluation time.
    pub live_entries: u64,
    /// Live documents at evaluation time.
    pub live_docs: u64,
    /// Mean messages per evaluation query.
    pub messages_per_query: f64,
}

/// The incremental-vs-full update cost comparison: the same planned edit
/// stream applied to two identical deployments, one through
/// [`crate::system::SpriteSystem::update_document`] (diff-only
/// publication) and one through
/// [`crate::system::SpriteSystem::republish_document`] (retract
/// everything, publish everything).
#[derive(Clone, Copy, Debug)]
pub struct UpdateCost {
    /// Edits applied to each deployment.
    pub updates: u64,
    /// Publication bytes ([`MsgKind::IndexPublish`] +
    /// [`MsgKind::IndexRemove`]) billed by the incremental path.
    pub incremental_bytes: u64,
    /// The same bill for the delete+republish path.
    pub republish_bytes: u64,
    /// `1 − incremental/republish`: the fraction of publication bytes the
    /// diff saves. The acceptance bar is ≥ 0.30.
    pub savings_ratio: f64,
}

/// The freshness figure: one [`FreshnessPoint`] per (replication, rate)
/// pair, replication-major in input order, plus the update-cost
/// comparison.
#[derive(Clone, Debug)]
pub struct FreshnessFigure {
    /// All sweep points.
    pub points: Vec<FreshnessPoint>,
    /// The incremental-vs-full publication cost comparison.
    pub cost: UpdateCost,
}

/// Run the freshness study: for every replication degree × document-churn
/// rate, build a standard deployment, subject it to `ticks` ticks of
/// seeded document churn (topic-shaped inserts, incremental updates, lazy
/// deletions) with a maintenance round every second tick plus a closing
/// round, then evaluate the test split at K = 20 against a centralized
/// reference **rebuilt over the mutated corpus** (deleted slots emptied,
/// relevance judgments filtered to live documents). Include 0.0 to anchor
/// the frozen-corpus baseline.
#[must_use]
pub fn freshness_figure(
    world: &World,
    rates: &[f64],
    replications: &[usize],
    ticks: usize,
) -> FreshnessFigure {
    let jobs: Vec<(usize, f64)> = replications
        .iter()
        .flat_map(|&r| rates.iter().map(move |&c| (r, c)))
        .collect();
    let points = par_map(&jobs, |j, &(replication, rate)| {
        let cfg = SpriteConfig {
            replication,
            ..SpriteConfig::default()
        };
        let mut sys = world.standard_system(cfg, Schedule::WithoutRepeats);
        if replication > 1 {
            sys.replicate_indexes();
        }
        let mut engine = DocChurnEngine::new(
            DocChurnConfig {
                insert_rate: rate,
                update_rate: 2.0 * rate,
                delete_rate: rate,
                min_docs: 8,
            },
            world.config.seed.wrapping_add(j as u64 + 1),
            &world.synthetic,
        );
        let (mut inserted, mut updated, mut deleted) = (0u64, 0u64, 0u64);
        let mut reclaimed = 0u64;
        for tick in 0..ticks {
            let live = sys.live_docs();
            let events = engine.plan(&live, sys.corpus().len());
            let r = sys.apply_doc_events(&events);
            inserted += r.inserted as u64;
            updated += r.updated as u64;
            deleted += r.deleted as u64;
            if tick % 2 == 1 {
                reclaimed += sys.maintenance_round().tombstones_reclaimed as u64;
            }
        }
        // Close the run: the invariant is zero pending debt afterwards.
        reclaimed += sys.maintenance_round().tombstones_reclaimed as u64;
        let pending = sys.pending_tombstones() as u64;
        let (stale_entries, live_entries) = sys.stale_index_entries();
        let live_docs = sys.live_docs().len() as u64;

        // The fresh centralized reference: the mutated corpus with deleted
        // slots emptied (ids must stay aligned; an empty document can
        // never be retrieved), searched per query at evaluation time.
        let dead: Vec<bool> = (0..sys.corpus().len())
            .map(|i| sys.is_deleted(DocId(i as u32)))
            .collect();
        let mut ref_corpus = sys.corpus().clone();
        for (i, &gone) in dead.iter().enumerate() {
            if gone {
                ref_corpus.replace_document(DocId(i as u32), Vec::new());
            }
        }
        let reference = CentralizedEngine::build(&ref_corpus);

        sys.net_mut().reset_stats();
        sys.warm_query_terms(world.test.iter().map(|&qi| &world.workload[qi].query));
        let mut acc = RatioAccumulator::new();
        let mut total = NetStats::new();
        let mut deleted_doc_hits = 0u64;
        {
            let view = sys.query_view();
            let peers = view.peers();
            let mut rank = RankScratch::new();
            let mut scratch = SearchScratch::new();
            for (i, &qi) in world.test.iter().enumerate() {
                let gq = &world.workload[qi];
                let from = peers[i % peers.len()];
                let mut delta = NetStats::new();
                let sys_hits = view.query(from, &gq.query, 20, &mut delta, &mut rank);
                deleted_doc_hits += sys_hits.iter().filter(|h| dead[h.doc.index()]).count() as u64;
                let relevant: std::collections::HashSet<DocId> = gq
                    .relevant
                    .iter()
                    .copied()
                    .filter(|d| !dead[d.index()])
                    .collect();
                let cen_hits = reference.search_with(&gq.query, 20, &mut scratch);
                acc.add(
                    evaluate_hits_at_k(&sys_hits, &relevant, 20),
                    evaluate_hits_at_k(&cen_hits, &relevant, 20),
                );
                total.merge(&delta);
            }
        }
        sys.net_mut().absorb_stats(&total);
        let r = acc.finish();
        let msgs = sys.net().stats().total_messages() as f64 / world.test.len().max(1) as f64;
        FreshnessPoint {
            doc_churn: rate,
            replication,
            precision: r.precision_ratio,
            recall: r.recall_ratio,
            inserted,
            updated,
            deleted,
            tombstones_reclaimed: reclaimed,
            pending_tombstones: pending,
            deleted_doc_hits,
            stale_entries,
            live_entries,
            live_docs,
            messages_per_query: msgs,
        }
    });
    FreshnessFigure {
        points,
        cost: update_cost(world, 6),
    }
}

/// Run the incremental-vs-full update cost comparison: plan `ticks` ticks
/// of an update-only churn stream and apply every edit to two identical
/// standard deployments — one incrementally, one by full republish —
/// billing both through the normal wire-accounting paths.
#[must_use]
pub fn update_cost(world: &World, ticks: usize) -> UpdateCost {
    let cfg = DocChurnConfig {
        insert_rate: 0.0,
        update_rate: 4.0,
        delete_rate: 0.0,
        min_docs: 0,
    };
    let mut incremental = world.standard_system(SpriteConfig::default(), Schedule::WithoutRepeats);
    let mut full = world.standard_system(SpriteConfig::default(), Schedule::WithoutRepeats);
    let mut engine = DocChurnEngine::new(
        cfg,
        world.config.seed.wrapping_add(0x5eed),
        &world.synthetic,
    );
    incremental.net_mut().reset_stats();
    full.net_mut().reset_stats();
    let mut updates = 0u64;
    for _ in 0..ticks {
        let live = incremental.live_docs();
        let events = engine.plan(&live, incremental.corpus().len());
        for ev in &events {
            let DocEvent::Update { doc, terms } = ev else {
                continue;
            };
            incremental.update_document(*doc, terms.clone());
            full.republish_document(*doc, terms.clone());
            updates += 1;
        }
    }
    let bill = |sys: &SpriteSystem| {
        let st = sys.net().stats();
        st.bytes(MsgKind::IndexPublish) + st.bytes(MsgKind::IndexRemove)
    };
    let (incremental_bytes, republish_bytes) = (bill(&incremental), bill(&full));
    UpdateCost {
        updates,
        incremental_bytes,
        republish_bytes,
        savings_ratio: if republish_bytes > 0 {
            1.0 - incremental_bytes as f64 / republish_bytes as f64
        } else {
            0.0
        },
    }
}

/// Figure 4(b): precision ratio vs number of indexed terms, for the
/// `w/o-r` and `w-zipf` schedules.
#[derive(Clone, Debug)]
pub struct Fig4b {
    /// SPRITE under `w/o-r` (every training query once).
    pub sprite_wor: Vec<SeriesPoint>,
    /// SPRITE under `w-zipf` (Zipf-0.5 repeats).
    pub sprite_zipf: Vec<SeriesPoint>,
    /// eSearch (schedule-independent: it never learns).
    pub esearch: Vec<SeriesPoint>,
}

/// Run Figure 4(b): `budgets` is the x-axis (paper: 5..30 step 5);
/// evaluation at K = 20 answers.
///
/// Every (series, budget) pair is an independent deployment, so the sweep
/// fans out across threads (the simulation itself stays deterministic —
/// each configuration owns its entire world).
#[must_use]
pub fn fig4b(world: &World, budgets: &[usize], k: usize) -> Fig4b {
    let zipf = Schedule::Zipf {
        slope: 0.5,
        total: world.train.len(),
    };
    let sprite_cfg = |b: usize| SpriteConfig {
        max_terms: b,
        ..SpriteConfig::default()
    };
    // (series index, budget, config, schedule) work items, fanned out over
    // the sprite-util pool (each deployment owns its entire world, so items
    // are pure; results come back in input order).
    let jobs: Vec<(usize, usize, SpriteConfig, Schedule)> = budgets
        .iter()
        .flat_map(|&b| {
            [
                (0usize, b, sprite_cfg(b), Schedule::WithoutRepeats),
                (1, b, sprite_cfg(b), zipf),
                (2, b, SpriteConfig::esearch(b), Schedule::WithoutRepeats),
            ]
        })
        .collect();
    let results: Vec<(usize, SeriesPoint)> = par_map(&jobs, |_, (series, b, cfg, schedule)| {
        let mut sys = world.standard_system(cfg.clone(), *schedule);
        let r = world.evaluate(&mut sys, &world.test, k);
        (
            *series,
            SeriesPoint {
                x: *b as f64,
                precision: r.precision_ratio,
                recall: r.recall_ratio,
            },
        )
    });
    let mut series: [Vec<SeriesPoint>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (s, p) in results {
        series[s].push(p);
    }
    // Jobs were generated budget-major, so each series is already in
    // ascending-budget order after the stable input-order fan-in.
    let [sprite_wor, sprite_zipf, esearch] = series;
    Fig4b {
        sprite_wor,
        sprite_zipf,
        esearch,
    }
}

/// Figure 4(c): precision & recall ratio per learning iteration with a
/// query-pattern change halfway.
#[derive(Clone, Debug)]
pub struct Fig4c {
    /// SPRITE, one point per iteration (x = iteration number, 1-based).
    pub sprite: Vec<SeriesPoint>,
    /// eSearch evaluated on the same per-iteration test groups.
    pub esearch: Vec<SeriesPoint>,
    /// Iteration (1-based) at which the query population switches.
    pub switch_at: usize,
}

/// Run Figure 4(c): `iterations` learning iterations (paper: 10), pattern
/// change after `iterations / 2`; 30-term cap, K answers.
///
/// The workload is split by seed query into two disjoint interest groups
/// ("all new queries and their corresponding original query are in the same
/// group"). Each iteration issues a fresh slice of the active group's
/// training queries, learns, and evaluates on the active group's test set.
#[must_use]
pub fn fig4c(world: &World, iterations: usize, k: usize) -> Fig4c {
    let half = iterations / 2;
    let n_seeds = world.config.corpus.n_seed_queries;
    let group_of = |qi: usize| usize::from(world.workload[qi].seed_idx >= n_seeds / 2);
    let train_g: [Vec<usize>; 2] = [
        world
            .train
            .iter()
            .copied()
            .filter(|&q| group_of(q) == 0)
            .collect(),
        world
            .train
            .iter()
            .copied()
            .filter(|&q| group_of(q) == 1)
            .collect(),
    ];
    let test_g: [Vec<usize>; 2] = [
        world
            .test
            .iter()
            .copied()
            .filter(|&q| group_of(q) == 0)
            .collect(),
        world
            .test
            .iter()
            .copied()
            .filter(|&q| group_of(q) == 1)
            .collect(),
    ];

    let cfg = SpriteConfig {
        max_terms: 30,
        ..SpriteConfig::default()
    };
    let (initial, per_iter) = (cfg.initial_terms, cfg.terms_per_iteration);
    let mut sprite = world.new_system(cfg);
    sprite.publish_all();

    let mut sprite_pts = Vec::with_capacity(iterations);
    let mut esearch_pts = Vec::with_capacity(iterations);
    for it in 1..=iterations {
        let g = usize::from(it > half);
        // Slice of this group's training queries for this iteration.
        let within = if g == 0 { it - 1 } else { it - half - 1 };
        let slice_len = train_g[g].len().div_ceil(half.max(1));
        let start = (within * slice_len).min(train_g[g].len());
        let end = ((within + 1) * slice_len).min(train_g[g].len());
        let slice: Vec<usize> = train_g[g][start..end].to_vec();
        world.issue(&mut sprite, &slice, Schedule::WithoutRepeats);
        sprite.learning_iteration();

        let r = world.evaluate(&mut sprite, &test_g[g], k);
        sprite_pts.push(SeriesPoint {
            x: it as f64,
            precision: r.precision_ratio,
            recall: r.recall_ratio,
        });
        // eSearch's term count grows alongside SPRITE's budget during the
        // first iterations and stays flat once the 30-term cap is reached
        // ("the performance of eSearch remains unchanged after iteration 6").
        let e_budget = (initial + it * per_iter).min(30);
        let mut esearch = world.new_system(SpriteConfig::esearch(e_budget));
        esearch.publish_all();
        let re = world.evaluate(&mut esearch, &test_g[g], k);
        esearch_pts.push(SeriesPoint {
            x: it as f64,
            precision: re.precision_ratio,
            recall: re.recall_ratio,
        });
    }
    Fig4c {
        sprite: sprite_pts,
        esearch: esearch_pts,
        switch_at: half + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_world() -> World {
        World::build(WorldConfig::tiny(3))
    }

    #[test]
    fn world_builds_consistent_split() {
        let w = tiny_world();
        assert_eq!(
            w.workload.len(),
            w.config.corpus.n_seed_queries * (w.config.gen.k_per_seed + 1)
        );
        assert_eq!(w.train.len() + w.test.len(), w.workload.len());
        assert!(w.train.iter().all(|i| !w.test.contains(i)));
    }

    #[test]
    fn standard_system_reaches_term_budget() {
        let w = tiny_world();
        let sys = w.standard_system(SpriteConfig::default(), Schedule::WithoutRepeats);
        // Default: 5 initial + 3 × 5 = 20.
        let docs = sys.corpus().len();
        let mut at_budget = 0;
        for i in 0..docs {
            let n = sys.published_terms(sprite_ir::DocId(i as u32)).len();
            assert!(n <= 20);
            if n == 20 {
                at_budget += 1;
            }
        }
        // Most tiny-corpus docs have ≥ 20 distinct terms, so most reach 20.
        assert!(
            at_budget > docs / 2,
            "only {at_budget}/{docs} reached budget"
        );
    }

    #[test]
    fn esearch_system_is_static_topk() {
        let w = tiny_world();
        let sys = w.standard_system(SpriteConfig::esearch(10), Schedule::WithoutRepeats);
        for (i, d) in sys.corpus().docs().iter().enumerate() {
            assert_eq!(
                sys.published_terms(sprite_ir::DocId(i as u32)),
                d.top_frequent_terms(10)
            );
        }
    }

    #[test]
    fn evaluation_produces_sane_ratios() {
        let w = tiny_world();
        let mut sprite = w.standard_system(SpriteConfig::default(), Schedule::WithoutRepeats);
        let r = w.evaluate(&mut sprite, &w.test, 20);
        assert!(r.queries > 0);
        assert!(r.precision_ratio > 0.0, "SPRITE must find something");
        // A partial index can occasionally beat the reference on single
        // queries but the average must stay in a plausible band.
        assert!(r.precision_ratio < 2.0);
        assert!(r.recall_ratio > 0.0 && r.recall_ratio < 2.0);
    }

    #[test]
    fn sprite_beats_esearch_at_equal_terms() {
        // The paper's headline claim, at integration scale.
        let w = World::build(WorldConfig::small(9));
        let mut sprite = w.standard_system(SpriteConfig::default(), Schedule::WithoutRepeats);
        let mut esearch = w.standard_system(SpriteConfig::esearch(20), Schedule::WithoutRepeats);
        let rs = w.evaluate(&mut sprite, &w.test, 20);
        let re = w.evaluate(&mut esearch, &w.test, 20);
        assert!(
            rs.precision_ratio > re.precision_ratio,
            "SPRITE {:.3} should beat eSearch {:.3}",
            rs.precision_ratio,
            re.precision_ratio
        );
        assert!(
            rs.recall_ratio > re.recall_ratio,
            "recall: SPRITE {:.3} vs eSearch {:.3}",
            rs.recall_ratio,
            re.recall_ratio
        );
    }

    #[test]
    fn parallel_evaluate_is_bit_identical_to_sequential() {
        // The acceptance bar of the parallel engine: same RatioEval (exact
        // float bits), same merged NetStats, at any worker count.
        let w = tiny_world();
        let run = |threads: usize| {
            let prev = sprite_util::override_threads(threads);
            let mut sys = w.standard_system(SpriteConfig::default(), Schedule::WithoutRepeats);
            sys.net_mut().reset_stats();
            let r = w.evaluate(&mut sys, &w.test, 20);
            let stats = sys.net().stats().clone();
            sprite_util::override_threads(prev);
            (r, stats)
        };
        let (r1, s1) = run(1);
        let (r4, s4) = run(4);
        assert_eq!(
            r1.precision_ratio.to_bits(),
            r4.precision_ratio.to_bits(),
            "precision ratio must not depend on the worker count"
        );
        assert_eq!(r1.recall_ratio.to_bits(), r4.recall_ratio.to_bits());
        assert_eq!(r1.queries, r4.queries);
        assert_eq!(s1, s4, "merged NetStats must be bit-identical");
    }

    #[test]
    fn traced_evaluate_is_bit_identical_to_untraced() {
        // Tracing is observation only: switching it on must change neither
        // the ratios (exact float bits) nor the merged NetStats.
        let w = tiny_world();
        let mut plain = w.standard_system(SpriteConfig::default(), Schedule::WithoutRepeats);
        let mut traced = w.standard_system(SpriteConfig::default(), Schedule::WithoutRepeats);
        plain.net_mut().reset_stats();
        traced.net_mut().reset_stats();
        let r0 = w.evaluate(&mut plain, &w.test, 20);
        let (r1, rec) = w.evaluate_traced(&mut traced, &w.test, 20);
        assert_eq!(r0.precision_ratio.to_bits(), r1.precision_ratio.to_bits());
        assert_eq!(r0.recall_ratio.to_bits(), r1.recall_ratio.to_bits());
        assert_eq!(r0.queries, r1.queries);
        assert_eq!(plain.net().stats(), traced.net().stats());
        assert_eq!(rec.queries(), w.test.len() as u64);
        assert!(rec.events() > 0, "traced run must observe events");
    }

    #[test]
    fn traced_histograms_are_thread_count_invariant() {
        // The recorder merge is commutative and folded in input order, so
        // the parallel engine must produce bit-identical histograms at any
        // worker count.
        let w = tiny_world();
        let run = |threads: usize| {
            let prev = sprite_util::override_threads(threads);
            let mut sys = w.standard_system(SpriteConfig::default(), Schedule::WithoutRepeats);
            sys.net_mut().reset_stats();
            let (r, rec) = w.evaluate_traced(&mut sys, &w.test, 20);
            sprite_util::override_threads(prev);
            (r, rec)
        };
        let (r1, rec1) = run(1);
        let (r4, rec4) = run(4);
        assert_eq!(r1.precision_ratio.to_bits(), r4.precision_ratio.to_bits());
        assert_eq!(
            rec1, rec4,
            "recorders must be bit-identical across thread counts"
        );
    }

    #[test]
    fn evaluate_does_not_pollute_query_caches() {
        // Train/test hygiene: measurement must leave no learning state.
        let w = tiny_world();
        let mut sys = w.standard_system(SpriteConfig::default(), Schedule::WithoutRepeats);
        let cached_before: usize = sys
            .indexing_peers()
            .iter()
            .filter_map(|&p| sys.indexing_state(p))
            .map(crate::peer::IndexingState::cached_queries)
            .sum();
        let _ = w.evaluate(&mut sys, &w.test, 20);
        let cached_after: usize = sys
            .indexing_peers()
            .iter()
            .filter_map(|&p| sys.indexing_state(p))
            .map(crate::peer::IndexingState::cached_queries)
            .sum();
        assert_eq!(cached_before, cached_after);
    }

    #[test]
    fn fig4a_shapes() {
        let w = tiny_world();
        let f = fig4a(&w, &[5, 20]);
        assert_eq!(f.sprite.len(), 2);
        assert_eq!(f.esearch.len(), 2);
        for p in f.sprite.iter().chain(&f.esearch) {
            assert!(p.precision >= 0.0 && p.recall >= 0.0);
        }
    }

    #[test]
    fn churn_figure_shapes_and_baselines() {
        let w = tiny_world();
        let f = churn_figure(&w, &[0.0, 0.05], &[1, 3], 4);
        assert_eq!(f.points.len(), 4);
        for p in &f.points {
            assert!(p.precision >= 0.0);
            assert!(p.messages_per_query > 0.0);
            assert!(p.peers_after >= 4);
        }
        // Zero-churn points are their own baseline.
        for p in f.points.iter().filter(|p| p.churn_rate == 0.0) {
            assert!((p.retention - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn churned_retrieval_retains_most_quality_with_replication() {
        // Acceptance bar: at replication 3, a churned run keeps ≥ 80% of
        // the no-churn ratio-to-ideal (§7's "little impact" claim) with
        // every failover routed — the oracle never serves the query path.
        let w = tiny_world();
        let f = churn_figure(&w, &[0.0, 0.05], &[3], 6);
        let churned = f
            .points
            .iter()
            .find(|p| p.churn_rate > 0.0)
            .expect("sweep has a churned point");
        assert!(
            churned.retention >= 0.8,
            "churned retention {:.3} below the 80% bar",
            churned.retention
        );
    }

    #[test]
    fn explicit_perfect_sim_is_bit_identical_to_default() {
        // The bit-identity contract of the delivery layer: any perfect
        // SimConfig — even one with a different seed and retry budget —
        // must reproduce the default lockstep execution exactly, because
        // a perfect link never samples its hash chain.
        let w = tiny_world();
        let mut plain = w.standard_system(SpriteConfig::default(), Schedule::WithoutRepeats);
        let sim = SimConfig {
            seed: 0xdead_beef,
            max_retries: 7,
            ..SimConfig::default()
        };
        assert!(sim.is_perfect());
        let mut simmed =
            w.standard_system_with_sim(SpriteConfig::default(), Schedule::WithoutRepeats, sim);
        assert_eq!(plain.net().stats(), simmed.net().stats());
        let r0 = w.evaluate(&mut plain, &w.test, 20);
        let r1 = w.evaluate(&mut simmed, &w.test, 20);
        assert_eq!(r0.precision_ratio.to_bits(), r1.precision_ratio.to_bits());
        assert_eq!(r0.recall_ratio.to_bits(), r1.recall_ratio.to_bits());
        assert_eq!(plain.net().stats(), simmed.net().stats());
        assert_eq!(
            plain.net().stats().count(MsgKind::Timeout),
            0,
            "a perfect network never times out"
        );
    }

    #[test]
    fn lossy_world_bills_timeouts_and_degrades_gracefully() {
        // End-to-end under real loss: in-flight drops must surface as
        // Timeout charges (retries the sender waited out), queries must
        // still come back with partial results, and the whole sweep must
        // replay bit-identically from the same seeds.
        let w = tiny_world();
        let run = || loss_figure(&w, &[0.0, 0.05], &[1, 3]);
        let f = run();
        assert_eq!(f.points.len(), 4);
        for p in &f.points {
            assert!(p.precision.is_finite() && p.precision >= 0.0);
            assert!(p.recall.is_finite() && p.recall >= 0.0);
            assert!(p.messages_per_query > 0.0);
            if p.loss == 0.0 {
                assert_eq!(p.timeouts, 0, "lossless points must not time out");
                assert!(p.precision > 0.0);
            } else {
                assert!(
                    p.timeouts > 0,
                    "loss {} repl {} billed no timeouts",
                    p.loss,
                    p.replication
                );
                assert!(
                    p.precision > 0.0,
                    "lossy retrieval must still return partial results"
                );
            }
        }
        let g = run();
        for (a, b) in f.points.iter().zip(&g.points) {
            assert_eq!(a.precision.to_bits(), b.precision.to_bits());
            assert_eq!(a.recall.to_bits(), b.recall.to_bits());
            assert_eq!(a.timeouts, b.timeouts, "same seed, same event order");
        }
    }

    #[test]
    fn freshness_figure_shapes_invariants_and_replay() {
        let w = tiny_world();
        let run = || freshness_figure(&w, &[0.0, 0.5], &[1, 3], 4);
        let f = run();
        assert_eq!(f.points.len(), 4);
        for p in &f.points {
            assert!(p.precision.is_finite() && p.precision >= 0.0);
            assert!(p.recall.is_finite() && p.recall >= 0.0);
            assert_eq!(p.deleted_doc_hits, 0, "a deleted doc surfaced in a query");
            assert_eq!(p.pending_tombstones, 0, "maintenance left tombstone debt");
            assert!(p.live_docs >= 8);
            if p.doc_churn == 0.0 {
                assert_eq!(p.inserted + p.updated + p.deleted, 0);
                assert_eq!(p.stale_entries, 0, "a frozen corpus has no staleness");
            } else {
                assert!(p.updated > 0, "rate 0.5 over 4 ticks should update docs");
            }
        }
        // The update stream must actually exercise the tombstone path at
        // some point of the sweep.
        assert!(f.points.iter().any(|p| p.tombstones_reclaimed > 0));
        assert!(f.cost.updates > 0);
        assert!(
            f.cost.savings_ratio >= 0.30,
            "incremental updates saved only {:.0}% of publication bytes",
            f.cost.savings_ratio * 100.0
        );
        // Bit-identical replay: same seeds, same schedule, same ratios.
        let g = run();
        for (a, b) in f.points.iter().zip(&g.points) {
            assert_eq!(a.precision.to_bits(), b.precision.to_bits());
            assert_eq!(a.recall.to_bits(), b.recall.to_bits());
            assert_eq!(
                (a.inserted, a.updated, a.deleted, a.tombstones_reclaimed),
                (b.inserted, b.updated, b.deleted, b.tombstones_reclaimed)
            );
        }
        assert_eq!(f.cost.incremental_bytes, g.cost.incremental_bytes);
        assert_eq!(f.cost.republish_bytes, g.cost.republish_bytes);
    }

    #[test]
    fn fig4c_runs_all_iterations() {
        let w = tiny_world();
        let f = fig4c(&w, 4, 10);
        assert_eq!(f.sprite.len(), 4);
        assert_eq!(f.esearch.len(), 4);
        assert_eq!(f.switch_at, 3);
    }
}
