//! SPRITE — Selective PRogressive Index Tuning by Examples.
//!
//! The paper's primary contribution (Li, Jagadish, Tan — ICDE 2007): a
//! text-retrieval system for DHT networks that publishes only a small,
//! *learned* set of global index terms per document, progressively refined
//! from the queries cached at indexing peers.
//!
//! * [`config`] — deployment tunables (§6.2 defaults) and the eSearch
//!   baseline configuration;
//! * [`peer`] — the two per-peer roles of §3 (indexing state with bounded
//!   query history; owner state with per-term learning statistics);
//! * [`learn`] — `qScore`, `QF`, the combined `Score`, and Algorithm 1;
//! * [`system`] — the deployment itself: publishing, distributed query
//!   processing, and the periodic learning pass over Chord;
//! * [`view`] — the frozen read-only query snapshot behind the parallel
//!   experiment engine (any number of threads rank against one system);
//! * [`resilience`] — §7: peer failure, successor replication, hot-term
//!   advisory;
//! * [`expansion`] — §7: local-context-analysis query expansion;
//! * [`experiment`] — the shared experiment driver behind every figure;
//! * [`trace`] — per-query [`QueryTrace`] reports for the observability
//!   layer (`sprite-trace`).

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod config;
pub mod expansion;
pub mod experiment;
pub mod learn;
pub mod metrics;
pub mod peer;
pub mod postings;
pub mod resilience;
pub mod system;
pub mod trace;
pub mod view;

pub use config::{IdfMode, SpriteConfig};
pub use expansion::ExpansionConfig;
pub use experiment::{
    churn_figure, fig4a, fig4b, fig4c, freshness_figure, loss_figure, update_cost, ChurnFigure,
    ChurnPoint, Fig4a, Fig4b, Fig4c, FreshnessFigure, FreshnessPoint, LossFigure, LossPoint,
    SeriesPoint, UpdateCost, World, WorldConfig,
};
pub use learn::{
    algorithm1, naive_select, q_score, select_terms, select_terms_excluding, select_terms_mode,
    term_score, term_score_with, update_stats, ScoreMode,
};
pub use metrics::{gini, LoadReport, PeerLoad};
pub use peer::{CachedQuery, IndexEntry, IndexingState, OwnerDoc, TermStat};
pub use postings::{PostingIter, PostingList, PLAIN_ENTRY_BYTES};
pub use resilience::{AdvisoryReport, ChurnReport, MaintenanceReport};
pub use system::{DocTickReport, LearnReport, SpriteSystem, UpdateReport};
pub use trace::{KeywordTrace, QueryTrace};
pub use view::{QueryView, RankScratch};
